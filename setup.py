"""Legacy setup shim for environments without PEP-517 wheel support."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    extras_require={
        # optional vectorized uint64 simulation backend (repro.sim);
        # every engine is complete and bit-identical without it
        "accel": ["numpy"],
    },
)
