"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``info <circuit>``                 — print benchmark statistics;
* ``optimize <circuit>``             — run the compress2rs flow, report gains;
* ``map-luts <circuit>``             — (MCH) 6-LUT mapping, optional BLIF out;
* ``map-asic <circuit>``             — (MCH) ASIC mapping, optional Verilog out;
* ``table1 | table2 | fig1 | fig2 | fig6`` — regenerate a paper artifact;
* ``suite``                          — list the available benchmarks.

Circuits are the EPFL-analogue generator names (see ``suite``), or a path to
an ASCII AIGER file (``.aag``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .circuits import ALL_BENCHMARKS, build
from .core import MchParams, build_mch
from .mapping import MappingSession, asic_map, lut_map
from .networks import Aig, Mig, Xag, Xmg
from .opt import compress2rs
from .sat import cec

_REPS = {"aig": Aig, "xag": Xag, "mig": Mig, "xmg": Xmg}


def _load(circuit: str, scale: str) -> Aig:
    path = Path(circuit)
    if path.suffix == ".aag" and path.exists():
        from .io import read_aag

        return read_aag(path.read_text())
    if circuit in ALL_BENCHMARKS:
        return build(circuit, scale)
    raise SystemExit(f"unknown circuit {circuit!r} (not a benchmark name or .aag file)")


def _mch_of(ntk, args):
    reps = tuple(_REPS[r] for r in args.reps.split(","))
    return build_mch(ntk, MchParams(representations=reps, ratio=args.ratio))


def cmd_info(args) -> int:
    from .analysis import format_stats, network_stats

    ntk = _load(args.circuit, args.scale)
    print(f"{args.circuit}: {ntk.num_pis()} PIs, {ntk.num_pos()} POs, "
          f"{ntk.num_gates()} gates, depth {ntk.depth()}")
    print(format_stats(network_stats(ntk)))
    return 0


def cmd_suite(args) -> int:
    for name in ALL_BENCHMARKS:
        ntk = build(name, args.scale)
        print(f"{name:11s} pis={ntk.num_pis():4d} pos={ntk.num_pos():4d} "
              f"gates={ntk.num_gates():5d} depth={ntk.depth():4d}")
    return 0


def cmd_optimize(args) -> int:
    ntk = _load(args.circuit, args.scale)
    opt = compress2rs(ntk, rounds=args.rounds)
    print(f"before: {ntk.num_gates()} gates, depth {ntk.depth()}")
    print(f"after:  {opt.num_gates()} gates, depth {opt.depth()}")
    if args.verify:
        print("cec:", "ok" if cec(ntk, opt) else "FAILED")
    if args.output:
        from .io import write_aag

        Path(args.output).write_text(write_aag(opt))
        print(f"wrote {args.output}")
    return 0


def _print_engine_stats(session: MappingSession) -> None:
    import json

    from .sat import solver_stats
    from .sim import sim_stats

    print("engine stats:")
    print(json.dumps(session.stats(), indent=2, default=str))
    print("verification stats:")
    print(json.dumps({"solver": solver_stats(), "sim": sim_stats()}, indent=2))


def cmd_map_luts(args) -> int:
    ntk = _load(args.circuit, args.scale)
    subject = _mch_of(ntk, args) if args.mch else ntk
    if args.mch:
        print(f"choice network: {subject}")
    session = MappingSession.of(subject)
    lut = lut_map(session, k=args.k, objective=args.objective)
    print(f"{lut.num_luts()} LUTs, depth {lut.depth()}")
    if args.verify:
        print("cec:", "ok" if cec(ntk, lut.to_logic_network(Aig)) else "FAILED")
    if args.engine_stats:
        _print_engine_stats(session)
    if args.output:
        from .io import write_blif

        Path(args.output).write_text(write_blif(lut))
        print(f"wrote {args.output}")
    return 0


def cmd_map_asic(args) -> int:
    ntk = _load(args.circuit, args.scale)
    subject = _mch_of(ntk, args) if args.mch else ntk
    if args.mch:
        print(f"choice network: {subject}")
    session = MappingSession.of(subject)
    nl = asic_map(session, objective=args.objective)
    print(f"{nl.num_cells()} cells, area {nl.area():.2f} µm², delay {nl.delay():.2f} ps")
    if args.verify:
        print("cec:", "ok" if cec(ntk, nl.to_logic_network(Aig)) else "FAILED")
    if args.engine_stats:
        _print_engine_stats(session)
    if args.output:
        from .io import write_verilog_netlist

        Path(args.output).write_text(write_verilog_netlist(nl))
        print(f"wrote {args.output}")
    return 0


def cmd_experiment(args) -> int:
    from . import experiments as exp

    if args.artifact == "fig1":
        print(exp.format_fig1(exp.run_fig1(scale=args.scale)))
    elif args.artifact == "fig2":
        print(exp.format_fig2(exp.run_fig2()))
    elif args.artifact == "table1":
        names = args.circuits.split(",") if args.circuits else None
        print(exp.format_results(exp.run_table1(names=names, scale=args.scale)))
    elif args.artifact == "table2":
        names = args.circuits.split(",") if args.circuits else None
        print(exp.format_table2(exp.run_table2(names=names, scale=args.scale)))
    elif args.artifact == "fig6":
        names = args.circuits.split(",") if args.circuits else ["adder", "square", "voter"]
        print(exp.format_fig6(exp.run_fig6(names=names, scale=args.scale)))
    return 0


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Mixed Structural Choices technology mapping"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, mch_opts=True):
        p.add_argument("circuit", help="benchmark name or .aag path")
        p.add_argument("--scale", default="small", choices=["tiny", "small", "medium"])
        p.add_argument("--verify", action="store_true", help="CEC the result")
        p.add_argument("-o", "--output", help="output file")
        if mch_opts:
            p.add_argument("--mch", action="store_true", help="use mixed structural choices")
            p.add_argument("--reps", default="xmg", help="candidate reps, e.g. xmg,xag")
            p.add_argument("--ratio", type=float, default=1.0, help="critical-path ratio r")
            p.add_argument("--engine-stats", action="store_true",
                           help="print mapping-engine cut-database and cache stats")

    p = sub.add_parser("info", help="print circuit statistics")
    p.add_argument("circuit")
    p.add_argument("--scale", default="small", choices=["tiny", "small", "medium"])
    p.set_defaults(fn=cmd_info)

    p = sub.add_parser("suite", help="list available benchmarks")
    p.add_argument("--scale", default="small", choices=["tiny", "small", "medium"])
    p.set_defaults(fn=cmd_suite)

    p = sub.add_parser("optimize", help="run the compress2rs flow")
    common(p, mch_opts=False)
    p.add_argument("--rounds", type=int, default=4)
    p.set_defaults(fn=cmd_optimize)

    p = sub.add_parser("map-luts", help="K-LUT (FPGA) mapping")
    common(p)
    p.add_argument("-k", type=int, default=6)
    p.add_argument("--objective", default="area", choices=["area", "delay"])
    p.set_defaults(fn=cmd_map_luts)

    p = sub.add_parser("map-asic", help="standard-cell (ASIC) mapping")
    common(p)
    p.add_argument("--objective", default="delay", choices=["area", "delay"])
    p.set_defaults(fn=cmd_map_asic)

    p = sub.add_parser("experiment", help="regenerate a paper artifact")
    p.add_argument("artifact", choices=["fig1", "fig2", "table1", "table2", "fig6"])
    p.add_argument("--scale", default="small", choices=["tiny", "small", "medium"])
    p.add_argument("--circuits", help="comma-separated circuit subset")
    p.set_defaults(fn=cmd_experiment)
    return parser


def main(argv=None) -> int:
    parser = make_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
