"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``info <circuit>``                 — print benchmark statistics;
* ``run <circuit> --script "..."``   — run an arbitrary flow script;
* ``optimize <circuit>``             — run the compress2rs flow, report gains;
* ``map-luts <circuit>``             — (MCH) 6-LUT mapping, optional BLIF out;
* ``map-asic <circuit>``             — (MCH) ASIC mapping, optional Verilog out;
* ``passes``                         — list the registered flow passes;
* ``table1 | table2 | fig1 | fig2 | fig6`` — regenerate a paper artifact;
* ``suite``                          — list suite manifests / show one suite;
* ``batch``                          — run a flow over a whole suite in
  parallel (``--jobs N``), record to a result store, diff against a
  baseline run (``--compare-to``);
* ``serve``                          — run the synthesis daemon: an HTTP
  job API over a warm worker pool with a content-addressed result cache
  (see ``docs/serve.md``);
* ``submit``                         — submit one job to a running daemon
  and print the result record.

Circuits are the EPFL-analogue generator names (see ``suite``), or a path to
an ASCII AIGER file (``.aag``).  Every command that transforms a circuit is
a thin front-end over the flow API: it assembles a script, runs it through
one shared :class:`~repro.flow.context.FlowContext`, and the common
``--verify`` / ``--timing`` / ``--engine-stats`` / ``-o`` reporting works
uniformly.  Examples::

    python -m repro run adder --script "b; rf; rs; gm -k 4; b" --verify
    python -m repro run square --flow resyn2rs --timing
    python -m repro map-luts adder --mch --reps xmg,xag --verify --engine-stats
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .circuits import load
from .flow import (
    FlowContext,
    FlowError,
    FlowResult,
    FlowRunner,
    available_passes,
    resolve_flow,
    state_kind,
    state_summary,
)

_SCALES = ["tiny", "small", "medium"]


# ---------------------------------------------------------------------- #
# shared helpers (the once-per-command boilerplate, hoisted)               #
# ---------------------------------------------------------------------- #

def _load(circuit: str, scale: str):
    try:
        return load(circuit, scale)
    except ValueError as exc:
        raise SystemExit(str(exc))


def _choice_prefix(args) -> str:
    """Script fragment building the MCH choice network, from CLI options."""
    return f"mch -p {args.reps} -r {args.ratio}; "


def _run_script(args, script) -> FlowResult:
    """Load the circuit, run a script/Flow under one context, report uniformly."""
    ntk = _load(args.circuit, args.scale)
    ctx = FlowContext()
    try:
        result = FlowRunner(ctx).run(ntk, resolve_flow(script),
                                     name=str(args.circuit))
    except FlowError as exc:
        raise SystemExit(f"flow failed: {exc}")
    return result


def _report(args, result: FlowResult) -> None:
    """The shared verify / timing / engine-stats / output tail of a command."""
    ctx: FlowContext = result.context
    if getattr(args, "verify", False):
        print("cec:", "ok" if ctx.cec(result.input, result.network) else "FAILED")
    if getattr(args, "timing", False):
        print(ctx.metrics_table(result.metrics))
    if getattr(args, "engine_stats", False):
        _print_engine_stats(ctx)
    if getattr(args, "output", None):
        _write_output(result.network, args.output)


def _print_engine_stats(ctx: FlowContext) -> None:
    import json

    print("engine stats:")
    print(json.dumps(ctx.stats(), indent=2, default=str))


def _write_output(state, path: str) -> None:
    """Write the final pipeline state in the format its kind implies."""
    kind = state_kind(state)
    if kind == "lut":
        from .io import write_blif

        text = write_blif(state)
    elif kind == "netlist":
        from .io import write_verilog_netlist

        text = write_verilog_netlist(state)
    else:
        from .io import write_aag
        from .networks import Aig, convert

        ntk = state.ntk if kind == "choice" else state
        if type(ntk) is not Aig:
            ntk = convert(ntk, Aig)
        text = write_aag(ntk)
    Path(path).write_text(text)
    print(f"wrote {path}")


# ---------------------------------------------------------------------- #
# commands                                                                #
# ---------------------------------------------------------------------- #

def cmd_info(args) -> int:
    from .analysis import format_stats, network_stats

    ntk = _load(args.circuit, args.scale)
    regs = ntk.num_registers() if hasattr(ntk, "num_registers") else 0
    print(f"{args.circuit}: {ntk.num_real_pis()} PIs, {ntk.num_pos()} POs, "
          f"{regs} registers, {ntk.num_gates()} gates, depth {ntk.depth()}"
          if regs else
          f"{args.circuit}: {ntk.num_pis()} PIs, {ntk.num_pos()} POs, "
          f"{ntk.num_gates()} gates, depth {ntk.depth()}")
    print(format_stats(network_stats(ntk)))
    return 0


def cmd_suite(args) -> int:
    from .batch import available_suites, get_suite

    if not args.name:
        for name, suite in available_suites().items():
            print(f"{name:22s} {len(suite):3d} circuits  "
                  f"[{suite.scale}]  {suite.description}")
        print("\nshow one with: repro suite <name|manifest.toml|manifest.json>")
        return 0
    try:
        suite = get_suite(args.name)
    except ValueError as exc:
        raise SystemExit(str(exc))
    scale = args.scale or suite.scale
    print(f"{suite.name}: {len(suite)} circuits at scale {scale}"
          + (f" — {suite.description}" if suite.description else ""))
    for entry in suite:
        ntk = entry.build(scale)
        regs = ntk.num_registers() if hasattr(ntk, "num_registers") else 0
        print(f"{entry.name:14s} {entry.describe():24s} "
              f"pis={ntk.num_pis():4d} pos={ntk.num_pos():4d} "
              f"gates={ntk.num_gates():5d} depth={ntk.depth():4d}"
              + (f" regs={regs:4d}" if regs else ""))
    return 0


def cmd_batch(args) -> int:
    from .batch import BatchRunner, ResultStore, get_suite

    if bool(args.script) == bool(args.flow):
        raise SystemExit("batch: give exactly one of --script or --flow")
    if args.compare_to and not args.store:
        raise SystemExit("batch: --compare-to needs --store")
    if (args.resume or args.cooperate) and not args.store:
        raise SystemExit("batch: --resume/--cooperate need --store")
    if args.requarantine and not args.store:
        raise SystemExit("batch: --requarantine needs --store")
    try:
        suite = get_suite(args.suite)
        flow = resolve_flow(args.script or args.flow)
    except (ValueError, FlowError) as exc:
        raise SystemExit(str(exc))

    def progress(done, total, outcome):
        status = outcome.status if not outcome.ok else (
            "ok (resumed)" if outcome.resumed_from else "ok")
        print(f"[{done}/{total}] {outcome.name}: {status} "
              f"({outcome.seconds:.2f}s)", flush=True)

    from .batch import event_sink

    events = event_sink(args.events)
    try:
        runner = BatchRunner(jobs=args.jobs, verify=args.verify,
                             progress=progress if not args.quiet else None,
                             return_networks=False, transfer=args.transfer,
                             timeout=args.timeout, retries=args.retries,
                             order=args.order, events=events,
                             memory_limit=args.memory_limit)
    except ValueError as exc:
        raise SystemExit(f"batch: {exc}")
    store = ResultStore(args.store) if args.store else None
    try:
        batch = runner.run(suite, flow, scale=args.scale, store=store,
                           resume=args.resume, cooperate=args.cooperate,
                           requarantine=args.requarantine)
    finally:
        if events is not None:
            events.close()
    print(batch.table())
    if batch.run_id:
        print(f"recorded run {batch.run_id} -> {store.path}")
    for outcome in batch.quarantined:
        print(f"\nQUARANTINED {outcome.name}: {outcome.error}")
    for outcome in batch.failures:
        print(f"\nFAILED {outcome.name}: {outcome.error}")
        if outcome.traceback:
            print(outcome.traceback.rstrip())
    if args.compare_to:
        try:
            mine = store.find_run(batch.run_id or "latest")
            baseline = store.find_run(args.compare_to, exclude=mine.run_id)
            cmp = store.compare(mine, baseline)
        except ValueError as exc:
            raise SystemExit(str(exc))
        print()
        print(cmp.format())
        if not cmp.ok:
            return 1
    return 1 if batch.failures else 0


def cmd_serve(args) -> int:
    from .batch import event_sink
    from .serve import ServeDaemon

    try:
        daemon = ServeDaemon(args.host, args.port, jobs=args.jobs,
                             store=args.store, timeout=args.timeout,
                             idle_timeout=args.idle_timeout,
                             events=event_sink(args.events),
                             max_queued=args.max_queued,
                             memory_limit=args.memory_limit)
    except ValueError as exc:
        raise SystemExit(f"serve: {exc}")
    daemon.start()
    # the first line is machine-readable: smoke scripts parse the port
    print(f"serving on http://{daemon.host}:{daemon.port} "
          f"(jobs={args.jobs}, store={args.store or 'memory-only'})",
          flush=True)
    try:
        daemon.wait()
    except KeyboardInterrupt:
        print("interrupted -- draining", flush=True)
        daemon.stop()
    print("serve: stopped", flush=True)
    return 0


def cmd_submit(args) -> int:
    from .serve import ServeClient, ServeError

    if bool(args.script) == bool(args.flow):
        raise SystemExit("submit: give exactly one of --script or --flow")
    # a local .aag file is shipped inline -- the daemon may be remote
    circuit, aag = args.circuit, ""
    if circuit.endswith(".aag") and Path(circuit).exists():
        circuit, aag = "", Path(args.circuit).read_text()
    client = ServeClient(args.host, args.port)
    try:
        job = client.submit(circuit, aag=aag,
                            flow=args.script or args.flow,
                            scale=args.scale, verify=args.verify,
                            timeout=args.timeout,
                            name=Path(args.circuit).stem)
        if args.no_wait:
            print(json.dumps(job, sort_keys=True, indent=2))
            return 0
        job = client.wait(job["id"], timeout=args.wait)
    except ServeError as exc:
        raise SystemExit(f"submit: {exc}")
    record = job.get("record") or {}
    cached = " (cache hit)" if job.get("cached") else ""
    print(f"{job.get('name')}: {job.get('status')}{cached}")
    print(json.dumps(record, sort_keys=True, indent=2))
    return 0 if job.get("status") == "done" else 1


def cmd_passes(args) -> int:
    for info in available_passes():
        flags = " ".join(f"[-{a.flag}]" if a.type is bool
                         else f"[-{a.flag} {a.type.__name__}]" for a in info.args)
        aliases = f" ({', '.join(info.aliases)})" if info.aliases else ""
        caps = f"  on: {','.join(info.inputs)}"
        if info.needs_library:
            caps += "  [needs library]"
        print(f"{info.name:5s}{aliases:20s} {flags}")
        print(f"      {info.help}{caps}")
    print("\nfull grammar reference and script cookbook: docs/flow-dsl.md")
    return 0


def cmd_run(args) -> int:
    if bool(args.script) == bool(args.flow):
        raise SystemExit("run: give exactly one of --script or --flow")
    script = args.script or args.flow
    result = _run_script(args, script)
    print(f"flow:   {result.flow.to_script() or '(empty)'}")
    print(f"input:  {state_summary(result.input)}")
    print(f"output: {state_summary(result.network)}  "
          f"[{len(result.metrics)} passes, {result.seconds:.3f}s]")
    _report(args, result)
    return 0


def cmd_optimize(args) -> int:
    from .flow import compress2rs_flow

    result = _run_script(args, compress2rs_flow(rounds=args.rounds))
    ntk, opt = result.input, result.network
    print(f"before: {ntk.num_gates()} gates, depth {ntk.depth()}")
    print(f"after:  {opt.num_gates()} gates, depth {opt.depth()}")
    _report(args, result)
    return 0


def cmd_map_luts(args) -> int:
    prefix = _choice_prefix(args) if args.mch else ""
    script = f"{prefix}if -k {args.k} -o {args.objective}"
    result = _run_script(args, script)
    if args.mch:
        print(f"choice network: {_choice_state(result, 'mch')}")
    lut = result.network
    print(f"{lut.num_luts()} LUTs, depth {lut.depth()}")
    _report(args, result)
    return 0


def cmd_map_asic(args) -> int:
    prefix = _choice_prefix(args) if args.mch else ""
    script = f"{prefix}am -o {args.objective}"
    result = _run_script(args, script)
    if args.mch:
        print(f"choice network: {_choice_state(result, 'mch')}")
    nl = result.network
    print(f"{nl.num_cells()} cells, area {nl.area():.2f} µm², "
          f"delay {nl.delay():.2f} ps")
    _report(args, result)
    return 0


def _choice_state(result: FlowResult, pass_name: str) -> str:
    for m in result.metrics:
        if m.name == pass_name:
            return (f"{m.after[0]:.0f} gates after choices "
                    f"(+{m.after[0] - m.before[0]:.0f} candidate gates)")
    return "?"


def cmd_experiment(args) -> int:
    from . import experiments as exp

    if args.artifact == "fig1":
        print(exp.format_fig1(exp.run_fig1(scale=args.scale)))
    elif args.artifact == "fig2":
        print(exp.format_fig2(exp.run_fig2()))
    elif args.artifact == "table1":
        names = args.circuits.split(",") if args.circuits else None
        print(exp.format_results(exp.run_table1(names=names, scale=args.scale)))
    elif args.artifact == "table2":
        names = args.circuits.split(",") if args.circuits else None
        print(exp.format_table2(exp.run_table2(names=names, scale=args.scale)))
    elif args.artifact == "fig6":
        names = args.circuits.split(",") if args.circuits else ["adder", "square", "voter"]
        print(exp.format_fig6(exp.run_fig6(names=names, scale=args.scale)))
    return 0


# ---------------------------------------------------------------------- #
# parser                                                                  #
# ---------------------------------------------------------------------- #

def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Mixed Structural Choices technology mapping"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, mch_opts=True):
        p.add_argument("circuit", help="benchmark name or .aag path")
        p.add_argument("--scale", default="small", choices=_SCALES)
        p.add_argument("--verify", action="store_true", help="CEC the result")
        p.add_argument("-o", "--output", help="output file")
        p.add_argument("--timing", action="store_true",
                       help="print the per-pass timing table")
        p.add_argument("--engine-stats", action="store_true",
                       help="print shared-engine statistics (cut databases, "
                            "SAT, simulation)")
        if mch_opts:
            p.add_argument("--mch", action="store_true", help="use mixed structural choices")
            p.add_argument("--reps", default="xmg", help="candidate reps, e.g. xmg,xag")
            p.add_argument("--ratio", type=float, default=1.0, help="critical-path ratio r")

    p = sub.add_parser("info", help="print circuit statistics")
    p.add_argument("circuit")
    p.add_argument("--scale", default="small", choices=_SCALES)
    p.set_defaults(fn=cmd_info)

    p = sub.add_parser("suite", help="list suite manifests, or show one suite")
    p.add_argument("name", nargs="?",
                   help="suite name or .toml/.json manifest path "
                        "(omit to list the available manifests)")
    p.add_argument("--scale", default=None, choices=_SCALES)
    p.set_defaults(fn=cmd_suite)

    p = sub.add_parser("batch",
                       help="run a flow over a whole suite, optionally in "
                            "parallel, recording to a result store")
    p.add_argument("suite", help="suite name, manifest path, or "
                                 "comma-separated circuit list")
    p.add_argument("--script", help='flow script, e.g. "b; rf; rs; gm -k 4"')
    p.add_argument("--flow", help="named flow spec (compress2rs, resyn2rs)")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes (1 = in-process, shared context)")
    p.add_argument("--scale", default=None, choices=_SCALES,
                   help="circuit scale (default: the suite's own)")
    p.add_argument("--store", help="append the run to this JSONL result store")
    p.add_argument("--compare-to",
                   help="run id (or prefix, or 'latest') in the store to "
                        "diff against; exits 1 on regressions")
    p.add_argument("--verify", action="store_true",
                   help="CEC every circuit's result against its input")
    p.add_argument("--transfer", default="auto",
                   choices=("auto", "shm", "pickle"),
                   help="how circuits reach pool workers: shared-memory flat "
                        "buffers, object pickles, or auto (default)")
    p.add_argument("--timeout", type=float, default=None,
                   help="hard per-circuit wall-clock limit in seconds; a "
                        "worker past it is killed (pool runs only)")
    p.add_argument("--retries", type=int, default=0,
                   help="extra attempts for circuits that error or crash "
                        "(jittered exponential backoff between attempts; "
                        "timeouts and ooms are final)")
    p.add_argument("--memory-limit", default=None,
                   help="per-worker address-space budget, e.g. 512M or 2G; "
                        "a worker past it ends that circuit 'oom' (pool "
                        "runs only)")
    p.add_argument("--resume", action="store_true",
                   help="skip circuits already ok in --store under the same "
                        "run key (flow + suite + scale + inputs)")
    p.add_argument("--requarantine", action="store_true",
                   help="clear the run key's quarantine list in --store and "
                        "retry circuits the circuit breaker had benched")
    p.add_argument("--cooperate", action="store_true",
                   help="claim circuits through --store so concurrent "
                        "runners share the suite without duplicated work")
    p.add_argument("--order", default="largest", choices=("largest", "suite"),
                   help="dispatch order: biggest circuits first to bound "
                        "stragglers (default), or manifest order")
    p.add_argument("--events",
                   help="append a JSONL progress-event stream to this path")
    p.add_argument("--quiet", action="store_true",
                   help="suppress per-circuit progress lines")
    p.set_defaults(fn=cmd_batch)

    p = sub.add_parser("serve",
                       help="run the synthesis daemon: HTTP job API, warm "
                            "worker pool, content-addressed result cache")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8787,
                   help="TCP port (0 = pick an ephemeral port)")
    p.add_argument("--jobs", type=int, default=2,
                   help="maximum pool workers kept warm for requests")
    p.add_argument("--store",
                   help="persist cache entries to this JSONL result store "
                        "(a restarted daemon starts warm from it)")
    p.add_argument("--timeout", type=float, default=None,
                   help="default hard per-job wall-clock limit in seconds")
    p.add_argument("--memory-limit", default=None,
                   help="per-worker address-space budget, e.g. 512M or 2G; "
                        "a job past it ends 'oom'")
    p.add_argument("--max-queued", type=int, default=None,
                   help="admission control: shed new submissions with 429 + "
                        "Retry-After once this many jobs are queued "
                        "(cache hits and duplicates always served)")
    p.add_argument("--idle-timeout", type=float, default=None,
                   help="scale the pool to zero workers after this many "
                        "idle seconds (respawned on the next job)")
    p.add_argument("--events",
                   help="append every job's JSONL progress events to this "
                        "path (same format as batch --events)")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser("submit",
                       help="submit one job to a running serve daemon")
    p.add_argument("circuit", help="benchmark name or .aag path")
    p.add_argument("--script", help='flow script, e.g. "b; rf; rs; b"')
    p.add_argument("--flow", help="named flow spec (compress2rs, resyn2rs)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8787)
    p.add_argument("--scale", default="small", choices=_SCALES)
    p.add_argument("--verify", action="store_true", help="CEC the result")
    p.add_argument("--timeout", type=float, default=None,
                   help="hard wall-clock limit for this job")
    p.add_argument("--wait", type=float, default=300.0,
                   help="seconds to wait for the result before giving up")
    p.add_argument("--no-wait", action="store_true",
                   help="print the job summary and return immediately")
    p.set_defaults(fn=cmd_submit)

    p = sub.add_parser("passes", help="list registered flow passes")
    p.set_defaults(fn=cmd_passes)

    p = sub.add_parser("run", help="run a flow script on a circuit")
    common(p, mch_opts=False)
    p.add_argument("--script", help='flow script, e.g. "b; rf; rs; gm -k 4; b"')
    p.add_argument("--flow", help="named flow spec (compress2rs, resyn2rs)")
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser("optimize", help="run the compress2rs flow")
    common(p, mch_opts=False)
    p.add_argument("--rounds", type=int, default=4)
    p.set_defaults(fn=cmd_optimize)

    p = sub.add_parser("map-luts", help="K-LUT (FPGA) mapping")
    common(p)
    p.add_argument("-k", type=int, default=6)
    p.add_argument("--objective", default="area", choices=["area", "delay"])
    p.set_defaults(fn=cmd_map_luts)

    p = sub.add_parser("map-asic", help="standard-cell (ASIC) mapping")
    common(p)
    p.add_argument("--objective", default="delay", choices=["area", "delay"])
    p.set_defaults(fn=cmd_map_asic)

    p = sub.add_parser("experiment", help="regenerate a paper artifact")
    p.add_argument("artifact", choices=["fig1", "fig2", "table1", "table2", "fig6"])
    p.add_argument("--scale", default="small", choices=_SCALES)
    p.add_argument("--circuits", help="comma-separated circuit subset")
    p.set_defaults(fn=cmd_experiment)
    return parser


def main(argv=None) -> int:
    parser = make_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
