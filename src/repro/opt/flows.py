"""Scripted optimization flows (the ``compress2rs`` analogue).

The paper uses ABC's ``compress2rs`` to "simulate the logic optimization
process" before mapping.  Our equivalent composes the passes this library
implements — tree balancing, functional sweep, and cut-based area
resynthesis (area-oriented graph remapping, the modern form of
rewrite/refactor) — and iterates until the gate count converges.  The goal
is identical to the paper's: produce a competitively optimized,
structurally *biased* subject graph for the mapping experiments.
"""

from __future__ import annotations

from typing import Optional, Type

from ..networks.aig import Aig
from ..networks.base import LogicNetwork
from .balancing import balance
from .sweep import sweep

__all__ = ["compress2rs", "resyn2rs", "optimize_rounds"]


def _area_resynth(ntk: LogicNetwork, cls: Type[LogicNetwork], k: int = 4):
    from ..mapping.graph_mapper import graph_map

    return graph_map(ntk, cls, objective="area", k=k)


def compress2rs(ntk: LogicNetwork, rounds: int = 4, sat_sweep: bool = False,
                cls: Optional[Type[LogicNetwork]] = None) -> LogicNetwork:
    """Iterative area-oriented optimization to (near) convergence.

    Each round runs balance -> cut resynthesis (k=4) -> balance; a functional
    sweep is appended when ``sat_sweep`` is set (slower, catches redundancy
    that structural passes miss).  Stops early when gate count stops
    improving, mirroring how compress2rs is iterated in the paper's Table I
    protocol.
    """
    cls = cls or type(ntk)
    if cls is not type(ntk):
        from ..networks.convert import convert

        ntk = convert(ntk, cls)
    best = ntk
    best_cost = (ntk.num_gates(), ntk.depth())
    current = ntk
    for _ in range(rounds):
        current = balance(current)
        current = _area_resynth(current, cls, k=4)
        current = balance(current)
        if sat_sweep:
            current = sweep(current)
        cost = (current.num_gates(), current.depth())
        if cost >= best_cost:
            break
        best, best_cost = current, cost
    return best


def resyn2rs(ntk: LogicNetwork, rounds: int = 3,
             cls: Optional[Type[LogicNetwork]] = None) -> LogicNetwork:
    """Deeper flow: balance, MFFC refactoring, SAT resubstitution, remap.

    Slower than :func:`compress2rs` but catches redundancy the structural
    passes miss; the analogue of ABC's ``resyn2rs`` script.
    """
    from .refactoring import refactor
    from .resub import resub

    cls = cls or type(ntk)
    if cls is not type(ntk):
        from ..networks.convert import convert

        ntk = convert(ntk, cls)
    best = ntk
    best_cost = (ntk.num_gates(), ntk.depth())
    current = ntk
    for _ in range(rounds):
        current = balance(current)
        current = refactor(current)
        current = resub(current)
        current = _area_resynth(current, cls, k=4)
        current = balance(current)
        cost = (current.num_gates(), current.depth())
        if cost >= best_cost:
            break
        best, best_cost = current, cost
    return best


def optimize_rounds(ntk: LogicNetwork, script: str = "compress2rs", rounds: int = 2) -> list:
    """Produce successive optimization snapshots (for DCH choice building).

    Returns ``[ntk, opt1(ntk), opt2(opt1), ...]`` with ``rounds`` optimized
    snapshots appended after the original.
    """
    if script == "compress2rs":
        step = lambda n: compress2rs(n, rounds=2)
    elif script == "resyn2rs":
        step = lambda n: resyn2rs(n, rounds=2)
    else:
        raise ValueError(f"unknown script {script!r}")
    out = [ntk]
    cur = ntk
    for _ in range(rounds):
        cur = step(cur)
        out.append(cur)
    return out
