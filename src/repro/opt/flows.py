"""Scripted optimization flows (the ``compress2rs`` analogue).

The paper uses ABC's ``compress2rs`` to "simulate the logic optimization
process" before mapping.  These entry points are kept for compatibility and
convenience, but since the flow API landed they are thin wrappers over the
canonical flow specs in :mod:`repro.flow.specs` — the pass sequence is data
(``converge4( b; gm -o area -k 4; b )``), executed by the
:class:`~repro.flow.runner.FlowRunner` with a shared engine context, and
produces results identical to the old hardcoded loops.
"""

from __future__ import annotations

from typing import List, Optional, Type, Union

from ..networks.base import LogicNetwork

__all__ = ["compress2rs", "resyn2rs", "optimize_rounds"]


def _convert_to(ntk: LogicNetwork, cls: Optional[Type[LogicNetwork]]) -> LogicNetwork:
    cls = cls or type(ntk)
    if cls is not type(ntk):
        from ..networks.convert import convert

        return convert(ntk, cls)
    return ntk


def compress2rs(ntk: LogicNetwork, rounds: int = 4, sat_sweep: bool = False,
                cls: Optional[Type[LogicNetwork]] = None) -> LogicNetwork:
    """Iterative area-oriented optimization to (near) convergence.

    Each round runs balance -> cut resynthesis (k=4) -> balance; a functional
    sweep is appended when ``sat_sweep`` is set (slower, catches redundancy
    that structural passes miss).  Stops early when gate count stops
    improving, mirroring how compress2rs is iterated in the paper's Table I
    protocol.  Equivalent to running the ``compress2rs`` flow spec.
    """
    from ..flow.runner import FlowRunner
    from ..flow.specs import compress2rs_flow

    return FlowRunner().run(
        _convert_to(ntk, cls), compress2rs_flow(rounds=rounds, sat_sweep=sat_sweep)
    ).network


def resyn2rs(ntk: LogicNetwork, rounds: int = 3,
             cls: Optional[Type[LogicNetwork]] = None) -> LogicNetwork:
    """Deeper flow: balance, MFFC refactoring, SAT resubstitution, remap.

    Slower than :func:`compress2rs` but catches redundancy the structural
    passes miss; the analogue of ABC's ``resyn2rs`` script.  Equivalent to
    running the ``resyn2rs`` flow spec.
    """
    from ..flow.runner import FlowRunner
    from ..flow.specs import resyn2rs_flow

    return FlowRunner().run(
        _convert_to(ntk, cls), resyn2rs_flow(rounds=rounds)).network


def optimize_rounds(ntk: LogicNetwork, script: Union[str, "object"] = "compress2rs",
                    rounds: int = 2, inner_rounds: int = 2,
                    context=None) -> List[LogicNetwork]:
    """Produce successive optimization snapshots (for DCH choice building).

    Returns ``[ntk, opt1(ntk), opt2(opt1), ...]`` with ``rounds`` optimized
    snapshots appended after the original.  ``script`` is the name of a
    canonical flow spec (``"compress2rs"`` / ``"resyn2rs"`` — parameterized
    by ``inner_rounds``), arbitrary flow-script text validated against the
    pass registry (``"b; rs; b"``), or a :class:`~repro.flow.script.Flow`.
    A caller-supplied ``context`` threads one shared
    :class:`~repro.flow.context.FlowContext` through every snapshot run.
    """
    from ..flow.runner import FlowRunner
    from ..flow.script import Flow
    from ..flow.specs import NAMED_FLOWS, named_flow

    if isinstance(script, Flow):
        flow = script
    elif script in NAMED_FLOWS:
        flow = named_flow(script, rounds=inner_rounds)
    elif isinstance(script, str):
        flow = Flow.parse(script)   # raises FlowScriptError on unknown passes
    else:
        raise ValueError(f"unknown script {script!r}")

    runner = FlowRunner(context)
    out = [ntk]
    cur = ntk
    for _ in range(rounds):
        cur = runner.run(cur, flow).network
        out.append(cur)
    return out
