"""Technology-independent optimization passes and flows."""

from .balancing import balance
from .equivalence import functional_classes
from .sweep import sweep
from .flows import compress2rs, optimize_rounds, resyn2rs
from .refactoring import refactor
from .resub import resub
from .mig_rewriting import mig_depth_rewrite

__all__ = [
    "balance",
    "functional_classes",
    "sweep",
    "compress2rs",
    "resyn2rs",
    "optimize_rounds",
    "refactor",
    "resub",
    "mig_depth_rewrite",
]
