"""Functional-equivalence class detection (FRAIG-style sim + SAT).

Finds classes of functionally equivalent (possibly complemented) gate nodes
inside one network: random bit-parallel simulation buckets candidates by
signature, then an incremental SAT check confirms each candidate pair, using
counterexamples to refine the buckets.  This is the engine behind both
``sweep`` (merge equivalent nodes) and the DCH baseline (detect choices
between optimization snapshots).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from ..networks.base import LogicNetwork
from ..sat.cnf import CnfBuilder
from ..sat.solver import SAT, UNSAT, Solver

__all__ = ["functional_classes"]


def _signatures(ntk: LogicNetwork, patterns: List[List[int]], width: int) -> List[int]:
    mask = (1 << width) - 1
    sigs = [0] * ntk.num_nodes()
    shift = 0
    for pat in patterns:
        vals = ntk.simulate_patterns(pat, mask)
        for n in range(ntk.num_nodes()):
            sigs[n] |= vals[n] << shift
        shift += width
    return sigs


def functional_classes(ntk: LogicNetwork, sim_rounds: int = 4, width: int = 64,
                       seed: int = 42, sat_verify: bool = True,
                       conflict_limit: int = 2000,
                       max_class_size: int = 16) -> List[List[Tuple[int, bool]]]:
    """Detect equivalence classes of gate nodes.

    Returns a list of classes; each class is ``[(node, phase), ...]`` sorted
    by node id, where ``phase`` is relative to the first (representative)
    member.  Only classes with at least two members are returned.

    With ``sat_verify`` (default) every membership is proven by SAT;
    otherwise long random simulation alone decides (useful for speed, callers
    are expected to CEC their end-to-end results — as all our experiments
    do).
    """
    rng = random.Random(seed)
    n_pis = ntk.num_pis()
    patterns = [[rng.getrandbits(width) for _ in range(n_pis)] for _ in range(sim_rounds)]
    total_width = width * sim_rounds
    total_mask = (1 << total_width) - 1
    sigs = _signatures(ntk, patterns, width)

    buckets: Dict[int, List[int]] = {}
    for node in ntk.gates():
        s = sigs[node]
        key = min(s, s ^ total_mask)
        buckets.setdefault(key, []).append(node)

    candidate_classes = [sorted(v) for v in buckets.values() if len(v) > 1]
    if not sat_verify:
        return [[(m, sigs[m] != sigs[cls[0]]) for m in cls] for cls in candidate_classes]

    builder = CnfBuilder()
    pi_vars = {i: builder.new_var() for i in range(n_pis)}
    var_of, _ = builder.encode(ntk, pi_vars)
    solver = Solver()
    for _ in range(builder.num_vars):
        solver.new_var()
    ok = True
    for cl in builder.clauses:
        ok = solver.add_clause(cl) and ok

    def prove_equal(a: int, b: int, compl: bool) -> Optional[bool]:
        """True if node a == node b (xor compl) everywhere; None on timeout."""
        va, vb = var_of[a], var_of[b]
        s = solver.new_var()
        if compl:
            # falsify a == !b: ask SAT for a == b
            solver.add_clause([-s, va, -vb])
            solver.add_clause([-s, -va, vb])
        else:
            solver.add_clause([-s, va, vb])
            solver.add_clause([-s, -va, -vb])
        res = solver.solve(assumptions=[s], conflict_limit=conflict_limit)
        if res is None:
            return None
        return res == UNSAT

    out: List[List[Tuple[int, bool]]] = []
    for cls in candidate_classes:
        cls = cls[:max_class_size]
        rep = cls[0]
        members: List[Tuple[int, bool]] = [(rep, False)]
        for m in cls[1:]:
            compl = sigs[m] != sigs[rep]
            verdict = prove_equal(rep, m, compl)
            if verdict:
                members.append((m, compl))
        if len(members) > 1:
            out.append(members)
    return out
