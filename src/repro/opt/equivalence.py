"""Functional-equivalence class detection (FRAIG-style sim + SAT).

Finds classes of functionally equivalent (possibly complemented) gate nodes
inside one network: bit-parallel simulation over a shared
:class:`~repro.sim.engine.PatternPool` buckets candidates by signature, then
one :class:`~repro.sat.session.EquivalenceSession` (the network is
Tseitin-encoded exactly once) confirms each candidate membership through
incremental assumption queries.  Every SAT counterexample is recycled into
the pattern pool, so refreshed signatures distinguish later candidates that
would otherwise each cost a SAT call — the classic simulation-refinement
loop of SAT sweeping.  This is the engine behind both ``sweep`` (merge
equivalent nodes) and the DCH baseline (detect choices between optimization
snapshots).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..networks.base import LogicNetwork
from ..sat.session import EquivalenceSession
from ..sim.engine import PatternPool, SimEngine

__all__ = ["functional_classes"]


def functional_classes(ntk: LogicNetwork, sim_rounds: int = 4, width: int = 64,
                       seed: int = 42, sat_verify: bool = True,
                       conflict_limit: int = 2000,
                       max_class_size: int = 16,
                       pool: Optional[PatternPool] = None) -> List[List[Tuple[int, bool]]]:
    """Detect equivalence classes of gate nodes.

    Returns a list of classes; each class is ``[(node, phase), ...]`` sorted
    by node id, where ``phase`` is relative to the first (representative)
    member.  Only classes with at least two members are returned.

    With ``sat_verify`` (default) every membership is proven by SAT;
    otherwise long random simulation alone decides (useful for speed, callers
    are expected to CEC their end-to-end results — as all our experiments
    do).  A caller-supplied ``pool`` (e.g. one that has already accumulated
    counterexamples from earlier passes) sharpens the initial buckets.
    """
    if pool is None:
        pool = PatternPool(ntk.num_pis(), n_patterns=sim_rounds * width, seed=seed)
    engine = SimEngine(ntk, pool)
    sigs = engine.signatures()
    total_mask = pool.mask

    buckets: Dict[int, List[int]] = {}
    for node in ntk.gates():
        s = sigs[node]
        key = min(s, s ^ total_mask)
        buckets.setdefault(key, []).append(node)

    candidate_classes = [sorted(v) for v in buckets.values() if len(v) > 1]
    if not sat_verify:
        return [[(m, sigs[m] != sigs[cls[0]]) for m in cls] for cls in candidate_classes]

    session = EquivalenceSession(ntk, pool=pool)
    out: List[List[Tuple[int, bool]]] = []
    for cls in candidate_classes:
        cls = cls[:max_class_size]
        rep = cls[0]
        members: List[Tuple[int, bool]] = [(rep, False)]
        for m in cls[1:]:
            # refresh against the grown pool first: a counterexample recycled
            # by an earlier query may already distinguish this candidate
            sigs = engine.signatures()
            mask = pool.mask
            sig_rep, sig_m = sigs[rep], sigs[m]
            if sig_m == sig_rep:
                compl = False
            elif sig_m == sig_rep ^ mask:
                compl = True
            else:
                continue  # refuted by a recycled pattern, no SAT call needed
            verdict = session.prove_node_equal(rep, m, compl,
                                               conflict_limit=conflict_limit)
            if verdict:
                members.append((m, compl))
        if len(members) > 1:
            out.append(members)
    return out
