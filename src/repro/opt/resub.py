"""Simulation-guided resubstitution with SAT validation (ABC's ``resub``).

For every AND node the pass looks for a pair of existing *divisor* nodes
whose AND (in some polarity) reproduces the node's function — a classic
1-resubstitution.  Candidates are discovered with bit-parallel signatures
from the shared simulation engine and confirmed through one
:class:`~repro.sat.session.EquivalenceSession` (the network is encoded once;
each check is an incremental assumption query against an auxiliary AND), so
accepted rewrites are provably correct.  Counterexamples from failed checks
are recycled into the pattern pool, sharpening the signatures that gate
later candidates.  Replacing a node whose MFFC has ``k`` gates by a single
fresh AND saves ``k - 1`` gates.

Divisors are restricted to nodes with smaller topological index, which
guarantees acyclicity and lets the network be rebuilt in one sweep.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..networks.base import GateType, LogicNetwork, require_combinational
from ..sat.session import EquivalenceSession
from ..sim.engine import PatternPool

__all__ = ["resub"]


def resub(ntk: LogicNetwork, width: int = 256, seed: int = 17,
          max_divisors: int = 150, conflict_limit: int = 1000,
          max_checks: int = 2000,
          session: "EquivalenceSession" = None) -> LogicNetwork:
    """One pass of SAT-validated 1-resubstitution; returns a rebuilt network.

    Only AND-family nodes are targeted (the pass is a no-op on pure
    MIG networks).  ``max_divisors`` bounds the candidate window per node,
    ``max_checks`` bounds the total number of SAT calls.  A caller-supplied
    ``session`` (e.g. from a :class:`~repro.flow.context.FlowContext`) must
    encode ``ntk``; its pattern pool — including counterexamples recycled by
    earlier passes — then drives the signature filtering here.
    """
    require_combinational(ntk, "resub")
    if session is None:
        pool = PatternPool(ntk.num_pis(), n_patterns=width, seed=seed)
        session = EquivalenceSession(ntk, pool=pool)
    else:
        ref = session.networks[0]
        if ref is not ntk and ref.structural_hash() != ntk.structural_hash():
            raise ValueError("injected session must encode the resub subject")
        pool = session.pool
    engine = session.engine(0)
    sigs = engine.signatures()
    mask = pool.mask
    levels = ntk.levels()
    fanout = ntk.fanout_counts()

    checks = [0]

    def sat_equal(target: int, lit_a: int, lit_b: int, compl: bool) -> bool:
        """Prove node target == AND(a, b) ^ compl by SAT (False on timeout)."""
        if checks[0] >= max_checks:
            return False
        checks[0] += 1
        t = session.node_literal(target)
        s = session.make_and(session.network_literal(lit_a),
                             session.network_literal(lit_b))
        res = session.prove_equal(-t if compl else t, s,
                                  conflict_limit=conflict_limit)
        return res is True

    replacements: Dict[int, Tuple[int, int, bool]] = {}  # node -> (lit_a, lit_b, out_compl)

    for node in ntk.gates():
        if ntk.node_type(node) != GateType.AND:
            continue
        cone = ntk.mffc(node, fanout)
        if len(cone) < 2:
            continue  # nothing to gain: replacement costs one new AND
        # recycled counterexamples may have widened the pool since last node
        sigs = engine.signatures()
        mask = pool.mask
        target_sig = sigs[node]
        # divisor window: earlier nodes at or below this level, nearest first
        divisors: List[int] = []
        for d in range(node - 1, 0, -1):
            if len(divisors) >= max_divisors:
                break
            if (ntk.is_gate(d) or ntk.is_pi(d)) and d not in cone and levels[d] <= levels[node]:
                divisors.append(d)
        found = False
        for i, d1 in enumerate(divisors):
            if found:
                break
            s1 = sigs[d1]
            for d2 in divisors[i + 1:]:
                if found:
                    break
                s2 = sigs[d2]
                for p1 in (0, 1):
                    if found:
                        break
                    v1 = s1 ^ (mask if p1 else 0)
                    for p2 in (0, 1):
                        v2 = s2 ^ (mask if p2 else 0)
                        both = v1 & v2
                        if both == target_sig:
                            la, lb = (d1 << 1) | p1, (d2 << 1) | p2
                            if sat_equal(node, la, lb, compl=False):
                                replacements[node] = (la, lb, False)
                                found = True
                                break
                        elif both == target_sig ^ mask:
                            la, lb = (d1 << 1) | p1, (d2 << 1) | p2
                            if sat_equal(node, la, lb, compl=True):
                                replacements[node] = (la, lb, True)
                                found = True
                                break

    if not replacements:
        return ntk

    # rebuild with replacements (divisors precede their targets, so a single
    # topological sweep suffices)
    dst = type(ntk)()
    mapping: Dict[int, int] = {0: 0}
    for name, n in zip(ntk.pi_names, ntk.pis):
        mapping[n] = dst.create_pi(name)

    for n in ntk.gates():
        if n in replacements:
            la, lb, compl = replacements[n]
            a = mapping[la >> 1] ^ (la & 1)
            b = mapping[lb >> 1] ^ (lb & 1)
            mapping[n] = dst.create_and(a, b) ^ int(compl)
        else:
            fis = tuple(mapping[f >> 1] ^ (f & 1) for f in ntk.fanins(n))
            mapping[n] = dst.create_gate(ntk.node_type(n), fis)
    for p, name in zip(ntk.pos, ntk.po_names):
        dst.create_po(mapping[p >> 1] ^ (p & 1), name)
    return dst.cleanup()
