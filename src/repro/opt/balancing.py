"""Tree balancing (the classic ``balance`` pass).

Flattens maximal single-fanout AND / XOR trees and rebuilds them as
level-aware (Huffman-style) balanced trees, minimizing depth without adding
gates.  Works on any representation whose network natively contains AND/XOR
gates; MAJ/XOR3 gates are copied unchanged (MIG/XMG depth optimization is
done by depth-oriented graph mapping instead).
"""

from __future__ import annotations

import heapq
from typing import Dict, List

from ..networks.base import GateType, LogicNetwork, require_combinational

__all__ = ["balance"]


def balance(ntk: LogicNetwork) -> LogicNetwork:
    """Return a depth-balanced copy of ``ntk`` (same class, same function)."""
    require_combinational(ntk, "balance")
    dst = type(ntk)()
    mapping: Dict[int, int] = {0: 0}
    for name, n in zip(ntk.pi_names, ntk.pis):
        mapping[n] = dst.create_pi(name)

    fanout = ntk.fanout_counts()

    def collect(node: int, gate: GateType, out: List[int]) -> None:
        """Flatten the single-fanout same-type tree rooted at ``node``."""
        stack = list(ntk.fanins(node))
        while stack:
            f = stack.pop()
            child = f >> 1
            expandable = (
                not (f & 1)
                and ntk.node_type(child) == gate
                and fanout[child] == 1
            )
            if expandable:
                stack.extend(ntk.fanins(child))
            else:
                out.append(f)

    def combine(op, lits: List[int]) -> int:
        heap = [(dst.level(l >> 1), i, l) for i, l in enumerate(lits)]
        heapq.heapify(heap)
        counter = len(lits)
        while len(heap) > 1:
            _, _, a = heapq.heappop(heap)
            _, _, b = heapq.heappop(heap)
            c = op(a, b)
            counter += 1
            heapq.heappush(heap, (dst.level(c >> 1), counter, c))
        return heap[0][2]

    for n in ntk.gates():
        t = ntk.node_type(n)
        if t in (GateType.AND, GateType.XOR):
            operands: List[int] = []
            collect(n, t, operands)
            new_lits = [mapping[f >> 1] ^ (f & 1) for f in operands]
            op = dst.create_and if t == GateType.AND else dst.create_xor
            mapping[n] = combine(op, new_lits)
        else:
            fis = tuple(mapping[f >> 1] ^ (f & 1) for f in ntk.fanins(n))
            mapping[n] = dst.create_gate(t, fis)

    for p, name in zip(ntk.pos, ntk.po_names):
        dst.create_po(mapping[p >> 1] ^ (p & 1), name)
    return dst
