"""Algebraic depth rewriting for majority-based networks (MIG / XMG).

Implements the critical-path-driven associativity rewriting of
Amaru et al. (TCAD'16): on a critical MAJ node ``M(x, u, M(y, u, z))``
sharing a common fanin ``u`` with its deepest child, the identity

    M(x, u, M(y, u, z))  =  M(z, u, M(y, u, x))

swaps the shallow operand ``x`` with the deep grandchild ``z``, reducing the
level of the node whenever ``level(z) > level(x) + 1``.  Every candidate is
additionally guarded by a local truth-table check over the involved
literals, so the pass is correct by construction even for edge polarities
the algebra textbook cases do not cover.

The pass rebuilds out-of-place and can be iterated; non-MAJ gates are
copied unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..networks.base import GateType, LogicNetwork, require_combinational
from ..truth.truth_table import TruthTable

__all__ = ["mig_depth_rewrite"]


def _maj_tt(a: TruthTable, b: TruthTable, c: TruthTable) -> TruthTable:
    return (a & b) | (a & c) | (b & c)


def _check_swap(x: int, u: int, y: int, z: int) -> bool:
    """Truth-table guard: M(x, u, M(y, u, z)) == M(z, u, M(y, u, x)).

    Arguments are literals over distinct nodes; literals may repeat or be
    complements of each other, so verify on the spot over ≤4 variables.
    """
    nodes = []
    for lit in (x, u, y, z):
        if lit >> 1 not in nodes:
            nodes.append(lit >> 1)
    nv = len(nodes)
    var = {}
    for i, node in enumerate(nodes):
        var[node] = TruthTable.var(nv, i)

    def tt_of(lit: int) -> TruthTable:
        t = var[lit >> 1]
        return ~t if lit & 1 else t

    tx, tu, ty, tz = (tt_of(l) for l in (x, u, y, z))
    lhs = _maj_tt(tx, tu, _maj_tt(ty, tu, tz))
    rhs = _maj_tt(tz, tu, _maj_tt(ty, tu, tx))
    return lhs == rhs


def mig_depth_rewrite(ntk: LogicNetwork, rounds: int = 2) -> LogicNetwork:
    """Iterated associativity depth rewriting; returns the improved network."""
    require_combinational(ntk, "mig_depth_rewrite")
    current = ntk
    for _ in range(rounds):
        nxt = _one_round(current)
        if nxt.depth() >= current.depth() and nxt.num_gates() >= current.num_gates():
            break
        current = nxt
    return current


def _one_round(ntk: LogicNetwork) -> LogicNetwork:
    dst = type(ntk)()
    mapping: Dict[int, int] = {0: 0}
    for name, n in zip(ntk.pi_names, ntk.pis):
        mapping[n] = dst.create_pi(name)
    fanout = ntk.fanout_counts()

    def new_lit(old_lit: int) -> int:
        return mapping[old_lit >> 1] ^ (old_lit & 1)

    for n in ntk.gates():
        t = ntk.node_type(n)
        if t != GateType.MAJ:
            fis = tuple(new_lit(f) for f in ntk.fanins(n))
            mapping[n] = dst.create_gate(t, fis)
            continue
        mapping[n] = _rewrite_maj(ntk, dst, n, mapping, fanout)

    for p, name in zip(ntk.pos, ntk.po_names):
        dst.create_po(new_lit(p), name)
    return dst.cleanup()


def _rewrite_maj(ntk: LogicNetwork, dst: LogicNetwork, n: int,
                 mapping: Dict[int, int], fanout: List[int]) -> int:
    """Build node ``n`` into ``dst``, applying the associativity swap when it
    lowers the (new) level."""
    fis = list(ntk.fanins(n))

    def new_lit(old_lit: int) -> int:
        return mapping[old_lit >> 1] ^ (old_lit & 1)

    def new_level(old_lit: int) -> int:
        return dst.level(mapping[old_lit >> 1] >> 1)

    default = dst.create_maj(*(new_lit(f) for f in fis))

    # find the deepest fanin that is a single-fanout, non-complemented MAJ
    best: Optional[int] = None
    for idx, f in enumerate(fis):
        child = f >> 1
        if (
            not (f & 1)
            and ntk.node_type(child) == GateType.MAJ
            and fanout[child] == 1
            and (best is None or new_level(f) > new_level(fis[best]))
        ):
            best = idx
    if best is None:
        return default
    deep = fis[best]
    others = [fis[i] for i in range(3) if i != best]
    grand = list(ntk.fanins(deep >> 1))

    # look for a common literal u between the node and its deep child
    improved = default
    best_level = dst.level(default >> 1)
    for u in others:
        if u not in grand:
            continue
        x = others[0] if others[1] == u else others[1]
        rest = [g for g in grand if g != u]
        if len(rest) != 2:
            continue
        y, z = rest
        # prefer swapping the deeper grandchild into the shallow slot
        if new_level(y) > new_level(z):
            y, z = z, y
        if not _check_swap(x, u, y, z):
            continue
        inner = dst.create_maj(new_lit(y), new_lit(u), new_lit(x))
        cand = dst.create_maj(new_lit(z), new_lit(u), inner)
        if dst.level(cand >> 1) < best_level:
            improved = cand
            best_level = dst.level(cand >> 1)
    return improved
