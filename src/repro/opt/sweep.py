"""Functional sweep: merge equivalent nodes (ABC's ``fraig``/``&sweep``).

Class detection runs on the shared verification stack: one equivalence
session per network, bit-parallel signatures over a shared pattern pool,
SAT counterexamples recycled as simulation patterns (``pool=`` forwards to
:func:`~repro.opt.equivalence.functional_classes`).
"""

from __future__ import annotations

from typing import Dict

from ..networks.base import LogicNetwork, require_combinational
from .equivalence import functional_classes

__all__ = ["sweep"]


def sweep(ntk: LogicNetwork, sat_verify: bool = True, **kwargs) -> LogicNetwork:
    """Merge functionally equivalent nodes; returns a rebuilt network.

    Each equivalence class keeps its topologically earliest member; all other
    members are replaced by the representative (with phase), and the network
    is rebuilt so dangling logic disappears.
    """
    require_combinational(ntk, "sweep")
    classes = functional_classes(ntk, sat_verify=sat_verify, **kwargs)
    replace: Dict[int, int] = {}  # node -> representative literal (old ids)
    for members in classes:
        rep, _ = members[0]
        for node, phase in members[1:]:
            replace[node] = (rep << 1) | int(phase)

    dst = type(ntk)()
    mapping: Dict[int, int] = {0: 0}
    for name, n in zip(ntk.pi_names, ntk.pis):
        mapping[n] = dst.create_pi(name)

    def mapped(literal: int) -> int:
        node = literal >> 1
        phase = literal & 1
        while node in replace:
            r = replace[node]
            node = r >> 1
            phase ^= r & 1
        return mapping[node] ^ phase

    for n in ntk.gates():
        if n in replace:
            continue  # merged away
        fis = tuple(mapped(f) for f in ntk.fanins(n))
        mapping[n] = dst.create_gate(ntk.node_type(n), fis)

    for p, name in zip(ntk.pos, ntk.po_names):
        dst.create_po(mapped(p), name)
    return dst.cleanup()
