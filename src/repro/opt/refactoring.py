"""MFFC refactoring (ABC's ``refactor``).

For every node whose maximum fanout-free cone has a bounded leaf support,
the cone function is collapsed to a truth table and resynthesized from
scratch (factored SOP of the on-set / off-set, DSD); when the fresh
structure needs fewer gates than the cone it replaces it.  Because an MFFC
is fanout-free, replacements are independent and the pass rebuilds the
network out-of-place in one sweep.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..networks.base import LogicNetwork, require_combinational
from ..synthesis.factoring import synthesize_tt

__all__ = ["refactor"]

_METHODS = ("sop", "nsop", "dsd_chain")


def refactor(ntk: LogicNetwork, max_leaves: int = 10, min_cone: int = 3,
             allow_zero_gain: bool = False) -> LogicNetwork:
    """Return a refactored copy of ``ntk`` (same class, same function).

    ``max_leaves`` bounds the cone support (truth-table width), ``min_cone``
    skips cones too small to be worth collapsing, ``allow_zero_gain``
    accepts size-neutral replacements (useful for diversification before
    another pass).
    """
    require_combinational(ntk, "refactor")
    fanout = ntk.fanout_counts()
    cls = type(ntk)

    # plan replacements root-first (reverse topological), claiming cones
    plans: Dict[int, Tuple] = {}
    consumed = set()
    for node in reversed(list(ntk.gates())):
        if node in consumed:
            continue
        cone = ntk.mffc(node, fanout)
        if len(cone) < min_cone:
            continue
        leaves = ntk.mffc_leaves(cone)
        if not leaves or len(leaves) > max_leaves:
            continue
        tt = ntk.local_function(node, leaves)
        best: Optional[Tuple[int, str]] = None
        for method in _METHODS:
            probe = cls()
            probe_leaves = [probe.create_pi() for _ in range(len(leaves))]
            out = synthesize_tt(probe, tt, probe_leaves, method=method)
            cost = probe.num_gates()
            if best is None or cost < best[0]:
                best = (cost, method)
        limit = len(cone) if allow_zero_gain else len(cone) - 1
        if best[0] <= limit:
            plans[node] = (tt, leaves, best[1])
            consumed.update(cone)

    # rebuild with the planned replacements
    dst = cls()
    mapping: Dict[int, int] = {0: 0}
    for name, n in zip(ntk.pi_names, ntk.pis):
        mapping[n] = dst.create_pi(name)
    for n in ntk.gates():
        if n in plans:
            tt, leaves, method = plans[n]
            mapping[n] = synthesize_tt(
                dst, tt, [mapping[leaf] for leaf in leaves], method=method
            )
        elif n in consumed:
            continue  # interior of a replaced cone; never referenced outside
        else:
            fis = tuple(mapping[f >> 1] ^ (f & 1) for f in ntk.fanins(n))
            mapping[n] = dst.create_gate(ntk.node_type(n), fis)
    for p, name in zip(ntk.pos, ntk.po_names):
        dst.create_po(mapping[p >> 1] ^ (p & 1), name)
    return dst.cleanup()
