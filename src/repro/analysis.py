"""Network and netlist statistics (used by the CLI and notebooks).

Pure read-only analyses: gate-type histograms, level profiles, fanout
distributions, cone sizes — the numbers one wants when comparing what MCH
did to a network against the original structure.
"""

from __future__ import annotations

from typing import Dict, List

from .networks.base import GateType, LogicNetwork
from .networks.lut_network import LutNetwork
from .networks.netlist import CellNetlist

__all__ = ["network_stats", "lut_stats", "netlist_stats", "format_stats"]


def network_stats(ntk: LogicNetwork) -> Dict[str, object]:
    """Structural statistics of a logic network."""
    gate_hist: Dict[str, int] = {}
    for g in ntk.gates():
        name = ntk.node_type(g).name
        gate_hist[name] = gate_hist.get(name, 0) + 1
    levels = ntk.levels()
    fanout = ntk.fanout_counts()
    gates = list(ntk.gates())
    level_hist: Dict[int, int] = {}
    for g in gates:
        level_hist[levels[g]] = level_hist.get(levels[g], 0) + 1
    dangling = sum(1 for g in gates if fanout[g] == 0)
    return {
        "pis": ntk.num_pis(),
        "pos": ntk.num_pos(),
        "gates": ntk.num_gates(),
        "depth": ntk.depth(),
        "gate_histogram": dict(sorted(gate_hist.items())),
        "avg_fanout": (sum(fanout[g] for g in gates) / len(gates)) if gates else 0.0,
        "max_fanout": max((fanout[g] for g in gates), default=0),
        "dangling_gates": dangling,
        "levels_used": len(level_hist),
    }


def lut_stats(lut: LutNetwork) -> Dict[str, object]:
    """Statistics of a mapped LUT network."""
    size_hist: Dict[int, int] = {}
    for n in range(len(lut._is_lut)):
        if lut.is_lut(n):
            k = len(lut.fanins(n))
            size_hist[k] = size_hist.get(k, 0) + 1
    return {
        "pis": lut.num_pis(),
        "pos": lut.num_pos(),
        "luts": lut.num_luts(),
        "depth": lut.depth(),
        "lut_size_histogram": dict(sorted(size_hist.items())),
        "avg_lut_inputs": (
            sum(k * v for k, v in size_hist.items()) / max(lut.num_luts(), 1)
        ),
    }


def netlist_stats(nl: CellNetlist) -> Dict[str, object]:
    """Statistics of a mapped standard-cell netlist."""
    hist = nl.cell_histogram()
    inverters = sum(v for k, v in hist.items() if k.upper().startswith(("INV", "BUF")))
    return {
        "cells": nl.num_cells(),
        "area": nl.area(),
        "delay": nl.delay(),
        "cell_histogram": dict(sorted(hist.items())),
        "inverter_buffer_count": inverters,
        "switching_power": nl.switching_power(),
    }


def format_stats(stats: Dict[str, object], title: str = "") -> str:
    """Render a statistics dict as aligned text."""
    lines = [title] if title else []
    for key, value in stats.items():
        if isinstance(value, dict):
            inner = ", ".join(f"{k}:{v}" for k, v in value.items())
            lines.append(f"  {key:24s} {{{inner}}}")
        elif isinstance(value, float):
            lines.append(f"  {key:24s} {value:.3f}")
        else:
            lines.append(f"  {key:24s} {value}")
    return "\n".join(lines)
