"""Fault injection — chaos hooks for exercising the batch runner.

A :class:`FaultPlan` maps circuit names to injected failures; the runner
ships the plan to its workers inside each job payload, and
``_execute_flow_job`` triggers the fault just before building the circuit.
The modes cover the failure classes a long suite run actually hits:

* ``"raise"`` — raise :class:`TransientFault` (an ordinary per-circuit
  error: isolated, retryable);
* ``"hang"``  — sleep past the per-circuit timeout (the worker must be
  *killed*, not joined);
* ``"exit"``  — ``os._exit`` the worker process mid-circuit (the hard
  crash: no exception, no result, a dead pipe);
* ``"memhog"`` — allocate memory as fast as possible, up to ``mb``
  megabytes: under a worker memory budget (``RLIMIT_AS``) the allocation
  trips :class:`MemoryError` and the circuit becomes an ``oom`` outcome;
  without a budget the hog is freed and the circuit completes (a spike,
  not a leak);
* ``"slowleak"`` — leak memory *gradually* (small chunks, short sleeps)
  up to ``mb`` megabytes and then hold it for ``seconds`` — the shape the
  supervisor-side RSS poll exists to catch on platforms (or workers)
  where ``setrlimit`` is unavailable;
* ``"enospc"`` — raise ``OSError(ENOSPC)``, modeling a worker whose
  scratch writes hit a full disk (a deterministic ``error`` outcome — the
  quarantine breaker's bread and butter).

``times`` bounds the injection to the first N attempts, which is how the
tests model *transient* failures: attempt 1 faults, the retry succeeds.

This module is test/benchmark infrastructure — nothing in the production
path imports it unless a plan is actually installed.
"""

from __future__ import annotations

import errno
import os
import time
from dataclasses import dataclass
from typing import Dict, Union

__all__ = ["Fault", "FaultPlan", "TransientFault", "FAULT_MODES"]

#: the supported injection modes
FAULT_MODES = ("raise", "hang", "exit", "memhog", "enospc", "slowleak")


class TransientFault(RuntimeError):
    """An injected failure that a bounded retry is expected to cure."""


@dataclass(frozen=True)
class Fault:
    """One injected failure: a mode plus its knobs.

    ``times=0`` injects on every attempt; ``times=N`` only on the first N
    attempts (so retry N+1 succeeds).  ``seconds`` is the hang duration
    (for ``"slowleak"``, how long the leaked memory is *held*);
    ``exit_code`` the ``os._exit`` status of a crash; ``mb`` how many
    megabytes ``"memhog"``/``"slowleak"`` try to allocate.
    """

    mode: str
    times: int = 0
    seconds: float = 3600.0
    exit_code: int = 13
    mb: int = 512

    def __post_init__(self):
        if self.mode not in FAULT_MODES:
            raise ValueError(f"fault mode must be one of {FAULT_MODES}, "
                             f"got {self.mode!r}")


class FaultPlan:
    """Circuit-name → :class:`Fault` mapping, picklable into job payloads.

    Values may be :class:`Fault` instances or bare mode strings::

        FaultPlan({"dec": "exit", "ctrl": Fault("raise", times=1)})
    """

    def __init__(self, faults: Dict[str, Union[Fault, str]]):
        self.faults: Dict[str, Fault] = {
            name: fault if isinstance(fault, Fault) else Fault(mode=fault)
            for name, fault in faults.items()
        }

    def to_payload(self) -> dict:
        """The tiny picklable form shipped inside job payloads."""
        return {name: (f.mode, f.times, f.seconds, f.exit_code, f.mb)
                for name, f in self.faults.items()}


def apply_fault(payload: dict, circuit: str, attempt: int) -> None:
    """Trigger the planned fault for ``circuit`` on this ``attempt``.

    ``payload`` is a :meth:`FaultPlan.to_payload` dict.  Raising faults
    raise :class:`TransientFault`; hangs sleep (then return, so a run
    *without* a timeout still completes, just late); exits never return.
    """
    spec = payload.get(circuit)
    if spec is None:
        return
    # Older payloads (and tests that hand-build them) are 4-tuples without
    # the mb field — default it rather than breaking on unpack.
    mode, times, seconds, exit_code = spec[:4]
    mb = spec[4] if len(spec) > 4 else 512
    if times and attempt > times:
        return
    if mode == "raise":
        raise TransientFault(
            f"injected fault on {circuit!r} (attempt {attempt})")
    if mode == "hang":
        time.sleep(seconds)
        return
    if mode == "exit":
        os._exit(exit_code)
    if mode == "memhog":
        _hog_memory(circuit, mb, chunk_mb=16, pause=0.0, hold=0.0)
        return
    if mode == "slowleak":
        _hog_memory(circuit, mb, chunk_mb=8, pause=0.01, hold=seconds)
        return
    if mode == "enospc":
        raise OSError(errno.ENOSPC,
                      f"injected ENOSPC on {circuit!r}: no space left on "
                      "scratch device")


def _hog_memory(circuit: str, mb: int, *, chunk_mb: int, pause: float,
                hold: float) -> None:
    """Allocate ``mb`` megabytes in chunks, hold for ``hold`` seconds, free.

    Under ``RLIMIT_AS`` the allocation trips :class:`MemoryError`; the hog
    is dropped *before* re-raising so the handler itself has headroom, and
    a fresh small MemoryError propagates to the worker's job loop.
    """
    hog = []
    try:
        for _ in range(max(1, (mb + chunk_mb - 1) // chunk_mb)):
            hog.append(bytearray(chunk_mb * 1024 * 1024))
            if pause:
                time.sleep(pause)
        if hold:
            time.sleep(hold)
    except MemoryError:
        hog.clear()
        raise MemoryError(
            f"injected memory hog on {circuit!r} exceeded the budget")
    finally:
        hog.clear()
