"""Fault injection — chaos hooks for exercising the batch runner.

A :class:`FaultPlan` maps circuit names to injected failures; the runner
ships the plan to its workers inside each job payload, and
``_execute_flow_job`` triggers the fault just before building the circuit.
Three modes cover the failure classes a long suite run actually hits:

* ``"raise"`` — raise :class:`TransientFault` (an ordinary per-circuit
  error: isolated, retryable);
* ``"hang"``  — sleep past the per-circuit timeout (the worker must be
  *killed*, not joined);
* ``"exit"``  — ``os._exit`` the worker process mid-circuit (the hard
  crash: no exception, no result, a dead pipe).

``times`` bounds the injection to the first N attempts, which is how the
tests model *transient* failures: attempt 1 faults, the retry succeeds.

This module is test/benchmark infrastructure — nothing in the production
path imports it unless a plan is actually installed.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, Union

__all__ = ["Fault", "FaultPlan", "TransientFault", "FAULT_MODES"]

#: the supported injection modes
FAULT_MODES = ("raise", "hang", "exit")


class TransientFault(RuntimeError):
    """An injected failure that a bounded retry is expected to cure."""


@dataclass(frozen=True)
class Fault:
    """One injected failure: a mode plus its knobs.

    ``times=0`` injects on every attempt; ``times=N`` only on the first N
    attempts (so retry N+1 succeeds).  ``seconds`` is the hang duration;
    ``exit_code`` the ``os._exit`` status of a crash.
    """

    mode: str
    times: int = 0
    seconds: float = 3600.0
    exit_code: int = 13

    def __post_init__(self):
        if self.mode not in FAULT_MODES:
            raise ValueError(f"fault mode must be one of {FAULT_MODES}, "
                             f"got {self.mode!r}")


class FaultPlan:
    """Circuit-name → :class:`Fault` mapping, picklable into job payloads.

    Values may be :class:`Fault` instances or bare mode strings::

        FaultPlan({"dec": "exit", "ctrl": Fault("raise", times=1)})
    """

    def __init__(self, faults: Dict[str, Union[Fault, str]]):
        self.faults: Dict[str, Fault] = {
            name: fault if isinstance(fault, Fault) else Fault(mode=fault)
            for name, fault in faults.items()
        }

    def to_payload(self) -> dict:
        """The tiny picklable form shipped inside job payloads."""
        return {name: (f.mode, f.times, f.seconds, f.exit_code)
                for name, f in self.faults.items()}


def apply_fault(payload: dict, circuit: str, attempt: int) -> None:
    """Trigger the planned fault for ``circuit`` on this ``attempt``.

    ``payload`` is a :meth:`FaultPlan.to_payload` dict.  Raising faults
    raise :class:`TransientFault`; hangs sleep (then return, so a run
    *without* a timeout still completes, just late); exits never return.
    """
    spec = payload.get(circuit)
    if spec is None:
        return
    mode, times, seconds, exit_code = spec
    if times and attempt > times:
        return
    if mode == "raise":
        raise TransientFault(
            f"injected fault on {circuit!r} (attempt {attempt})")
    if mode == "hang":
        time.sleep(seconds)
        return
    if mode == "exit":
        os._exit(exit_code)
