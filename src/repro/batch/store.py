"""ResultStore — an append-only JSONL record of batch runs.

Every batch invocation appends one ``run`` header line (flow script, suite,
scale, jobs, git revision, wall time) followed by one ``result`` line per
circuit (status, cost, structural fingerprint, seconds, worker pid).  The
file is plain JSON-lines: greppable, diffable, safe to append to from
successive runs, and the unit of regression tracking —
:meth:`ResultStore.compare` diffs two runs circuit by circuit and reports
quality regressions, result divergences (fingerprint mismatches at equal
cost) and the wall-time speedup.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

__all__ = ["ResultStore", "RunInfo", "Comparison", "git_revision"]

_GIT_REV_CACHE: Dict[str, str] = {}


def git_revision(cwd: Optional[str] = None) -> str:
    """The short git revision of ``cwd`` (or $PWD), or ``"unknown"``."""
    key = cwd or os.getcwd()
    if key not in _GIT_REV_CACHE:
        try:
            out = subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"], cwd=cwd,
                capture_output=True, text=True, timeout=10)
            _GIT_REV_CACHE[key] = out.stdout.strip() if out.returncode == 0 else "unknown"
        except Exception:
            _GIT_REV_CACHE[key] = "unknown"
    return _GIT_REV_CACHE[key]


@dataclass
class RunInfo:
    """One recorded batch run: the header line plus its result records."""

    run_id: str
    header: dict
    results: Dict[str, dict] = field(default_factory=dict)   # circuit -> record

    @property
    def flow(self) -> str:
        return self.header.get("flow", "")

    @property
    def suite(self) -> str:
        return self.header.get("suite", "")

    @property
    def wall_seconds(self) -> float:
        return float(self.header.get("wall_seconds", 0.0))

    @property
    def failures(self) -> List[str]:
        return [c for c, r in self.results.items() if r.get("status") != "ok"]


@dataclass
class Comparison:
    """Per-circuit delta report between a run and a baseline run."""

    run: RunInfo
    baseline: RunInfo
    rows: List[dict] = field(default_factory=list)

    @property
    def regressions(self) -> List[dict]:
        """Rows where the run is worse than the baseline (bigger size or
        depth, a new failure, or a structural divergence)."""
        return [r for r in self.rows if r["regressed"]]

    @property
    def ok(self) -> bool:
        return not self.regressions

    @property
    def speedup(self) -> float:
        """Baseline wall time over run wall time (>1 = the run is faster)."""
        if self.run.wall_seconds <= 0:
            return 0.0
        return self.baseline.wall_seconds / self.run.wall_seconds

    def format(self) -> str:
        from ..experiments.common import format_table

        rows = [[r["circuit"], r["status"], r["base_status"],
                 r.get("size", "-"), r.get("d_size", "-"),
                 r.get("depth", "-"), r.get("d_depth", "-"),
                 "DIVERGED" if r["diverged"] else
                 ("REGRESSED" if r["regressed"] else "ok")]
                for r in self.rows]
        table = format_table(
            ["circuit", "status", "base", "size", "Δsize", "depth", "Δdepth", "verdict"],
            rows,
            title=(f"run {self.run.run_id} vs baseline {self.baseline.run_id} "
                   f"(wall {self.run.wall_seconds:.2f}s vs "
                   f"{self.baseline.wall_seconds:.2f}s, "
                   f"speedup {self.speedup:.2f}x)"))
        verdict = ("zero regressions" if self.ok
                   else f"{len(self.regressions)} REGRESSION(S)")
        return f"{table}\n{verdict}"


class ResultStore:
    """Append-only JSONL store of batch runs (see the module docstring)."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)

    # -- writing -------------------------------------------------------------

    def record(self, batch, *, suite: str = "", meta: Optional[dict] = None) -> str:
        """Append one batch result (header + per-circuit lines); returns the
        new run id.  ``batch`` is a :class:`~repro.batch.runner.BatchResult`.
        """
        run_id = self._new_run_id()
        header = {
            "kind": "run",
            "run_id": run_id,
            "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "git_rev": git_revision(),
            "flow": batch.flow,
            "suite": suite or batch.suite,
            "scale": batch.scale,
            "jobs": batch.jobs,
            "wall_seconds": round(batch.wall_seconds, 6),
            "circuits": len(batch.outcomes),
            "failures": len(batch.failures),
        }
        if meta:
            header["meta"] = meta
        lines = [json.dumps(header)]
        for outcome in batch.outcomes:
            rec = outcome.to_record()
            rec["kind"] = "result"
            rec["run_id"] = run_id
            lines.append(json.dumps(rec))
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as fh:
            fh.write("\n".join(lines) + "\n")
        batch.run_id = run_id
        return run_id

    def _new_run_id(self) -> str:
        return time.strftime("r%Y%m%d-%H%M%S") + "-" + os.urandom(3).hex()

    # -- reading -------------------------------------------------------------

    def runs(self) -> List[RunInfo]:
        """All recorded runs in file (chronological) order."""
        runs: Dict[str, RunInfo] = {}
        order: List[str] = []
        if not self.path.exists():
            return []
        for line in self.path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            if rec.get("kind") == "run":
                runs[rec["run_id"]] = RunInfo(run_id=rec["run_id"], header=rec)
                order.append(rec["run_id"])
            elif rec.get("kind") == "result":
                run = runs.get(rec.get("run_id"))
                if run is not None:
                    run.results[rec["circuit"]] = rec
        return [runs[r] for r in order]

    def find_run(self, run_id: Optional[str] = None, *, flow: Optional[str] = None,
                 suite: Optional[str] = None, exclude: Optional[str] = None) -> RunInfo:
        """Resolve one run: by (prefix of an) id, or the latest run matching
        ``flow`` / ``suite`` filters (``run_id="latest"`` or None = latest).
        ``exclude`` skips one run id — used to diff a fresh run against the
        latest *previous* one.
        """
        runs = self.runs()
        if not runs:
            raise ValueError(f"result store {self.path} holds no runs")
        if run_id and run_id != "latest":
            matches = [r for r in runs if r.run_id == run_id] or \
                      [r for r in runs if r.run_id.startswith(run_id)
                       and r.run_id != exclude]
            if not matches:
                raise ValueError(f"no run {run_id!r} in {self.path}")
            return matches[-1]
        for run in reversed(runs):
            if run.run_id == exclude:
                continue
            if flow is not None and run.flow != flow:
                continue
            if suite is not None and run.suite != suite:
                continue
            return run
        raise ValueError(f"no run matching flow={flow!r} suite={suite!r} "
                         f"in {self.path}")

    # -- regression deltas ---------------------------------------------------

    def compare(self, run: Union[str, RunInfo], baseline: Union[str, RunInfo]) -> Comparison:
        """Diff ``run`` against ``baseline`` circuit by circuit.

        A circuit **regressed** when it fails where the baseline succeeded,
        its size or depth grew, or its structural fingerprint diverged from
        the baseline at equal cost (the bit-identical check).  Circuits only
        present on one side are reported but not counted as regressions.
        """
        if not isinstance(run, RunInfo):
            run = self.find_run(run)
        if not isinstance(baseline, RunInfo):
            baseline = self.find_run(baseline)
        rows: List[dict] = []
        for circuit in baseline.results.keys() | run.results.keys():
            mine = run.results.get(circuit)
            base = baseline.results.get(circuit)
            rows.append(_compare_circuit(circuit, mine, base))
        rows.sort(key=lambda r: r["circuit"])
        return Comparison(run=run, baseline=baseline, rows=rows)


def _compare_circuit(circuit: str, mine: Optional[dict],
                     base: Optional[dict]) -> dict:
    row = {
        "circuit": circuit,
        "status": mine.get("status") if mine else "missing",
        "base_status": base.get("status") if base else "missing",
        "regressed": False,
        "diverged": False,
    }
    if mine is None or base is None:
        return row
    if mine.get("status") != "ok":
        row["regressed"] = base.get("status") == "ok"
        return row
    if base.get("status") != "ok":
        return row            # fixed a baseline failure: an improvement
    size, depth = mine.get("size"), mine.get("depth")
    row.update(size=size, depth=depth,
               d_size=_delta(size, base.get("size")),
               d_depth=_delta(depth, base.get("depth")))
    worse = (_is_worse(size, base.get("size"))
             or _is_worse(depth, base.get("depth")))
    # a fingerprint mismatch only counts as a divergence at equal cost —
    # a genuine improvement necessarily changes the structure
    same_cost = size == base.get("size") and depth == base.get("depth")
    fp_mine, fp_base = mine.get("fingerprint"), base.get("fingerprint")
    row["diverged"] = bool(same_cost and fp_mine and fp_base
                           and fp_mine != fp_base)
    row["regressed"] = worse or row["diverged"]
    return row


def _delta(mine, base):
    if mine is None or base is None:
        return "-"
    d = mine - base
    return d if d else 0


def _is_worse(mine, base) -> bool:
    return mine is not None and base is not None and mine > base
