"""ResultStore — an append-only JSONL record of batch runs.

Every batch invocation appends one ``run`` header line (flow script, suite,
scale, jobs, git revision, run key) followed by one ``result`` line per
circuit (status, cost, structural fingerprint, seconds, worker pid) and a
closing ``end`` line (wall time, failure count).  The file is plain
JSON-lines: greppable, diffable, safe to append to from successive runs —
and from *concurrent* runs, which is what makes it double as the
coordination medium for fault tolerance:

* **crash-safe appends** — every record is flushed and fsynced as it is
  written, so a run killed mid-suite leaves a readable prefix; the reader
  tolerates (and reports) a truncated final line instead of rejecting the
  whole file;
* **run keys** — :func:`run_key` derives a stable identity from the flow
  script, suite, scale and per-circuit input fingerprints; a restarted run
  under the same key can skip circuits that already have ``ok`` records
  (:meth:`ResultStore.completed`);
* **claims** — :meth:`ResultStore.claim` appends an advisory claim line;
  first claim in file order wins, so multiple runner processes can share
  one suite without duplicating work (appends of one JSON line are atomic
  on POSIX).

:meth:`ResultStore.compare` diffs two runs circuit by circuit and reports
quality regressions, result divergences (fingerprint mismatches at equal
cost) and the wall-time speedup.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import re
import subprocess
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

__all__ = ["ResultStore", "RunInfo", "Comparison", "StoreWriteError",
           "git_revision", "run_key", "failure_signature"]

_GIT_REV_CACHE: Dict[str, str] = {}


def git_revision(cwd: Optional[str] = None) -> str:
    """The short git revision of ``cwd`` (or $PWD), or ``"unknown"``."""
    key = cwd or os.getcwd()
    if key not in _GIT_REV_CACHE:
        try:
            out = subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"], cwd=cwd,
                capture_output=True, text=True, timeout=10)
            _GIT_REV_CACHE[key] = out.stdout.strip() if out.returncode == 0 else "unknown"
        except Exception:
            _GIT_REV_CACHE[key] = "unknown"
    return _GIT_REV_CACHE[key]


class StoreWriteError(OSError):
    """A store append that failed (ENOSPC, quota, I/O error) — and was
    rolled back, so the file keeps a clean, resumable prefix.

    Raised instead of the bare ``OSError`` so callers can distinguish "the
    record was not written but the store is intact" from corruption: the
    failed bytes were truncated away, every earlier record survives, and a
    later resume re-runs exactly the circuits whose records were lost.
    """


_DIGIT_RUNS = re.compile(r"\d+")


def failure_signature(status: str, error: str) -> str:
    """A stable identity for one failure mode (12 hex chars).

    The circuit breaker quarantines a circuit only when it keeps failing
    *the same way*, so the signature must survive run-to-run noise: it
    hashes the status plus the first line of the error with digit runs
    normalized to ``#`` (pids, addresses, timings and attempt counters
    change every run; the failure mode does not).
    """
    first_line = (error or "").splitlines()[0] if error else ""
    normalized = _DIGIT_RUNS.sub("#", f"{status}|{first_line}")
    return hashlib.sha256(normalized.encode()).hexdigest()[:12]


def run_key(flow: str, suite: str, scale: str,
            inputs: Sequence[Tuple[str, str]]) -> str:
    """A stable identity for one batch workload (16 hex chars).

    Two invocations share a run key iff they would do the same work: same
    canonical flow script, suite name, scale, and the same per-circuit
    input fingerprints (name → content hash pairs; order-insensitive).
    The key is what resume and cooperative claims coordinate on.
    """
    payload = json.dumps({"flow": flow, "suite": suite, "scale": scale,
                          "inputs": sorted((str(n), str(f)) for n, f in inputs)},
                         sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


@dataclass
class RunInfo:
    """One recorded batch run: the header line plus its result records."""

    run_id: str
    header: dict
    results: Dict[str, dict] = field(default_factory=dict)   # circuit -> record

    @property
    def flow(self) -> str:
        return self.header.get("flow", "")

    @property
    def suite(self) -> str:
        return self.header.get("suite", "")

    @property
    def run_key(self) -> str:
        return self.header.get("run_key", "")

    @property
    def closed(self) -> bool:
        """Whether the run recorded its ``end`` line (False = interrupted
        or still in flight)."""
        return bool(self.header.get("closed"))

    @property
    def wall_seconds(self) -> float:
        return float(self.header.get("wall_seconds", 0.0))

    @property
    def failures(self) -> List[str]:
        return [c for c, r in self.results.items() if r.get("status") != "ok"]


@dataclass
class Comparison:
    """Per-circuit delta report between a run and a baseline run."""

    run: RunInfo
    baseline: RunInfo
    rows: List[dict] = field(default_factory=list)

    @property
    def regressions(self) -> List[dict]:
        """Rows where the run is worse than the baseline (bigger size or
        depth, a new failure, or a structural divergence)."""
        return [r for r in self.rows if r["regressed"]]

    @property
    def divergences(self) -> List[dict]:
        """Rows whose structural fingerprint diverged from the baseline at
        equal cost — the bit-identical check."""
        return [r for r in self.rows if r["diverged"]]

    @property
    def ok(self) -> bool:
        return not self.regressions

    @property
    def speedup(self) -> float:
        """Baseline wall time over run wall time (>1 = the run is faster)."""
        if self.run.wall_seconds <= 0:
            return 0.0
        return self.baseline.wall_seconds / self.run.wall_seconds

    def format(self) -> str:
        from ..experiments.common import format_table

        rows = [[r["circuit"], r["status"], r["base_status"],
                 r.get("size", "-"), r.get("d_size", "-"),
                 r.get("depth", "-"), r.get("d_depth", "-"),
                 "DIVERGED" if r["diverged"] else
                 ("REGRESSED" if r["regressed"] else "ok")]
                for r in self.rows]
        table = format_table(
            ["circuit", "status", "base", "size", "Δsize", "depth", "Δdepth", "verdict"],
            rows,
            title=(f"run {self.run.run_id} vs baseline {self.baseline.run_id} "
                   f"(wall {self.run.wall_seconds:.2f}s vs "
                   f"{self.baseline.wall_seconds:.2f}s, "
                   f"speedup {self.speedup:.2f}x)"))
        verdict = ("zero regressions" if self.ok
                   else f"{len(self.regressions)} REGRESSION(S)")
        return f"{table}\n{verdict}"


def _write_all(fd: int, data: bytes) -> None:
    """Write ``data`` to ``fd`` completely, or raise.

    ``os.write`` may legitimately write fewer bytes than asked (a disk
    that fills mid-write does exactly this before ENOSPC would surface on
    the *next* call) — loop until done, and treat a zero-byte write as
    ENOSPC rather than spinning.  Module-level so chaos tests can
    monkeypatch a failing disk under the store.
    """
    view = memoryview(data)
    while view:
        written = os.write(fd, view)
        if written <= 0:
            raise OSError(errno.ENOSPC,
                          f"short write ({len(data) - len(view)}/{len(data)} "
                          "bytes): no space left on device")
        view = view[written:]


class ResultStore:
    """Append-only JSONL store of batch runs (see the module docstring)."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)

    # -- writing -------------------------------------------------------------

    def _append(self, lines: List[str]) -> None:
        """Durably append record lines: one write, flushed and fsynced, so
        a crash immediately after a circuit completes cannot lose it.

        Disk-safe: a short write or an ``OSError`` mid-append (ENOSPC,
        quota, I/O error) is rolled back by truncating the file to its
        pre-append length, then surfaced as :class:`StoreWriteError`.  The
        *record* fails; the *file* keeps a clean resumable prefix.  (The
        rollback assumes no concurrent appender raced into the torn tail —
        concurrent runners only ever append whole lines, and a writer that
        hit ENOSPC will find its cooperating peers hitting it too.)
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        data = "".join(line + "\n" for line in lines).encode()
        fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            offset = os.lseek(fd, 0, os.SEEK_END)
            try:
                _write_all(fd, data)
                os.fsync(fd)
            except OSError as exc:
                try:
                    os.ftruncate(fd, offset)
                except OSError:
                    pass                # rollback is best-effort
                raise StoreWriteError(
                    f"{self.path}: append failed ({exc}); rolled the file "
                    f"back to a clean prefix at byte {offset}") from exc
        finally:
            os.close(fd)

    def open_run(self, *, flow: str, suite: str = "", scale: str = "",
                 jobs: int = 1, circuits: int = 0, run_key: str = "",
                 meta: Optional[dict] = None) -> str:
        """Start an incremental run: append its header line now, results as
        they arrive (:meth:`append_result`), the ``end`` line on completion
        (:meth:`close_run`).  Returns the new run id.

        This is what makes runs resumable — a run killed mid-suite leaves
        its header and every completed circuit on disk.
        """
        run_id = self._new_run_id()
        header = {
            "kind": "run",
            "run_id": run_id,
            "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "git_rev": git_revision(),
            "flow": flow,
            "suite": suite,
            "scale": scale,
            "jobs": jobs,
            "circuits": circuits,
        }
        if run_key:
            header["run_key"] = run_key
        if meta:
            header["meta"] = meta
        self._append([json.dumps(header)])
        return run_id

    def append_result(self, run_id: str, record: dict) -> None:
        """Durably append one circuit record to an open run."""
        rec = dict(record)
        rec["kind"] = "result"
        rec["run_id"] = run_id
        self._append([json.dumps(rec)])

    def close_run(self, run_id: str, *, wall_seconds: float = 0.0,
                  failures: int = 0) -> None:
        """Append the ``end`` line of an open run (wall time, failure
        count).  A run without one was interrupted."""
        self._append([json.dumps({
            "kind": "end", "run_id": run_id,
            "wall_seconds": round(wall_seconds, 6), "failures": failures,
        })])

    def record(self, batch, *, suite: str = "", meta: Optional[dict] = None) -> str:
        """Append one completed batch result in one go (header + per-circuit
        lines + end line); returns the new run id.  ``batch`` is a
        :class:`~repro.batch.runner.BatchResult`.
        """
        run_id = self.open_run(
            flow=batch.flow, suite=suite or batch.suite, scale=batch.scale,
            jobs=batch.jobs, circuits=len(batch.outcomes),
            run_key=getattr(batch, "run_key", ""), meta=meta)
        for outcome in batch.outcomes:
            self.append_result(run_id, outcome.to_record())
        self.close_run(run_id, wall_seconds=batch.wall_seconds,
                       failures=len(batch.failures))
        batch.run_id = run_id
        return run_id

    def _new_run_id(self) -> str:
        return time.strftime("r%Y%m%d-%H%M%S") + "-" + os.urandom(3).hex()

    def writable(self) -> bool:
        """Whether an append would succeed right now.

        The ``/readyz`` probe: opens (creating if needed), seeks and
        fsyncs the store file without adding any bytes.  False means the
        next record append would fail — a full disk, a read-only mount, a
        path whose parent stopped being a directory.
        """
        try:
            self._append([])
            return True
        except OSError:
            return False

    # -- serve cache entries (content-addressed results) ---------------------

    def append_cache(self, record: dict) -> None:
        """Durably append one content-addressed cache entry (``kind:
        "cache"``) — the serve daemon's persistence layer.  ``record``
        must carry the ``cache_key``; cache lines coexist with run/claim
        lines in the same JSONL file and are invisible to :meth:`runs`.
        """
        rec = dict(record)
        rec["kind"] = "cache"
        self._append([json.dumps(rec)])

    def cache_records(self) -> List[dict]:
        """All cache entries in file (chronological) order.

        A restarted serve daemon replays these to warm its in-memory
        index; later entries for the same ``cache_key`` win.
        """
        return [rec for rec in self._records() if rec.get("kind") == "cache"]

    # -- claims (cooperative runners) ----------------------------------------

    def claim(self, run_key: str, circuit: str, *, owner: str,
              ttl: Optional[float] = None) -> Tuple[bool, dict]:
        """Claim one circuit of a shared workload; returns ``(won, winner)``.

        Appends an advisory claim line, then reads the file back: the
        *first* claim in file order wins (appends are atomic, so every
        cooperating process resolves the same winner).  ``ttl`` ignores
        claims older than that many seconds — the escape hatch for claims
        leaked by a runner that died without completing its circuit.
        """
        rec = {"kind": "claim", "run_key": run_key, "circuit": circuit,
               "owner": owner, "claim_id": os.urandom(6).hex(),
               "time": round(time.time(), 3)}
        self._append([json.dumps(rec)])
        winner = self.claims(run_key, ttl=ttl).get(circuit, rec)
        return winner.get("claim_id") == rec["claim_id"], winner

    def claims(self, run_key: str, *, ttl: Optional[float] = None) -> Dict[str, dict]:
        """The winning (first, non-stale) claim per circuit under a run key."""
        now = time.time()
        out: Dict[str, dict] = {}
        for rec in self._records():
            if rec.get("kind") != "claim" or rec.get("run_key") != run_key:
                continue
            if ttl is not None and now - float(rec.get("time", 0.0)) > ttl:
                continue
            out.setdefault(rec["circuit"], rec)
        return out

    # -- quarantine (circuit breaker) ----------------------------------------

    def quarantine(self, run_key: str, circuit: str, *, signature: str,
                   status: str = "", error: str = "", runs: int = 0) -> None:
        """Record a circuit as quarantined under ``run_key``.

        The circuit breaker's trip record: the runner appends one when a
        circuit has failed identically (same :func:`failure_signature`)
        across its threshold of runs.  Resumed and cooperative runs skip
        quarantined circuits until :meth:`requarantine` clears them.
        """
        self._append([json.dumps({
            "kind": "quarantine", "run_key": run_key, "circuit": circuit,
            "signature": signature, "status": status, "error": error,
            "runs": runs, "time": round(time.time(), 3),
        })])

    def requarantine(self, run_key: str,
                     circuits: Optional[Sequence[str]] = None) -> None:
        """Clear quarantine records under ``run_key`` (append, don't erase).

        ``circuits=None`` clears every quarantined circuit; a list clears
        only those named.  Appended as a ``requarantine`` line so the
        breaker's history stays auditable — a circuit that trips again
        after being cleared is simply quarantined again by a later line.
        """
        rec = {"kind": "requarantine", "run_key": run_key,
               "time": round(time.time(), 3)}
        if circuits is not None:
            rec["circuits"] = sorted(circuits)
        self._append([json.dumps(rec)])

    def quarantined(self, run_key: str) -> Dict[str, dict]:
        """Circuit → its live quarantine record under ``run_key``.

        Replays quarantine/requarantine lines in file order, so the
        latest action per circuit wins.  Circuits cleared by a
        ``requarantine`` line do not appear.
        """
        out: Dict[str, dict] = {}
        for rec in self._records():
            kind = rec.get("kind")
            if rec.get("run_key") != run_key:
                continue
            if kind == "quarantine":
                out[rec["circuit"]] = rec
            elif kind == "requarantine":
                cleared = rec.get("circuits")
                if cleared is None:
                    out.clear()
                else:
                    for circuit in cleared:
                        out.pop(circuit, None)
        return out

    # -- reading -------------------------------------------------------------

    def _records(self) -> List[dict]:
        """All parseable records, tolerating a truncated final line.

        A writer killed mid-append can leave a torn last line; that is
        reported (a warning) and skipped.  Corruption anywhere *else*
        still raises — it means the file was damaged, not interrupted.
        """
        if not self.path.exists():
            return []
        lines = [(i, line.strip())
                 for i, line in enumerate(self.path.read_text().splitlines())
                 if line.strip()]
        out: List[dict] = []
        for pos, (lineno, line) in enumerate(lines):
            try:
                out.append(json.loads(line))
            except json.JSONDecodeError as exc:
                if pos == len(lines) - 1:
                    warnings.warn(
                        f"{self.path}: ignoring truncated final record "
                        f"(line {lineno + 1}): {exc}")
                    continue
                raise ValueError(
                    f"{self.path}: corrupt record at line {lineno + 1}: "
                    f"{exc}") from exc
        return out

    def runs(self) -> List[RunInfo]:
        """All recorded runs in file (chronological) order."""
        runs: Dict[str, RunInfo] = {}
        order: List[str] = []
        for rec in self._records():
            kind = rec.get("kind")
            if kind == "run":
                runs[rec["run_id"]] = RunInfo(run_id=rec["run_id"], header=rec)
                order.append(rec["run_id"])
            elif kind == "result":
                run = runs.get(rec.get("run_id"))
                if run is not None:
                    run.results[rec["circuit"]] = rec
            elif kind == "end":
                run = runs.get(rec.get("run_id"))
                if run is not None:
                    run.header["wall_seconds"] = rec.get("wall_seconds", 0.0)
                    run.header["failures"] = rec.get("failures", 0)
                    run.header["closed"] = True
        return [runs[r] for r in order]

    def completed(self, run_key: str) -> Dict[str, dict]:
        """Circuit → latest ``ok`` record among all runs under ``run_key``.

        The resume set: a restarted run skips these circuits and copies
        their records forward (each record keeps its originating
        ``run_id``).
        """
        out: Dict[str, dict] = {}
        for run in self.runs():
            if run.run_key != run_key:
                continue
            for circuit, rec in run.results.items():
                if rec.get("status") == "ok":
                    out[circuit] = rec
        return out

    def find_run(self, run_id: Optional[str] = None, *, flow: Optional[str] = None,
                 suite: Optional[str] = None, exclude: Optional[str] = None) -> RunInfo:
        """Resolve one run: by (prefix of an) id, or the latest run matching
        ``flow`` / ``suite`` filters (``run_id="latest"`` or None = latest).
        ``exclude`` skips one run id — used to diff a fresh run against the
        latest *previous* one.
        """
        runs = self.runs()
        if not runs:
            raise ValueError(f"result store {self.path} holds no runs")
        if run_id and run_id != "latest":
            matches = [r for r in runs if r.run_id == run_id] or \
                      [r for r in runs if r.run_id.startswith(run_id)
                       and r.run_id != exclude]
            if not matches:
                raise ValueError(f"no run {run_id!r} in {self.path}")
            return matches[-1]
        for run in reversed(runs):
            if run.run_id == exclude:
                continue
            if flow is not None and run.flow != flow:
                continue
            if suite is not None and run.suite != suite:
                continue
            return run
        raise ValueError(f"no run matching flow={flow!r} suite={suite!r} "
                         f"in {self.path}")

    # -- regression deltas ---------------------------------------------------

    def compare(self, run: Union[str, RunInfo], baseline: Union[str, RunInfo]) -> Comparison:
        """Diff ``run`` against ``baseline`` circuit by circuit.

        A circuit **regressed** when it fails where the baseline succeeded,
        its size or depth grew, or its structural fingerprint diverged from
        the baseline at equal cost (the bit-identical check).  Circuits only
        present on one side are reported but not counted as regressions.
        """
        if not isinstance(run, RunInfo):
            run = self.find_run(run)
        if not isinstance(baseline, RunInfo):
            baseline = self.find_run(baseline)
        rows: List[dict] = []
        for circuit in baseline.results.keys() | run.results.keys():
            mine = run.results.get(circuit)
            base = baseline.results.get(circuit)
            rows.append(_compare_circuit(circuit, mine, base))
        rows.sort(key=lambda r: r["circuit"])
        return Comparison(run=run, baseline=baseline, rows=rows)


def _compare_circuit(circuit: str, mine: Optional[dict],
                     base: Optional[dict]) -> dict:
    row = {
        "circuit": circuit,
        "status": mine.get("status") if mine else "missing",
        "base_status": base.get("status") if base else "missing",
        "regressed": False,
        "diverged": False,
    }
    if mine is None or base is None:
        return row
    if mine.get("status") != "ok":
        row["regressed"] = base.get("status") == "ok"
        return row
    if base.get("status") != "ok":
        return row            # fixed a baseline failure: an improvement
    size, depth = mine.get("size"), mine.get("depth")
    row.update(size=size, depth=depth,
               d_size=_delta(size, base.get("size")),
               d_depth=_delta(depth, base.get("depth")))
    worse = (_is_worse(size, base.get("size"))
             or _is_worse(depth, base.get("depth")))
    # a fingerprint mismatch only counts as a divergence at equal cost —
    # a genuine improvement necessarily changes the structure
    same_cost = size == base.get("size") and depth == base.get("depth")
    fp_mine, fp_base = mine.get("fingerprint"), base.get("fingerprint")
    row["diverged"] = bool(same_cost and fp_mine and fp_base
                           and fp_mine != fp_base)
    row["regressed"] = worse or row["diverged"]
    return row


def _delta(mine, base):
    if mine is None or base is None:
        return "-"
    d = mine - base
    return d if d else 0


def _is_worse(mine, base) -> bool:
    return mine is not None and base is not None and mine > base
