"""Progress events — the observable life of a batch run.

The runner narrates every circuit's life cycle through a pluggable sink:
a plain callable invoked with one :class:`RunEvent` per transition.  The
stream is the integration point the serve daemon and the watch TUI both
consume (see ROADMAP) — and what the kill-and-resume smoke reads to find
worker pids.

Event kinds:

========== ==============================================================
``started``  a circuit was dispatched to a worker (``worker`` = pid)
``finished`` a circuit produced its final outcome (``status`` ok/error)
``retried``  a failed/crashed attempt was requeued (``attempt`` is the
             attempt that failed; ``detail`` says why and when it re-runs)
``timeout``  the circuit exceeded the hard per-circuit timeout and its
             worker was killed
``crashed``  the worker process died mid-circuit and retries were
             exhausted (or disabled)
``skipped``  a resumed run found an ``ok`` record under the same run key
             and did not re-execute the circuit
``claimed``  a cooperating runner holds the circuit's claim, so this
             runner yielded it
``oom``      the circuit exceeded its memory budget — either the worker
             reported :class:`MemoryError` under ``RLIMIT_AS`` or the
             supervisor's RSS poll killed it (``detail`` says which)
``quarantined`` the circuit breaker acted: either a circuit just crossed
             the identical-failure threshold and was recorded as
             quarantined, or a resumed run skipped an already-quarantined
             circuit (``detail`` distinguishes the two)
``sink_disabled`` a :class:`JsonlEventSink` recovered from a write
             failure; the event records how many events were dropped
             while the sink was down (written at the first successful
             append after :meth:`JsonlEventSink.rearm`)
========== ==============================================================

A sink that raises does not kill the run — the runner catches and warns.
"""

from __future__ import annotations

import json
import os
import time
import warnings
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import List, Optional, Union

__all__ = ["RunEvent", "EventLog", "JsonlEventSink", "EVENT_KINDS",
           "read_events", "event_sink"]

#: every event kind the runner emits, in rough life-cycle order
EVENT_KINDS = ("started", "finished", "retried", "timeout", "crashed",
               "skipped", "claimed", "oom", "quarantined", "sink_disabled")


@dataclass(frozen=True)
class RunEvent:
    """One batch-run transition (see the module docstring for kinds)."""

    kind: str
    circuit: str
    index: int
    attempt: int = 1
    status: str = ""                    # final status, on terminal events
    seconds: float = 0.0                # elapsed wall time, where known
    worker: int = 0                     # pid of the worker involved
    detail: str = ""                    # human-readable context
    at: float = 0.0                     # epoch timestamp (set by the runner)

    def to_dict(self) -> dict:
        """The JSON-serializable form of this event."""
        d = asdict(self)
        d["seconds"] = round(d["seconds"], 6)
        return d


class EventLog:
    """A list-collecting event sink — handy for tests and UIs.

    Call the instance with events (it is itself a sink); read them back
    via :attr:`events`, :meth:`kinds` or :meth:`only`.
    """

    def __init__(self) -> None:
        self.events: List[RunEvent] = []

    def __call__(self, event: RunEvent) -> None:
        """Record one event (the sink protocol)."""
        self.events.append(event)

    def kinds(self) -> List[str]:
        """The event kinds seen, in arrival order."""
        return [e.kind for e in self.events]

    def only(self, kind: str) -> List[RunEvent]:
        """The recorded events of one kind, in arrival order."""
        return [e for e in self.events if e.kind == kind]


class JsonlEventSink:
    """An event sink appending one flushed+fsynced JSON line per event.

    Durable by construction: a reader (or a post-mortem after a kill)
    sees every event that was emitted before the writer died, which is
    how the kill-and-resume smoke finds the worker pids it must clean up.

    A sink whose path cannot be opened (or whose device fills up) warns
    **once** and disables itself — progress telemetry must never cost a
    run, and must not warn again on every subsequent event.  The disable
    lasts for the *current run only*: the runner calls :meth:`rearm` at
    the start of every run, so a sink broken in run 1 (full disk, missing
    mount) gets another chance in run 2 once the fault clears.  The first
    successful append after a re-arm writes a ``sink_disabled`` event
    recording how many events the outage swallowed, so readers can see
    the gap instead of inferring it.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self._fh = None
        self._broken = False
        self._dropped = 0
        self._notice: Optional[dict] = None

    def __call__(self, event: RunEvent) -> None:
        """Append one event line (the sink protocol)."""
        if self._broken:
            self._dropped += 1
            return
        try:
            if self._fh is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._fh = self.path.open("a")
            if self._notice is not None:
                self._fh.write(json.dumps(self._notice) + "\n")
                self._notice = None
            self._fh.write(json.dumps(event.to_dict()) + "\n")
            self._fh.flush()
            os.fsync(self._fh.fileno())
        except OSError as exc:
            self._broken = True
            self._dropped += 1
            warnings.warn(f"event sink {self.path}: disabled after write "
                          f"failure: {exc}")

    def rearm(self) -> None:
        """Give a tripped sink another chance (called at run start).

        A no-op on a healthy sink.  On a broken one: clears the disable,
        drops the stale file handle, and queues a ``sink_disabled`` event
        carrying the dropped-event count, written just before the first
        event that lands after recovery.
        """
        if not self._broken:
            return
        self._broken = False
        self.close()
        self._notice = RunEvent(
            kind="sink_disabled", circuit="", index=-1,
            detail=(f"sink re-armed after a write failure; "
                    f"{self._dropped} event(s) were dropped"),
            at=time.time(),
        ).to_dict()
        self._dropped = 0

    @property
    def dropped(self) -> int:
        """How many events the current outage (if any) has swallowed."""
        return self._dropped

    def close(self) -> None:
        """Close the underlying file (idempotent)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None


def event_sink(path: Optional[Union[str, Path]]) -> Optional[JsonlEventSink]:
    """The one way run-event sinks are constructed from a CLI/daemon option.

    Returns a :class:`JsonlEventSink` on ``path``, or ``None`` when no path
    was given — so ``repro batch --events`` and ``repro serve --events``
    build byte-identical sinks (same durability, same warn-once handling of
    a broken path) through one helper instead of two copies.
    """
    if not path:
        return None
    return JsonlEventSink(path)


def read_events(path: Union[str, Path]) -> List[dict]:
    """Read a :class:`JsonlEventSink` file back as dicts, tolerating a
    truncated final line (the writer may have died mid-append)."""
    out: List[dict] = []
    lines = Path(path).read_text().splitlines()
    for i, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            out.append(json.loads(line))
        except json.JSONDecodeError:
            if i == len(lines) - 1:
                continue
            raise
    return out
