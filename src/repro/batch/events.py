"""Progress events — the observable life of a batch run.

The runner narrates every circuit's life cycle through a pluggable sink:
a plain callable invoked with one :class:`RunEvent` per transition.  The
stream is the integration point the serve daemon and the watch TUI both
consume (see ROADMAP) — and what the kill-and-resume smoke reads to find
worker pids.

Event kinds:

========== ==============================================================
``started``  a circuit was dispatched to a worker (``worker`` = pid)
``finished`` a circuit produced its final outcome (``status`` ok/error)
``retried``  a failed/crashed attempt was requeued (``attempt`` is the
             attempt that failed; ``detail`` says why and when it re-runs)
``timeout``  the circuit exceeded the hard per-circuit timeout and its
             worker was killed
``crashed``  the worker process died mid-circuit and retries were
             exhausted (or disabled)
``skipped``  a resumed run found an ``ok`` record under the same run key
             and did not re-execute the circuit
``claimed``  a cooperating runner holds the circuit's claim, so this
             runner yielded it
========== ==============================================================

A sink that raises does not kill the run — the runner catches and warns.
"""

from __future__ import annotations

import json
import os
import warnings
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import List, Optional, Union

__all__ = ["RunEvent", "EventLog", "JsonlEventSink", "EVENT_KINDS",
           "read_events", "event_sink"]

#: every event kind the runner emits, in rough life-cycle order
EVENT_KINDS = ("started", "finished", "retried", "timeout", "crashed",
               "skipped", "claimed")


@dataclass(frozen=True)
class RunEvent:
    """One batch-run transition (see the module docstring for kinds)."""

    kind: str
    circuit: str
    index: int
    attempt: int = 1
    status: str = ""                    # final status, on terminal events
    seconds: float = 0.0                # elapsed wall time, where known
    worker: int = 0                     # pid of the worker involved
    detail: str = ""                    # human-readable context
    at: float = 0.0                     # epoch timestamp (set by the runner)

    def to_dict(self) -> dict:
        """The JSON-serializable form of this event."""
        d = asdict(self)
        d["seconds"] = round(d["seconds"], 6)
        return d


class EventLog:
    """A list-collecting event sink — handy for tests and UIs.

    Call the instance with events (it is itself a sink); read them back
    via :attr:`events`, :meth:`kinds` or :meth:`only`.
    """

    def __init__(self) -> None:
        self.events: List[RunEvent] = []

    def __call__(self, event: RunEvent) -> None:
        """Record one event (the sink protocol)."""
        self.events.append(event)

    def kinds(self) -> List[str]:
        """The event kinds seen, in arrival order."""
        return [e.kind for e in self.events]

    def only(self, kind: str) -> List[RunEvent]:
        """The recorded events of one kind, in arrival order."""
        return [e for e in self.events if e.kind == kind]


class JsonlEventSink:
    """An event sink appending one flushed+fsynced JSON line per event.

    Durable by construction: a reader (or a post-mortem after a kill)
    sees every event that was emitted before the writer died, which is
    how the kill-and-resume smoke finds the worker pids it must clean up.

    A sink whose path cannot be opened (or whose device fills up) warns
    **once** and disables itself — progress telemetry must never cost a
    run, and must not warn again on every subsequent event.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self._fh = None
        self._broken = False

    def __call__(self, event: RunEvent) -> None:
        """Append one event line (the sink protocol)."""
        if self._broken:
            return
        try:
            if self._fh is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._fh = self.path.open("a")
            self._fh.write(json.dumps(event.to_dict()) + "\n")
            self._fh.flush()
            os.fsync(self._fh.fileno())
        except OSError as exc:
            self._broken = True
            warnings.warn(f"event sink {self.path}: disabled after write "
                          f"failure: {exc}")

    def close(self) -> None:
        """Close the underlying file (idempotent)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None


def event_sink(path: Optional[Union[str, Path]]) -> Optional[JsonlEventSink]:
    """The one way run-event sinks are constructed from a CLI/daemon option.

    Returns a :class:`JsonlEventSink` on ``path``, or ``None`` when no path
    was given — so ``repro batch --events`` and ``repro serve --events``
    build byte-identical sinks (same durability, same warn-once handling of
    a broken path) through one helper instead of two copies.
    """
    if not path:
        return None
    return JsonlEventSink(path)


def read_events(path: Union[str, Path]) -> List[dict]:
    """Read a :class:`JsonlEventSink` file back as dicts, tolerating a
    truncated final line (the writer may have died mid-append)."""
    out: List[dict] = []
    lines = Path(path).read_text().splitlines()
    for i, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            out.append(json.loads(line))
        except json.JSONDecodeError:
            if i == len(lines) - 1:
                continue
            raise
    return out
