"""Parallel suite execution: manifests, process-pool runner, result store.

The batch layer turns the one-circuit-at-a-time Flow API into a
suite-throughput machine, in three pieces:

* :mod:`~repro.batch.suite` — :class:`Suite` manifests: named circuit sets
  (the EPFL-analogue evaluation suites, generated word-level families,
  user TOML/JSON manifests);
* :mod:`~repro.batch.runner` — :class:`BatchRunner`: shards a suite across
  a *supervised* worker pool (per-worker warm
  :class:`~repro.flow.context.FlowContext`, deterministic result ordering,
  per-circuit wall-time and metric capture) or runs it in-process when
  ``jobs=1``.  Fault tolerant: per-circuit hard timeouts kill (never join)
  hung workers, crashed workers cost exactly one ``crashed`` outcome and
  are replaced, and ``retries`` re-runs transient failures with
  exponential backoff;
* :mod:`~repro.batch.store` — :class:`ResultStore`: an append-only JSONL
  log of runs, written *incrementally* (one fsynced line per circuit) so
  interrupted runs leave a resumable prefix.  Runs carry a stable
  :func:`~repro.batch.store.run_key` (flow + suite + scale + input
  fingerprints): ``run(..., resume=True)`` skips circuits already ``ok``
  under the key, and ``cooperate=True`` claims circuits through the store
  so several runner processes share one suite.
  :meth:`~repro.batch.store.ResultStore.compare` diffs runs bit-for-bit.
  Appends are disk-safe: an ENOSPC/short write is rolled back
  (:class:`~repro.batch.store.StoreWriteError`) so the file keeps a clean
  resumable prefix.  The store also holds the circuit breaker's
  quarantine records — a circuit failing identically across runs is
  skipped by later resumed runs until requarantined;
* :mod:`~repro.batch.events` — :class:`RunEvent` progress stream
  (``started`` / ``retried`` / ``crashed`` / ``finished`` / …) through a
  pluggable sink;
* :mod:`~repro.batch.faults` — :class:`FaultPlan` chaos injection for
  exercising all of the above.

Quickstart::

    from repro.batch import BatchRunner, ResultStore, get_suite

    suite = get_suite("epfl-arithmetic")
    batch = BatchRunner(jobs=4).run(suite, "compress2rs", scale="small",
                                    store="results.jsonl")
    print(batch.table())

    store = ResultStore("results.jsonl")
    print(store.compare("latest", baseline_run_id).format())

The CLI fronts this with ``repro suite`` (list/show manifests) and
``repro batch`` (run a flow over a suite with ``--jobs N``, ``--store``,
``--compare-to``).
"""

from .suite import Suite, SuiteEntry, available_suites, get_suite
from .runner import (BatchResult, BatchRunner, CircuitOutcome,
                     jittered_backoff, parse_memory_limit, state_fingerprint)
from .store import (Comparison, ResultStore, RunInfo, StoreWriteError,
                    failure_signature, git_revision, run_key)
from .events import EventLog, JsonlEventSink, RunEvent, event_sink, read_events
from .faults import Fault, FaultPlan, TransientFault

__all__ = [
    "Suite",
    "SuiteEntry",
    "available_suites",
    "get_suite",
    "BatchRunner",
    "BatchResult",
    "CircuitOutcome",
    "state_fingerprint",
    "jittered_backoff",
    "parse_memory_limit",
    "ResultStore",
    "RunInfo",
    "Comparison",
    "StoreWriteError",
    "failure_signature",
    "git_revision",
    "run_key",
    "RunEvent",
    "EventLog",
    "JsonlEventSink",
    "event_sink",
    "read_events",
    "Fault",
    "FaultPlan",
    "TransientFault",
]
