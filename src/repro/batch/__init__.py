"""Parallel suite execution: manifests, process-pool runner, result store.

The batch layer turns the one-circuit-at-a-time Flow API into a
suite-throughput machine, in three pieces:

* :mod:`~repro.batch.suite` — :class:`Suite` manifests: named circuit sets
  (the EPFL-analogue evaluation suites, generated word-level families,
  user TOML/JSON manifests);
* :mod:`~repro.batch.runner` — :class:`BatchRunner`: shards a suite across
  a process pool (per-worker warm :class:`~repro.flow.context.FlowContext`,
  deterministic result ordering, per-circuit wall-time and metric capture,
  graceful failure isolation) or runs it in-process when ``jobs=1``;
* :mod:`~repro.batch.store` — :class:`ResultStore`: an append-only JSONL
  log of runs keyed by flow script + circuit + git revision, with
  :meth:`~repro.batch.store.ResultStore.compare` for regression deltas
  against a baseline run.

Quickstart::

    from repro.batch import BatchRunner, ResultStore, get_suite

    suite = get_suite("epfl-arithmetic")
    batch = BatchRunner(jobs=4).run(suite, "compress2rs", scale="small",
                                    store="results.jsonl")
    print(batch.table())

    store = ResultStore("results.jsonl")
    print(store.compare("latest", baseline_run_id).format())

The CLI fronts this with ``repro suite`` (list/show manifests) and
``repro batch`` (run a flow over a suite with ``--jobs N``, ``--store``,
``--compare-to``).
"""

from .suite import Suite, SuiteEntry, available_suites, get_suite
from .runner import BatchResult, BatchRunner, CircuitOutcome, state_fingerprint
from .store import Comparison, ResultStore, RunInfo, git_revision

__all__ = [
    "Suite",
    "SuiteEntry",
    "available_suites",
    "get_suite",
    "BatchRunner",
    "BatchResult",
    "CircuitOutcome",
    "state_fingerprint",
    "ResultStore",
    "RunInfo",
    "Comparison",
    "git_revision",
]
