"""Suite manifests — named, reproducible sets of benchmark circuits.

A :class:`Suite` is the unit the batch layer executes over: an ordered list
of :class:`SuiteEntry` items, each naming either a registry benchmark
(the EPFL-analogue generators), an ``.aag`` file, or a *generated* circuit
(a builder from the benchmark registry invoked with explicit parameters —
how the word-level families are expressed).  Entries are plain picklable
data so a suite can be sharded across worker processes verbatim.

Built-in suites cover the paper's evaluation sets (``epfl-arithmetic``,
``epfl-control``, ``epfl-all``), a fast ``epfl-mini`` subset for smokes,
generated word-level families (``wordlevel-adders``,
``wordlevel-multipliers``, ``wordlevel-squares``), and generated sequential
families (``seq-counters``, ``seq-registers``, ``seq-pipelines``,
``seq-fsms``, plus the ``seq-mini`` CI smoke set).  User suites load from
TOML or JSON manifests::

    name = "my-suite"
    description = "two registry circuits and a generated 12-bit adder"
    scale = "tiny"
    circuits = [
        "adder",
        "ctrl",
        { builder = "adder", width = 12, name = "adder-w12" },
    ]

``repro suite`` lists the available manifests; ``repro batch <suite> …``
runs a flow over one.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Union

__all__ = ["Suite", "SuiteEntry", "available_suites", "get_suite"]

_SCALES = ("tiny", "small", "medium")


@dataclass(frozen=True)
class SuiteEntry:
    """One circuit of a suite: a registry name, an ``.aag`` path, or a
    builder invocation with explicit parameters.

    Exactly one of ``circuit`` (registry name / file path) or ``builder``
    (+ ``params``) is set.  ``scale`` optionally overrides the suite scale
    for this entry; it is ignored for builder entries, whose ``params``
    pin the size explicitly.
    """

    name: str                              # result key / display name
    circuit: Optional[str] = None          # benchmark name or .aag path
    builder: Optional[str] = None          # registry builder invoked directly
    params: tuple = ()                     # sorted (key, value) builder kwargs
    scale: Optional[str] = None            # per-entry scale override

    def build(self, scale: str = "small"):
        """Materialize this entry into a network at ``scale``."""
        from ..circuits import load
        from ..circuits.epfl import _BUILDERS

        if self.builder is not None:
            if self.builder not in _BUILDERS:
                raise ValueError(f"unknown builder {self.builder!r} "
                                 f"in suite entry {self.name!r}")
            return _BUILDERS[self.builder](**dict(self.params))
        return load(self.circuit, self.scale or scale)

    def describe(self) -> str:
        """Short human spec, e.g. ``adder`` or ``adder(width=12)``."""
        if self.builder is not None:
            args = ", ".join(f"{k}={v}" for k, v in self.params)
            return f"{self.builder}({args})"
        return str(self.circuit)

    def fingerprint(self, scale: str = "small") -> str:
        """A stable content key for this entry — a run-key input.

        Builder entries are keyed by builder + params (the generators are
        deterministic); ``.aag`` entries by the file's content hash;
        registry names by name + effective scale.  Cheap: nothing is built.
        """
        import hashlib

        if self.builder is not None:
            args = ",".join(f"{k}={v}" for k, v in self.params)
            return f"gen:{self.builder}({args})"
        circuit = str(self.circuit)
        if circuit.endswith(".aag"):
            try:
                digest = hashlib.sha256(
                    Path(circuit).read_bytes()).hexdigest()[:16]
                return f"file:{digest}"
            except OSError:
                return f"file:{circuit}"
        return f"bench:{circuit}@{self.scale or scale}"


@dataclass
class Suite:
    """A named, ordered circuit set with a default scale.

    Iterate it for its entries; ``build_all`` materializes every member.
    """

    name: str
    entries: List[SuiteEntry] = field(default_factory=list)
    description: str = ""
    scale: str = "small"

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[SuiteEntry]:
        return iter(self.entries)

    def names(self) -> List[str]:
        """The result keys of the members, in suite order."""
        return [e.name for e in self.entries]

    def build_all(self, scale: Optional[str] = None) -> Dict[str, object]:
        """Build every member; returns an ordered ``name -> network`` map."""
        scale = scale or self.scale
        return {e.name: e.build(scale) for e in self.entries}

    # -- constructors --------------------------------------------------------

    @classmethod
    def of_circuits(cls, name: str, circuits: Sequence, *, scale: str = "small",
                    description: str = "") -> "Suite":
        """An ad-hoc suite from benchmark names / ``.aag`` paths."""
        entries = [SuiteEntry(name=str(c), circuit=str(c)) for c in circuits]
        return cls(name=name, entries=entries, description=description,
                   scale=scale)

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "Suite":
        """Load a TOML or JSON suite manifest (see the module docstring)."""
        path = Path(path)
        text = path.read_text()
        if path.suffix.lower() == ".toml":
            import tomllib

            data = tomllib.loads(text)
        elif path.suffix.lower() == ".json":
            data = json.loads(text)
        else:
            raise ValueError(
                f"suite manifest must be .toml or .json, got {path.name!r}")
        return cls.from_dict(data, default_name=path.stem, base_dir=path.parent)

    @classmethod
    def from_dict(cls, data: dict, *, default_name: str = "suite",
                  base_dir: Optional[Path] = None) -> "Suite":
        """Build a suite from manifest data (the parsed TOML/JSON payload)."""
        scale = data.get("scale", "small")
        if scale not in _SCALES:
            raise ValueError(f"suite scale must be one of {_SCALES}, got {scale!r}")
        entries = []
        for item in data.get("circuits", []):
            entries.append(_parse_entry(item, base_dir))
        if not entries:
            raise ValueError("suite manifest lists no circuits")
        return cls(name=data.get("name", default_name), entries=entries,
                   description=data.get("description", ""), scale=scale)


def _parse_entry(item, base_dir: Optional[Path]) -> SuiteEntry:
    if isinstance(item, str):
        return SuiteEntry(name=item, circuit=_resolve_path(item, base_dir))
    if isinstance(item, dict):
        spec = dict(item)
        name = spec.pop("name", None)
        scale = spec.pop("scale", None)
        builder = spec.pop("builder", None)
        circuit = spec.pop("circuit", None)
        if (builder is None) == (circuit is None):
            raise ValueError(
                f"suite entry needs exactly one of 'circuit' or 'builder': {item!r}")
        if builder is not None:
            params = tuple(sorted(spec.items()))
            label = name or f"{builder}-" + "-".join(f"{k}{v}" for k, v in params)
            return SuiteEntry(name=label, builder=builder, params=params)
        if spec:
            raise ValueError(f"unknown suite entry keys {sorted(spec)} in {item!r}")
        return SuiteEntry(name=name or str(circuit),
                          circuit=_resolve_path(circuit, base_dir), scale=scale)
    raise ValueError(f"bad suite entry {item!r} (expected string or table)")


def _resolve_path(circuit: str, base_dir: Optional[Path]) -> str:
    """Resolve ``.aag`` paths in manifests relative to the manifest file."""
    if base_dir is not None and str(circuit).endswith(".aag"):
        candidate = Path(circuit)
        if not candidate.is_absolute():
            return str(base_dir / candidate)
    return str(circuit)


# ---------------------------------------------------------------------- #
# built-in suites                                                         #
# ---------------------------------------------------------------------- #

def _bench_suite(name: str, circuits: Sequence[str], description: str) -> Suite:
    return Suite.of_circuits(name, circuits, description=description)


def _family(builder: str, key: str, values: Sequence[int]) -> List[SuiteEntry]:
    return [SuiteEntry(name=f"{builder}-{key[0]}{v}", builder=builder,
                       params=((key, v),)) for v in values]


def _builtin_suites() -> Dict[str, Suite]:
    from ..circuits import ARITHMETIC, CONTROL

    suites = [
        _bench_suite("epfl-arithmetic", ARITHMETIC,
                     "the ten EPFL-analogue arithmetic circuits"),
        _bench_suite("epfl-control", CONTROL,
                     "the ten EPFL-analogue random/control circuits"),
        _bench_suite("epfl-all", ARITHMETIC + CONTROL,
                     "the full 20-circuit EPFL-analogue suite"),
        _bench_suite("epfl-mini", ["ctrl", "dec", "int2float", "router", "cavlc"],
                     "five fast control circuits for smokes and CI"),
        Suite("wordlevel-adders", _family("adder", "width", (4, 8, 16, 24)),
              "generated ripple-carry adder family across widths", "small"),
        Suite("wordlevel-multipliers", _family("multiplier", "width", (3, 4, 6)),
              "generated array-multiplier family across widths", "small"),
        Suite("wordlevel-squares", _family("square", "width", (4, 6, 8)),
              "generated squarer family across widths", "small"),
        Suite("seq-counters", _family("counter", "width", (4, 8, 16, 32)),
              "generated enabled up-counter family across widths", "small"),
        Suite("seq-registers",
              _family("shiftreg", "depth", (8, 16, 32))
              + _family("lfsr", "width", (8, 16, 24)),
              "generated shift-register and LFSR families", "small"),
        Suite("seq-pipelines",
              [SuiteEntry(name=f"pipeline-w{w}s{s}", builder="pipeline",
                          params=(("stages", s), ("width", w)))
               for w, s in ((4, 2), (8, 2), (8, 3), (16, 4))],
              "generated pipelined ripple-carry adders", "small"),
        Suite("seq-fsms",
              [SuiteEntry(name=f"fsm-{p}", builder="fsm",
                          params=(("pattern", p),))
               for p in ("101", "1101", "11010011")],
              "generated sequence-detector FSMs", "small"),
        Suite("seq-mini",
              [SuiteEntry(name="counter-w4", builder="counter",
                          params=(("width", 4),)),
               SuiteEntry(name="shiftreg-d6", builder="shiftreg",
                          params=(("depth", 6),)),
               SuiteEntry(name="lfsr-w5", builder="lfsr",
                          params=(("width", 5),)),
               SuiteEntry(name="pipeline-w4s2", builder="pipeline",
                          params=(("stages", 2), ("width", 4))),
               SuiteEntry(name="fsm-1101", builder="fsm",
                          params=(("pattern", "1101"),))],
              "five small sequential circuits for smokes and CI", "tiny"),
    ]
    return {s.name: s for s in suites}


def available_suites() -> Dict[str, Suite]:
    """All built-in suite manifests, keyed by name."""
    return _builtin_suites()


def get_suite(spec: Union[str, Path, Suite]) -> Suite:
    """Resolve a suite spec: a :class:`Suite`, a built-in name, a manifest
    path (``.toml`` / ``.json``), or a comma-separated circuit list."""
    if isinstance(spec, Suite):
        return spec
    text = str(spec)
    builtins = _builtin_suites()
    if text in builtins:
        return builtins[text]
    if text.endswith((".toml", ".json")):
        path = Path(text)
        if not path.exists():
            raise ValueError(f"suite manifest {text!r} does not exist")
        return Suite.from_file(path)
    from ..circuits import ALL_BENCHMARKS, SEQUENTIAL

    circuits = [c.strip() for c in text.split(",") if c.strip()]
    if circuits and all(c in ALL_BENCHMARKS or c in SEQUENTIAL
                        or c.endswith(".aag") for c in circuits):
        return Suite.of_circuits("adhoc", circuits,
                                 description="ad-hoc circuit list")
    raise ValueError(
        f"unknown suite {text!r} (know {sorted(builtins)}, a .toml/.json "
        f"manifest path, or a comma-separated circuit list)")
