"""BatchRunner — fault-tolerant suite execution across supervised workers.

The runner turns a :class:`~repro.batch.suite.Suite` (or any circuit list)
plus one flow script into per-circuit jobs and executes them either
in-process (``jobs=1`` — one shared :class:`~repro.flow.context.FlowContext`,
exactly the semantics of ``FlowRunner.run_many``) or across a supervised
pool of worker processes (``jobs>1`` — one *per-worker* warm context, one
duplex pipe per worker, every circuit pinned to the worker executing it).

Guarantees:

* **deterministic ordering** — outcomes come back in suite order regardless
  of which worker finished first (and regardless of dispatch order);
* **failure isolation** — a circuit whose flow raises produces an ``error``
  outcome (message + traceback) and the rest of the suite still runs;
* **fault tolerance** — because each circuit is pinned to exactly one
  worker, a worker that dies mid-circuit produces exactly one ``crashed``
  outcome (with its elapsed wall time and pid) and a replacement worker is
  spawned — nothing cascades to pending circuits.  A circuit exceeding the
  hard per-circuit ``timeout`` gets its worker *killed* (never joined) and
  a ``timeout`` outcome.  ``retries`` re-runs failed/crashed circuits with
  exponential backoff for transient failures;
* **resumability** — a :func:`~repro.batch.store.run_key` identifies the
  workload; ``run(..., resume=True)`` skips circuits that already have
  ``ok`` records under the same key and copies them forward, so a killed
  run restarted over the same store converges to bit-identical results;
* **cooperation** — ``run(..., cooperate=True)`` claims each circuit
  through the store's append-only JSONL before dispatching it, letting
  multiple runner processes share one suite without duplicated work;
* **resource governance** — ``memory_limit`` applies ``RLIMIT_AS`` inside
  every pool worker (and an RSS poll in the supervisor as the fallback for
  platforms or workloads the rlimit cannot see), turning a memory-hungry
  circuit into exactly one final ``oom`` outcome instead of a host-wide
  OOM kill; a circuit failing *identically* across ``quarantine_after``
  runs is recorded as quarantined in the store and skipped by later
  resumed/cooperative runs until ``requarantine=True`` clears it;
* **reproducibility metadata** — every outcome carries wall time, cost
  before/after, pass count and a structural fingerprint
  (:func:`state_fingerprint`) so two runs can be diffed bit-for-bit by
  :meth:`~repro.batch.store.ResultStore.compare`.

A pluggable event sink (:class:`~repro.batch.events.RunEvent`) narrates
``started`` / ``retried`` / ``timeout`` / ``crashed`` / ``finished`` /
``skipped`` / ``claimed`` transitions — the hook the serve daemon and the
watch TUI consume.
"""

from __future__ import annotations

import hashlib
import os
import random
import re
import time
import traceback as _traceback
import warnings
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Union

from ..flow import Flow, FlowContext, FlowRunner, PassMetrics, resolve_flow
from ..flow.context import state_cost, state_kind, state_summary
from ..networks.base import LogicNetwork
from ..networks.flat import FlatNetwork
from .events import RunEvent
from .suite import Suite, SuiteEntry

__all__ = ["BatchRunner", "BatchResult", "CircuitOutcome", "state_fingerprint",
           "jittered_backoff", "parse_memory_limit"]

#: outcome statuses that count as failures of the run
_FAILURE_STATUSES = ("error", "crashed", "timeout", "oom")

#: outcome statuses recorded into a result store
_RECORDED_STATUSES = ("ok",) + _FAILURE_STATUSES + ("quarantined",)

#: how often the supervisor samples worker RSS when a memory limit is set
_MEM_POLL = 0.2


def jittered_backoff(base: float, attempt: int, *, cap: float = 60.0,
                     rng: Optional[Callable[[], float]] = None) -> float:
    """Retry delay for ``attempt`` (1-based): capped exponential backoff
    plus additive jitter.

    Returns a delay in ``[d, 1.5*d]`` where ``d = min(cap, base *
    2**(attempt-1))`` — the nominal delay is a *lower bound* (callers may
    rely on "never retries early"), while the jitter decorrelates
    simultaneous retries so a burst of failures against a saturated
    daemon does not thundering-herd it on the exact same schedule.
    ``rng`` injects a ``random.random``-shaped source for deterministic
    tests.  Shared by :class:`BatchRunner` retries and
    :class:`~repro.serve.client.ServeClient` 429 backoff.
    """
    if attempt < 1:
        raise ValueError(f"attempt must be >= 1, got {attempt}")
    draw = rng() if rng is not None else random.random()
    nominal = min(cap, base * (2 ** (attempt - 1)))
    return nominal * (1.0 + 0.5 * draw)


_MEM_SUFFIXES = {"": 1, "b": 1,
                 "k": 1024, "kb": 1024,
                 "m": 1024 ** 2, "mb": 1024 ** 2,
                 "g": 1024 ** 3, "gb": 1024 ** 3,
                 "t": 1024 ** 4, "tb": 1024 ** 4}


def parse_memory_limit(limit: Union[int, float, str, None]) -> Optional[int]:
    """Normalize a memory budget to bytes.

    Accepts ``None`` (no limit), a number of bytes, or a string with an
    optional binary suffix: ``"512M"``, ``"2GB"``, ``"1.5g"``,
    ``"1048576"``.  Rejects non-positive and unparsable values — a typo'd
    limit must fail loudly, not silently run unbounded.
    """
    if limit is None:
        return None
    if isinstance(limit, (int, float)):
        value = int(limit)
    else:
        m = re.fullmatch(r"\s*([0-9]+(?:\.[0-9]+)?)\s*([a-zA-Z]*)\s*",
                         str(limit))
        if not m or m.group(2).lower() not in _MEM_SUFFIXES:
            raise ValueError(
                f"unparsable memory limit {limit!r} (expected e.g. "
                "'512M', '2G', or a byte count)")
        value = int(float(m.group(1)) * _MEM_SUFFIXES[m.group(2).lower()])
    if value <= 0:
        raise ValueError(f"memory limit must be positive, got {limit!r}")
    return value


def _apply_memory_limit(limit_bytes: int) -> bool:
    """Best-effort ``RLIMIT_AS`` inside a worker process; returns whether
    the limit took.  False (no ``resource`` module, an unsupported
    platform, a hard limit below ours) leaves the supervisor's RSS poll
    as the only enforcement — which is exactly why the poll exists.
    """
    try:
        import resource

        _, hard = resource.getrlimit(resource.RLIMIT_AS)
        if hard != resource.RLIM_INFINITY and hard < limit_bytes:
            limit_bytes = hard
        resource.setrlimit(resource.RLIMIT_AS, (limit_bytes, hard))
        return True
    except (ImportError, AttributeError, ValueError, OSError):
        return False


_PAGE_SIZE = 4096
try:
    _PAGE_SIZE = os.sysconf("SC_PAGE_SIZE")
except (AttributeError, ValueError, OSError):
    pass


def _rss_bytes(pid: int) -> Optional[int]:
    """Resident set size of ``pid`` in bytes via ``/proc`` (None where
    unavailable — the RSS poll degrades to rlimit-only enforcement)."""
    try:
        with open(f"/proc/{pid}/statm", "rb") as fh:
            return int(fh.read().split()[1]) * _PAGE_SIZE
    except (OSError, ValueError, IndexError):
        return None


# ---------------------------------------------------------------------- #
# zero-copy network transfer                                              #
# ---------------------------------------------------------------------- #

@dataclass
class _ShmSpec:
    """A circuit spec published as a shared-memory flat snapshot.

    Only the tiny header pickles into the worker payload; the buffers live
    in a parent-owned ``multiprocessing.shared_memory`` block that workers
    attach, copy out of and close (see ``docs/batch.md``).
    """

    header: dict


def _flat_transferable(ntk) -> bool:
    """Whether a network can cross processes as a flat snapshot.

    Only exact representation classes qualify: a behavioural subclass (or
    any class the flat header cannot name) would silently come back as a
    plain network, so those keep object pickling.
    """
    from ..networks import Aig, Mig, MixedNetwork, Xag, Xmg

    return type(ntk) in (Aig, Xag, Mig, Xmg, MixedNetwork, LogicNetwork)


# ---------------------------------------------------------------------- #
# structural fingerprints                                                 #
# ---------------------------------------------------------------------- #

def state_fingerprint(state) -> str:
    """A structural hash of any pipeline state (16 hex chars).

    Two runs produced identical results iff their fingerprints match: the
    state is serialized canonically (AIGER for logic networks — converted
    to AIG first when needed — BLIF for LUT networks, structural Verilog
    for cell netlists) and hashed.  Deterministic across processes.
    """
    kind = state_kind(state)
    if kind == "lut":
        from ..io import write_blif

        text = write_blif(state)
    elif kind == "netlist":
        from ..io import write_verilog_netlist

        text = write_verilog_netlist(state)
    else:
        from ..io import write_aag
        from ..networks import Aig, convert

        ntk = state.ntk if kind == "choice" else state
        if type(ntk) is not Aig:
            ntk = convert(ntk, Aig)
        text = write_aag(ntk)
        if kind == "choice":
            text = f"choices={state.num_choices()}\n" + text
    return hashlib.sha256(text.encode()).hexdigest()[:16]


def _spec_fingerprint(spec, scale: str) -> str:
    """A stable content key for one circuit spec — the run-key input.

    Suite entries fingerprint themselves; network objects use their
    structural fingerprint; ``.aag`` paths hash the file; registry names
    are keyed by name + scale (the generators are deterministic).
    """
    if isinstance(spec, _ShmSpec):
        return f"shm:{spec.header.get('rep')}:{spec.header.get('n')}"
    if isinstance(spec, SuiteEntry):
        return spec.fingerprint(scale)
    if isinstance(spec, LogicNetwork):
        return "net:" + state_fingerprint(spec)
    text = str(spec)
    if text.endswith(".aag"):
        try:
            digest = hashlib.sha256(Path(text).read_bytes()).hexdigest()[:16]
            return f"file:{digest}"
        except OSError:
            return f"file:{text}"
    return f"bench:{text}@{scale}"


# ---------------------------------------------------------------------- #
# outcomes                                                                #
# ---------------------------------------------------------------------- #

@dataclass
class CircuitOutcome:
    """What happened to one circuit of a batch run.

    ``status`` is one of ``ok`` (flow completed), ``error`` (the flow
    raised), ``crashed`` (the worker process died mid-circuit), ``timeout``
    (the circuit exceeded the hard per-circuit timeout and its worker was
    killed), ``oom`` (the circuit exceeded its memory budget — final,
    never retried by default), ``quarantined`` (the circuit breaker
    skipped it on a resumed run) or ``claimed`` (a cooperating runner
    holds the circuit).
    """

    name: str
    index: int
    status: str = "ok"
    seconds: float = 0.0
    kind: str = ""                      # final state kind
    before: tuple = ()                  # (size, depth) of the input
    cost: tuple = ()                    # (size, depth) of the result
    summary: str = ""
    fingerprint: str = ""
    n_passes: int = 0
    error: str = ""
    traceback: str = ""
    worker: int = 0                     # pid of the executing process
    attempts: int = 1                   # execution attempts (1 = no retries)
    resumed_from: str = ""              # run id the record was resumed from
    metric_rows: List[tuple] = field(default_factory=list)
    network: Any = None                 # final state (when returned)
    packed: Any = None                  # (header, payload) flat form in transit
    result: Any = None                  # FlowResult — in-process runs only

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def failed(self) -> bool:
        """Whether this outcome counts as a run failure (``claimed`` and
        resumed outcomes do not)."""
        return self.status in _FAILURE_STATUSES

    def to_record(self) -> dict:
        """The JSON-serializable store record of this outcome."""
        rec = {
            "circuit": self.name,
            "index": self.index,
            "status": self.status,
            "seconds": round(self.seconds, 6),
            "state": self.kind,
            "passes": self.n_passes,
            "worker": self.worker,
        }
        if self.cost:
            rec["size"], rec["depth"] = self.cost
        if self.before:
            rec["size_in"], rec["depth_in"] = self.before
        if self.fingerprint:
            rec["fingerprint"] = self.fingerprint
        if self.error:
            rec["error"] = self.error
        if self.attempts > 1:
            rec["attempts"] = self.attempts
        if self.resumed_from:
            rec["resumed_from"] = self.resumed_from
        return rec

    def row(self) -> List:
        if not self.ok:
            return [self.name, self.status.upper(), "-", "-",
                    round(self.seconds, 3), self.error.split("\n")[0][:50]]
        size, depth = self.cost
        fmt = lambda v: int(v) if float(v).is_integer() else round(v, 2)
        note = self.summary if not self.resumed_from else \
            f"resumed from {self.resumed_from}"
        return [self.name, "ok", fmt(size), fmt(depth),
                round(self.seconds, 3), note]


@dataclass
class BatchResult:
    """Outcome of one batch run: ordered per-circuit results + wall time."""

    flow: str                           # canonical flow script
    scale: str
    jobs: int
    outcomes: List[CircuitOutcome] = field(default_factory=list)
    wall_seconds: float = 0.0
    suite: str = ""
    run_id: str = ""                    # set when recorded into a store
    run_key: str = ""                   # stable workload identity
    transfer: str = ""                  # worker transfer mode ("" = in-process)

    @property
    def failures(self) -> List[CircuitOutcome]:
        return [o for o in self.outcomes if o.failed]

    @property
    def resumed(self) -> List[CircuitOutcome]:
        """Outcomes copied forward from prior runs under the same run key."""
        return [o for o in self.outcomes if o.resumed_from]

    @property
    def quarantined(self) -> List[CircuitOutcome]:
        """Outcomes the circuit breaker skipped (not counted as failures —
        the breaker tripping is old news, not a new regression)."""
        return [o for o in self.outcomes if o.status == "quarantined"]

    def by_name(self) -> Dict[str, CircuitOutcome]:
        return {o.name: o for o in self.outcomes}

    def table(self) -> str:
        from ..experiments.common import format_table

        label = f" [{self.suite}]" if self.suite else ""
        return format_table(
            ["circuit", "status", "size", "depth", "seconds", "result"],
            [o.row() for o in self.outcomes],
            title=(f"batch{label}: {self.flow!r} at scale {self.scale}, "
                   f"jobs={self.jobs}, wall {self.wall_seconds:.2f}s"))


# ---------------------------------------------------------------------- #
# worker-side execution                                                   #
# ---------------------------------------------------------------------- #

_WORKER_CTX: Optional[FlowContext] = None


def _init_worker(n_patterns: int, seed: int) -> None:
    """Pool initializer: one warm FlowContext per worker process."""
    global _WORKER_CTX
    _WORKER_CTX = FlowContext(n_patterns=n_patterns, seed=seed)


def _build_circuit(spec, scale: str):
    """Materialize a payload circuit spec (shm header | SuiteEntry | name |
    network)."""
    if isinstance(spec, _ShmSpec):
        return FlatNetwork.from_shared_memory(spec.header).to_network()
    if isinstance(spec, SuiteEntry):
        return spec.build(scale)
    if isinstance(spec, str):
        from ..circuits import load

        return load(spec, scale)
    return spec                          # an already-built network object


def _execute_flow_job(payload: dict, ctx: Optional[FlowContext] = None,
                      keep_objects: bool = False) -> CircuitOutcome:
    """Run one circuit's flow; never raises — failures become outcomes."""
    if ctx is None:
        ctx = _WORKER_CTX
        if ctx is None:                  # pool without initializer (jobs=1 path)
            ctx = FlowContext()
    outcome = CircuitOutcome(name=payload["name"], index=payload["index"],
                             worker=os.getpid(),
                             attempts=payload.get("attempt", 1))
    t0 = time.perf_counter()
    try:
        plan = payload.get("faults")
        if plan:
            from .faults import apply_fault

            apply_fault(plan, payload["name"], payload.get("attempt", 1))
        ntk = _build_circuit(payload["spec"], payload["scale"])
        outcome.before = state_cost(ntk)
        runner = FlowRunner(ctx, verify=payload.get("verify", False),
                            checkpoint=payload.get("checkpoint", False))
        result = runner.run(ntk, Flow.parse(payload["flow"]), name=payload["name"])
        outcome.seconds = time.perf_counter() - t0
        outcome.kind = state_kind(result.network)
        outcome.cost = state_cost(result.network)
        outcome.summary = state_summary(result.network)
        outcome.fingerprint = state_fingerprint(result.network)
        outcome.n_passes = len(result.metrics)
        outcome.metric_rows = [
            (m.name, m.script, m.seconds, tuple(m.before), tuple(m.after),
             m.kind_before, m.kind_after) for m in result.metrics]
        if payload.get("return_network", True):
            net = result.network
            if payload.get("pack_return") and isinstance(net, LogicNetwork):
                # ship the flat buffers home instead of an object-graph pickle
                snap = net.flat
                outcome.packed = (snap.header(), snap.pack())
            else:
                outcome.network = net
        if keep_objects:
            outcome.result = result
    except MemoryError as exc:           # budget hit: final, not retried
        # no traceback capture — formatting one allocates, and the worker
        # is already at its RLIMIT_AS ceiling
        outcome.seconds = time.perf_counter() - t0
        outcome.status = "oom"
        outcome.error = f"MemoryError: {exc}" if str(exc) else \
            "MemoryError: circuit exceeded the worker memory budget"
    except Exception as exc:             # per-circuit isolation
        outcome.seconds = time.perf_counter() - t0
        outcome.status = "error"
        outcome.error = f"{type(exc).__name__}: {exc}"
        outcome.traceback = _traceback.format_exc()
    return outcome


def _execute_map_job(payload: tuple):
    """Generic fan-out: run ``fn(task, ctx)`` under the worker context."""
    index, fn, task = payload
    ctx = _WORKER_CTX if _WORKER_CTX is not None else FlowContext()
    return index, fn(task, ctx)


def _worker_main(conn, n_patterns: int, seed: int,
                 memory_limit: Optional[int] = None) -> None:
    """Supervised pool worker: receive payloads, execute, send outcomes.

    The loop ends on a ``None`` payload (orderly shutdown) or a dead pipe
    (the supervisor went away).  ``_execute_flow_job`` never raises, so
    the only ways a worker dies mid-circuit are real crashes — which is
    exactly what the supervisor's pipe-EOF detection is for.

    ``memory_limit`` (bytes) installs ``RLIMIT_AS`` before the first job:
    an allocation past the budget raises ``MemoryError`` inside the job
    and comes home as a clean ``oom`` outcome rather than a dead worker.
    """
    if memory_limit is not None:
        _apply_memory_limit(memory_limit)
    _init_worker(n_patterns, seed)
    while True:
        try:
            payload = conn.recv()
        except (EOFError, OSError):
            break
        if payload is None:
            break
        outcome = _execute_flow_job(payload)
        try:
            conn.send(outcome)
        except (BrokenPipeError, OSError):
            break
    conn.close()


class _PoolWorker:
    """Supervisor-side handle of one worker process."""

    __slots__ = ("proc", "conn", "payload", "started")

    def __init__(self, proc, conn):
        self.proc = proc
        self.conn = conn
        self.payload: Optional[dict] = None   # the in-flight job, if any
        self.started: float = 0.0             # monotonic dispatch time


def spawn_pool_worker(n_patterns: int = 256, seed: int = 1,
                      memory_limit: Optional[int] = None) -> _PoolWorker:
    """Spawn one supervised pool worker: a daemon process running
    :func:`_worker_main` with a warm :class:`FlowContext`, attached to the
    supervisor by one duplex pipe.  Shared by :class:`BatchRunner` and the
    serve daemon's persistent pool.  ``memory_limit`` (bytes) caps the
    worker's address space via ``RLIMIT_AS``."""
    import multiprocessing as mp

    parent_conn, child_conn = mp.Pipe()
    proc = mp.Process(target=_worker_main,
                      args=(child_conn, n_patterns, seed, memory_limit),
                      daemon=True)
    proc.start()
    child_conn.close()
    return _PoolWorker(proc, parent_conn)


def kill_pool_worker(worker: _PoolWorker) -> None:
    """Close the pipe and SIGKILL (never join an alive process first) one
    pool worker — the hard-timeout path: a hung worker cannot be joined."""
    try:
        worker.conn.close()
    except OSError:
        pass
    if worker.proc.is_alive():
        worker.proc.kill()
    worker.proc.join(5)


# ---------------------------------------------------------------------- #
# the runner                                                              #
# ---------------------------------------------------------------------- #

class BatchRunner:
    """Execute flows (or arbitrary per-task functions) over circuit sets.

    ``jobs=1`` runs in-process against ``context`` (or a fresh one);
    ``jobs>1`` shards across a supervised worker pool with one warm
    per-worker context.  ``progress`` is an optional
    ``callable(done, total, outcome)`` invoked as results arrive
    (completion order, not suite order); ``events`` is an optional sink
    receiving :class:`~repro.batch.events.RunEvent` transitions.

    Fault tolerance (pool runs):

    * ``timeout`` — hard per-circuit wall-clock limit in seconds; a worker
      exceeding it is SIGKILLed and replaced, the circuit becomes a
      ``timeout`` outcome (in-process runs cannot be killed, so ``jobs=1``
      ignores it);
    * ``retries`` — extra attempts for ``error`` and ``crashed`` circuits,
      delayed by :func:`jittered_backoff` (capped exponential, additive
      jitter so simultaneous retries decorrelate);
    * a worker that dies mid-circuit yields exactly one ``crashed``
      outcome (elapsed time + pid); pending circuits are unaffected;
    * ``memory_limit`` — per-worker memory budget (bytes, or a string
      like ``"512M"``): applied as ``RLIMIT_AS`` inside each worker, and
      enforced from the supervisor by an RSS poll for workers the rlimit
      cannot protect.  A circuit over budget becomes exactly one final
      ``oom`` outcome — never retried, never cascading (``jobs=1``
      in-process runs cannot be rlimited, but a ``MemoryError`` there is
      still classified ``oom``);
    * ``quarantine_after`` — the circuit breaker: a circuit that fails
      with the same :func:`~repro.batch.store.failure_signature` in this
      many runs under one run key is recorded as quarantined in the
      store; resumed/cooperative runs then skip it (with a
      ``quarantined`` event) until ``run(..., requarantine=True)``
      clears it.  ``0`` disables the breaker.

    ``order="largest"`` dispatches biggest circuits first to bound the
    straggler tail (results still return in suite order); ``"suite"``
    keeps manifest order.  ``transfer`` picks how networks cross the
    process boundary (``"shm"`` flat shared-memory snapshots, ``"pickle"``
    object graphs, ``"auto"`` shm for network objects / in-worker builds
    for named specs) — all three are bit-identical.  ``faults`` installs a
    :class:`~repro.batch.faults.FaultPlan` (chaos testing).
    """

    def __init__(self, *, jobs: int = 1, context: Optional[FlowContext] = None,
                 progress: Optional[Callable] = None, verify: bool = False,
                 checkpoint: bool = False, n_patterns: int = 256, seed: int = 1,
                 return_networks: bool = True, transfer: str = "auto",
                 timeout: Optional[float] = None, retries: int = 0,
                 backoff: float = 0.5, order: str = "suite",
                 events: Optional[Callable] = None, faults=None,
                 claim_ttl: Optional[float] = None, owner: str = "",
                 memory_limit: Union[int, str, None] = None,
                 quarantine_after: int = 2):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if transfer not in ("auto", "shm", "pickle"):
            raise ValueError(f"transfer must be auto|shm|pickle, got {transfer!r}")
        if order not in ("suite", "largest"):
            raise ValueError(f"order must be suite|largest, got {order!r}")
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if quarantine_after < 0:
            raise ValueError(
                f"quarantine_after must be >= 0, got {quarantine_after}")
        self.memory_limit = parse_memory_limit(memory_limit)
        self.quarantine_after = quarantine_after
        self.jobs = jobs
        self.ctx = context if context is not None else FlowContext(
            n_patterns=n_patterns, seed=seed)
        self.progress = progress
        self.verify = verify
        self.checkpoint = checkpoint
        self.n_patterns = n_patterns
        self.seed = seed
        self.return_networks = return_networks
        self.transfer = transfer
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.order = order
        self.events = events
        self.faults = faults
        self.claim_ttl = claim_ttl
        import socket

        self.owner = owner or f"{socket.gethostname()}:{os.getpid()}"

    # -- flow batches --------------------------------------------------------

    def run(self, circuits: Union[Suite, Iterable], flow,
            *, scale: Optional[str] = None, store=None,
            store_meta: Optional[dict] = None, resume: bool = False,
            cooperate: bool = False, requarantine: bool = False) -> BatchResult:
        """Run one flow over a suite / circuit list; returns a
        :class:`BatchResult` with outcomes in suite order.

        ``circuits`` is a :class:`Suite`, or an iterable mixing benchmark
        names, ``.aag`` paths, :class:`SuiteEntry` items and network
        objects.  ``store`` (a :class:`~repro.batch.store.ResultStore` or a
        path) records the run *incrementally* when given — the header is
        appended up front and each circuit as it completes, so an
        interrupted run leaves a resumable prefix.

        ``resume=True`` skips circuits that already have ``ok`` records
        under the same run key (copying them forward into this run);
        ``cooperate=True`` claims each circuit through the store before
        dispatching it so concurrent runners share the suite.  Both need
        ``store``, and both honor the circuit breaker: circuits recorded
        as quarantined under the run key are skipped (a ``quarantined``
        outcome + event), unless ``requarantine=True`` first clears the
        quarantine records and lets every circuit run again.
        """
        suite_name = ""
        if isinstance(circuits, Suite):
            suite_name = circuits.name
            scale = scale or circuits.scale
            items: Sequence = list(circuits.entries)
        else:
            items = list(circuits)
        scale = scale or "small"
        flow_text = resolve_flow(flow).to_script()

        from .store import ResultStore, StoreWriteError, run_key as _run_key

        if store is not None and not isinstance(store, ResultStore):
            store = ResultStore(store)
        if (resume or cooperate) and store is None:
            raise ValueError("resume/cooperate need a result store")
        if requarantine and store is None:
            raise ValueError("requarantine needs a result store")
        if self.events is not None and hasattr(self.events, "rearm"):
            self.events.rearm()          # a sink broken last run gets retried

        payloads = self._payloads(items, flow_text, scale)
        key = _run_key(flow_text, suite_name, scale,
                       [(p["name"], _spec_fingerprint(p["spec"], p["scale"]))
                        for p in payloads])
        total = len(payloads)
        outcomes: Dict[int, CircuitOutcome] = {}
        t0 = time.perf_counter()
        run_id = ""
        if store is not None:
            run_id = store.open_run(flow=flow_text, suite=suite_name,
                                    scale=scale, jobs=self.jobs,
                                    circuits=total, run_key=key,
                                    meta=store_meta)

        def finalize(outcome: CircuitOutcome) -> None:
            outcomes[outcome.index] = outcome
            if store is not None and outcome.status in _RECORDED_STATUSES:
                try:
                    store.append_result(run_id, outcome.to_record())
                except StoreWriteError as exc:
                    # the record is lost (a resume re-runs this circuit),
                    # the run — and the file — survive
                    warnings.warn(f"result store append failed for "
                                  f"{outcome.name!r}: {exc}")
                else:
                    self._maybe_quarantine(store, key, outcome)
            if self.progress:
                self.progress(len(outcomes), total, outcome)

        if requarantine:
            store.requarantine(key)
        if resume:
            prior = store.completed(key)
            todo = []
            for p in payloads:
                rec = prior.get(p["name"])
                if rec is None:
                    todo.append(p)
                    continue
                outcome = self._resumed_outcome(p, rec)
                self._emit("skipped", outcome,
                           detail=f"ok under run key {key} "
                                  f"(run {outcome.resumed_from})")
                finalize(outcome)
            payloads = todo
        if (resume or cooperate) and self.quarantine_after:
            held = store.quarantined(key)
            todo = []
            for p in payloads:
                q = held.get(p["name"])
                if q is None:
                    todo.append(p)
                    continue
                outcome = CircuitOutcome(
                    name=p["name"], index=p["index"], status="quarantined",
                    error=(f"quarantined after {q.get('runs', '?')} identical "
                           f"{q.get('status', 'failed')} outcomes: "
                           f"{q.get('error', '')}"))
                self._emit("quarantined", outcome,
                           detail=f"skipped: quarantined under run key {key} "
                                  f"(clear with requarantine)")
                finalize(outcome)
            payloads = todo
        if self.order == "largest":
            payloads = self._order_largest(payloads)

        claims = (store, key) if cooperate else None
        pooled = self.jobs > 1 and len(payloads) > 1
        shm_blocks: List = []
        try:
            if not pooled:
                self._run_sequential(payloads, finalize, claims)
            else:
                self._publish_shm(payloads, shm_blocks)
                self._run_pool(payloads, finalize, claims)
        finally:
            for shm in shm_blocks:   # parent owns every block's lifetime
                shm.close()
                try:
                    shm.unlink()
                except FileNotFoundError:
                    pass
        wall = time.perf_counter() - t0
        result = BatchResult(flow=flow_text, scale=scale, jobs=self.jobs,
                             outcomes=[outcomes[i] for i in sorted(outcomes)],
                             wall_seconds=wall, suite=suite_name,
                             run_id=run_id, run_key=key,
                             transfer=self.transfer if pooled else "")
        if store is not None:
            try:
                store.close_run(run_id, wall_seconds=wall,
                                failures=len(result.failures))
            except StoreWriteError as exc:
                # an unclosed run reads back as interrupted — resumable
                warnings.warn(f"result store close failed: {exc}")
        return result

    def _payloads(self, items: Sequence, flow_text: str, scale: str) -> List[dict]:
        payloads, seen = [], set()
        for i, item in enumerate(items):
            if isinstance(item, SuiteEntry):
                name, spec = item.name, item
            elif isinstance(item, str) or hasattr(item, "suffix"):
                name, spec = str(item), str(item)
            else:
                name, spec = getattr(item, "name", "") or f"circuit{i}", item
            if name in seen:             # repeated circuit: keep both results
                suffix = 2
                while f"{name}#{suffix}" in seen:
                    suffix += 1
                name = f"{name}#{suffix}"
            seen.add(name)
            payloads.append({"index": i, "name": name, "spec": spec,
                             "scale": scale, "flow": flow_text,
                             "attempt": 1,
                             "verify": self.verify,
                             "checkpoint": self.checkpoint,
                             "return_network": self.return_networks,
                             "pack_return": self.transfer != "pickle"})
            if self.faults is not None:
                payloads[-1]["faults"] = self.faults.to_payload()
        return payloads

    def _order_largest(self, payloads: List[dict]) -> List[dict]:
        """Dispatch order: biggest inputs first, ties in suite order.

        Sizes come from the spec when it already is a network (or a shm
        header); named/manifest specs are built once here — and, when the
        transfer mode allows it, the built network replaces the spec so
        the build is not repeated in the worker.
        """
        sized = []
        for p in payloads:
            spec = p["spec"]
            if isinstance(spec, _ShmSpec):
                size = spec.header.get("n", 0)
            elif isinstance(spec, LogicNetwork):
                size = spec.num_gates()
            else:
                try:
                    ntk = _build_circuit(spec, p["scale"])
                except Exception:
                    size = -1            # the worker will report the real error
                else:
                    size = ntk.num_gates()
                    if self.transfer != "pickle":
                        p["spec"] = ntk  # reuse the build (lifted to shm next)
            sized.append((size, p))
        sized.sort(key=lambda t: (-t[0], t[1]["index"]))
        return [p for _, p in sized]

    def _publish_shm(self, payloads: List[dict], blocks: List) -> None:
        """Lift payload specs into shared-memory flat snapshots.

        Created blocks are appended to the *caller's* ``blocks`` list as
        they are made, so the caller's ``finally`` unlinks every block
        even when a later publish raises mid-loop (the historical leak
        window).  The caller closes + unlinks them once the pool is done;
        workers only ever attach/copy/close.  In ``"auto"`` mode only
        already-built network objects are lifted — a name or
        :class:`SuiteEntry` pickles smaller than its circuit, so those
        still build in the worker.  In ``"shm"`` mode every spec is built
        in the parent and published; a spec that fails to build (or is not
        a plain logic network) falls back to its pickled form.
        """
        if self.transfer == "pickle":
            return
        for p in payloads:
            spec = p["spec"]
            if isinstance(spec, LogicNetwork) and _flat_transferable(spec):
                ntk = spec
            elif self.transfer == "shm" and not isinstance(spec, LogicNetwork):
                try:
                    built = _build_circuit(spec, p["scale"])
                except Exception:
                    continue             # worker will report the real error
                if not _flat_transferable(built):
                    continue
                ntk = built
            else:
                continue
            shm, header = ntk.flat.to_shared_memory()
            blocks.append(shm)
            p["spec"] = _ShmSpec(header)

    # -- event / claim plumbing ----------------------------------------------

    def _emit(self, kind: str, outcome: Optional[CircuitOutcome] = None, *,
              payload: Optional[dict] = None, worker: int = 0,
              seconds: float = 0.0, detail: str = "") -> None:
        """Send one event to the sink; a broken sink never kills the run."""
        if self.events is None:
            return
        if outcome is not None:
            event = RunEvent(kind=kind, circuit=outcome.name,
                             index=outcome.index, attempt=outcome.attempts,
                             status=outcome.status, seconds=outcome.seconds,
                             worker=outcome.worker, detail=detail,
                             at=time.time())
        else:
            event = RunEvent(kind=kind, circuit=payload["name"],
                             index=payload["index"],
                             attempt=payload.get("attempt", 1),
                             seconds=seconds, worker=worker, detail=detail,
                             at=time.time())
        try:
            self.events(event)
        except Exception as exc:
            warnings.warn(f"batch event sink failed on {kind!r}: {exc}")

    def _claim_or_yield(self, claims, payload) -> Optional[CircuitOutcome]:
        """Try to claim a circuit; returns a ``claimed`` outcome on loss."""
        if claims is None:
            return None
        store, key = claims
        won, winner = store.claim(key, payload["name"], owner=self.owner,
                                  ttl=self.claim_ttl)
        if won:
            return None
        outcome = CircuitOutcome(
            name=payload["name"], index=payload["index"], status="claimed",
            attempts=payload.get("attempt", 1),
            error=f"claimed by {winner.get('owner', '?')}")
        self._emit("claimed", outcome,
                   detail=f"held by {winner.get('owner', '?')}")
        return outcome

    def _resumed_outcome(self, payload: dict, rec: dict) -> CircuitOutcome:
        """Rehydrate a prior ``ok`` record into this run's outcome."""
        outcome = CircuitOutcome(
            name=payload["name"], index=payload["index"], status="ok",
            seconds=float(rec.get("seconds", 0.0)),
            kind=rec.get("state", ""), fingerprint=rec.get("fingerprint", ""),
            n_passes=int(rec.get("passes", 0)),
            worker=int(rec.get("worker", 0)),
            attempts=int(rec.get("attempts", 1)),
            resumed_from=rec.get("resumed_from") or rec.get("run_id", ""))
        if "size" in rec:
            outcome.cost = (rec["size"], rec["depth"])
        if "size_in" in rec:
            outcome.before = (rec["size_in"], rec["depth_in"])
        outcome.summary = f"resumed from {outcome.resumed_from}"
        return outcome

    def _maybe_quarantine(self, store, key: str,
                          outcome: CircuitOutcome) -> None:
        """Trip the circuit breaker when a failure keeps repeating.

        Called after ``outcome``'s record was appended: counts the runs
        under ``key`` whose record for this circuit carries the same
        :func:`~repro.batch.store.failure_signature` (the just-written
        record included), and appends a quarantine line once the count
        reaches ``quarantine_after``.  Store trouble only warns — the
        breaker is protection, not a new failure mode.
        """
        if (not self.quarantine_after or not key
                or outcome.status not in _FAILURE_STATUSES):
            return
        from .store import StoreWriteError, failure_signature

        try:
            sig = failure_signature(outcome.status, outcome.error)
            repeats = 0
            for run in store.runs():
                if run.run_key != key:
                    continue
                rec = run.results.get(outcome.name)
                if (rec is not None
                        and rec.get("status") in _FAILURE_STATUSES
                        and failure_signature(rec.get("status", ""),
                                              rec.get("error", "")) == sig):
                    repeats += 1
            if repeats < self.quarantine_after or \
                    outcome.name in store.quarantined(key):
                return
            store.quarantine(key, outcome.name, signature=sig,
                             status=outcome.status,
                             error=(outcome.error or "").splitlines()[0],
                             runs=repeats)
        except (StoreWriteError, ValueError) as exc:
            warnings.warn(f"quarantine bookkeeping failed for "
                          f"{outcome.name!r}: {exc}")
            return
        self._emit("quarantined", outcome,
                   detail=f"{repeats} identical {outcome.status} outcomes — "
                          f"resumed runs will skip this circuit until "
                          f"requarantine")

    def _backoff_delay(self, attempt: int) -> float:
        return jittered_backoff(self.backoff, attempt)

    # -- in-process execution ------------------------------------------------

    def _run_sequential(self, payloads: List[dict], finalize, claims) -> None:
        for payload in payloads:
            yielded = self._claim_or_yield(claims, payload)
            if yielded is not None:
                finalize(yielded)
                continue
            while True:
                self._emit("started", payload=payload, worker=os.getpid())
                outcome = _execute_flow_job(payload, ctx=self.ctx,
                                            keep_objects=True)
                if outcome.status == "error" and payload["attempt"] <= self.retries:
                    delay = self._backoff_delay(payload["attempt"])
                    self._emit("retried", outcome,
                               detail=f"{outcome.error.splitlines()[0]} — "
                                      f"retrying in {delay:.2f}s")
                    time.sleep(delay)
                    payload = dict(payload, attempt=payload["attempt"] + 1)
                    continue
                break
            self._emit("oom" if outcome.status == "oom" else "finished",
                       outcome)
            finalize(outcome)

    # -- supervised worker pool ----------------------------------------------

    def _spawn_worker(self) -> _PoolWorker:
        return spawn_pool_worker(self.n_patterns, self.seed,
                                 self.memory_limit)

    def _replace_worker(self, workers: List[_PoolWorker], worker: _PoolWorker) -> None:
        kill_pool_worker(worker)
        workers[workers.index(worker)] = self._spawn_worker()

    def _shutdown_workers(self, workers: List[_PoolWorker]) -> None:
        for w in workers:
            try:
                w.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for w in workers:
            w.proc.join(1.0)
            if w.proc.is_alive():
                w.proc.kill()
                w.proc.join(5)
            try:
                w.conn.close()
            except OSError:
                pass

    def _finish_outcome(self, outcome: CircuitOutcome) -> CircuitOutcome:
        """Rebuild packed result networks shipped home as flat buffers."""
        if outcome.packed is not None:
            header, buf = outcome.packed
            outcome.network = FlatNetwork.unpack(header, buf).to_network()
            outcome.packed = None
        return outcome

    def _run_pool(self, payloads: List[dict], finalize, claims) -> None:
        """The supervisor loop: dispatch, collect, kill, retry, replace.

        Every circuit is pinned to the worker executing it (one duplex
        pipe per worker), so worker death is attributed to exactly one
        circuit, hung workers can be killed without touching their
        siblings, and nothing a dead worker leaves behind can poison the
        rest of the run.
        """
        from multiprocessing.connection import wait as _conn_wait

        queue = deque(payloads)
        delayed: List[tuple] = []        # (ready_at, payload) retry backoffs
        workers = [self._spawn_worker()
                   for _ in range(min(self.jobs, len(payloads)))]

        def retry_or(final_kind: str, outcome: CircuitOutcome,
                     payload: dict, now: float) -> None:
            """Requeue a failed attempt, or finalize it as ``final_kind``."""
            if payload["attempt"] <= self.retries:
                delay = self._backoff_delay(payload["attempt"])
                self._emit("retried", outcome,
                           detail=f"{outcome.status}: "
                                  f"{(outcome.error or '?').splitlines()[0]}"
                                  f" — retrying in {delay:.2f}s")
                delayed.append((now + delay,
                                dict(payload, attempt=payload["attempt"] + 1)))
                return
            self._emit(final_kind, outcome)
            finalize(outcome)

        try:
            while True:
                now = time.monotonic()
                # promote ripe retry backoffs to the front of the queue
                if delayed:
                    ripe = [p for t, p in delayed if t <= now]
                    delayed = [(t, p) for t, p in delayed if t > now]
                    for p in ripe:
                        queue.appendleft(p)
                # dispatch work to idle workers
                for w in workers:
                    if w.payload is not None:
                        continue
                    payload = None
                    while queue:
                        payload = queue.popleft()
                        yielded = self._claim_or_yield(claims, payload)
                        if yielded is None:
                            break
                        finalize(yielded)
                        payload = None
                    if payload is None:
                        continue
                    try:
                        w.conn.send(payload)
                    except (BrokenPipeError, OSError):
                        # the worker died while idle: requeue, replace
                        queue.appendleft(payload)
                        self._replace_worker(workers, w)
                        continue
                    w.payload = payload
                    w.started = time.monotonic()
                    self._emit("started", payload=payload, worker=w.proc.pid)
                busy = [w for w in workers if w.payload is not None]
                if not busy:
                    if delayed:
                        wake = min(t for t, _ in delayed)
                        time.sleep(max(0.0, wake - time.monotonic()))
                        continue
                    if queue:
                        continue         # claims drained mid-dispatch
                    break
                # sleep until a result, the next deadline, or the next retry
                wake = None
                if self.timeout is not None:
                    wake = min(w.started + self.timeout for w in busy)
                if delayed:
                    ripe_at = min(t for t, _ in delayed)
                    wake = ripe_at if wake is None else min(wake, ripe_at)
                tick = (None if wake is None
                        else max(0.0, wake - time.monotonic()))
                if self.memory_limit is not None:
                    # wake often enough for the RSS poll to matter
                    tick = _MEM_POLL if tick is None else min(tick, _MEM_POLL)
                ready = _conn_wait([w.conn for w in busy], timeout=tick)
                now = time.monotonic()
                for conn in ready:
                    w = next(x for x in workers if x.conn is conn)
                    payload, started = w.payload, w.started
                    if payload is None:
                        continue
                    try:
                        outcome = conn.recv()
                    except (EOFError, OSError):
                        # the worker died mid-circuit: exactly this circuit
                        # is the casualty — nothing else is requeued
                        pid = w.proc.pid
                        w.payload = None
                        self._replace_worker(workers, w)
                        outcome = CircuitOutcome(
                            name=payload["name"], index=payload["index"],
                            status="crashed", seconds=now - started,
                            worker=pid or 0,
                            attempts=payload.get("attempt", 1),
                            error=f"worker {pid} died mid-circuit")
                        retry_or("crashed", outcome, payload, now)
                        continue
                    w.payload = None
                    outcome.attempts = payload.get("attempt", 1)
                    self._finish_outcome(outcome)
                    if outcome.status == "error":
                        retry_or("finished", outcome, payload, now)
                        continue
                    # "oom" is deliberately NOT retried: a circuit over its
                    # budget will be over it again — final, like timeout
                    self._emit("oom" if outcome.status == "oom"
                               else "finished", outcome)
                    finalize(outcome)
                # hard per-circuit timeouts: kill, never join
                if self.timeout is not None:
                    now = time.monotonic()
                    for w in list(workers):
                        if w.payload is None or now - w.started < self.timeout:
                            continue
                        payload, elapsed = w.payload, now - w.started
                        pid = w.proc.pid
                        w.payload = None
                        self._replace_worker(workers, w)
                        outcome = CircuitOutcome(
                            name=payload["name"], index=payload["index"],
                            status="timeout", seconds=elapsed,
                            worker=pid or 0,
                            attempts=payload.get("attempt", 1),
                            error=f"killed after exceeding the "
                                  f"{self.timeout}s circuit timeout")
                        self._emit("timeout", outcome)
                        finalize(outcome)
                # RSS poll: the supervisor-side backstop for workers the
                # rlimit cannot protect (platforms without RLIMIT_AS, or
                # growth in mappings the limit does not cover)
                if self.memory_limit is not None:
                    now = time.monotonic()
                    for w in list(workers):
                        if w.payload is None:
                            continue
                        rss = _rss_bytes(w.proc.pid)
                        if rss is None or rss <= self.memory_limit:
                            continue
                        payload, elapsed = w.payload, now - w.started
                        pid = w.proc.pid
                        w.payload = None
                        self._replace_worker(workers, w)
                        outcome = CircuitOutcome(
                            name=payload["name"], index=payload["index"],
                            status="oom", seconds=elapsed,
                            worker=pid or 0,
                            attempts=payload.get("attempt", 1),
                            error=f"killed: worker RSS {rss // (1024 * 1024)}"
                                  f"MiB exceeded the "
                                  f"{self.memory_limit // (1024 * 1024)}MiB "
                                  f"memory budget")
                        self._emit("oom", outcome,
                                   detail="supervisor RSS poll")
                        finalize(outcome)
        finally:
            self._shutdown_workers(workers)

    # -- generic fan-out (the experiments drivers) ---------------------------

    def map(self, tasks: Sequence, fn: Callable) -> List:
        """Apply ``fn(task, ctx)`` to every task, in order.

        ``fn`` must be a module-level callable (picklable by reference) and
        each task picklable.  With ``jobs=1`` every call shares this
        runner's context; with ``jobs>1`` tasks shard across a process pool
        and run under per-worker contexts.  Unlike :meth:`run`, exceptions
        propagate — callers wanting isolation use :meth:`run`.
        """
        tasks = list(tasks)
        if self.jobs == 1 or len(tasks) <= 1:
            return [fn(task, self.ctx) for task in tasks]
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(
                max_workers=min(self.jobs, len(tasks)),
                initializer=_init_worker,
                initargs=(self.n_patterns, self.seed)) as pool:
            indexed = pool.map(_execute_map_job,
                               [(i, fn, t) for i, t in enumerate(tasks)])
            results = {i: r for i, r in indexed}
        return [results[i] for i in range(len(tasks))]

    # -- interop with the flow API -------------------------------------------

    def flow_results(self, batch: BatchResult) -> "Dict[str, Any]":
        """View a batch's outcomes as ``name -> FlowResult`` (the
        ``FlowRunner.run_many`` return shape).  Failed circuits raise."""
        from ..flow import FlowError
        from ..flow.runner import FlowResult

        out: Dict[str, Any] = {}
        for o in batch.outcomes:
            if not o.ok:
                raise FlowError(
                    f"flow failed on {o.name!r}: {o.error}\n{o.traceback}")
            if o.result is not None:
                out[o.name] = o.result
                continue
            metrics = [PassMetrics(name=n, script=s, seconds=sec,
                                   before=b, after=a,
                                   kind_before=kb, kind_after=ka)
                       for n, s, sec, b, a, kb, ka in o.metric_rows]
            out[o.name] = FlowResult(
                network=o.network, input=None, flow=Flow.parse(batch.flow),
                metrics=metrics, seconds=o.seconds, name=o.name)
        return out
