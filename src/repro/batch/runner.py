"""BatchRunner — shard suite execution across a process pool.

The runner turns a :class:`~repro.batch.suite.Suite` (or any circuit list)
plus one flow script into per-circuit jobs and executes them either
in-process (``jobs=1`` — one shared :class:`~repro.flow.context.FlowContext`,
exactly the semantics of ``FlowRunner.run_many``) or across a
``ProcessPoolExecutor`` (``jobs>1`` — one *per-worker* context built by the
pool initializer, so shared engines stay warm within each worker while
workers proceed independently).

Guarantees:

* **deterministic ordering** — outcomes come back in suite order regardless
  of which worker finished first;
* **failure isolation** — a circuit whose flow raises produces an ``error``
  outcome (message + traceback) and the rest of the suite still runs;
* **reproducibility metadata** — every outcome carries wall time, cost
  before/after, pass count and a structural fingerprint
  (:func:`state_fingerprint`) so two runs can be diffed bit-for-bit by
  :meth:`~repro.batch.store.ResultStore.compare`.
"""

from __future__ import annotations

import hashlib
import time
import traceback as _traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Union

from ..flow import Flow, FlowContext, FlowRunner, PassMetrics, resolve_flow
from ..flow.context import state_cost, state_kind, state_summary
from ..networks.base import LogicNetwork
from ..networks.flat import FlatNetwork
from .suite import Suite, SuiteEntry

__all__ = ["BatchRunner", "BatchResult", "CircuitOutcome", "state_fingerprint"]


# ---------------------------------------------------------------------- #
# zero-copy network transfer                                              #
# ---------------------------------------------------------------------- #

@dataclass
class _ShmSpec:
    """A circuit spec published as a shared-memory flat snapshot.

    Only the tiny header pickles into the worker payload; the buffers live
    in a parent-owned ``multiprocessing.shared_memory`` block that workers
    attach, copy out of and close (see ``docs/batch.md``).
    """

    header: dict


def _flat_transferable(ntk) -> bool:
    """Whether a network can cross processes as a flat snapshot.

    Only exact representation classes qualify: a behavioural subclass (or
    any class the flat header cannot name) would silently come back as a
    plain network, so those keep object pickling.
    """
    from ..networks import Aig, Mig, MixedNetwork, Xag, Xmg

    return type(ntk) in (Aig, Xag, Mig, Xmg, MixedNetwork, LogicNetwork)


# ---------------------------------------------------------------------- #
# structural fingerprints                                                 #
# ---------------------------------------------------------------------- #

def state_fingerprint(state) -> str:
    """A structural hash of any pipeline state (16 hex chars).

    Two runs produced identical results iff their fingerprints match: the
    state is serialized canonically (AIGER for logic networks — converted
    to AIG first when needed — BLIF for LUT networks, structural Verilog
    for cell netlists) and hashed.  Deterministic across processes.
    """
    kind = state_kind(state)
    if kind == "lut":
        from ..io import write_blif

        text = write_blif(state)
    elif kind == "netlist":
        from ..io import write_verilog_netlist

        text = write_verilog_netlist(state)
    else:
        from ..io import write_aag
        from ..networks import Aig, convert

        ntk = state.ntk if kind == "choice" else state
        if type(ntk) is not Aig:
            ntk = convert(ntk, Aig)
        text = write_aag(ntk)
        if kind == "choice":
            text = f"choices={state.num_choices()}\n" + text
    return hashlib.sha256(text.encode()).hexdigest()[:16]


# ---------------------------------------------------------------------- #
# outcomes                                                                #
# ---------------------------------------------------------------------- #

@dataclass
class CircuitOutcome:
    """What happened to one circuit of a batch run."""

    name: str
    index: int
    status: str = "ok"                  # "ok" | "error"
    seconds: float = 0.0
    kind: str = ""                      # final state kind
    before: tuple = ()                  # (size, depth) of the input
    cost: tuple = ()                    # (size, depth) of the result
    summary: str = ""
    fingerprint: str = ""
    n_passes: int = 0
    error: str = ""
    traceback: str = ""
    worker: int = 0                     # pid of the executing process
    metric_rows: List[tuple] = field(default_factory=list)
    network: Any = None                 # final state (when returned)
    packed: Any = None                  # (header, payload) flat form in transit
    result: Any = None                  # FlowResult — in-process runs only

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_record(self) -> dict:
        """The JSON-serializable store record of this outcome."""
        rec = {
            "circuit": self.name,
            "index": self.index,
            "status": self.status,
            "seconds": round(self.seconds, 6),
            "state": self.kind,
            "passes": self.n_passes,
            "worker": self.worker,
        }
        if self.cost:
            rec["size"], rec["depth"] = self.cost
        if self.before:
            rec["size_in"], rec["depth_in"] = self.before
        if self.fingerprint:
            rec["fingerprint"] = self.fingerprint
        if self.error:
            rec["error"] = self.error
        return rec

    def row(self) -> List:
        if not self.ok:
            return [self.name, "ERROR", "-", "-", round(self.seconds, 3),
                    self.error.split("\n")[0][:50]]
        size, depth = self.cost
        fmt = lambda v: int(v) if float(v).is_integer() else round(v, 2)
        return [self.name, "ok", fmt(size), fmt(depth),
                round(self.seconds, 3), self.summary]


@dataclass
class BatchResult:
    """Outcome of one batch run: ordered per-circuit results + wall time."""

    flow: str                           # canonical flow script
    scale: str
    jobs: int
    outcomes: List[CircuitOutcome] = field(default_factory=list)
    wall_seconds: float = 0.0
    suite: str = ""
    run_id: str = ""                    # set when recorded into a store
    transfer: str = ""                  # worker transfer mode ("" = in-process)

    @property
    def failures(self) -> List[CircuitOutcome]:
        return [o for o in self.outcomes if not o.ok]

    def by_name(self) -> Dict[str, CircuitOutcome]:
        return {o.name: o for o in self.outcomes}

    def table(self) -> str:
        from ..experiments.common import format_table

        label = f" [{self.suite}]" if self.suite else ""
        return format_table(
            ["circuit", "status", "size", "depth", "seconds", "result"],
            [o.row() for o in self.outcomes],
            title=(f"batch{label}: {self.flow!r} at scale {self.scale}, "
                   f"jobs={self.jobs}, wall {self.wall_seconds:.2f}s"))


# ---------------------------------------------------------------------- #
# worker-side execution                                                   #
# ---------------------------------------------------------------------- #

_WORKER_CTX: Optional[FlowContext] = None


def _init_worker(n_patterns: int, seed: int) -> None:
    """Pool initializer: one warm FlowContext per worker process."""
    global _WORKER_CTX
    _WORKER_CTX = FlowContext(n_patterns=n_patterns, seed=seed)


def _build_circuit(spec, scale: str):
    """Materialize a payload circuit spec (shm header | SuiteEntry | name |
    network)."""
    if isinstance(spec, _ShmSpec):
        return FlatNetwork.from_shared_memory(spec.header).to_network()
    if isinstance(spec, SuiteEntry):
        return spec.build(scale)
    if isinstance(spec, str):
        from ..circuits import load

        return load(spec, scale)
    return spec                          # an already-built network object


def _execute_flow_job(payload: dict, ctx: Optional[FlowContext] = None,
                      keep_objects: bool = False) -> CircuitOutcome:
    """Run one circuit's flow; never raises — failures become outcomes."""
    import os

    if ctx is None:
        ctx = _WORKER_CTX
        if ctx is None:                  # pool without initializer (jobs=1 path)
            ctx = FlowContext()
    outcome = CircuitOutcome(name=payload["name"], index=payload["index"],
                             worker=os.getpid())
    t0 = time.perf_counter()
    try:
        ntk = _build_circuit(payload["spec"], payload["scale"])
        outcome.before = state_cost(ntk)
        runner = FlowRunner(ctx, verify=payload.get("verify", False),
                            checkpoint=payload.get("checkpoint", False))
        result = runner.run(ntk, Flow.parse(payload["flow"]), name=payload["name"])
        outcome.seconds = time.perf_counter() - t0
        outcome.kind = state_kind(result.network)
        outcome.cost = state_cost(result.network)
        outcome.summary = state_summary(result.network)
        outcome.fingerprint = state_fingerprint(result.network)
        outcome.n_passes = len(result.metrics)
        outcome.metric_rows = [
            (m.name, m.script, m.seconds, tuple(m.before), tuple(m.after),
             m.kind_before, m.kind_after) for m in result.metrics]
        if payload.get("return_network", True):
            net = result.network
            if payload.get("pack_return") and isinstance(net, LogicNetwork):
                # ship the flat buffers home instead of an object-graph pickle
                snap = net.flat
                outcome.packed = (snap.header(), snap.pack())
            else:
                outcome.network = net
        if keep_objects:
            outcome.result = result
    except Exception as exc:             # per-circuit isolation
        outcome.seconds = time.perf_counter() - t0
        outcome.status = "error"
        outcome.error = f"{type(exc).__name__}: {exc}"
        outcome.traceback = _traceback.format_exc()
    return outcome


def _execute_map_job(payload: tuple):
    """Generic fan-out: run ``fn(task, ctx)`` under the worker context."""
    index, fn, task = payload
    ctx = _WORKER_CTX if _WORKER_CTX is not None else FlowContext()
    return index, fn(task, ctx)


# ---------------------------------------------------------------------- #
# the runner                                                              #
# ---------------------------------------------------------------------- #

class BatchRunner:
    """Execute flows (or arbitrary per-task functions) over circuit sets.

    ``jobs=1`` runs in-process against ``context`` (or a fresh one);
    ``jobs>1`` shards across a process pool with one warm per-worker
    context.  ``progress`` is an optional ``callable(done, total, outcome)``
    invoked as results arrive (completion order, not suite order).

    ``transfer`` picks how networks cross the process boundary in pool runs:

    * ``"shm"`` — circuits are built once in the parent and published as
      flat struct-of-arrays snapshots in ``multiprocessing.shared_memory``;
      workers attach by name and rebuild from the raw buffers (no network
      pickling either way — results come home as packed flat buffers too);
    * ``"pickle"`` — the legacy object-graph pickling on both directions;
    * ``"auto"`` (default) — named/suite specs stay cheap strings built in
      the worker, but network *objects* go through shared memory and
      results come home packed.

    All three are bit-identical: the flat snapshot round-trip is exact, so
    outcomes (fingerprints included) match the sequential run.
    """

    def __init__(self, *, jobs: int = 1, context: Optional[FlowContext] = None,
                 progress: Optional[Callable] = None, verify: bool = False,
                 checkpoint: bool = False, n_patterns: int = 256, seed: int = 1,
                 return_networks: bool = True, transfer: str = "auto"):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if transfer not in ("auto", "shm", "pickle"):
            raise ValueError(f"transfer must be auto|shm|pickle, got {transfer!r}")
        self.jobs = jobs
        self.ctx = context if context is not None else FlowContext(
            n_patterns=n_patterns, seed=seed)
        self.progress = progress
        self.verify = verify
        self.checkpoint = checkpoint
        self.n_patterns = n_patterns
        self.seed = seed
        self.return_networks = return_networks
        self.transfer = transfer

    # -- flow batches --------------------------------------------------------

    def run(self, circuits: Union[Suite, Iterable], flow,
            *, scale: Optional[str] = None, store=None,
            store_meta: Optional[dict] = None) -> BatchResult:
        """Run one flow over a suite / circuit list; returns a
        :class:`BatchResult` with outcomes in suite order.

        ``circuits`` is a :class:`Suite`, or an iterable mixing benchmark
        names, ``.aag`` paths, :class:`SuiteEntry` items and network
        objects.  ``store`` (a :class:`~repro.batch.store.ResultStore` or a
        path) records the run when given.
        """
        suite_name = ""
        if isinstance(circuits, Suite):
            suite_name = circuits.name
            scale = scale or circuits.scale
            items: Sequence = list(circuits.entries)
        else:
            items = list(circuits)
        scale = scale or "small"
        flow_text = resolve_flow(flow).to_script()

        payloads = self._payloads(items, flow_text, scale)
        t0 = time.perf_counter()
        shm_blocks: List = []
        pooled = self.jobs > 1 and len(payloads) > 1
        try:
            if not pooled:
                outcomes = self._run_sequential(payloads)
            else:
                shm_blocks = self._publish_shm(payloads)
                outcomes = self._run_pool(payloads)
        finally:
            for shm in shm_blocks:   # parent owns every block's lifetime
                shm.close()
                shm.unlink()
        result = BatchResult(flow=flow_text, scale=scale, jobs=self.jobs,
                             outcomes=outcomes,
                             wall_seconds=time.perf_counter() - t0,
                             suite=suite_name,
                             transfer=self.transfer if pooled else "")
        if store is not None:
            from .store import ResultStore

            if not isinstance(store, ResultStore):
                store = ResultStore(store)
            store.record(result, meta=store_meta)
        return result

    def _payloads(self, items: Sequence, flow_text: str, scale: str) -> List[dict]:
        payloads, seen = [], set()
        for i, item in enumerate(items):
            if isinstance(item, SuiteEntry):
                name, spec = item.name, item
            elif isinstance(item, str) or hasattr(item, "suffix"):
                name, spec = str(item), str(item)
            else:
                name, spec = getattr(item, "name", "") or f"circuit{i}", item
            if name in seen:             # repeated circuit: keep both results
                suffix = 2
                while f"{name}#{suffix}" in seen:
                    suffix += 1
                name = f"{name}#{suffix}"
            seen.add(name)
            payloads.append({"index": i, "name": name, "spec": spec,
                             "scale": scale, "flow": flow_text,
                             "verify": self.verify,
                             "checkpoint": self.checkpoint,
                             "return_network": self.return_networks,
                             "pack_return": self.transfer != "pickle"})
        return payloads

    def _publish_shm(self, payloads: List[dict]) -> List:
        """Lift payload specs into shared-memory flat snapshots.

        Returns the created blocks; the caller closes + unlinks them once
        the pool is done (workers only ever attach/copy/close).  In
        ``"auto"`` mode only already-built network objects are lifted — a
        name or :class:`SuiteEntry` pickles smaller than its circuit, so
        those still build in the worker.  In ``"shm"`` mode every spec is
        built in the parent and published; a spec that fails to build (or
        is not a plain logic network) falls back to its pickled form.
        """
        if self.transfer == "pickle":
            return []
        blocks: List = []
        for p in payloads:
            spec = p["spec"]
            if isinstance(spec, LogicNetwork) and _flat_transferable(spec):
                ntk = spec
            elif self.transfer == "shm" and not isinstance(spec, LogicNetwork):
                try:
                    built = _build_circuit(spec, p["scale"])
                except Exception:
                    continue             # worker will report the real error
                if not _flat_transferable(built):
                    continue
                ntk = built
            else:
                continue
            shm, header = ntk.flat.to_shared_memory()
            blocks.append(shm)
            p["spec"] = _ShmSpec(header)
        return blocks

    def _run_sequential(self, payloads: List[dict]) -> List[CircuitOutcome]:
        outcomes = []
        for done, payload in enumerate(payloads, 1):
            outcome = _execute_flow_job(payload, ctx=self.ctx, keep_objects=True)
            outcomes.append(outcome)
            if self.progress:
                self.progress(done, len(payloads), outcome)
        return outcomes

    def _run_pool(self, payloads: List[dict]) -> List[CircuitOutcome]:
        from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait

        outcomes: Dict[int, CircuitOutcome] = {}
        with ProcessPoolExecutor(
                max_workers=min(self.jobs, len(payloads)),
                initializer=_init_worker,
                initargs=(self.n_patterns, self.seed)) as pool:
            pending = {pool.submit(_execute_flow_job, p): p for p in payloads}
            while pending:
                finished, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in finished:
                    payload = pending.pop(future)
                    try:
                        outcome = future.result()
                    except Exception as exc:   # worker process died
                        outcome = CircuitOutcome(
                            name=payload["name"], index=payload["index"],
                            status="error",
                            error=f"worker failed: {type(exc).__name__}: {exc}")
                    if outcome.packed is not None:
                        header, buf = outcome.packed
                        outcome.network = FlatNetwork.unpack(header, buf).to_network()
                        outcome.packed = None
                    outcomes[outcome.index] = outcome
                    if self.progress:
                        self.progress(len(outcomes), len(payloads), outcome)
        return [outcomes[i] for i in sorted(outcomes)]

    # -- generic fan-out (the experiments drivers) ---------------------------

    def map(self, tasks: Sequence, fn: Callable) -> List:
        """Apply ``fn(task, ctx)`` to every task, in order.

        ``fn`` must be a module-level callable (picklable by reference) and
        each task picklable.  With ``jobs=1`` every call shares this
        runner's context; with ``jobs>1`` tasks shard across the pool and
        run under per-worker contexts.  Unlike :meth:`run`, exceptions
        propagate — callers wanting isolation use :meth:`run`.
        """
        tasks = list(tasks)
        if self.jobs == 1 or len(tasks) <= 1:
            return [fn(task, self.ctx) for task in tasks]
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(
                max_workers=min(self.jobs, len(tasks)),
                initializer=_init_worker,
                initargs=(self.n_patterns, self.seed)) as pool:
            indexed = pool.map(_execute_map_job,
                               [(i, fn, t) for i, t in enumerate(tasks)])
            results = {i: r for i, r in indexed}
        return [results[i] for i in range(len(tasks))]

    # -- interop with the flow API -------------------------------------------

    def flow_results(self, batch: BatchResult) -> "Dict[str, Any]":
        """View a batch's outcomes as ``name -> FlowResult`` (the
        ``FlowRunner.run_many`` return shape).  Failed circuits raise."""
        from ..flow import FlowError
        from ..flow.runner import FlowResult

        out: Dict[str, Any] = {}
        for o in batch.outcomes:
            if not o.ok:
                raise FlowError(
                    f"flow failed on {o.name!r}: {o.error}\n{o.traceback}")
            if o.result is not None:
                out[o.name] = o.result
                continue
            metrics = [PassMetrics(name=n, script=s, seconds=sec,
                                   before=b, after=a,
                                   kind_before=kb, kind_after=ka)
                       for n, s, sec, b, a, kb, ka in o.metric_rows]
            out[o.name] = FlowResult(
                network=o.network, input=None, flow=Flow.parse(batch.flow),
                metrics=metrics, seconds=o.seconds, name=o.name)
        return out
