"""FlowContext — one bundle of shared engines threaded through a whole flow.

A context owns every expensive, reusable piece of machinery the passes
need, created once and shared end-to-end:

* :class:`~repro.mapping.engine.MappingSession`\\ s (and through them the
  flat cut databases) for every subject the flow maps;
* one :class:`~repro.sim.engine.PatternPool` per PI width, so SAT
  counterexamples recycled by one pass sharpen the simulation filtering of
  every later pass;
* :class:`~repro.sat.session.EquivalenceSession`\\ s, cached per network
  snapshot and built over the shared pool;
* per-target-representation :class:`~repro.synthesis.npn_db.NpnCostCache`\\ s
  for graph mapping;
* the standard-cell library (lazily ASAP7).

It also records per-pass :class:`PassMetrics` (wall time plus gate / depth /
area deltas), optional named checkpoints, and aggregates engine statistics
for ``--engine-stats`` style reporting.  Pass wrappers must obtain their
engines from the context — no pass-construction site outside ``flow/``
builds a ``MappingSession`` or ``EquivalenceSession`` of its own when run
under a context.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["FlowContext", "PassMetrics", "state_kind", "state_cost", "state_summary"]


# ---------------------------------------------------------------------- #
# pipeline-state helpers                                                  #
# ---------------------------------------------------------------------- #

def state_kind(state) -> str:
    """Kind of a pipeline state: 'logic', 'choice', 'lut' or 'netlist'."""
    from ..core.choice import ChoiceNetwork
    from ..networks.lut_network import LutNetwork
    from ..networks.netlist import CellNetlist

    if isinstance(state, ChoiceNetwork):
        return "choice"
    if isinstance(state, LutNetwork):
        return "lut"
    if isinstance(state, CellNetlist):
        return "netlist"
    return "logic"


def state_cost(state) -> Tuple[float, float]:
    """Comparable (size, depth) cost of any pipeline state.

    Logic networks score ``(gates, depth)`` — the exact tuple the legacy
    keep-best flows compared — LUT networks ``(LUTs, depth)``, cell
    netlists ``(area, delay)``; choice networks score their underlying
    network.
    """
    kind = state_kind(state)
    if kind == "choice":
        return state_cost(state.ntk)
    if kind == "lut":
        return (state.num_luts(), state.depth())
    if kind == "netlist":
        return (state.area(), state.delay())
    return (state.num_gates(), state.depth())


def state_summary(state) -> str:
    """One-line human description of a pipeline state."""
    kind = state_kind(state)
    if kind == "choice":
        return (f"{type(state.ntk).__name__} + {state.num_choices()} choices, "
                f"{state.ntk.num_gates()} gates, depth {state.ntk.depth()}")
    if kind == "lut":
        return f"{state.num_luts()} LUTs, depth {state.depth()}"
    if kind == "netlist":
        return (f"{state.num_cells()} cells, area {state.area():.2f} µm², "
                f"delay {state.delay():.2f} ps")
    regs = f", {state.num_registers()} regs" if getattr(
        state, "has_registers", lambda: False)() else ""
    return (f"{type(state).__name__}: {state.num_gates()} gates, "
            f"depth {state.depth()}{regs}")


# ---------------------------------------------------------------------- #
# metrics                                                                 #
# ---------------------------------------------------------------------- #

@dataclass
class PassMetrics:
    """Timing and cost delta of one executed pass."""

    name: str
    script: str                 # canonical invocation, e.g. "gm -k 4"
    seconds: float
    before: Tuple[float, float]
    after: Tuple[float, float]
    kind_before: str = "logic"
    kind_after: str = "logic"

    @property
    def size_delta(self) -> float:
        return self.after[0] - self.before[0]

    @property
    def depth_delta(self) -> float:
        return self.after[1] - self.before[1]

    def row(self) -> List:
        """Table row: pass, seconds, size before/after, depth before/after."""
        fmt = lambda v: int(v) if float(v).is_integer() else round(v, 2)
        return [self.script, round(self.seconds, 3),
                fmt(self.before[0]), fmt(self.after[0]),
                fmt(self.before[1]), fmt(self.after[1])]


METRICS_HEADERS = ["pass", "seconds", "size.in", "size.out", "depth.in", "depth.out"]


# ---------------------------------------------------------------------- #
# the context                                                             #
# ---------------------------------------------------------------------- #

class FlowContext:
    """Shared engine state for one flow run (or many, in batch mode)."""

    #: bound on cached equivalence sessions (one Tseitin encoding each)
    EQ_SESSION_LIMIT = 8

    def __init__(self, *, library=None, n_patterns: int = 256, seed: int = 1,
                 keep_checkpoints: bool = False):
        self._library = library
        self.n_patterns = n_patterns
        self.seed = seed
        self.keep_checkpoints = keep_checkpoints
        self.original = None                  # set by the runner per circuit
        self.metrics: List[PassMetrics] = []
        self.checkpoints: Dict[str, Any] = {}
        self._pools: Dict[int, Any] = {}      # n_pis -> PatternPool
        self._eq_sessions: "OrderedDict[str, Any]" = OrderedDict()
        self._npn_caches: Dict[type, Any] = {}
        self._mapping_subjects: List[Any] = []   # subjects seen (for stats)

    # -- shared engines ------------------------------------------------------

    @property
    def library(self):
        """The standard-cell library (lazily the bundled ASAP7 analogue)."""
        if self._library is None:
            from ..mapping.asap7 import asap7_library

            self._library = asap7_library()
        return self._library

    def pool_for(self, ntk):
        """The shared :class:`PatternPool` matching ``ntk``'s PI count."""
        from ..sim.engine import PatternPool

        n_pis = ntk.num_pis()
        pool = self._pools.get(n_pis)
        if pool is None:
            pool = PatternPool(n_pis, n_patterns=self.n_patterns, seed=self.seed)
            self._pools[n_pis] = pool
        return pool

    def mapping_session(self, subject):
        """The :class:`MappingSession` of ``subject`` (cached on the subject)."""
        from ..mapping.engine import MappingSession

        session = MappingSession.of(subject)
        if not any(s is session for s in self._mapping_subjects):
            self._mapping_subjects.append(session)
            if len(self._mapping_subjects) > 16:
                del self._mapping_subjects[0]
        return session

    def equivalence_session(self, ntk):
        """An :class:`EquivalenceSession` of ``ntk`` over the shared pool.

        Cached per flat structural hash (:meth:`LogicNetwork.structural_hash`
        — a cheap content hash of the snapshot buffers), so repeated queries
        against one network reuse the Tseitin encoding, and structurally
        identical network *objects* — e.g. a copy round-tripped through the
        flat buffers or rebuilt by a worker — share one session too.  Equal
        hashes imply identical node numbering, so solver state computed
        against the cached reference is valid for ``ntk``.
        """
        from ..sat.session import EquivalenceSession

        key = ntk.structural_hash()
        session = self._eq_sessions.get(key)
        if session is None:
            session = EquivalenceSession(ntk, pool=self.pool_for(ntk))
            self._eq_sessions[key] = session
            while len(self._eq_sessions) > self.EQ_SESSION_LIMIT:
                self._eq_sessions.popitem(last=False)
        else:
            self._eq_sessions.move_to_end(key)
        return session

    def npn_cache(self, target_cls: type):
        """The per-representation synthesis cost oracle for graph mapping."""
        from ..synthesis.npn_db import NpnCostCache

        cache = self._npn_caches.get(target_cls)
        if cache is None:
            cache = NpnCostCache(target_cls)
            self._npn_caches[target_cls] = cache
        return cache

    def cec(self, a, b, sim_limit: int = 12):
        """Equivalence-check two states through the shared engines.

        When ``a`` is a plain logic network needing a SAT miter (PI count
        above the exhaustive-simulation limit), its cached
        :class:`EquivalenceSession` is reused — repeated checks against one
        reference (``b; cec; rf; cec``) encode the reference once and keep
        its learned clauses.
        """
        from ..sat.cec import cec as run_cec

        na, nb = self.as_logic(a), self.as_logic(b)
        if na.has_registers() or nb.has_registers():
            # sequential states verify sequentially: k-induction with a
            # bounded-BMC fallback (see repro.seq.seq_cec)
            from ..seq import seq_cec

            return seq_cec(na, nb)
        if na.num_pis() != nb.num_pis():
            return run_cec(na, nb)
        if na is not a or na.num_pis() <= sim_limit:
            # converted view (fresh object, would only pollute the cache)
            # or exhaustive-simulation territory: no session needed
            return run_cec(na, nb, sim_limit=sim_limit, pool=self.pool_for(na))
        session = self.equivalence_session(na)
        if len(session.networks) > self.EQ_SESSION_LIMIT:
            # the reference has been checked against many distinct networks
            # already — cap the shared encoding's growth, miter standalone
            return run_cec(na, nb, sim_limit=sim_limit, pool=self.pool_for(na))
        return run_cec(na, nb, sim_limit=sim_limit, session=session)

    @staticmethod
    def as_logic(state):
        """View any pipeline state as a plain logic network (for CEC)."""
        from ..networks.aig import Aig

        kind = state_kind(state)
        if kind == "choice":
            return state.ntk
        if kind in ("lut", "netlist"):
            return state.to_logic_network(Aig)
        return state

    # -- bookkeeping ---------------------------------------------------------

    def record(self, metrics: PassMetrics) -> None:
        self.metrics.append(metrics)

    def checkpoint(self, name: str, state) -> None:
        self.checkpoints[name] = state

    def total_seconds(self) -> float:
        return sum(m.seconds for m in self.metrics)

    def metrics_table(self, metrics: Optional[List[PassMetrics]] = None,
                      title: str = "per-pass metrics") -> str:
        """Aligned per-pass timing / delta table (for ``--timing``)."""
        from ..experiments.common import format_table

        rows = [m.row() for m in (metrics if metrics is not None else self.metrics)]
        return format_table(METRICS_HEADERS, rows, title=title)

    def stats(self) -> dict:
        """Aggregate engine statistics across everything this context ran."""
        from ..sat import solver_stats
        from ..sim import sim_stats

        out: dict = {
            "passes": len(self.metrics),
            "seconds": round(self.total_seconds(), 6),
            "pools": {n: p.n_patterns for n, p in self._pools.items()},
            "equivalence_sessions": [s.stats() for s in self._eq_sessions.values()],
            "mapping_sessions": [s.stats() for s in self._mapping_subjects],
            "solver": solver_stats(),
            "sim": sim_stats(),
        }
        return out

    def __repr__(self) -> str:
        return (f"<FlowContext passes={len(self.metrics)} "
                f"pools={list(self._pools)} "
                f"eq_sessions={len(self._eq_sessions)}>")
