"""Canonical flow specs — the named scripts the paper's protocol uses.

These are the flow-engine reimplementations of the legacy hardcoded
functions in :mod:`repro.opt.flows`; each returns a plain :class:`Flow`
built from registered passes, so the same behavior is now *data* (a
serializable script) rather than Python control flow:

* ``compress2rs`` — ``converge{N}( b; gm -k 4; b [; sw] )`` — iterative
  area-oriented optimization with keep-best convergence;
* ``resyn2rs``    — ``converge{N}( b; rf; rs; gm -k 4; b )`` — the deeper
  flow with MFFC refactoring and SAT resubstitution.

``resolve_flow`` is the single front door used by ``run_flow`` /
``optimize`` / the CLI: it accepts a :class:`Flow`, a spec name
(parameterized via keyword arguments), or raw script text.
"""

from __future__ import annotations

from typing import Callable, Dict, Union

from .registry import FlowScriptError
from .script import Converge, Flow, PassStep

__all__ = ["compress2rs_flow", "resyn2rs_flow", "named_flow", "resolve_flow",
           "NAMED_FLOWS"]


def compress2rs_flow(rounds: int = 4, sat_sweep: bool = False) -> Flow:
    """The ``compress2rs`` analogue as a flow spec (behavior-identical)."""
    body = [
        PassStep("b"),
        PassStep("gm", (("objective", "area"), ("k", 4))),
        PassStep("b"),
    ]
    if sat_sweep:
        body.append(PassStep("sw"))
    return Flow((Converge(tuple(body), max_rounds=max(1, rounds)),)
                if rounds > 0 else (), name="compress2rs")


def resyn2rs_flow(rounds: int = 3) -> Flow:
    """The ``resyn2rs`` analogue as a flow spec (behavior-identical)."""
    body = (
        PassStep("b"),
        PassStep("rf"),
        PassStep("rs"),
        PassStep("gm", (("objective", "area"), ("k", 4))),
        PassStep("b"),
    )
    return Flow((Converge(body, max_rounds=max(1, rounds)),)
                if rounds > 0 else (), name="resyn2rs")


NAMED_FLOWS: Dict[str, Callable[..., Flow]] = {
    "compress2rs": compress2rs_flow,
    "resyn2rs": resyn2rs_flow,
}


def named_flow(name: str, **kwargs) -> Flow:
    """Build a canonical spec by name (``compress2rs`` / ``resyn2rs``)."""
    spec = NAMED_FLOWS.get(name)
    if spec is None:
        raise FlowScriptError(
            f"unknown flow spec {name!r} (known: {', '.join(sorted(NAMED_FLOWS))})")
    return spec(**kwargs)


def resolve_flow(flow: Union[Flow, str], **spec_kwargs) -> Flow:
    """Coerce a Flow / spec name / script text into a :class:`Flow`."""
    if isinstance(flow, Flow):
        return flow
    if flow in NAMED_FLOWS:
        return named_flow(flow, **spec_kwargs)
    if spec_kwargs:
        raise FlowScriptError(
            f"keyword arguments only apply to named specs, not script {flow!r}")
    return Flow.parse(flow)
