"""Registered passes: every exported transform under uniform semantics.

Each wrapper is ``fn(state, ctx, **kwargs) -> state`` and draws its shared
machinery (mapping sessions, pattern pools, equivalence sessions, NPN cost
caches, the cell library) from the :class:`~repro.flow.context.FlowContext`
instead of constructing its own.  Canonical names follow the ABC mnemonics
the paper's protocol scripts use (``b``, ``rf``, ``rs``, ``if`` …).

Network-class arguments (``gm -r xmg``, ``cv -r aig``, ``mch -p mig,xmg``)
use the lowercase representation names ``aig``, ``xag``, ``mig``, ``xmg``.
"""

from __future__ import annotations

from typing import Tuple

from .context import FlowContext, state_kind
from .registry import ArgSpec, FlowScriptError, VerificationError, register_pass

__all__ = ["REP_CLASSES", "rep_class"]


def _reps():
    from ..networks.aig import Aig
    from ..networks.mig import Mig
    from ..networks.xag import Xag
    from ..networks.xmg import Xmg

    return {"aig": Aig, "xag": Xag, "mig": Mig, "xmg": Xmg}


REP_CLASSES = _reps()


def rep_class(name: str):
    """Resolve a representation name (``aig``/``xag``/``mig``/``xmg``)."""
    cls = REP_CLASSES.get(name.lower())
    if cls is None:
        raise FlowScriptError(
            f"unknown representation {name!r} (known: {', '.join(REP_CLASSES)})")
    return cls


def _rep_classes(names: str) -> Tuple[type, ...]:
    return tuple(rep_class(n) for n in names.split(",") if n)


# ---------------------------------------------------------------------- #
# technology-independent optimization                                     #
# ---------------------------------------------------------------------- #

@register_pass("b", aliases=("balance",),
               help="tree balancing: minimize depth without adding gates")
def _balance(ntk, ctx: FlowContext):
    from ..opt.balancing import balance

    return balance(ntk)


@register_pass("sw", aliases=("sweep",), verifying=True,
               args=(ArgSpec("fast", "f", bool, False,
                             "skip SAT verification (simulation only)"),),
               help="functional sweep: merge equivalent nodes (fraig)")
def _sweep(ntk, ctx: FlowContext, fast=False):
    from ..opt.sweep import sweep

    return sweep(ntk, sat_verify=not fast, pool=ctx.pool_for(ntk))


@register_pass("rf", aliases=("refactor",),
               args=(ArgSpec("max_leaves", "l", int, 10, "max cone support"),
                     ArgSpec("min_cone", "m", int, 3, "min cone size"),
                     ArgSpec("zero_gain", "z", bool, False,
                             "accept size-neutral replacements")),
               help="MFFC refactoring: collapse and resynthesize cones")
def _refactor(ntk, ctx: FlowContext, max_leaves=10, min_cone=3, zero_gain=False):
    from ..opt.refactoring import refactor

    return refactor(ntk, max_leaves=max_leaves, min_cone=min_cone,
                    allow_zero_gain=zero_gain)


@register_pass("rs", aliases=("resub",), verifying=True,
               args=(ArgSpec("max_divisors", "d", int, 150, "divisor window"),
                     ArgSpec("conflict_limit", "c", int, 1000, "SAT conflicts/check"),
                     ArgSpec("max_checks", "n", int, 2000, "total SAT checks")),
               help="SAT-validated 1-resubstitution")
def _resub(ntk, ctx: FlowContext, max_divisors=150, conflict_limit=1000,
           max_checks=2000):
    from ..opt.resub import resub

    return resub(ntk, max_divisors=max_divisors, conflict_limit=conflict_limit,
                 max_checks=max_checks, session=ctx.equivalence_session(ntk))


def _maj_classes():
    from ..networks.mig import Mig
    from ..networks.mixed import MixedNetwork
    from ..networks.xmg import Xmg

    return (Mig, Xmg, MixedNetwork)


@register_pass("mr", aliases=("mig_rewrite",),
               args=(ArgSpec("rounds", "n", int, 2, "rewriting rounds"),),
               network_classes=_maj_classes(),
               help="algebraic MAJ depth rewriting (MIG/XMG only)")
def _mig_rewrite(ntk, ctx: FlowContext, rounds=2):
    from ..opt.mig_rewriting import mig_depth_rewrite

    return mig_depth_rewrite(ntk, rounds=rounds)


@register_pass("cv", aliases=("convert",), sequential=True,
               args=(ArgSpec("rep", "r", str, "aig", "target representation"),),
               help="convert the network to another representation")
def _convert(ntk, ctx: FlowContext, rep="aig"):
    from ..networks.convert import convert

    cls = rep_class(rep)
    return ntk if type(ntk) is cls else convert(ntk, cls)


# ---------------------------------------------------------------------- #
# mapping                                                                 #
# ---------------------------------------------------------------------- #

@register_pass("gm", aliases=("graph_map",),
               inputs=("logic", "choice"), output="logic",
               args=(ArgSpec("rep", "r", str, "", "target rep (default: same class)"),
                     ArgSpec("objective", "o", str, "area", "'area' or 'delay'"),
                     ArgSpec("k", "k", int, 4, "cut size"),
                     ArgSpec("cut_limit", "l", int, 8, "cuts per node")),
               help="graph mapping: cut-based resynthesis into a representation")
def _graph_map(state, ctx: FlowContext, rep="", objective="area", k=4, cut_limit=8):
    from ..mapping.graph_mapper import graph_map

    if rep:
        target = rep_class(rep)
    elif state_kind(state) == "choice":
        target = type(state.ntk)
    else:
        target = type(state)
    session = ctx.mapping_session(state)
    return graph_map(session, target, objective=objective, k=k,
                     cut_limit=cut_limit, cache=ctx.npn_cache(target))


@register_pass("if", aliases=("lm", "lut_map"),
               inputs=("logic", "choice"), output="lut",
               args=(ArgSpec("k", "k", int, 6, "LUT size"),
                     ArgSpec("objective", "o", str, "area", "'area' or 'delay'"),
                     ArgSpec("cut_limit", "l", int, 8, "cuts per node")),
               help="K-LUT (FPGA) mapping")
def _lut_map(state, ctx: FlowContext, k=6, objective="area", cut_limit=8):
    from ..mapping.lut_mapper import lut_map

    return lut_map(ctx.mapping_session(state), k=k, objective=objective,
                   cut_limit=cut_limit)


@register_pass("am", aliases=("map", "asic_map"),
               inputs=("logic", "choice"), output="netlist", needs_library=True,
               args=(ArgSpec("objective", "o", str, "delay", "'area' or 'delay'"),
                     ArgSpec("cut_limit", "l", int, 8, "cuts per node")),
               help="standard-cell (ASIC) mapping onto the context library")
def _asic_map(state, ctx: FlowContext, objective="delay", cut_limit=8):
    from ..mapping.asic_mapper import asic_map

    return asic_map(ctx.mapping_session(state), library=ctx.library,
                    objective=objective, cut_limit=cut_limit)


# ---------------------------------------------------------------------- #
# structural choices                                                      #
# ---------------------------------------------------------------------- #

@register_pass("dch", aliases=("choice",),
               inputs=("logic",), output="choice", verifying=True,
               args=(ArgSpec("script", "s", str, "compress2rs",
                             "optimization script producing the snapshots"),
                     ArgSpec("rounds", "n", int, 2, "snapshot count"),
                     ArgSpec("inner_rounds", "i", int, 2, "rounds inside each snapshot"),
                     ArgSpec("fast", "f", bool, False, "skip SAT verification")),
               help="traditional structural choices from optimization snapshots")
def _dch(ntk, ctx: FlowContext, script="compress2rs", rounds=2, inner_rounds=2,
         fast=False):
    from ..core.dch import build_dch
    from ..opt.flows import optimize_rounds

    snapshots = optimize_rounds(ntk, script=script, rounds=rounds,
                                inner_rounds=inner_rounds, context=ctx)
    # most-optimized snapshot first: it provides the base structure/POs
    return build_dch(list(reversed(snapshots)), sat_verify=not fast,
                     pool=ctx.pool_for(ntk))


@register_pass("mch", aliases=("mixed_choice",),
               inputs=("logic",), output="choice",
               args=(ArgSpec("reps", "p", str, "xmg",
                             "candidate representations, e.g. xmg,xag"),
                     ArgSpec("ratio", "r", float, 1.0, "critical-path ratio"),
                     ArgSpec("cut_size", "k", int, 4, "cut size"),
                     ArgSpec("cut_limit", "l", int, 8, "cuts per node")),
               help="mixed structural choices (the paper's MCH operator)")
def _mch(ntk, ctx: FlowContext, reps="xmg", ratio=1.0, cut_size=4, cut_limit=8):
    from ..core.mch import MchParams, build_mch

    params = MchParams(representations=_rep_classes(reps), ratio=ratio,
                       cut_size=cut_size, cut_limit=cut_limit)
    return build_mch(ntk, params)


# ---------------------------------------------------------------------- #
# verification / instrumentation                                          #
# ---------------------------------------------------------------------- #

@register_pass("cec", aliases=("verify",), sequential=True,
               inputs=("logic", "choice", "lut", "netlist"), verifying=True,
               help="prove the current state equivalent to the flow input")
def _cec(state, ctx: FlowContext):
    reference = ctx.original if ctx.original is not None else state
    result = ctx.cec(reference, state)
    if not result:
        raise VerificationError(
            f"cec failed after {len(ctx.metrics)} passes: {result!r}")
    return state


@register_pass("ps", aliases=("print_stats",), sequential=True,
               inputs=("logic", "choice", "lut", "netlist"),
               help="print a one-line summary of the current state")
def _print_stats(state, ctx: FlowContext):
    from .context import state_summary

    print(state_summary(state))
    return state


@register_pass("ckpt", aliases=("checkpoint",), sequential=True,
               inputs=("logic", "choice", "lut", "netlist"),
               args=(ArgSpec("name", "n", str, "", "checkpoint name"),),
               help="snapshot the current state into the context")
def _checkpoint(state, ctx: FlowContext, name=""):
    ctx.checkpoint(name or f"ckpt{len(ctx.checkpoints)}", state)
    return state


# ---------------------------------------------------------------------- #
# sequential passes                                                       #
# ---------------------------------------------------------------------- #

@register_pass("seq-sweep", aliases=("scorr",), sequential=True, verifying=True,
               args=(ArgSpec("n_frames", "f", int, 8,
                             "simulation frames for candidate classes"),
                     ArgSpec("conflict_limit", "c", int, 5000,
                             "SAT conflicts per induction check")),
               help="register sweep: merge induction-proven equivalent registers")
def _seq_sweep(ntk, ctx: FlowContext, n_frames=8, conflict_limit=5000):
    from ..seq import register_sweep

    out, _merged = register_sweep(ntk, n_frames=n_frames,
                                  conflict_limit=conflict_limit, seed=ctx.seed)
    return out


@register_pass("seq-retime", aliases=("retime",), sequential=True,
               help="conservative forward retiming (registers move through "
                    "register-fed gates)")
def _seq_retime(ntk, ctx: FlowContext):
    from ..seq import retime_forward

    return retime_forward(ntk)[0]


@register_pass("seq-bmc", aliases=("bmc",), sequential=True, verifying=True,
               args=(ArgSpec("depth", "d", int, 8, "time frames to check"),),
               help="bounded model check the state against the flow input")
def _seq_bmc(ntk, ctx: FlowContext, depth=8):
    from ..seq import bmc_cec

    reference = ctx.original if ctx.original is not None else ntk
    res = bmc_cec(ctx.as_logic(reference), ctx.as_logic(ntk), depth)
    if res.equivalent is False:
        raise VerificationError(
            f"seq-bmc refuted equivalence at frame {res.depth}: "
            f"{res.counterexample!r}")
    return ntk


@register_pass("seq-ind", aliases=("kind",), sequential=True, verifying=True,
               args=(ArgSpec("max_k", "k", int, 8, "largest induction depth"),),
               help="k-induction CEC against the flow input (cex fails the "
                    "flow; inconclusive passes)")
def _seq_ind(ntk, ctx: FlowContext, max_k=8):
    from ..seq import k_induction_cec

    reference = ctx.original if ctx.original is not None else ntk
    res = k_induction_cec(ctx.as_logic(reference), ctx.as_logic(ntk),
                          max_k=max_k)
    if res.equivalent is False:
        raise VerificationError(
            f"seq-ind refuted equivalence at frame {res.depth}: "
            f"{res.counterexample!r}")
    return ntk
