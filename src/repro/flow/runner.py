"""FlowRunner — execute flows over one network or a batch of circuits.

The runner is the interpreter of the script AST: it applies each pass
through the registry (validating state kinds and network-class
capabilities), times it, records :class:`~repro.flow.context.PassMetrics`
on the shared :class:`~repro.flow.context.FlowContext`, executes ``N*(…)``
repetition groups and runs ``converge(…)`` groups as keep-best fixpoint
loops — the exact semantics of the legacy ``compress2rs`` iteration:
a round whose ``(size, depth)`` cost is not strictly better than the best
seen so far is discarded and the loop stops.

``run_many`` threads *one* context through a whole batch, which is where
the shared-engine payoff compounds: the library match table, NPN cost
caches and solver/simulation statistics are built once for the batch.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Union

from .context import FlowContext, PassMetrics, state_cost, state_kind, state_summary
from .registry import FlowError, get_pass
from .script import Converge, Flow, PassStep, Repeat

__all__ = ["FlowRunner", "FlowResult", "run_flow", "optimize"]


@dataclass
class FlowResult:
    """Outcome of one flow run on one circuit."""

    network: Any                       # final pipeline state
    input: Any                         # the original input network
    flow: Flow
    metrics: List[PassMetrics] = field(default_factory=list)
    seconds: float = 0.0
    name: str = ""
    verified: Optional[bool] = None    # set when the runner CEC'd the result
    context: Optional[FlowContext] = None   # the context the flow ran under

    @property
    def cost(self):
        return state_cost(self.network)

    def summary(self) -> str:
        label = f"{self.name}: " if self.name else ""
        return f"{label}{state_summary(self.network)}"

    def __repr__(self) -> str:
        return f"<FlowResult {self.summary()} after {len(self.metrics)} passes>"


def _state_registers(state, kind: str) -> int:
    """Register count of a pipeline state (0 for LUT/netlist states)."""
    ntk = state.ntk if kind == "choice" else state
    return ntk.num_registers() if hasattr(ntk, "num_registers") else 0


class FlowRunner:
    """Execute :class:`Flow` objects against a shared :class:`FlowContext`."""

    def __init__(self, context: Optional[FlowContext] = None, *,
                 verify: bool = False, checkpoint: bool = False):
        self.ctx = context if context is not None else FlowContext()
        self.verify = verify
        self.checkpoint = checkpoint

    # -- entry points --------------------------------------------------------

    def run(self, ntk, flow: Union[Flow, str], name: str = "") -> FlowResult:
        """Run ``flow`` (a :class:`Flow` or script text) on one network."""
        flow = Flow.of(flow)
        flow.validate(state_kind(ntk))   # reject kind-incompatible scripts early
        # nested runs (a pass driving a sub-flow, e.g. dch snapshots) must
        # not clobber the outer flow's verification reference
        outer_original = self.ctx.original
        self.ctx.original = ntk
        first_metric = len(self.ctx.metrics)
        t0 = time.perf_counter()
        try:
            state = self._run_steps(flow.steps, ntk)
        finally:
            if outer_original is not None:
                self.ctx.original = outer_original
        seconds = time.perf_counter() - t0
        result = FlowResult(network=state, input=ntk, flow=flow,
                            metrics=self.ctx.metrics[first_metric:],
                            seconds=seconds, name=name, context=self.ctx)
        if self.verify:
            result.verified = bool(self.ctx.cec(ntk, state))
            if not result.verified:
                raise FlowError(f"flow output not equivalent to input ({name or ntk!r})")
        return result

    def run_many(self, circuits: Iterable, flow: Union[Flow, str],
                 scale: str = "small", *, jobs: int = 1, store=None,
                 progress=None) -> Dict[str, FlowResult]:
        """Run one flow over many circuits; returns ``name -> FlowResult``.

        ``circuits`` mixes benchmark names, ``.aag`` paths and network
        objects.  The execution is delegated to the batch layer: with
        ``jobs=1`` every circuit runs in-process against this runner's
        shared context (the historical semantics); ``jobs>1`` shards the
        batch across a process pool with one warm context per worker (the
        returned results then carry rebuilt metrics and no context).
        ``store`` optionally records the run into a
        :class:`~repro.batch.store.ResultStore` (or a path); any circuit
        failure raises — use :class:`~repro.batch.runner.BatchRunner`
        directly for isolated per-circuit failure reporting.
        """
        from ..batch import BatchRunner

        runner = BatchRunner(jobs=jobs, context=self.ctx, progress=progress,
                             verify=self.verify, checkpoint=self.checkpoint,
                             return_networks=True)
        batch = runner.run(circuits, Flow.of(flow), scale=scale, store=store)
        return runner.flow_results(batch)

    # -- interpreter ---------------------------------------------------------

    def _run_steps(self, steps, state):
        for step in steps:
            state = self._run_step(step, state)
        return state

    def _run_step(self, step, state):
        if isinstance(step, PassStep):
            return self._run_pass(step, state)
        if isinstance(step, Repeat):
            for _ in range(step.count):
                state = self._run_steps(step.body, state)
            return state
        if isinstance(step, Converge):
            return self._run_converge(step, state)
        raise FlowError(f"unknown step {step!r}")

    def _run_converge(self, step: Converge, state):
        best = state
        best_cost = state_cost(state)
        for _ in range(step.max_rounds):
            candidate = self._run_steps(step.body, best)
            cost = state_cost(candidate)
            if cost >= best_cost:
                break
            best, best_cost = candidate, cost
        return best

    def _run_pass(self, step: PassStep, state):
        info = get_pass(step.name)
        kind = state_kind(state)
        if kind not in info.inputs:
            raise FlowError(
                f"pass {info.name!r} cannot run on a {kind} state "
                f"(accepts: {', '.join(info.inputs)})")
        if not info.sequential:
            nregs = _state_registers(state, kind)
            if nregs:
                raise FlowError(
                    f"pass {info.name!r} is combinational-only but the "
                    f"network has {nregs} register{'s' if nregs != 1 else ''}; "
                    f"use seq-* passes on sequential circuits")
        if info.network_classes is not None and not isinstance(
                state.ntk if kind == "choice" else state, info.network_classes):
            names = ", ".join(c.__name__ for c in info.network_classes)
            raise FlowError(
                f"pass {info.name!r} needs one of [{names}], "
                f"got {type(state).__name__}")
        kwargs = info.validate_args(step.kwargs())
        before = state_cost(state)
        t0 = time.perf_counter()
        out = info.fn(state, self.ctx, **kwargs)
        seconds = time.perf_counter() - t0
        self.ctx.record(PassMetrics(
            name=info.name, script=step.to_script(), seconds=seconds,
            before=before, after=state_cost(out),
            kind_before=kind, kind_after=state_kind(out)))
        if self.checkpoint:
            self.ctx.checkpoint(f"{len(self.ctx.metrics)}:{info.name}", out)
        return out


# ---------------------------------------------------------------------- #
# convenience front doors                                                 #
# ---------------------------------------------------------------------- #

def run_flow(ntk, flow: Union[Flow, str], *, context: Optional[FlowContext] = None,
             verify: bool = False) -> FlowResult:
    """Run a flow (script text, named spec, or :class:`Flow`) on a network.

    ``flow`` may also be a named canonical spec (``"compress2rs"``,
    ``"resyn2rs"``); see :mod:`repro.flow.specs`.
    """
    from .specs import resolve_flow

    return FlowRunner(context, verify=verify).run(ntk, resolve_flow(flow))


def optimize(ntk, flow: Union[Flow, str] = "compress2rs", *,
             context: Optional[FlowContext] = None, verify: bool = False,
             **spec_kwargs):
    """Optimize a network with a flow and return the resulting network.

    ``flow`` is a script string, a :class:`Flow`, or the name of a canonical
    spec (extra ``spec_kwargs`` — e.g. ``rounds=2`` — parameterize named
    specs).
    """
    from .specs import resolve_flow

    return FlowRunner(context, verify=verify).run(
        ntk, resolve_flow(flow, **spec_kwargs)).network
