"""The pass registry: uniform ``run(ntk, ctx) -> ntk`` wrappers.

Every transform this library exports — optimization passes, choice
builders, mappers, verification — is registered here as a :class:`PassInfo`
with a canonical short name (the ABC-style mnemonic used in flow scripts),
aliases, a typed argument specification and declared *capabilities*: which
pipeline-state kinds it accepts (``logic`` / ``choice`` / ``lut`` /
``netlist``), which network classes it is restricted to, whether it needs a
cell library, whether it is a verifying pass and whether it is
*sequential-safe* (understands registers; comb-only passes are refused on
registered networks by the runner instead of silently dropping latches).

The registry is what makes scripts checkable before they run: the DSL
parser resolves names and coerces arguments against it, and
``optimize_rounds`` validates its ``script`` argument against it instead of
a string if/else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = [
    "ArgSpec",
    "PassInfo",
    "FlowError",
    "FlowScriptError",
    "VerificationError",
    "register_pass",
    "get_pass",
    "available_passes",
    "pass_names",
    "STATE_KINDS",
]

STATE_KINDS = ("logic", "choice", "lut", "netlist")


class FlowError(RuntimeError):
    """Base error of the flow subsystem (bad script, bad state, failed pass)."""


class FlowScriptError(FlowError, ValueError):
    """A flow script failed to parse or validate against the registry.

    Also a :class:`ValueError`, preserving the legacy contract of
    ``optimize_rounds(script=...)`` callers that catch ``ValueError``.
    """


class VerificationError(FlowError):
    """A verifying pass (``cec``) refuted equivalence."""


@dataclass(frozen=True)
class ArgSpec:
    """One declared pass argument.

    ``flag`` is the script-level spelling (``-k 4``); ``name`` the Python
    keyword it maps to.  ``type`` is ``int``, ``float``, ``str`` or ``bool``
    — boolean flags take no value and must default to ``False`` so the
    canonical script form stays unambiguous.
    """

    name: str
    flag: str
    type: type
    default: Any
    help: str = ""

    def coerce(self, raw: str) -> Any:
        try:
            if self.type is bool:
                return True
            if self.type is int:
                return int(raw)
            if self.type is float:
                return float(raw)
            return str(raw)
        except ValueError:
            raise FlowScriptError(
                f"argument -{self.flag} expects {self.type.__name__}, got {raw!r}"
            ) from None

    def format(self, value: Any) -> str:
        """Canonical script spelling of ``-flag value`` (empty if default)."""
        if value == self.default:
            return ""
        if self.type is bool:
            return f"-{self.flag}"
        return f"-{self.flag} {value}"


@dataclass
class PassInfo:
    """A registered pass: callable plus capabilities and argument spec."""

    name: str
    fn: Callable
    aliases: Tuple[str, ...] = ()
    args: Tuple[ArgSpec, ...] = ()
    inputs: Tuple[str, ...] = ("logic",)
    output: str = "same"            # 'same' or a state kind
    network_classes: Optional[Tuple[type, ...]] = None
    needs_library: bool = False
    verifying: bool = False
    sequential: bool = False        # safe on networks with registers
    help: str = ""

    def arg(self, flag_or_name: str) -> Optional[ArgSpec]:
        for a in self.args:
            if a.flag == flag_or_name or a.name == flag_or_name:
                return a
        return None

    def defaults(self) -> Dict[str, Any]:
        return {a.name: a.default for a in self.args}

    def validate_args(self, args: Dict[str, Any]) -> Dict[str, Any]:
        """Check arg names/types; returns a fully-defaulted kwargs dict."""
        known = {a.name: a for a in self.args}
        for key, value in args.items():
            spec = known.get(key)
            if spec is None:
                raise FlowScriptError(
                    f"pass {self.name!r} has no argument {key!r} "
                    f"(known: {', '.join(known) or 'none'})")
            if spec.type is not bool and not isinstance(value, spec.type) \
                    and not (spec.type is float and isinstance(value, int)):
                raise FlowScriptError(
                    f"pass {self.name!r} argument {key!r} expects "
                    f"{spec.type.__name__}, got {value!r}")
        out = self.defaults()
        out.update(args)
        return out


_REGISTRY: Dict[str, PassInfo] = {}
_ALIASES: Dict[str, str] = {}


def register_pass(name: str, *, aliases: Tuple[str, ...] = (),
                  args: Tuple[ArgSpec, ...] = (),
                  inputs: Tuple[str, ...] = ("logic",),
                  output: str = "same",
                  network_classes: Optional[Tuple[type, ...]] = None,
                  needs_library: bool = False, verifying: bool = False,
                  sequential: bool = False, help: str = "") -> Callable:
    """Decorator registering ``fn(ntk, ctx, **kwargs) -> ntk`` as a pass."""
    for kind in inputs:
        if kind not in STATE_KINDS:
            raise ValueError(f"unknown state kind {kind!r}")

    def deco(fn: Callable) -> Callable:
        doc = (fn.__doc__ or "").strip()
        info = PassInfo(name=name, fn=fn, aliases=tuple(aliases), args=tuple(args),
                        inputs=tuple(inputs), output=output,
                        network_classes=network_classes,
                        needs_library=needs_library, verifying=verifying,
                        sequential=sequential,
                        help=help or (doc.splitlines()[0] if doc else ""))
        if info.name in _REGISTRY or info.name in _ALIASES:
            raise ValueError(f"duplicate pass name {info.name!r}")
        _REGISTRY[info.name] = info
        for alias in info.aliases:
            if alias in _REGISTRY or alias in _ALIASES:
                raise ValueError(f"duplicate pass alias {alias!r}")
            _ALIASES[alias] = info.name
        fn.pass_info = info
        return fn

    return deco


def get_pass(name: str) -> PassInfo:
    """Resolve a pass name or alias; raises :class:`FlowScriptError`."""
    info = _REGISTRY.get(name)
    if info is None:
        canonical = _ALIASES.get(name)
        info = _REGISTRY.get(canonical) if canonical else None
    if info is None:
        raise FlowScriptError(
            f"unknown pass {name!r} (available: {', '.join(sorted(_REGISTRY))})")
    return info


def available_passes() -> List[PassInfo]:
    """All registered passes, sorted by canonical name."""
    return [_REGISTRY[n] for n in sorted(_REGISTRY)]


def pass_names() -> List[str]:
    """Canonical names plus aliases (everything a script may use)."""
    return sorted(list(_REGISTRY) + list(_ALIASES))
