"""Scriptable pass/flow API — the unified pipeline layer.

The paper's experimental protocol is a *script* (ABC's ``compress2rs; dch;
if -K 6``); this package makes that the native way to drive the library:

* :mod:`~repro.flow.registry` — the pass registry (``@register_pass``,
  typed arguments, declared capabilities);
* :mod:`~repro.flow.passes` — every exported transform wrapped with uniform
  ``run(ntk, ctx) -> ntk`` semantics;
* :mod:`~repro.flow.context` — :class:`FlowContext`, the shared engines
  (mapping sessions / cut databases, equivalence sessions, pattern pools,
  NPN caches, cell library) threaded through a whole flow;
* :mod:`~repro.flow.script` — the ABC-style DSL: ``"b; rf; rs; gm -k 4"``,
  ``N*( … )`` repetition and ``converge( … )`` keep-best fixpoint groups,
  parsed into serializable :class:`Flow` objects;
* :mod:`~repro.flow.runner` — :class:`FlowRunner` with per-pass metrics and
  a ``run_many`` batch entry point;
* :mod:`~repro.flow.specs` — canonical named specs (``compress2rs``,
  ``resyn2rs``) reimplemented as flow data.

Quickstart::

    from repro import load, run_flow

    result = run_flow(load("adder"), "b; rf; rs; gm -k 4; b", verify=True)
    print(result.summary())
"""

from .registry import (
    ArgSpec,
    FlowError,
    FlowScriptError,
    PassInfo,
    VerificationError,
    available_passes,
    get_pass,
    pass_names,
    register_pass,
)
from .context import FlowContext, PassMetrics, state_cost, state_kind, state_summary
from .script import Converge, Flow, PassStep, Repeat
from . import passes as _passes  # noqa: F401  — populates the registry
from .runner import FlowResult, FlowRunner, optimize, run_flow
from .specs import (
    NAMED_FLOWS,
    compress2rs_flow,
    named_flow,
    resolve_flow,
    resyn2rs_flow,
)

__all__ = [
    "ArgSpec",
    "PassInfo",
    "FlowError",
    "FlowScriptError",
    "VerificationError",
    "register_pass",
    "get_pass",
    "available_passes",
    "pass_names",
    "FlowContext",
    "PassMetrics",
    "state_kind",
    "state_cost",
    "state_summary",
    "Flow",
    "PassStep",
    "Repeat",
    "Converge",
    "FlowRunner",
    "FlowResult",
    "run_flow",
    "optimize",
    "NAMED_FLOWS",
    "compress2rs_flow",
    "resyn2rs_flow",
    "named_flow",
    "resolve_flow",
]
