"""The ABC-style flow-script DSL.

Grammar (whitespace-insensitive, ``;``-separated)::

    script   := step (';' step)*
    step     := <empty> | repeat | converge | invocation
    repeat   := INT '*' '(' script ')'          # run the group INT times
    converge := 'converge' [INT] '(' script ')' # iterate to a cost fixpoint,
                                                # at most INT rounds (default 10)
    invocation := NAME arg*                     # a registered pass
    arg      := '-'FLAG [VALUE]                 # boolean flags take no value

Examples::

    b; rf; rs; gm -k 4; b
    3*( b; rs )
    converge4( b; gm -o area -k 4; b )

``Flow.parse`` turns a script into a serializable :class:`Flow` (a tree of
:class:`PassStep` / :class:`Repeat` / :class:`Converge` nodes), validating
every pass name and argument against the registry; ``Flow.to_script``
renders the canonical form (canonical pass names, declared argument order,
defaults omitted) and round-trips: ``Flow.parse(s).to_script()`` is a fixed
point of ``parse``/``to_script``.  ``to_dict``/``from_dict`` give a JSON
shape for storing flows in result files.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple, Union

from .registry import FlowScriptError, get_pass

__all__ = ["Flow", "PassStep", "Repeat", "Converge", "FlowScriptError"]

DEFAULT_CONVERGE_ROUNDS = 10

_CONVERGE_RE = re.compile(r"^converge(\d+)?$")


# ---------------------------------------------------------------------- #
# AST                                                                     #
# ---------------------------------------------------------------------- #

@dataclass(frozen=True)
class PassStep:
    """One invocation of a registered pass with explicit (non-default) args."""

    name: str
    args: Tuple[Tuple[str, Any], ...] = ()

    def kwargs(self) -> Dict[str, Any]:
        return dict(self.args)

    def to_script(self) -> str:
        info = get_pass(self.name)
        given = self.kwargs()
        parts = [info.name]
        for spec in info.args:
            if spec.name in given:
                rendered = spec.format(given[spec.name])
                if rendered:
                    parts.append(rendered)
        return " ".join(parts)

    def to_dict(self) -> dict:
        return {"pass": self.name, **({"args": self.kwargs()} if self.args else {})}


@dataclass(frozen=True)
class Repeat:
    """Run a group of steps a fixed number of times."""

    count: int
    body: Tuple["Step", ...]

    def to_script(self) -> str:
        return f"{self.count}*( {_render(self.body)} )"

    def to_dict(self) -> dict:
        return {"repeat": self.count, "body": [s.to_dict() for s in self.body]}


@dataclass(frozen=True)
class Converge:
    """Iterate a group until the network cost stops strictly improving.

    Cost is ``(gates, depth)`` for logic networks (``(LUTs, depth)`` /
    ``(area, delay)`` for mapped results); a round whose output is not
    strictly better is discarded, mirroring the keep-best loop of the
    legacy ``compress2rs`` function.
    """

    body: Tuple["Step", ...]
    max_rounds: int = DEFAULT_CONVERGE_ROUNDS

    def to_script(self) -> str:
        n = "" if self.max_rounds == DEFAULT_CONVERGE_ROUNDS else str(self.max_rounds)
        return f"converge{n}( {_render(self.body)} )"

    def to_dict(self) -> dict:
        return {"converge": self.max_rounds, "body": [s.to_dict() for s in self.body]}


Step = Union[PassStep, Repeat, Converge]


def _render(steps: Tuple[Step, ...]) -> str:
    return "; ".join(s.to_script() for s in steps)


# ---------------------------------------------------------------------- #
# lexer / parser                                                          #
# ---------------------------------------------------------------------- #

_PUNCT = ";()*"


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    word = ""
    for ch in text:
        if ch in _PUNCT or ch.isspace():
            if word:
                tokens.append(word)
                word = ""
            if ch in _PUNCT:
                tokens.append(ch)
        else:
            word += ch
    if word:
        tokens.append(word)
    return tokens


class _Parser:
    def __init__(self, tokens: List[str], text: str):
        self.tokens = tokens
        self.pos = 0
        self.text = text

    def peek(self, ahead: int = 0):
        i = self.pos + ahead
        return self.tokens[i] if i < len(self.tokens) else None

    def take(self) -> str:
        tok = self.tokens[self.pos]
        self.pos += 1
        return tok

    def fail(self, msg: str):
        raise FlowScriptError(f"{msg} (in script {self.text!r})")

    def parse_script(self, nested: bool) -> Tuple[Step, ...]:
        steps: List[Step] = []
        while True:
            tok = self.peek()
            if tok is None or tok == ")":
                if tok is None and nested:
                    self.fail("unbalanced '(': missing ')'")
                return tuple(steps)
            if tok == ";":
                self.take()     # empty step — allowed, e.g. trailing ';'
                continue
            steps.append(self.parse_step())
            tok = self.peek()
            if tok not in (None, ";", ")"):
                self.fail(f"expected ';' before {tok!r}")

    def parse_step(self) -> Step:
        tok = self.take()
        if tok in "()*":
            self.fail(f"unexpected {tok!r}")
        if tok.isdigit() and self.peek() == "*":
            self.take()
            if self.peek() != "(":
                self.fail("expected '(' after 'N*'")
            self.take()
            body = self.parse_script(nested=True)
            self.take()  # ')'
            count = int(tok)
            if count < 1:
                self.fail("repetition count must be >= 1")
            return Repeat(count, body)
        m = _CONVERGE_RE.match(tok)
        if m and self.peek() == "(":
            self.take()
            body = self.parse_script(nested=True)
            self.take()  # ')'
            rounds = int(m.group(1)) if m.group(1) else DEFAULT_CONVERGE_ROUNDS
            if rounds < 1:
                self.fail("converge round bound must be >= 1")
            return Converge(body, rounds)
        return self.parse_invocation(tok)

    def parse_invocation(self, name: str) -> PassStep:
        info = get_pass(name)   # raises FlowScriptError for unknown names
        args: List[Tuple[str, Any]] = []
        while True:
            tok = self.peek()
            if tok is None or tok in (";", ")"):
                break
            if tok in ("(", "*"):
                self.fail(f"unexpected {tok!r} after pass {info.name!r}")
            tok = self.take()
            if not tok.startswith("-") or len(tok) < 2:
                self.fail(f"expected '-flag' after pass {info.name!r}, got {tok!r}")
            spec = info.arg(tok[1:])
            if spec is None:
                known = ", ".join("-" + a.flag for a in info.args) or "none"
                self.fail(f"pass {info.name!r} has no flag {tok!r} (known: {known})")
            if spec.type is bool:
                args.append((spec.name, True))
            else:
                nxt = self.peek()
                if nxt is None or nxt in (";", ")", "(", "*"):
                    self.fail(f"flag -{spec.flag} of pass {info.name!r} needs a value")
                args.append((spec.name, spec.coerce(self.take())))
        merged: Dict[str, Any] = {}
        for key, value in args:
            merged[key] = value
        info.validate_args(merged)
        return PassStep(info.name, tuple(sorted(merged.items(),
                                                key=lambda kv: _arg_order(info, kv[0]))))


def _arg_order(info, arg_name: str) -> int:
    for i, spec in enumerate(info.args):
        if spec.name == arg_name:
            return i
    return len(info.args)


# ---------------------------------------------------------------------- #
# Flow                                                                    #
# ---------------------------------------------------------------------- #

@dataclass(frozen=True)
class Flow:
    """A parsed, validated, serializable pass pipeline."""

    steps: Tuple[Step, ...] = ()
    name: str = ""

    # -- construction --------------------------------------------------------

    @classmethod
    def parse(cls, script: str, name: str = "") -> "Flow":
        """Parse an ABC-style script; validates against the pass registry."""
        if not isinstance(script, str):
            raise FlowScriptError(f"script must be a string, got {type(script).__name__}")
        parser = _Parser(_tokenize(script), script)
        steps = parser.parse_script(nested=False)
        if parser.peek() == ")":
            parser.fail("unbalanced ')'")
        return cls(steps, name=name)

    @classmethod
    def of(cls, flow_or_script: Union["Flow", str]) -> "Flow":
        """Coerce a script string (or pass a Flow through unchanged)."""
        if isinstance(flow_or_script, Flow):
            return flow_or_script
        return cls.parse(flow_or_script)

    # -- rendering / serialization -------------------------------------------

    def to_script(self) -> str:
        """Canonical script text (parse/to_script round-trips)."""
        return _render(self.steps)

    def to_dict(self) -> dict:
        out: Dict[str, Any] = {"steps": [s.to_dict() for s in self.steps]}
        if self.name:
            out["name"] = self.name
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "Flow":
        return cls(tuple(_step_from_dict(s) for s in data.get("steps", ())),
                   name=data.get("name", ""))

    # -- static validation ---------------------------------------------------

    def validate(self, start_kind: str = "logic") -> str:
        """Statically chain state kinds through the script; returns the
        final kind.

        Catches kind-incompatible pipelines (``if; rf``, ``mch; b``) before
        any pass runs, using the capabilities every pass declares.  A
        ``converge`` body must preserve the state kind — its keep-best cost
        comparison is only meaningful within one kind — and a repeated
        group is checked again from its own output kind when it changes it.
        """
        return _chain_kinds(self.steps, start_kind)

    # -- introspection -------------------------------------------------------

    def pass_names(self) -> List[str]:
        """Canonical names of every pass the flow invokes (with repeats)."""
        names: List[str] = []

        def walk(steps):
            for s in steps:
                if isinstance(s, PassStep):
                    names.append(s.name)
                else:
                    walk(s.body)

        walk(self.steps)
        return names

    def __len__(self) -> int:
        return len(self.steps)

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"<Flow{label} {self.to_script()!r}>"


def _chain_kinds(steps: Tuple[Step, ...], kind: str) -> str:
    for step in steps:
        if isinstance(step, PassStep):
            info = get_pass(step.name)
            if kind not in info.inputs:
                raise FlowScriptError(
                    f"pass {info.name!r} cannot run on a {kind} state "
                    f"(accepts: {', '.join(info.inputs)})")
            if info.output != "same":
                kind = info.output
        elif isinstance(step, Repeat):
            out = _chain_kinds(step.body, kind)
            if step.count > 1 and out != kind:
                out = _chain_kinds(step.body, out)  # the second iteration
            kind = out
        else:  # Converge
            out = _chain_kinds(step.body, kind)
            if out != kind:
                raise FlowScriptError(
                    f"converge body must preserve the state kind "
                    f"({kind} -> {out}): cost comparison across kinds is "
                    f"meaningless")
    return kind


def _step_from_dict(data: dict) -> Step:
    if "pass" in data:
        info = get_pass(data["pass"])
        kwargs = info.validate_args(dict(data.get("args", {})))
        explicit = {k: v for k, v in kwargs.items()
                    if k in data.get("args", {})}
        return PassStep(info.name, tuple(sorted(explicit.items(),
                                                key=lambda kv: _arg_order(info, kv[0]))))
    if "repeat" in data:
        return Repeat(int(data["repeat"]),
                      tuple(_step_from_dict(s) for s in data.get("body", ())))
    if "converge" in data:
        return Converge(tuple(_step_from_dict(s) for s in data.get("body", ())),
                        int(data["converge"]))
    raise FlowScriptError(f"unrecognized step record {data!r}")


def random_flow(rng: random.Random, passes: List[str], *,
                max_steps: int = 5, depth: int = 1) -> Flow:
    """A random well-formed flow over ``passes`` (for fuzz testing)."""
    steps: List[Step] = []
    for _ in range(rng.randint(1, max_steps)):
        roll = rng.random()
        if depth > 0 and roll < 0.15:
            inner = random_flow(rng, passes, max_steps=2, depth=depth - 1)
            steps.append(Repeat(rng.randint(1, 2), inner.steps))
        elif depth > 0 and roll < 0.3:
            inner = random_flow(rng, passes, max_steps=2, depth=depth - 1)
            steps.append(Converge(inner.steps, rng.randint(2, 4)))
        else:
            steps.append(PassStep(rng.choice(passes)))
    return Flow(tuple(steps))
