"""Bit-parallel simulation: pattern pools and the shared simulation engine."""

from .engine import (PatternPool, SimEngine, reset_sim_stats, sim_stats,
                     simulate_blocks, simulate_words)

__all__ = ["PatternPool", "SimEngine", "simulate_words", "simulate_blocks",
           "sim_stats", "reset_sim_stats"]
