"""Bit-parallel simulation engine with shared pattern pools.

One service replaces the private signature/simulation code that ``cec``,
``functional_classes``, ``resub`` and ``dch`` each used to carry:

* :class:`PatternPool` — a shared stimulus set, one packed word per PI.
  Pools start from seeded random patterns and *grow*: every SAT
  counterexample found by an :class:`~repro.sat.session.EquivalenceSession`
  is folded back in, so later simulation filtering gets sharper (the
  FRAIG-style sim/SAT refinement loop).
* :class:`SimEngine` — per-network simulation state over a pool.  The
  network is compiled once into a small *program*: gate operations batched
  by level and gate type, complements applied only where a fanin is
  actually inverted, so the hot loop is plain tuple unpacking and integer
  ops over arbitrarily wide words.  Refreshes are incremental: new patterns re-simulate only the
  appended columns, new nodes (networks are append-only DAGs) re-simulate
  only the dirty suffix.
* :func:`simulate_words` — the one-shot front used by
  :meth:`repro.networks.base.LogicNetwork.simulate_patterns`; compiled
  programs are cached per network so repeated one-shot simulations stay
  cheap.
"""

from __future__ import annotations

import bisect
import random
import weakref
from typing import Dict, List, Optional, Sequence

from ..networks.base import GateType

try:                                    # numpy accelerates wide simulations;
    import numpy as _np                 # the integer path below is complete
except ImportError:                     # without it (results are identical)
    _np = None

__all__ = ["PatternPool", "SimEngine", "simulate_words", "simulate_blocks",
           "sim_stats", "reset_sim_stats"]

#: flat gate kinds are plain ints ordered (CONST, PI, AND, XOR, MAJ, XOR3),
#: so a program opcode is just ``kind - _GATE_MIN``
_GATE_MIN = int(GateType.AND)
_XOR = int(GateType.XOR)

_STAT_KEYS = (
    "programs_built", "program_nodes", "full_sims", "pattern_incr_sims",
    "node_incr_sims", "oneshot_sims", "block_sims", "patterns_added",
    "cex_recycled",
)

_GLOBAL_STATS: Dict[str, int] = {k: 0 for k in _STAT_KEYS}


def sim_stats() -> Dict[str, int]:
    """Aggregate simulation counters (surfaced by the CLI's ``--engine-stats``)."""
    return dict(_GLOBAL_STATS)


def reset_sim_stats() -> None:
    for k in _GLOBAL_STATS:
        _GLOBAL_STATS[k] = 0


class PatternPool:
    """Shared PI stimulus for bit-parallel simulation.

    Pattern ``j`` is bit ``j`` of every PI word; ``mask`` selects the valid
    bits.  The pool only ever grows, so signatures computed over it can be
    refreshed incrementally and never invalidate earlier distinctions.
    """

    def __init__(self, n_pis: int, n_patterns: int = 256, seed: int = 1):
        rng = random.Random(seed)
        self.n_pis = n_pis
        self.n_patterns = n_patterns
        #: one packed stimulus word per PI (bit j = pattern j)
        self.words: List[int] = [rng.getrandbits(n_patterns) for _ in range(n_pis)]

    @property
    def mask(self) -> int:
        return (1 << self.n_patterns) - 1

    def pattern(self, j: int) -> List[bool]:
        """The ``j``-th stimulus as a PI assignment."""
        return [bool((w >> j) & 1) for w in self.words]

    def add_pattern(self, assignment: Sequence[bool]) -> None:
        """Append one stimulus column (e.g. a SAT counterexample)."""
        if len(assignment) != self.n_pis:
            raise ValueError("assignment length must equal PI count")
        bit = 1 << self.n_patterns
        words = self.words
        for i, b in enumerate(assignment):
            if b:
                words[i] |= bit
        self.n_patterns += 1
        _GLOBAL_STATS["patterns_added"] += 1

    def add_counterexample(self, assignment: Sequence[bool]) -> None:
        """Fold a SAT counterexample into the pool (recycled as stimulus)."""
        self.add_pattern(assignment)
        _GLOBAL_STATS["cex_recycled"] += 1


class _Program:
    """A network compiled for simulation: per-level, per-gate-type op lists.

    Entry formats (complement flags are 0/1, applied by a flag-guarded XOR
    with the mask):  AND/XOR: ``(node, a, ac, b, bc)``;
    MAJ/XOR3: ``(node, a, ac, b, bc, c, cc)``.
    ``flat`` holds ``(opcode, entry)`` in node order for dirty-suffix
    re-simulation.
    """

    __slots__ = ("levels", "flat", "flat_nodes", "built_nodes",
                 "_block_levels", "_block_built")

    def __init__(self):
        self.levels: List[tuple] = []
        self.flat: List[tuple] = []
        #: node id per flat entry (ascending) — for dirty-suffix lookups
        self.flat_nodes: List[int] = []
        self.built_nodes = 0
        #: per-level numpy index arrays for the uint64 block path (lazy)
        self._block_levels = None
        self._block_built = 0

    def extend(self, ntk) -> None:
        """Append program entries for nodes created since the last build.

        From-scratch builds iterate the network's flat snapshot — plain-int
        gate kinds and a contiguous fanin-literal array, so the opcode is
        ``kind - 2`` and no node objects are touched.  Incremental extends
        walk only the appended suffix of the builder lists, which keeps
        re-simulation O(delta) instead of re-snapshotting the network.
        """
        levels = self.levels
        flat = self.flat
        start = self.built_nodes
        end = ntk.num_nodes()
        if start == 0:
            snap = ntk.flat
            kinds = snap.kind
            fan = snap.fanin
            node_levels = snap.level
            for n in range(end):
                t = kinds[n]
                if t < _GATE_MIN:
                    continue  # PI / constant
                base = 3 * n
                a = fan[base]
                b = fan[base + 1]
                if t <= _XOR:
                    entry = (n, a >> 1, a & 1, b >> 1, b & 1)
                else:
                    c = fan[base + 2]
                    entry = (n, a >> 1, a & 1, b >> 1, b & 1, c >> 1, c & 1)
                op = t - _GATE_MIN
                lv = node_levels[n]
                while len(levels) <= lv:
                    levels.append(([], [], [], []))
                levels[lv][op].append(entry)
                flat.append((op, entry))
                self.flat_nodes.append(n)
        else:
            types = ntk._types
            fanins = ntk._fanins
            node_levels = ntk._levels
            for n in range(start, end):
                t = types[n]
                if t == GateType.AND or t == GateType.XOR:
                    a, b = fanins[n]
                    entry = (n, a >> 1, a & 1, b >> 1, b & 1)
                    op = 0 if t == GateType.AND else 1
                elif t == GateType.MAJ or t == GateType.XOR3:
                    a, b, c = fanins[n]
                    entry = (n, a >> 1, a & 1, b >> 1, b & 1, c >> 1, c & 1)
                    op = 2 if t == GateType.MAJ else 3
                else:
                    continue  # PI / constant
                lv = node_levels[n]
                while len(levels) <= lv:
                    levels.append(([], [], [], []))
                levels[lv][op].append(entry)
                flat.append((op, entry))
                self.flat_nodes.append(n)
        _GLOBAL_STATS["program_nodes"] += end - start
        self.built_nodes = end

    def run(self, vals: List[int], mask: int) -> None:
        """Evaluate all gates into ``vals`` (PIs/constants already set).

        Complements branch on the 0/1 flag instead of XOR-ing a zero mask:
        at wide pool widths every full-width big-int op costs a word-sized
        copy, so skipping the no-op XORs beats branchless arithmetic.
        """
        for ands, xors, majs, xor3s in self.levels:
            for n, a, ac, b, bc in ands:
                x = vals[a]
                if ac:
                    x = x ^ mask
                y = vals[b]
                if bc:
                    y = y ^ mask
                vals[n] = x & y
            for n, a, ac, b, bc in xors:
                if ac ^ bc:
                    vals[n] = vals[a] ^ vals[b] ^ mask
                else:
                    vals[n] = vals[a] ^ vals[b]
            for n, a, ac, b, bc, c, cc in majs:
                x = vals[a]
                if ac:
                    x = x ^ mask
                y = vals[b]
                if bc:
                    y = y ^ mask
                z = vals[c]
                if cc:
                    z = z ^ mask
                vals[n] = (x & y) | (x & z) | (y & z)
            for n, a, ac, b, bc, c, cc in xor3s:
                if ac ^ bc ^ cc:
                    vals[n] = vals[a] ^ vals[b] ^ vals[c] ^ mask
                else:
                    vals[n] = vals[a] ^ vals[b] ^ vals[c]

    # -- vectorized uint64 block execution ---------------------------------

    def block_program(self):
        """Per-level numpy index/complement arrays (rebuilt after extends).

        Each level yields four optional entries (AND, XOR, MAJ, XOR3):
        column-index arrays into the ``(nodes, words)`` value matrix plus
        0/1 complement columns shaped for broadcasting against the mask
        words, so one level executes as a handful of whole-array ops.
        """
        if self._block_built == self.built_nodes and self._block_levels is not None:
            return self._block_levels
        out = []
        for ands, xors, majs, xor3s in self.levels:
            lv = []
            for op, entries in enumerate((ands, xors, majs, xor3s)):
                if not entries:
                    lv.append(None)
                    continue
                arr = _np.asarray(entries, dtype=_np.int64)
                n, a, ac, b, bc = (arr[:, j] for j in range(5))
                if op < 2:
                    if op == 0:       # AND: rows whose fanin is complemented
                        lv.append((n, a, b,
                                   _np.flatnonzero(ac), _np.flatnonzero(bc)))
                    else:             # XOR: rows with odd parity
                        lv.append((n, a, b, _np.flatnonzero(ac ^ bc)))
                else:
                    c, cc = arr[:, 5], arr[:, 6]
                    if op == 2:       # MAJ
                        lv.append((n, a, b, c, _np.flatnonzero(ac),
                                   _np.flatnonzero(bc), _np.flatnonzero(cc)))
                    else:             # XOR3: rows with odd parity
                        lv.append((n, a, b, c,
                                   _np.flatnonzero(ac ^ bc ^ cc)))
            out.append(lv)
        self._block_levels = out
        self._block_built = self.built_nodes
        return out

    def run_block(self, vals, mask_words) -> None:
        """Evaluate all gates on a ``(nodes, words)`` uint64 value matrix.

        ``mask_words`` is the valid-bits mask as little-endian uint64 words;
        complements are applied by XOR-ing the mask into the pre-indexed
        complemented rows, which matches the integer path bit for bit.
        """
        for ands, xors, majs, xor3s in self.block_program():
            if ands is not None:
                n, a, b, ai, bi = ands
                x = vals[a]
                if ai.size:
                    x[ai] ^= mask_words
                y = vals[b]
                if bi.size:
                    y[bi] ^= mask_words
                x &= y
                vals[n] = x
            if xors is not None:
                n, a, b, pi = xors
                x = vals[a]
                x ^= vals[b]
                if pi.size:
                    x[pi] ^= mask_words
                vals[n] = x
            if majs is not None:
                n, a, b, c, ai, bi, ci = majs
                x = vals[a]
                if ai.size:
                    x[ai] ^= mask_words
                y = vals[b]
                if bi.size:
                    y[bi] ^= mask_words
                z = vals[c]
                if ci.size:
                    z[ci] ^= mask_words
                t = x & y
                x &= z
                t |= x
                y &= z
                t |= y
                vals[n] = t
            if xor3s is not None:
                n, a, b, c, pi = xor3s
                x = vals[a]
                x ^= vals[b]
                x ^= vals[c]
                if pi.size:
                    x[pi] ^= mask_words
                vals[n] = x

    def run_suffix(self, vals: List[int], mask: int, start_index: int) -> None:
        """Evaluate only the gates at flat positions >= ``start_index``.

        Node ids are topological (fanins first), so a suffix of the flat
        program is exactly the dirty cone of the appended nodes.
        """
        for op, entry in self.flat[start_index:]:
            if op == 0:
                n, a, ac, b, bc = entry
                x = vals[a]
                if ac:
                    x = x ^ mask
                y = vals[b]
                if bc:
                    y = y ^ mask
                vals[n] = x & y
            elif op == 1:
                n, a, ac, b, bc = entry
                if ac ^ bc:
                    vals[n] = vals[a] ^ vals[b] ^ mask
                else:
                    vals[n] = vals[a] ^ vals[b]
            elif op == 2:
                n, a, ac, b, bc, c, cc = entry
                x = vals[a]
                if ac:
                    x = x ^ mask
                y = vals[b]
                if bc:
                    y = y ^ mask
                z = vals[c]
                if cc:
                    z = z ^ mask
                vals[n] = (x & y) | (x & z) | (y & z)
            else:
                n, a, ac, b, bc, c, cc = entry
                if ac ^ bc ^ cc:
                    vals[n] = vals[a] ^ vals[b] ^ vals[c] ^ mask
                else:
                    vals[n] = vals[a] ^ vals[b] ^ vals[c]


#: one-shot program cache: network -> (_Program, flat gate count list not needed)
_PROGRAMS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def _program_for(ntk) -> _Program:
    prog = _PROGRAMS.get(ntk)
    if prog is None or prog.built_nodes > ntk.num_nodes():
        prog = _Program()
        _PROGRAMS[ntk] = prog
        _GLOBAL_STATS["programs_built"] += 1
    if prog.built_nodes < ntk.num_nodes():
        prog.extend(ntk)
    return prog


def _run_block_full(prog: _Program, ntk, pi_words: Sequence[int],
                    mask: int) -> List[int]:
    """Full simulation through the numpy block path; returns packed ints.

    The value matrix is ``(nodes, words)`` little-endian uint64; PI rows are
    exploded from the packed stimulus ints and the result rows are packed
    back, so callers see exactly the integer-path output.
    """
    n_words = (mask.bit_length() + 63) // 64 or 1
    nbytes = n_words * 8
    vals = _np.zeros((ntk.num_nodes(), n_words), dtype="<u8")
    pis = ntk._pis
    if pis:
        pi_buf = b"".join((pi_words[i] & mask).to_bytes(nbytes, "little")
                          for i in range(len(pis)))
        vals[pis] = _np.frombuffer(pi_buf, dtype="<u8").reshape(len(pis), n_words)
    mask_words = _np.frombuffer(mask.to_bytes(nbytes, "little"), dtype="<u8")
    prog.run_block(vals, mask_words)
    mv = memoryview(vals.tobytes())
    _GLOBAL_STATS["block_sims"] += 1
    return [int.from_bytes(mv[i * nbytes:(i + 1) * nbytes], "little")
            for i in range(vals.shape[0])]


def simulate_words(ntk, pi_patterns: Sequence[int], mask: int, *,
                   block: bool = False) -> List[int]:
    """One-shot bit-parallel simulation; returns one packed word per node.

    This is the engine behind
    :meth:`repro.networks.base.LogicNetwork.simulate_patterns`; the compiled
    program is cached per network, so repeated one-shot calls only pay for
    the word-parallel gate ops.

    ``block=True`` routes through the vectorized uint64 numpy backend
    (bit-identical output).  It is opt-in because for packed-int callers the
    integer program is the faster default on CPython — big-int bitwise ops
    already run as C loops over the whole word, and the numpy detour adds an
    int↔uint64 conversion per node.  Callers whose stimulus already lives in
    numpy should use :func:`simulate_blocks` instead, which skips the
    conversions entirely.
    """
    pis = ntk._pis
    if len(pi_patterns) != len(pis):
        raise ValueError("pattern count must equal PI count")
    prog = _program_for(ntk)
    _GLOBAL_STATS["oneshot_sims"] += 1
    if block and _np is not None:
        return _run_block_full(prog, ntk, pi_patterns, mask)
    vals = [0] * ntk.num_nodes()
    for i, n in enumerate(pis):
        vals[n] = pi_patterns[i] & mask
    prog.run(vals, mask)
    return vals


def simulate_blocks(ntk, pi_blocks, mask_words=None):
    """Bit-parallel simulation on uint64 blocks, numpy-native end to end.

    ``pi_blocks`` is a ``(num_pis, words)`` array-like of little-endian
    uint64 stimulus words (row ``i`` drives PI ``i``; bit ``j`` of the
    flattened row is pattern ``j``); ``mask_words`` optionally masks the
    valid bits (default: all bits valid).  Returns the full ``(nodes,
    words)`` value matrix — bit-identical to packing the rows into ints and
    calling :func:`simulate_words`.

    This is the entry point for bulk workloads that keep stimulus and
    signatures in numpy: it runs the per-level uint64 block program with no
    int↔array conversion on either side.  Requires numpy.
    """
    if _np is None:
        raise RuntimeError("simulate_blocks requires numpy")
    pi_blocks = _np.ascontiguousarray(pi_blocks, dtype="<u8")
    pis = ntk._pis
    if pi_blocks.ndim != 2 or pi_blocks.shape[0] != len(pis):
        raise ValueError("pi_blocks must be shaped (num_pis, words)")
    n_words = pi_blocks.shape[1]
    if mask_words is None:
        mask_words = _np.full(n_words, 0xFFFFFFFFFFFFFFFF, dtype="<u8")
    else:
        mask_words = _np.ascontiguousarray(mask_words, dtype="<u8")
        pi_blocks = pi_blocks & mask_words
    prog = _program_for(ntk)
    vals = _np.zeros((ntk.num_nodes(), n_words), dtype="<u8")
    if pis:
        vals[pis] = pi_blocks
    prog.run_block(vals, mask_words)
    _GLOBAL_STATS["block_sims"] += 1
    return vals


class SimEngine:
    """Incremental bit-parallel simulation of one network over a pattern pool.

    :meth:`signatures` returns the per-node value words over every pattern
    currently in the pool, recomputing only what changed since the last
    refresh: appended patterns are simulated as a narrow delta and OR-merged,
    appended nodes are simulated via the flat program suffix.  The returned
    list is the engine's working buffer — treat it as read-only.
    """

    def __init__(self, ntk, pool: Optional[PatternPool] = None, *,
                 n_patterns: int = 256, seed: int = 1):
        self.ntk = ntk
        self.pool = pool if pool is not None else PatternPool(
            ntk.num_pis(), n_patterns, seed)
        if self.pool.n_pis != ntk.num_pis():
            raise ValueError("pool PI count must match the network")
        self._prog = _program_for(ntk)  # shared with one-shot simulation
        self._vals: Optional[List[int]] = None
        self._simmed_nodes = 0
        self._simmed_patterns = 0

    @property
    def mask(self) -> int:
        """Valid-bits mask matching the *current* pool width."""
        return self.pool.mask

    def signatures(self) -> List[int]:
        """Per-node signature words over the whole pool (refreshed lazily)."""
        self.refresh()
        return self._vals

    def node_signature(self, node: int) -> int:
        self.refresh()
        return self._vals[node]

    def literal_signature(self, literal: int) -> int:
        """Signature of a network literal (complement applied)."""
        self.refresh()
        x = self._vals[literal >> 1]
        return x ^ self.pool.mask if literal & 1 else x

    def refresh(self) -> None:
        ntk = self.ntk
        pool = self.pool
        nn = ntk.num_nodes()
        np_ = pool.n_patterns
        if self._vals is not None and self._simmed_nodes == nn \
                and self._simmed_patterns == np_:
            return
        prog = self._prog
        if prog.built_nodes < nn:
            prog.extend(ntk)
        mask = pool.mask
        pis = ntk._pis

        if self._vals is None or (nn > self._simmed_nodes
                                  and np_ > self._simmed_patterns):
            # first run, or both dimensions grew: full simulation
            vals = [0] * nn
            for i, n in enumerate(pis):
                vals[n] = pool.words[i] & mask
            prog.run(vals, mask)
            self._vals = vals
            _GLOBAL_STATS["full_sims"] += 1
        elif np_ > self._simmed_patterns:
            # pattern-incremental: simulate only the appended columns
            shift = self._simmed_patterns
            delta_mask = (1 << (np_ - shift)) - 1
            delta = [0] * nn
            for i, n in enumerate(pis):
                delta[n] = (pool.words[i] >> shift) & delta_mask
            prog.run(delta, delta_mask)
            vals = self._vals
            for n in range(nn):
                vals[n] |= delta[n] << shift
            _GLOBAL_STATS["pattern_incr_sims"] += 1
        elif nn > self._simmed_nodes:
            # node-incremental: networks are append-only, so only the new
            # suffix (the dirty cone of freshly created nodes) is dirty
            vals = self._vals
            vals.extend([0] * (nn - len(vals)))
            for i, n in enumerate(pis):
                vals[n] = pool.words[i] & mask
            dirty_from = bisect.bisect_left(prog.flat_nodes, self._simmed_nodes)
            prog.run_suffix(vals, mask, dirty_from)
            _GLOBAL_STATS["node_incr_sims"] += 1
        self._simmed_nodes = nn
        self._simmed_patterns = np_
