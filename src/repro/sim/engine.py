"""Bit-parallel simulation engine with shared pattern pools.

One service replaces the private signature/simulation code that ``cec``,
``functional_classes``, ``resub`` and ``dch`` each used to carry:

* :class:`PatternPool` — a shared stimulus set, one packed word per PI.
  Pools start from seeded random patterns and *grow*: every SAT
  counterexample found by an :class:`~repro.sat.session.EquivalenceSession`
  is folded back in, so later simulation filtering gets sharper (the
  FRAIG-style sim/SAT refinement loop).
* :class:`SimEngine` — per-network simulation state over a pool.  The
  network is compiled once into a small *program*: gate operations batched
  by level and gate type, with complement masks applied branchlessly, so
  the hot loop is plain tuple unpacking and integer ops over arbitrarily
  wide words.  Refreshes are incremental: new patterns re-simulate only the
  appended columns, new nodes (networks are append-only DAGs) re-simulate
  only the dirty suffix.
* :func:`simulate_words` — the one-shot front used by
  :meth:`repro.networks.base.LogicNetwork.simulate_patterns`; compiled
  programs are cached per network so repeated one-shot simulations stay
  cheap.
"""

from __future__ import annotations

import bisect
import random
import weakref
from typing import Dict, List, Optional, Sequence

from ..networks.base import GateType

__all__ = ["PatternPool", "SimEngine", "simulate_words", "sim_stats", "reset_sim_stats"]

_STAT_KEYS = (
    "programs_built", "program_nodes", "full_sims", "pattern_incr_sims",
    "node_incr_sims", "oneshot_sims", "patterns_added", "cex_recycled",
)

_GLOBAL_STATS: Dict[str, int] = {k: 0 for k in _STAT_KEYS}


def sim_stats() -> Dict[str, int]:
    """Aggregate simulation counters (surfaced by the CLI's ``--engine-stats``)."""
    return dict(_GLOBAL_STATS)


def reset_sim_stats() -> None:
    for k in _GLOBAL_STATS:
        _GLOBAL_STATS[k] = 0


class PatternPool:
    """Shared PI stimulus for bit-parallel simulation.

    Pattern ``j`` is bit ``j`` of every PI word; ``mask`` selects the valid
    bits.  The pool only ever grows, so signatures computed over it can be
    refreshed incrementally and never invalidate earlier distinctions.
    """

    def __init__(self, n_pis: int, n_patterns: int = 256, seed: int = 1):
        rng = random.Random(seed)
        self.n_pis = n_pis
        self.n_patterns = n_patterns
        #: one packed stimulus word per PI (bit j = pattern j)
        self.words: List[int] = [rng.getrandbits(n_patterns) for _ in range(n_pis)]

    @property
    def mask(self) -> int:
        return (1 << self.n_patterns) - 1

    def pattern(self, j: int) -> List[bool]:
        """The ``j``-th stimulus as a PI assignment."""
        return [bool((w >> j) & 1) for w in self.words]

    def add_pattern(self, assignment: Sequence[bool]) -> None:
        """Append one stimulus column (e.g. a SAT counterexample)."""
        if len(assignment) != self.n_pis:
            raise ValueError("assignment length must equal PI count")
        bit = 1 << self.n_patterns
        words = self.words
        for i, b in enumerate(assignment):
            if b:
                words[i] |= bit
        self.n_patterns += 1
        _GLOBAL_STATS["patterns_added"] += 1

    def add_counterexample(self, assignment: Sequence[bool]) -> None:
        """Fold a SAT counterexample into the pool (recycled as stimulus)."""
        self.add_pattern(assignment)
        _GLOBAL_STATS["cex_recycled"] += 1


class _Program:
    """A network compiled for simulation: per-level, per-gate-type op lists.

    Entry formats (complement flags are 0/1; ``mask & -flag`` applies them
    branchlessly):  AND/XOR: ``(node, a, ac, b, bc)``;
    MAJ/XOR3: ``(node, a, ac, b, bc, c, cc)``.
    ``flat`` holds ``(opcode, entry)`` in node order for dirty-suffix
    re-simulation.
    """

    __slots__ = ("levels", "flat", "flat_nodes", "built_nodes")

    def __init__(self):
        self.levels: List[tuple] = []
        self.flat: List[tuple] = []
        #: node id per flat entry (ascending) — for dirty-suffix lookups
        self.flat_nodes: List[int] = []
        self.built_nodes = 0

    def extend(self, ntk) -> None:
        types = ntk._types
        fanins = ntk._fanins
        node_levels = ntk._levels
        levels = self.levels
        flat = self.flat
        start = self.built_nodes
        for n in range(start, len(types)):
            t = types[n]
            if t == GateType.AND or t == GateType.XOR:
                a, b = fanins[n]
                entry = (n, a >> 1, a & 1, b >> 1, b & 1)
                op = 0 if t == GateType.AND else 1
            elif t == GateType.MAJ or t == GateType.XOR3:
                a, b, c = fanins[n]
                entry = (n, a >> 1, a & 1, b >> 1, b & 1, c >> 1, c & 1)
                op = 2 if t == GateType.MAJ else 3
            else:
                continue  # PI / constant
            lv = node_levels[n]
            while len(levels) <= lv:
                levels.append(([], [], [], []))
            levels[lv][op].append(entry)
            flat.append((op, entry))
            self.flat_nodes.append(n)
        _GLOBAL_STATS["program_nodes"] += len(types) - start
        self.built_nodes = len(types)

    def run(self, vals: List[int], mask: int) -> None:
        """Evaluate all gates into ``vals`` (PIs/constants already set)."""
        for ands, xors, majs, xor3s in self.levels:
            for n, a, ac, b, bc in ands:
                vals[n] = (vals[a] ^ (mask & -ac)) & (vals[b] ^ (mask & -bc))
            for n, a, ac, b, bc in xors:
                vals[n] = vals[a] ^ vals[b] ^ (mask & -(ac ^ bc))
            for n, a, ac, b, bc, c, cc in majs:
                x = vals[a] ^ (mask & -ac)
                y = vals[b] ^ (mask & -bc)
                z = vals[c] ^ (mask & -cc)
                vals[n] = (x & y) | (x & z) | (y & z)
            for n, a, ac, b, bc, c, cc in xor3s:
                vals[n] = vals[a] ^ vals[b] ^ vals[c] ^ (mask & -(ac ^ bc ^ cc))

    def run_suffix(self, vals: List[int], mask: int, start_index: int) -> None:
        """Evaluate only the gates at flat positions >= ``start_index``.

        Node ids are topological (fanins first), so a suffix of the flat
        program is exactly the dirty cone of the appended nodes.
        """
        for op, entry in self.flat[start_index:]:
            if op == 0:
                n, a, ac, b, bc = entry
                vals[n] = (vals[a] ^ (mask & -ac)) & (vals[b] ^ (mask & -bc))
            elif op == 1:
                n, a, ac, b, bc = entry
                vals[n] = vals[a] ^ vals[b] ^ (mask & -(ac ^ bc))
            elif op == 2:
                n, a, ac, b, bc, c, cc = entry
                x = vals[a] ^ (mask & -ac)
                y = vals[b] ^ (mask & -bc)
                z = vals[c] ^ (mask & -cc)
                vals[n] = (x & y) | (x & z) | (y & z)
            else:
                n, a, ac, b, bc, c, cc = entry
                vals[n] = vals[a] ^ vals[b] ^ vals[c] ^ (mask & -(ac ^ bc ^ cc))


#: one-shot program cache: network -> (_Program, flat gate count list not needed)
_PROGRAMS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def _program_for(ntk) -> _Program:
    prog = _PROGRAMS.get(ntk)
    if prog is None or prog.built_nodes > ntk.num_nodes():
        prog = _Program()
        _PROGRAMS[ntk] = prog
        _GLOBAL_STATS["programs_built"] += 1
    if prog.built_nodes < ntk.num_nodes():
        prog.extend(ntk)
    return prog


def simulate_words(ntk, pi_patterns: Sequence[int], mask: int) -> List[int]:
    """One-shot bit-parallel simulation; returns one packed word per node.

    This is the engine behind
    :meth:`repro.networks.base.LogicNetwork.simulate_patterns`; the compiled
    program is cached per network, so repeated one-shot calls only pay for
    the integer ops.
    """
    pis = ntk._pis
    if len(pi_patterns) != len(pis):
        raise ValueError("pattern count must equal PI count")
    prog = _program_for(ntk)
    vals = [0] * ntk.num_nodes()
    for i, n in enumerate(pis):
        vals[n] = pi_patterns[i] & mask
    prog.run(vals, mask)
    _GLOBAL_STATS["oneshot_sims"] += 1
    return vals


class SimEngine:
    """Incremental bit-parallel simulation of one network over a pattern pool.

    :meth:`signatures` returns the per-node value words over every pattern
    currently in the pool, recomputing only what changed since the last
    refresh: appended patterns are simulated as a narrow delta and OR-merged,
    appended nodes are simulated via the flat program suffix.  The returned
    list is the engine's working buffer — treat it as read-only.
    """

    def __init__(self, ntk, pool: Optional[PatternPool] = None, *,
                 n_patterns: int = 256, seed: int = 1):
        self.ntk = ntk
        self.pool = pool if pool is not None else PatternPool(
            ntk.num_pis(), n_patterns, seed)
        if self.pool.n_pis != ntk.num_pis():
            raise ValueError("pool PI count must match the network")
        self._prog = _program_for(ntk)  # shared with one-shot simulation
        self._vals: Optional[List[int]] = None
        self._simmed_nodes = 0
        self._simmed_patterns = 0

    @property
    def mask(self) -> int:
        """Valid-bits mask matching the *current* pool width."""
        return self.pool.mask

    def signatures(self) -> List[int]:
        """Per-node signature words over the whole pool (refreshed lazily)."""
        self.refresh()
        return self._vals

    def node_signature(self, node: int) -> int:
        self.refresh()
        return self._vals[node]

    def literal_signature(self, literal: int) -> int:
        """Signature of a network literal (complement applied)."""
        self.refresh()
        x = self._vals[literal >> 1]
        return x ^ self.pool.mask if literal & 1 else x

    def refresh(self) -> None:
        ntk = self.ntk
        pool = self.pool
        nn = ntk.num_nodes()
        np_ = pool.n_patterns
        if self._vals is not None and self._simmed_nodes == nn \
                and self._simmed_patterns == np_:
            return
        prog = self._prog
        if prog.built_nodes < nn:
            prog.extend(ntk)
        mask = pool.mask
        pis = ntk._pis

        if self._vals is None or (nn > self._simmed_nodes
                                  and np_ > self._simmed_patterns):
            # first run, or both dimensions grew: full simulation
            vals = [0] * nn
            for i, n in enumerate(pis):
                vals[n] = pool.words[i] & mask
            prog.run(vals, mask)
            self._vals = vals
            _GLOBAL_STATS["full_sims"] += 1
        elif np_ > self._simmed_patterns:
            # pattern-incremental: simulate only the appended columns
            shift = self._simmed_patterns
            delta_mask = (1 << (np_ - shift)) - 1
            delta = [0] * nn
            for i, n in enumerate(pis):
                delta[n] = (pool.words[i] >> shift) & delta_mask
            prog.run(delta, delta_mask)
            vals = self._vals
            for n in range(nn):
                vals[n] |= delta[n] << shift
            _GLOBAL_STATS["pattern_incr_sims"] += 1
        elif nn > self._simmed_nodes:
            # node-incremental: networks are append-only, so only the new
            # suffix (the dirty cone of freshly created nodes) is dirty
            vals = self._vals
            vals.extend([0] * (nn - len(vals)))
            for i, n in enumerate(pis):
                vals[n] = pool.words[i] & mask
            dirty_from = bisect.bisect_left(prog.flat_nodes, self._simmed_nodes)
            prog.run_suffix(vals, mask, dirty_from)
            _GLOBAL_STATS["node_incr_sims"] += 1
        self._simmed_nodes = nn
        self._simmed_patterns = np_
