"""SAT solving and combinational equivalence checking."""

from .solver import SAT, UNSAT, Solver
from .cnf import CnfBuilder
from .cec import CecResult, cec, find_counterexample

__all__ = ["Solver", "SAT", "UNSAT", "CnfBuilder", "CecResult", "cec", "find_counterexample"]
