"""SAT solving and combinational equivalence checking.

The verification stack is layered: the optimized CDCL :class:`Solver` at the
bottom, :class:`EquivalenceSession` (one Tseitin encoding, many incremental
queries, counterexample recycling) above it, and the bit-parallel simulation
engine in :mod:`repro.sim` alongside.  Consumers outside this package go
through :class:`EquivalenceSession` / :func:`cec`; code that needs a bare
solver for custom CNF work (e.g. exact synthesis) uses :func:`new_solver`.
"""

from .solver import SAT, UNSAT, Solver, reset_solver_stats, solver_stats
from .cnf import CnfBuilder
from .session import EquivalenceSession
from .cec import CecResult, cec, find_counterexample

__all__ = [
    "Solver", "SAT", "UNSAT", "CnfBuilder", "EquivalenceSession",
    "CecResult", "cec", "find_counterexample", "new_solver",
    "solver_stats", "reset_solver_stats",
]


def new_solver() -> Solver:
    """A fresh CDCL solver for custom CNF work.

    Keeps every ``Solver`` construction site inside :mod:`repro.sat` so the
    process-wide :func:`solver_stats` counters see all SAT activity.
    """
    return Solver()
