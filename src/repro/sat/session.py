"""Shared incremental equivalence sessions.

Before this module existed, every verification consumer (``cec``,
``functional_classes``, ``resub``, choice verification, ``dch``) rebuilt a
``CnfBuilder``/``Solver`` pair from scratch and rolled its own random
patterns.  An :class:`EquivalenceSession` Tseitin-encodes a network (or a
miter of several networks over shared PIs) *once* and answers many
(in)equivalence queries through assumption selector literals on one
persistent solver, so learned clauses accumulate across queries.

Counterexample recycling closes the FRAIG loop: every SAT model found by a
query is folded back into the session's shared
:class:`~repro.sim.engine.PatternPool`, so subsequent simulation filtering
(through the session's per-network :class:`~repro.sim.engine.SimEngine`\\ s)
distinguishes candidates that the SAT solver already refuted — often
avoiding the next SAT call entirely.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..sim.engine import PatternPool, SimEngine
from .cnf import CnfBuilder
from .solver import UNSAT, Solver

__all__ = ["EquivalenceSession"]


class EquivalenceSession:
    """One Tseitin encoding, many incremental (in)equivalence queries.

    ``prove_equal`` and friends return ``True`` (proven), ``False``
    (counterexample found — and recycled into the pattern pool) or ``None``
    (conflict budget exhausted).  Additional networks can be encoded over the
    same PI variables with :meth:`add_network`, which is how miters are
    built.
    """

    def __init__(self, ntk=None, pool: Optional[PatternPool] = None, *,
                 n_patterns: int = 256, seed: int = 1, n_pis: Optional[int] = None):
        """``ntk=None`` opens a *bare* session (``n_pis`` wide, default 0).

        Bare sessions skip the up-front network encoding; the sequential
        engines use them as an incremental solver onto which time frames are
        Tseitin-encoded one at a time via :meth:`encode_frame`.
        """
        if n_pis is None:
            n_pis = ntk.num_pis() if ntk is not None else 0
        self.pool = pool if pool is not None else PatternPool(
            n_pis, n_patterns, seed)
        self._solver = Solver()
        self._builder = CnfBuilder()
        self.pi_vars: Dict[int, int] = {
            i: self._builder.new_var() for i in range(n_pis)
        }
        self.networks: List = []
        self.engines: List[SimEngine] = []
        self._var_of: List[Dict[int, int]] = []
        self._po_lits: List[List[int]] = []
        self._cex: Optional[List[bool]] = None
        self._const_var: Optional[int] = None
        self.queries = 0
        self.proved = 0
        self.refuted = 0
        self.timeouts = 0
        if ntk is not None:
            self.add_network(ntk)

    # -- encoding ------------------------------------------------------------

    def add_network(self, ntk) -> int:
        """Encode another network over the shared PI variables; returns its index."""
        if ntk.num_pis() != len(self.pi_vars):
            raise ValueError("all session networks must share the PI interface")
        builder = self._builder
        mark = len(builder.clauses)
        var_of, po_lits = builder.encode(ntk, self.pi_vars)
        solver = self._solver
        for _ in range(builder.num_vars - solver.num_vars):
            solver.new_var()
        for cl in builder.clauses[mark:]:
            solver.add_clause(cl)
        self.networks.append(ntk)
        self.engines.append(SimEngine(ntk, self.pool))
        self._var_of.append(var_of)
        self._po_lits.append(po_lits)
        return len(self.networks) - 1

    def encode_frame(self, ntk, ci_lits: List[int]):
        """Tseitin-encode one copy of ``ntk``'s combinational skeleton.

        Unlike :meth:`add_network`, the combinational inputs are bound to
        the given *signed solver literals* (one per CI, in ``ntk.pis``
        order) instead of the session's shared PI variables.  This is the
        primitive behind time-frame unrolling: frame ``t+1`` passes the
        frame-``t`` next-state literals as the CI literals of the register
        outputs.  Returns ``(var_of, po_lits)`` — the node→literal map (use
        it to look up register-input literals) and the signed PO literals.
        """
        if len(ci_lits) != ntk.num_pis():
            raise ValueError(
                f"expected {ntk.num_pis()} CI literals, got {len(ci_lits)}")
        builder = self._builder
        mark = len(builder.clauses)
        var_of, po_lits = builder.encode(ntk, dict(enumerate(ci_lits)))
        solver = self._solver
        for _ in range(builder.num_vars - solver.num_vars):
            solver.new_var()
        for cl in builder.clauses[mark:]:
            solver.add_clause(cl)
        return var_of, po_lits

    def new_input_vars(self, n: int) -> List[int]:
        """``n`` fresh unconstrained variables (e.g. one frame's PIs)."""
        return [self._new_var() for _ in range(n)]

    def const_literal(self, value: int) -> int:
        """A solver literal fixed to the given truth value (0/1).

        The underlying unit-clause variable is created lazily once per
        session and shared by every call (frame-0 register init values).
        """
        v = self._const_var
        if v is None:
            v = self._const_var = self._new_var()
            self._solver.add_clause([-v])   # the shared variable is false
        return -v if value else v

    def literal_value(self, sl: int) -> bool:
        """Value of a signed solver literal in the last SAT model."""
        v = self._solver.model_value(abs(sl))
        return (not v) if sl < 0 else v

    def _new_var(self) -> int:
        """Fresh variable, kept in lockstep between builder and solver so a
        later :meth:`add_network` cannot collide with selector variables."""
        v = self._builder.new_var()
        solver = self._solver
        while solver.num_vars < v:
            solver.new_var()
        return v

    def engine(self, index: int = 0) -> SimEngine:
        """The simulation engine of network ``index`` (shared pattern pool)."""
        return self.engines[index]

    def node_literal(self, node: int, index: int = 0) -> int:
        """Signed solver literal of a network node's output."""
        return self._var_of[index][node]

    def network_literal(self, literal: int, index: int = 0) -> int:
        """Signed solver literal of a network *literal* (complement applied)."""
        v = self._var_of[index][literal >> 1]
        return -v if literal & 1 else v

    def output_literals(self, index: int = 0) -> List[int]:
        """Signed solver literals of the network's POs, in order."""
        return list(self._po_lits[index])

    def make_and(self, sl_a: int, sl_b: int) -> int:
        """A fresh solver literal constrained to ``sl_a & sl_b``.

        Lets consumers (e.g. ``resub``) pose queries about small auxiliary
        functions without ever touching a ``CnfBuilder``/``Solver`` directly.
        """
        solver = self._solver
        s = self._new_var()
        solver.add_clause([-s, sl_a])
        solver.add_clause([-s, sl_b])
        solver.add_clause([s, -sl_a, -sl_b])
        return s

    # -- queries -------------------------------------------------------------

    def assume_equal(self, sl_a: int, sl_b: int) -> int:
        """A selector literal that, while assumed, forces ``sl_a == sl_b``.

        The constraint is inert until the selector is passed in the
        ``assumptions`` of a query; k-induction uses this to hypothesize
        output equality on frames ``0..k-1`` while testing frame ``k``.
        """
        solver = self._solver
        s = self._new_var()
        solver.add_clause([-s, -sl_a, sl_b])
        solver.add_clause([-s, sl_a, -sl_b])
        return s

    def prove_equal(self, sl_a: int, sl_b: int,
                    conflict_limit: Optional[int] = None,
                    assumptions: List[int] = ()) -> Optional[bool]:
        """Prove two solver literals equal under the given assumptions.

        Returns True if proven, False with a recycled counterexample if they
        differ, None if the conflict budget ran out.  Each query burns one
        selector variable; the miter clauses are permanently disabled
        afterwards, while clauses the solver learned remain valid for later
        queries.
        """
        solver = self._solver
        self.queries += 1
        s = self._new_var()
        # under s: sl_a != sl_b
        solver.add_clause([-s, sl_a, sl_b])
        solver.add_clause([-s, -sl_a, -sl_b])
        res = solver.solve(assumptions=[s, *assumptions],
                           conflict_limit=conflict_limit)
        solver.add_clause([-s])  # retire the selector
        if res is None:
            self.timeouts += 1
            return None
        if res == UNSAT:
            self.proved += 1
            return True
        self.refuted += 1
        if self.pi_vars:
            cex = [solver.model_value(self.pi_vars[i])
                   for i in range(len(self.pi_vars))]
            self._cex = cex
            self.pool.add_counterexample(cex)
        return False

    def prove_node_equal(self, node_a: int, node_b: int, compl: bool = False,
                         conflict_limit: Optional[int] = None,
                         index_a: int = 0, index_b: int = 0) -> Optional[bool]:
        """Prove ``node_a == node_b ^ compl`` (nodes of session networks)."""
        sa = self._var_of[index_a][node_a]
        sb = self._var_of[index_b][node_b]
        return self.prove_equal(sa, -sb if compl else sb, conflict_limit)

    @property
    def last_counterexample(self) -> Optional[List[bool]]:
        """PI assignment of the most recent refuted query."""
        return self._cex

    def stats(self) -> dict:
        return {
            "queries": self.queries,
            "proved": self.proved,
            "refuted": self.refuted,
            "timeouts": self.timeouts,
            "patterns": self.pool.n_patterns,
            "solver_vars": self._solver.num_vars,
        }
