"""Combinational equivalence checking (the Python analogue of ABC ``cec``).

Strategy, mirroring practical CEC engines:

1. **Exhaustive simulation** when the PI count is small (≤ ``sim_limit``):
   bit-parallel truth-table comparison, exact and fast.
2. **Random simulation** over a shared :class:`~repro.sim.engine.PatternPool`
   to hunt for cheap counterexamples.
3. **SAT miter**: one :class:`~repro.sat.session.EquivalenceSession` encodes
   both networks over shared PI variables and proves each PO pair equal
   through incremental assumption queries, so clauses learned for one output
   help the next.  Any SAT counterexample is recycled into the same pattern
   pool the simulation phase used — callers chaining several checks (pass a
   ``pool``) get sharper filtering for free.

Every optimization and mapping pass in this library is verified through
:func:`cec` in the test suite, mirroring the paper's statement that "all
results have been formally verified with ABC's cec command".
"""

from __future__ import annotations

from typing import List, Optional

from ..networks.base import LogicNetwork, require_combinational
from ..sim.engine import PatternPool, SimEngine
from .session import EquivalenceSession

__all__ = ["cec", "CecResult", "find_counterexample"]


class CecResult:
    """Outcome of an equivalence check."""

    def __init__(self, equivalent: bool, counterexample: Optional[List[bool]] = None,
                 method: str = ""):
        self.equivalent = equivalent
        self.counterexample = counterexample
        self.method = method

    def __bool__(self) -> bool:
        return self.equivalent

    def __repr__(self) -> str:
        if self.equivalent:
            return f"CecResult(equivalent, via {self.method})"
        return f"CecResult(NOT equivalent, cex={self.counterexample})"


def _interface_check(a: LogicNetwork, b: LogicNetwork) -> None:
    if a.num_pis() != b.num_pis():
        raise ValueError(f"PI count mismatch: {a.num_pis()} vs {b.num_pis()}")
    if a.num_pos() != b.num_pos():
        raise ValueError(f"PO count mismatch: {a.num_pos()} vs {b.num_pos()}")


def _sim_counterexample(ea: SimEngine, eb: SimEngine,
                        pool: PatternPool) -> Optional[List[bool]]:
    """Compare PO signatures over the pool; a distinguishing input or None."""
    a, b = ea.ntk, eb.ntk
    va = ea.signatures()
    vb = eb.signatures()
    mask = pool.mask
    for pa, pb in zip(a.pos, b.pos):
        xa = va[pa >> 1] ^ (mask if pa & 1 else 0)
        xb = vb[pb >> 1] ^ (mask if pb & 1 else 0)
        diff = xa ^ xb
        if diff:
            bit = (diff & -diff).bit_length() - 1
            return pool.pattern(bit)
    return None


def find_counterexample(a: LogicNetwork, b: LogicNetwork, rounds: int = 64,
                        width: int = 64, seed: int = 1,
                        pool: Optional[PatternPool] = None) -> Optional[List[bool]]:
    """Random simulation: returns a distinguishing input or None.

    ``rounds * width`` random patterns are drawn into one shared pool (or the
    caller's ``pool`` is used as-is — including any recycled SAT
    counterexamples it has accumulated) and both networks are simulated once,
    bit-parallel over the full pool width.
    """
    _interface_check(a, b)
    if pool is None:
        pool = PatternPool(a.num_pis(), n_patterns=rounds * width, seed=seed)
    ea = SimEngine(a, pool)
    eb = SimEngine(b, pool)
    return _sim_counterexample(ea, eb, pool)


def cec(a: LogicNetwork, b: LogicNetwork, sim_limit: int = 12,
        sim_rounds: int = 16, pool: Optional[PatternPool] = None,
        session: Optional[EquivalenceSession] = None) -> CecResult:
    """Check combinational equivalence of two networks (PO-by-PO, in order).

    A caller-supplied ``session`` (one that already Tseitin-encodes ``a`` as
    its first network, e.g. the cached session of a
    :class:`~repro.flow.context.FlowContext`) is reused: only ``b`` is
    encoded, over the shared PI variables, and clauses learned by earlier
    checks against the same reference carry over.
    """
    require_combinational(a, "cec")
    require_combinational(b, "cec")
    _interface_check(a, b)

    if a.num_pis() <= sim_limit:
        ta = a.simulate_truth_tables()
        tb = b.simulate_truth_tables()
        for i, (x, y) in enumerate(zip(ta, tb)):
            if x != y:
                diff = x.bits ^ y.bits
                m = (diff & -diff).bit_length() - 1
                cex = [bool((m >> v) & 1) for v in range(a.num_pis())]
                return CecResult(False, cex, "exhaustive simulation")
        return CecResult(True, method="exhaustive simulation")

    if session is not None:
        ref = session.networks[0]
        if ref is not a and ref.structural_hash() != a.structural_hash():
            raise ValueError("injected session must encode the reference network")
        pool = session.pool
    elif pool is None:
        pool = PatternPool(a.num_pis(), n_patterns=sim_rounds * 64, seed=1)
    cex = _sim_counterexample(SimEngine(a, pool), SimEngine(b, pool), pool)
    if cex is not None:
        return CecResult(False, cex, "random simulation")

    if session is None:
        session = EquivalenceSession(a, pool=pool)
    hb = b.structural_hash()
    ib = next((i for i, n in enumerate(session.networks)
               if n is b or n.structural_hash() == hb), None)
    if ib is None:   # not already encoded (e.g. a cec pass then --verify)
        ib = session.add_network(b)

    # SAT miter over shared PIs, one incremental query per PO pair
    po_a = session.output_literals(0)
    po_b = session.output_literals(ib)
    for la, lb in zip(po_a, po_b):
        res = session.prove_equal(la, lb)
        if res is False:
            return CecResult(False, session.last_counterexample, "sat")
        if res is None:  # no budget is set, so "unknown" must never leak out
            raise RuntimeError("unbudgeted cec SAT query returned unknown")
    return CecResult(True, method="sat")
