"""Combinational equivalence checking (the Python analogue of ABC ``cec``).

Strategy, mirroring practical CEC engines:

1. **Exhaustive simulation** when the PI count is small (≤ ``sim_limit``):
   bit-parallel truth-table comparison, exact and fast.
2. **Random simulation** to hunt for cheap counterexamples.
3. **SAT miter**: Tseitin-encode both networks over shared PI variables, add
   a disequality miter per PO pair, and prove UNSAT with the CDCL solver.

Every optimization and mapping pass in this library is verified through
:func:`cec` in the test suite, mirroring the paper's statement that "all
results have been formally verified with ABC's cec command".
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from ..networks.base import LogicNetwork
from .cnf import CnfBuilder
from .solver import SAT, Solver

__all__ = ["cec", "CecResult", "find_counterexample"]


class CecResult:
    """Outcome of an equivalence check."""

    def __init__(self, equivalent: bool, counterexample: Optional[List[bool]] = None,
                 method: str = ""):
        self.equivalent = equivalent
        self.counterexample = counterexample
        self.method = method

    def __bool__(self) -> bool:
        return self.equivalent

    def __repr__(self) -> str:
        if self.equivalent:
            return f"CecResult(equivalent, via {self.method})"
        return f"CecResult(NOT equivalent, cex={self.counterexample})"


def _interface_check(a: LogicNetwork, b: LogicNetwork) -> None:
    if a.num_pis() != b.num_pis():
        raise ValueError(f"PI count mismatch: {a.num_pis()} vs {b.num_pis()}")
    if a.num_pos() != b.num_pos():
        raise ValueError(f"PO count mismatch: {a.num_pos()} vs {b.num_pos()}")


def find_counterexample(a: LogicNetwork, b: LogicNetwork, rounds: int = 64,
                        width: int = 64, seed: int = 1) -> Optional[List[bool]]:
    """Random simulation: returns a distinguishing input or None."""
    _interface_check(a, b)
    rng = random.Random(seed)
    n = a.num_pis()
    mask = (1 << width) - 1
    for _ in range(rounds):
        patterns = [rng.getrandbits(width) for _ in range(n)]
        va = a.simulate_patterns(patterns, mask)
        vb = b.simulate_patterns(patterns, mask)
        for pa, pb in zip(a.pos, b.pos):
            xa = va[pa >> 1] ^ (mask if pa & 1 else 0)
            xb = vb[pb >> 1] ^ (mask if pb & 1 else 0)
            diff = xa ^ xb
            if diff:
                bit = (diff & -diff).bit_length() - 1
                return [bool((patterns[i] >> bit) & 1) for i in range(n)]
    return None


def cec(a: LogicNetwork, b: LogicNetwork, sim_limit: int = 12,
        sim_rounds: int = 16) -> CecResult:
    """Check combinational equivalence of two networks (PO-by-PO, in order)."""
    _interface_check(a, b)

    if a.num_pis() <= sim_limit:
        ta = a.simulate_truth_tables()
        tb = b.simulate_truth_tables()
        for i, (x, y) in enumerate(zip(ta, tb)):
            if x != y:
                diff = x.bits ^ y.bits
                m = (diff & -diff).bit_length() - 1
                cex = [bool((m >> v) & 1) for v in range(a.num_pis())]
                return CecResult(False, cex, "exhaustive simulation")
        return CecResult(True, method="exhaustive simulation")

    cex = find_counterexample(a, b, rounds=sim_rounds)
    if cex is not None:
        return CecResult(False, cex, "random simulation")

    # SAT miter over shared PIs
    builder = CnfBuilder()
    pi_vars = {i: builder.new_var() for i in range(a.num_pis())}
    _, po_a = builder.encode(a, pi_vars)
    _, po_b = builder.encode(b, pi_vars)
    miter_outs = []
    for la, lb in zip(po_a, po_b):
        m = builder.new_var()
        # m <-> (la xor lb)
        builder.add_clause([-m, la, lb])
        builder.add_clause([-m, -la, -lb])
        builder.add_clause([m, -la, lb])
        builder.add_clause([m, la, -lb])
        miter_outs.append(m)
    builder.add_clause(miter_outs)  # some PO differs

    solver = Solver()
    for _ in range(builder.num_vars):
        solver.new_var()
    for cl in builder.clauses:
        if not solver.add_clause(cl):
            return CecResult(True, method="sat (trivially unsat)")
    res = solver.solve()
    if res == SAT:
        cex = [solver.model_value(pi_vars[i]) for i in range(a.num_pis())]
        return CecResult(False, cex, "sat")
    return CecResult(True, method="sat")
