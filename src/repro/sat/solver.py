"""An optimized CDCL SAT solver.

Implements the standard modern architecture — two-watched-literal scheme with
flat list-indexed watch lists and a dedicated binary-clause fast path,
first-UIP conflict clause learning with clause minimization, a learned-clause
database with LBD-based periodic reduction, heap-backed VSIDS decisions,
phase saving, and Luby restarts.  It is the engine underneath
:class:`repro.sat.session.EquivalenceSession`, which is how ``cec``,
``functional_classes``, ``resub``, choice verification and ``dch`` reach it;
the paper's "all results formally verified with cec" makes this the hot path
of the whole verify/optimize loop.

The public interface is unchanged from the original compact solver: literals
are DIMACS-style signed integers (``v`` / ``-v``), variables are 1-based,
:meth:`Solver.solve` accepts assumptions and a conflict budget and the solver
stays usable across calls (learned clauses persist, which is what makes
incremental sessions cheap).  Internally literals are index-encoded
(``2*v`` / ``2*v+1``) so negation is ``^1`` and watch lists are plain
list-of-list lookups instead of per-literal dict probes.

Per-solve counters are aggregated into module-level statistics exposed via
:func:`solver_stats` (surfaced by the CLI's ``--engine-stats``).
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Sequence

__all__ = ["Solver", "SAT", "UNSAT", "solver_stats", "reset_solver_stats"]

SAT = True
UNSAT = False

#: Luby restart unit (conflicts).
_RESTART_BASE = 100
#: Learned-DB size before the first reduction, as a fraction of problem clauses.
_LEARNTSIZE_FACTOR = 1 / 3
_LEARNTSIZE_GROWTH = 1.15

_STAT_KEYS = (
    "solves", "conflicts", "propagations", "decisions", "restarts",
    "learned", "deleted", "db_reductions", "minimized_literals",
)

_GLOBAL_STATS: Dict[str, int] = {k: 0 for k in _STAT_KEYS}


def solver_stats() -> Dict[str, int]:
    """Aggregate counters across every :class:`Solver` run in this process."""
    return dict(_GLOBAL_STATS)


def reset_solver_stats() -> None:
    for k in _GLOBAL_STATS:
        _GLOBAL_STATS[k] = 0


def _luby(x: int) -> int:
    """The Luby restart sequence 1,1,2,1,1,2,4,... (0-based index)."""
    size, seq = 1, 0
    while size < x + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != x:
        size = (size - 1) >> 1
        seq -= 1
        x %= size
    return 1 << seq


def _ilit(lit: int) -> int:
    """Signed DIMACS literal -> internal index literal (2v / 2v+1)."""
    return (lit << 1) if lit > 0 else ((-lit) << 1) | 1


class Solver:
    """CDCL SAT solver over clauses of DIMACS-signed integer literals."""

    def __init__(self):
        self.num_vars = 0
        #: clause storage (index-encoded literals); deleted slots become None
        self.clauses: List[Optional[List[int]]] = []
        #: watch lists indexed by index-literal; clause indices of len>=3 clauses
        self.watches: List[List[int]] = [[], []]
        #: binary watch lists: (other index-literal, clause index) pairs
        self.watches_bin: List[List[tuple]] = [[], []]
        #: truth value per index-literal: 0 unassigned, 1 true, -1 false
        self.litval: List[int] = [0, 0]
        self.level: List[int] = [0]
        self.reason: List[Optional[int]] = [None]
        self.trail: List[int] = []
        self.trail_lim: List[int] = []
        self.activity: List[float] = [0.0]
        self.var_inc = 1.0
        self.var_decay = 0.95
        #: preferred phase bit per var (1 = negative literal first, MiniSat-style)
        self.saved_phase: List[int] = [1]
        self.qhead = 0
        self.model: List[int] = [0]
        self._ok = True
        self._order_heap: List[tuple] = []
        #: learned clause indices with len >= 3 (candidates for reduction)
        self._learnts: List[int] = []
        self._lbd: Dict[int, int] = {}
        self._max_learnts: Optional[float] = None
        #: versioned scratch for _analyze: no O(num_vars) allocation per conflict
        self._seen: List[int] = [0]
        self._stamp = 0
        self._stats = {k: 0 for k in _STAT_KEYS}

    # -- problem construction ------------------------------------------------

    def new_var(self) -> int:
        self.num_vars += 1
        v = self.num_vars
        self.litval.extend((0, 0))
        self.watches.extend(([], []))
        self.watches_bin.extend(([], []))
        self.level.append(0)
        self.reason.append(None)
        self.activity.append(0.0)
        self.saved_phase.append(1)
        self._seen.append(0)
        heapq.heappush(self._order_heap, (0.0, v))
        return v

    def _ensure_vars(self, lits: Iterable[int]) -> None:
        m = max((abs(l) for l in lits), default=0)
        while self.num_vars < m:
            self.new_var()

    def add_clause(self, lits: Sequence[int]) -> bool:
        """Add a clause; returns False if it makes the formula unsatisfiable.

        Clauses must be added at decision level 0 (always the case between
        :meth:`solve` calls, which return backtracked to the root).
        """
        if self.trail_lim:
            raise RuntimeError("clauses must be added at decision level 0")
        if not self._ok:
            return False
        self._ensure_vars(lits)
        litval = self.litval
        seen = set()
        out: List[int] = []
        for l in lits:
            if l in seen:
                continue
            if -l in seen:
                return True  # tautology
            seen.add(l)
            il = (l << 1) if l > 0 else ((-l) << 1) | 1
            v = litval[il]
            if v > 0:
                return True  # satisfied at level 0
            if v == 0:
                out.append(il)
            # v < 0: literal already false at level 0, drop it
        n = len(out)
        if n == 0:
            self._ok = False
            return False
        if n == 1:
            if not self._enqueue(out[0], None):
                self._ok = False
                return False
            return True
        ci = len(self.clauses)
        self.clauses.append(out)
        if n == 2:
            a, b = out
            self.watches_bin[a].append((b, ci))
            self.watches_bin[b].append((a, ci))
        else:
            self.watches[out[0]].append(ci)
            self.watches[out[1]].append(ci)
        return True

    # -- assignment helpers --------------------------------------------------

    def _value(self, lit: int) -> int:
        """Truth value of a signed DIMACS literal (external convenience)."""
        return self.litval[_ilit(lit)]

    def _assign(self, ilit: int, reason: Optional[int]) -> None:
        litval = self.litval
        litval[ilit] = 1
        litval[ilit ^ 1] = -1
        v = ilit >> 1
        self.level[v] = len(self.trail_lim)
        self.reason[v] = reason
        self.trail.append(ilit)

    def _enqueue(self, ilit: int, reason: Optional[int]) -> bool:
        val = self.litval[ilit]
        if val:
            return val > 0
        self._assign(ilit, reason)
        return True

    def _propagate(self) -> int:
        """Unit propagation; returns a conflicting clause index or -1."""
        trail = self.trail
        litval = self.litval
        clauses = self.clauses
        watches = self.watches
        watches_bin = self.watches_bin
        level = self.level
        reason = self.reason
        trail_lim = self.trail_lim
        nprops = 0
        while self.qhead < len(trail):
            p = trail[self.qhead]
            self.qhead += 1
            nprops += 1
            neg = p ^ 1
            # binary fast path: the other literal is known without touching
            # the clause, so this is two list lookups per watcher
            for other, ci in watches_bin[neg]:
                ov = litval[other]
                if ov == 0:
                    litval[other] = 1
                    litval[other ^ 1] = -1
                    v = other >> 1
                    level[v] = len(trail_lim)
                    reason[v] = ci
                    trail.append(other)
                elif ov < 0:
                    self._stats["propagations"] += nprops
                    return ci
            wl = watches[neg]
            i = j = 0
            n = len(wl)
            while i < n:
                ci = wl[i]
                i += 1
                cl = clauses[ci]
                if cl is None:
                    continue  # deleted by DB reduction: lazily unwatch
                if cl[0] == neg:
                    cl[0] = cl[1]
                    cl[1] = neg
                first = cl[0]
                fv = litval[first]
                if fv > 0:
                    wl[j] = ci
                    j += 1
                    continue
                found = False
                for k in range(2, len(cl)):
                    lk = cl[k]
                    if litval[lk] >= 0:
                        cl[1] = lk
                        cl[k] = neg
                        watches[lk].append(ci)
                        found = True
                        break
                if found:
                    continue
                wl[j] = ci
                j += 1
                if fv < 0:
                    # conflict: keep the unprocessed watchers
                    wl[j:] = wl[i:]
                    self._stats["propagations"] += nprops
                    return ci
                litval[first] = 1
                litval[first ^ 1] = -1
                v = first >> 1
                level[v] = len(trail_lim)
                reason[v] = ci
                trail.append(first)
            del wl[j:]
        self._stats["propagations"] += nprops
        return -1

    # -- conflict analysis ---------------------------------------------------

    def _bump(self, v: int) -> None:
        act = self.activity
        act[v] += self.var_inc
        if act[v] > 1e100:
            inv = 1e-100
            for i in range(1, self.num_vars + 1):
                act[i] *= inv
            self.var_inc *= inv
            self._rebuild_heap()
        else:
            heapq.heappush(self._order_heap, (-act[v], v))

    def _rebuild_heap(self) -> None:
        act = self.activity
        litval = self.litval
        self._order_heap = [
            (-act[v], v) for v in range(1, self.num_vars + 1)
            if litval[v << 1] == 0
        ]
        heapq.heapify(self._order_heap)

    def _analyze(self, confl: int):
        """First-UIP learning; returns (learnt clause, backtrack level, LBD).

        The ``seen`` marks live in a versioned scratch buffer (`self._seen`
        stamped with `self._stamp`), so no per-conflict allocation happens.
        """
        self._stamp += 1
        stamp = self._stamp
        seen = self._seen
        clauses = self.clauses
        level = self.level
        reason = self.reason
        trail = self.trail

        learnt = [0]  # placeholder for the asserting literal
        counter = 0
        p = -1
        index = len(trail) - 1
        cur_level = len(self.trail_lim)

        while True:
            cl = clauses[confl]
            pv = p >> 1  # -1 on the first iteration: matches no var
            for q in cl:
                v = q >> 1
                if v == pv:
                    continue  # skip the asserting literal of the reason
                if seen[v] != stamp and level[v] > 0:
                    seen[v] = stamp
                    self._bump(v)
                    if level[v] >= cur_level:
                        counter += 1
                    else:
                        learnt.append(q)
            while seen[trail[index] >> 1] != stamp:
                index -= 1
            p = trail[index]
            v = p >> 1
            seen[v] = 0
            counter -= 1
            index -= 1
            if counter == 0:
                break
            confl = reason[v]
        learnt[0] = p ^ 1

        # clause minimization: drop literals implied by the rest
        cleaned = [learnt[0]]
        for q in learnt[1:]:
            qv = q >> 1
            r = reason[qv]
            if r is None:
                cleaned.append(q)
                continue
            implied = True
            for x in clauses[r]:
                xv = x >> 1
                if xv != qv and seen[xv] != stamp and level[xv] != 0:
                    implied = False
                    break
            if implied:
                self._stats["minimized_literals"] += 1
                continue
            cleaned.append(q)
        learnt = cleaned

        if len(learnt) == 1:
            return learnt, 0, 1
        # backtrack level = max level among learnt[1:]; keep a literal of that
        # level in the second watch position so the watch invariant holds
        # after deep backtracks
        bt = 0
        bt_idx = 1
        for idx in range(1, len(learnt)):
            lv = level[learnt[idx] >> 1]
            if lv > bt:
                bt = lv
                bt_idx = idx
        learnt[1], learnt[bt_idx] = learnt[bt_idx], learnt[1]
        lbd = len({level[q >> 1] for q in learnt})
        return learnt, bt, lbd

    def _attach_learnt(self, learnt: List[int], lbd: int) -> bool:
        """Store a learnt clause and enqueue its asserting literal."""
        self._stats["learned"] += 1
        if len(learnt) == 1:
            return self._enqueue(learnt[0], None)
        ci = len(self.clauses)
        self.clauses.append(learnt)
        if len(learnt) == 2:
            a, b = learnt
            self.watches_bin[a].append((b, ci))
            self.watches_bin[b].append((a, ci))
        else:
            self.watches[learnt[0]].append(ci)
            self.watches[learnt[1]].append(ci)
            self._learnts.append(ci)
            self._lbd[ci] = lbd
        return self._enqueue(learnt[0], ci)

    def _reduce_db(self) -> None:
        """Delete the worst half of the learned clauses, by LBD then size.

        Binary clauses are never stored here, glue clauses (LBD <= 2) and
        clauses currently acting as a reason are kept.  Deleted slots become
        None; propagation drops stale watchers lazily.
        """
        clauses = self.clauses
        reason = self.reason
        lbd = self._lbd
        ranked = sorted(
            self._learnts,
            key=lambda ci: (lbd[ci], len(clauses[ci])),
        )
        keep_n = len(ranked) // 2
        survivors: List[int] = ranked[:keep_n]
        deleted = 0
        for ci in ranked[keep_n:]:
            cl = clauses[ci]
            if lbd[ci] <= 2 or reason[cl[0] >> 1] == ci:
                survivors.append(ci)
                continue
            clauses[ci] = None
            del lbd[ci]
            deleted += 1
        self._learnts = survivors
        self._stats["deleted"] += deleted
        self._stats["db_reductions"] += 1

    def _cancel_until(self, lvl: int) -> None:
        trail_lim = self.trail_lim
        if len(trail_lim) <= lvl:
            return
        trail = self.trail
        litval = self.litval
        reason = self.reason
        saved = self.saved_phase
        act = self.activity
        heap = self._order_heap
        pos = trail_lim[lvl]
        for i in range(len(trail) - 1, pos - 1, -1):
            il = trail[i]
            v = il >> 1
            saved[v] = il & 1
            litval[il] = 0
            litval[il ^ 1] = 0
            reason[v] = None
            heapq.heappush(heap, (-act[v], v))
        del trail[pos:]
        del trail_lim[lvl:]
        self.qhead = pos

    def _decide(self) -> int:
        """Highest-activity unassigned variable (lazy heap); -1 if none."""
        heap = self._order_heap
        litval = self.litval
        saved = self.saved_phase
        while heap:
            _, v = heapq.heappop(heap)
            if litval[v << 1] == 0:
                return (v << 1) | saved[v]
        return -1

    # -- main loop -----------------------------------------------------------

    def solve(self, assumptions: Sequence[int] = (), conflict_limit: Optional[int] = None):
        """Solve; returns SAT/UNSAT, or None if the conflict limit was hit.

        The solver remains usable afterwards: learned clauses are kept, so
        repeated assumption-based queries (equivalence sessions) get
        incrementally cheaper.
        """
        stats = self._stats
        stats["solves"] += 1
        try:
            return self._solve(assumptions, conflict_limit)
        finally:
            for k, n in stats.items():
                _GLOBAL_STATS[k] += n
                stats[k] = 0

    def _solve(self, assumptions: Sequence[int], conflict_limit: Optional[int]):
        if not self._ok:
            return UNSAT
        if self._max_learnts is None:
            self._max_learnts = max(1000.0, len(self.clauses) * _LEARNTSIZE_FACTOR)
        if self._propagate() >= 0:
            self._ok = False
            return UNSAT

        for a in assumptions:
            self._ensure_vars((a,))
            il = _ilit(a)
            val = self.litval[il]
            if val < 0:
                self._cancel_until(0)
                return UNSAT
            if val == 0:
                self.trail_lim.append(len(self.trail))
                self._assign(il, None)
                if self._propagate() >= 0:
                    self._cancel_until(0)
                    return UNSAT
        base_level = len(self.trail_lim)

        stats = self._stats
        conflicts = 0
        restart_count = 0
        restart_limit = _RESTART_BASE * _luby(0)
        since_restart = 0
        while True:
            confl = self._propagate()
            if confl >= 0:
                conflicts += 1
                since_restart += 1
                stats["conflicts"] += 1
                if conflict_limit is not None and conflicts > conflict_limit:
                    self._cancel_until(0)
                    return None
                if len(self.trail_lim) == base_level:
                    self._cancel_until(0)
                    if base_level == 0:
                        self._ok = False
                    return UNSAT
                learnt, bt, lbd = self._analyze(confl)
                self._cancel_until(max(bt, base_level))
                if not self._attach_learnt(learnt, lbd):
                    self._cancel_until(0)
                    if base_level == 0:
                        self._ok = False
                    return UNSAT
                self.var_inc /= self.var_decay
                if since_restart >= restart_limit:
                    since_restart = 0
                    restart_count += 1
                    restart_limit = _RESTART_BASE * _luby(restart_count)
                    stats["restarts"] += 1
                    self._cancel_until(base_level)
                    if len(self._learnts) > self._max_learnts:
                        self._reduce_db()
                        self._max_learnts *= _LEARNTSIZE_GROWTH
            else:
                lit = self._decide()
                if lit < 0:
                    litval = self.litval
                    self.model = [0] + [
                        litval[v << 1] or -1 for v in range(1, self.num_vars + 1)
                    ]
                    self._cancel_until(0)
                    return SAT
                stats["decisions"] += 1
                self.trail_lim.append(len(self.trail))
                self._assign(lit, None)

    def model_value(self, var: int) -> bool:
        """Value of a variable in the last SAT model."""
        return self.model[var] > 0

    def stats(self) -> Dict[str, int]:
        """This instance's counters for the solve in progress (mostly for tests)."""
        return dict(self._stats)
