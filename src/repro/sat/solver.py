"""A compact CDCL SAT solver.

Implements the standard modern architecture — two-watched-literal scheme,
first-UIP conflict clause learning with clause minimization, VSIDS-style
activity decay, phase saving, and geometric restarts.  Used by
:mod:`repro.sat.cec` to prove combinational equivalence of networks, the
Python analogue of ABC's ``cec`` that the paper uses to verify all results.

Literal convention: DIMACS-style signed integers (``v`` / ``-v``),
variables are 1-based.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

__all__ = ["Solver", "SAT", "UNSAT"]

SAT = True
UNSAT = False


class Solver:
    """CDCL SAT solver over clauses of DIMACS-signed integer literals."""

    def __init__(self):
        self.num_vars = 0
        self.clauses: List[List[int]] = []
        self.watches: Dict[int, List[int]] = {}
        self.assign: List[int] = [0]  # 1-based; 0 unassigned, +1 true, -1 false
        self.level: List[int] = [0]
        self.reason: List[Optional[int]] = [None]
        self.trail: List[int] = []
        self.trail_lim: List[int] = []
        self.activity: List[float] = [0.0]
        self.var_inc = 1.0
        self.var_decay = 0.95
        self.saved_phase: List[int] = [0]
        self.qhead = 0

    # -- problem construction ------------------------------------------------

    def new_var(self) -> int:
        self.num_vars += 1
        self.assign.append(0)
        self.level.append(0)
        self.reason.append(None)
        self.activity.append(0.0)
        self.saved_phase.append(-1)
        return self.num_vars

    def _ensure_vars(self, lits: Iterable[int]) -> None:
        m = max((abs(l) for l in lits), default=0)
        while self.num_vars < m:
            self.new_var()

    def add_clause(self, lits: Sequence[int]) -> bool:
        """Add a clause; returns False if it is trivially unsatisfiable."""
        lits = list(dict.fromkeys(lits))  # dedupe, keep order
        self._ensure_vars(lits)
        if any(-l in lits for l in lits):
            return True  # tautology
        # remove literals already false at level 0, check satisfied
        if self.trail_lim:
            raise RuntimeError("clauses must be added at decision level 0")
        out = []
        for l in lits:
            v = self._value(l)
            if v == 1:
                return True
            if v == 0:
                out.append(l)
        if not out:
            self.clauses.append([])  # mark conflict
            return False
        if len(out) == 1:
            return self._enqueue(out[0], None)
        idx = len(self.clauses)
        self.clauses.append(out)
        self.watches.setdefault(out[0], []).append(idx)
        self.watches.setdefault(out[1], []).append(idx)
        return True

    # -- assignment helpers --------------------------------------------------

    def _value(self, lit: int) -> int:
        a = self.assign[abs(lit)]
        return a if lit > 0 else -a

    def _enqueue(self, lit: int, reason: Optional[int]) -> bool:
        if self._value(lit) == -1:
            return False
        if self._value(lit) == 1:
            return True
        v = abs(lit)
        self.assign[v] = 1 if lit > 0 else -1
        self.level[v] = len(self.trail_lim)
        self.reason[v] = reason
        self.trail.append(lit)
        return True

    def _propagate(self) -> Optional[int]:
        """Unit propagation; returns index of a conflicting clause or None."""
        while self.qhead < len(self.trail):
            lit = self.trail[self.qhead]
            self.qhead += 1
            false_lit = -lit
            watchlist = self.watches.get(false_lit, [])
            new_list = []
            for pos, ci in enumerate(watchlist):
                clause = self.clauses[ci]
                # ensure false_lit is at position 1
                if clause[0] == false_lit:
                    clause[0], clause[1] = clause[1], clause[0]
                if self._value(clause[0]) == 1:
                    new_list.append(ci)
                    continue
                # look for a replacement watch
                found = False
                for j in range(2, len(clause)):
                    if self._value(clause[j]) != -1:
                        clause[1], clause[j] = clause[j], clause[1]
                        self.watches.setdefault(clause[1], []).append(ci)
                        found = True
                        break
                if found:
                    continue
                # clause is unit or conflicting
                new_list.append(ci)
                if not self._enqueue(clause[0], ci):
                    # conflict: keep remaining watchers untouched
                    self.watches[false_lit] = new_list + watchlist[pos + 1:]
                    return ci
            self.watches[false_lit] = new_list
        return None

    # -- conflict analysis -----------------------------------------------------

    def _bump(self, v: int) -> None:
        self.activity[v] += self.var_inc
        if self.activity[v] > 1e100:
            for i in range(1, self.num_vars + 1):
                self.activity[i] *= 1e-100
            self.var_inc *= 1e-100

    def _analyze(self, confl: int):
        learnt = [0]  # placeholder for the asserting literal
        seen = [False] * (self.num_vars + 1)
        counter = 0
        p = None
        index = len(self.trail) - 1
        cur_level = len(self.trail_lim)

        while True:
            clause = self.clauses[confl]
            for lit in clause:
                v = abs(lit)
                if p is not None and v == abs(p):
                    continue  # skip the asserting literal of the reason
                if not seen[v] and self.level[v] > 0:
                    seen[v] = True
                    self._bump(v)
                    if self.level[v] >= cur_level:
                        counter += 1
                    else:
                        learnt.append(lit)
            # pick next literal from trail
            while not seen[abs(self.trail[index])]:
                index -= 1
            p = self.trail[index]
            v = abs(p)
            seen[v] = False
            counter -= 1
            index -= 1
            if counter == 0:
                break
            confl = self.reason[v]
        learnt[0] = -p

        # simple clause minimization: drop literals implied by the rest
        cleaned = [learnt[0]]
        for lit in learnt[1:]:
            r = self.reason[abs(lit)]
            if r is None:
                cleaned.append(lit)
                continue
            implied = all(
                abs(q) == abs(lit) or seen[abs(q)] or self.level[abs(q)] == 0
                for q in self.clauses[r]
            )
            if not implied:
                cleaned.append(lit)
        learnt = cleaned

        # backtrack level = max level among learnt[1:]
        if len(learnt) == 1:
            bt = 0
        else:
            bt = max(self.level[abs(l)] for l in learnt[1:])
        return learnt, bt

    def _cancel_until(self, lvl: int) -> None:
        while len(self.trail_lim) > lvl:
            pos = self.trail_lim.pop()
            while len(self.trail) > pos:
                lit = self.trail.pop()
                v = abs(lit)
                self.saved_phase[v] = 1 if lit > 0 else -1
                self.assign[v] = 0
                self.reason[v] = None
            self.qhead = min(self.qhead, len(self.trail))

    def _decide(self) -> Optional[int]:
        best_v, best_a = 0, -1.0
        for v in range(1, self.num_vars + 1):
            if self.assign[v] == 0 and self.activity[v] > best_a:
                best_v, best_a = v, self.activity[v]
        if best_v == 0:
            return None
        phase = self.saved_phase[best_v]
        return best_v if phase >= 0 else -best_v

    # -- main loop -----------------------------------------------------------

    def solve(self, assumptions: Sequence[int] = (), conflict_limit: Optional[int] = None):
        """Solve; returns SAT/UNSAT, or None if the conflict limit was hit."""
        if any(not c for c in self.clauses):
            return UNSAT
        if self._propagate() is not None:
            return UNSAT

        for a in assumptions:
            self._ensure_vars([a])
            if self._value(a) == -1:
                self._cancel_until(0)
                return UNSAT
            if self._value(a) == 0:
                self.trail_lim.append(len(self.trail))
                self._enqueue(a, None)
                if self._propagate() is not None:
                    self._cancel_until(0)
                    return UNSAT
        base_level = len(self.trail_lim)

        conflicts = 0
        restart_limit = 100
        since_restart = 0
        while True:
            confl = self._propagate()
            if confl is not None:
                conflicts += 1
                since_restart += 1
                if conflict_limit is not None and conflicts > conflict_limit:
                    self._cancel_until(0)
                    return None
                if len(self.trail_lim) == base_level:
                    self._cancel_until(0)
                    return UNSAT
                learnt, bt = self._analyze(confl)
                self._cancel_until(max(bt, base_level))
                if len(learnt) == 1:
                    if not self._enqueue(learnt[0], None):
                        self._cancel_until(0)
                        return UNSAT
                else:
                    idx = len(self.clauses)
                    self.clauses.append(learnt)
                    self.watches.setdefault(learnt[0], []).append(idx)
                    self.watches.setdefault(learnt[1], []).append(idx)
                    self._enqueue(learnt[0], idx)
                self.var_inc /= self.var_decay
                if since_restart > restart_limit:
                    since_restart = 0
                    restart_limit = int(restart_limit * 1.5)
                    self._cancel_until(base_level)
            else:
                lit = self._decide()
                if lit is None:
                    self.model = list(self.assign)
                    self._cancel_until(0)
                    return SAT
                self.trail_lim.append(len(self.trail))
                self._enqueue(lit, None)

    def model_value(self, var: int) -> bool:
        """Value of a variable in the last SAT model."""
        return self.model[var] > 0
