"""Tseitin CNF encoding of logic networks.

Consumers normally do not use this directly any more: an
:class:`~repro.sat.session.EquivalenceSession` owns one builder, encodes each
network once and answers every subsequent query incrementally.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..networks.base import GateType, LogicNetwork

__all__ = ["CnfBuilder"]


class CnfBuilder:
    """Incrementally encodes one or more networks into a shared CNF.

    PIs can be unified between networks (for miters) by passing an explicit
    PI-variable map to :meth:`encode`.
    """

    def __init__(self):
        self.clauses: List[List[int]] = []
        self.num_vars = 0

    def new_var(self) -> int:
        self.num_vars += 1
        return self.num_vars

    def add_clause(self, lits: List[int]) -> None:
        self.clauses.append(list(lits))

    def encode(self, ntk: LogicNetwork, pi_vars: Dict[int, int] = None) -> Tuple[Dict[int, int], List[int]]:
        """Encode a network; returns (node→var map, PO signed literals)."""
        var_of: Dict[int, int] = {}
        const_var = self.new_var()
        self.add_clause([-const_var])  # node 0 is constant false
        var_of[0] = const_var
        for i, n in enumerate(ntk.pis):
            if pi_vars is not None and i in pi_vars:
                var_of[n] = pi_vars[i]
            else:
                var_of[n] = self.new_var()

        def sl(literal: int) -> int:
            v = var_of[literal >> 1]
            return -v if literal & 1 else v

        for n in ntk.gates():
            out = self.new_var()
            var_of[n] = out
            fis = [sl(f) for f in ntk.fanins(n)]
            t = ntk.node_type(n)
            if t == GateType.AND:
                a, b = fis
                self.add_clause([-out, a])
                self.add_clause([-out, b])
                self.add_clause([out, -a, -b])
            elif t == GateType.XOR:
                a, b = fis
                self.add_clause([-out, a, b])
                self.add_clause([-out, -a, -b])
                self.add_clause([out, -a, b])
                self.add_clause([out, a, -b])
            elif t == GateType.MAJ:
                a, b, c = fis
                self.add_clause([-out, a, b])
                self.add_clause([-out, a, c])
                self.add_clause([-out, b, c])
                self.add_clause([out, -a, -b])
                self.add_clause([out, -a, -c])
                self.add_clause([out, -b, -c])
            elif t == GateType.XOR3:
                a, b, c = fis
                # out = a ^ b ^ c: forbid all even-parity mismatches
                self.add_clause([-out, a, b, c])
                self.add_clause([-out, -a, -b, c])
                self.add_clause([-out, -a, b, -c])
                self.add_clause([-out, a, -b, -c])
                self.add_clause([out, -a, b, c])
                self.add_clause([out, a, -b, c])
                self.add_clause([out, a, b, -c])
                self.add_clause([out, -a, -b, -c])
            else:
                raise ValueError(f"cannot encode gate type {t}")

        po_lits = [sl(p) for p in ntk.pos]
        return var_of, po_lits
