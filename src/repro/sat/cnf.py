"""Tseitin CNF encoding of logic networks.

Consumers normally do not use this directly any more: an
:class:`~repro.sat.session.EquivalenceSession` owns one builder, encodes each
network once and answers every subsequent query incrementally.

The encoder walks the network's flat struct-of-arrays snapshot
(:class:`~repro.networks.flat.FlatNetwork`): gate kinds and fanin literals
come straight out of contiguous buffers, so clause emission touches no node
objects.  Variable numbering and clause order are exactly those of the
original object-walking encoder — one variable for the constant node, one per
PI in creation order, then one per gate in topological order, with the gate
clauses in fixed per-kind order — so encodings (and therefore solver
behaviour) are bit-identical.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..networks.base import GateType, LogicNetwork
from ..networks.flat import FlatNetwork

__all__ = ["CnfBuilder"]

_AND = int(GateType.AND)
_XOR = int(GateType.XOR)
_MAJ = int(GateType.MAJ)
_XOR3 = int(GateType.XOR3)


class CnfBuilder:
    """Incrementally encodes one or more networks into a shared CNF.

    PIs can be unified between networks (for miters) by passing an explicit
    PI-variable map to :meth:`encode`.
    """

    def __init__(self):
        self.clauses: List[List[int]] = []
        self.num_vars = 0

    def new_var(self) -> int:
        self.num_vars += 1
        return self.num_vars

    def add_clause(self, lits: List[int]) -> None:
        self.clauses.append(list(lits))

    def encode(self, ntk, pi_vars: Dict[int, int] = None) -> Tuple[Dict[int, int], List[int]]:
        """Encode a network; returns (node→var map, PO signed literals).

        ``ntk`` may be a :class:`LogicNetwork` (its cached flat snapshot is
        used) or a :class:`FlatNetwork` directly — batch workers that receive
        flat buffers can encode without rebuilding node objects.
        """
        snap = ntk if isinstance(ntk, FlatNetwork) else ntk.flat
        clauses = self.clauses
        nv = self.num_vars
        var_of: Dict[int, int] = {}
        nv += 1
        clauses.append([-nv])  # node 0 is constant false
        var_of[0] = nv
        for i, n in enumerate(snap.pis):
            if pi_vars is not None and i in pi_vars:
                var_of[n] = pi_vars[i]
            else:
                nv += 1
                var_of[n] = nv
        kinds = snap.kind
        fan = snap.fanin
        for n, t in enumerate(kinds):
            if t < _AND:
                continue  # PI / constant
            nv += 1
            out = nv
            var_of[n] = out
            base = 3 * n
            f = fan[base]
            v = var_of[f >> 1]
            a = -v if f & 1 else v
            f = fan[base + 1]
            v = var_of[f >> 1]
            b = -v if f & 1 else v
            if t == _AND:
                clauses.append([-out, a])
                clauses.append([-out, b])
                clauses.append([out, -a, -b])
            elif t == _XOR:
                clauses.append([-out, a, b])
                clauses.append([-out, -a, -b])
                clauses.append([out, -a, b])
                clauses.append([out, a, -b])
            elif t == _MAJ:
                f = fan[base + 2]
                v = var_of[f >> 1]
                c = -v if f & 1 else v
                clauses.append([-out, a, b])
                clauses.append([-out, a, c])
                clauses.append([-out, b, c])
                clauses.append([out, -a, -b])
                clauses.append([out, -a, -c])
                clauses.append([out, -b, -c])
            elif t == _XOR3:
                f = fan[base + 2]
                v = var_of[f >> 1]
                c = -v if f & 1 else v
                # out = a ^ b ^ c: forbid all even-parity mismatches
                clauses.append([-out, a, b, c])
                clauses.append([-out, -a, -b, c])
                clauses.append([-out, -a, b, -c])
                clauses.append([-out, a, -b, -c])
                clauses.append([out, -a, b, c])
                clauses.append([out, a, -b, c])
                clauses.append([out, a, b, -c])
                clauses.append([out, -a, -b, -c])
            else:
                raise ValueError(f"cannot encode gate type {GateType(t)}")
        self.num_vars = nv
        po_lits = []
        for p in snap.pos:
            v = var_of[p >> 1]
            po_lits.append(-v if p & 1 else v)
        return var_of, po_lits
