"""BMC and k-induction CEC as incremental time-frame Tseitin encodings.

One :class:`~repro.sat.session.EquivalenceSession` holds every frame of
every network: :class:`TimeFrames` binds frame ``t+1`` register outputs to
the frame-``t`` next-state solver literals via
:meth:`~repro.sat.session.EquivalenceSession.encode_frame`, so unrolling is
exactly "repeated Tseitin under assumptions" — queries are selector-guarded
miters on one persistent solver, learned clauses accumulate across frames
and across depths, and SAT models are decoded back into per-frame input
traces.

``bmc_cec`` is refutation-complete up to its depth; ``k_induction_cec``
adds the standard inductive step (assume PO equality on ``k`` consecutive
frames from an arbitrary state, prove it on frame ``k``), which is sound
but incomplete — *proved* means sequentially equivalent, *inconclusive*
means raise ``k``.  ``seq_cec`` composes simulation, induction and a BMC
fallback into the verification entry point used by flows.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..networks.base import LogicNetwork
from ..sat.session import EquivalenceSession
from .sim import simulate_sequential

__all__ = ["SeqCecResult", "TimeFrames", "bmc_cec", "k_induction_cec", "seq_cec"]


@dataclass
class SeqCecResult:
    """Outcome of a sequential equivalence check.

    ``equivalent`` is ``True`` (proven, or — when ``bounded`` — clean up to
    ``depth`` frames), ``False`` (refuted) or ``None`` (inconclusive).
    ``counterexample`` is a per-frame list of real-PI assignments driving
    the two networks apart from the initial state.
    """

    equivalent: Optional[bool]
    method: str
    depth: int
    bounded: bool = False
    counterexample: Optional[List[List[bool]]] = field(default=None)

    def __bool__(self) -> bool:
        return bool(self.equivalent)


def _check_interface(networks: Sequence[LogicNetwork]) -> None:
    a = networks[0]
    for b in networks[1:]:
        if b.num_real_pis() != a.num_real_pis() or b.num_pos() != a.num_pos():
            raise ValueError(
                f"sequential interface mismatch: {a.num_real_pis()} PIs / "
                f"{a.num_pos()} POs vs {b.num_real_pis()} PIs / {b.num_pos()} POs")


class TimeFrames:
    """Incremental time-frame expansion of networks on one session.

    All networks share the per-frame real-PI variables (a sequential miter);
    each network keeps its own register state chain.  ``initialized=True``
    starts from the init values, ``False`` from fresh unconstrained state
    variables (the arbitrary state k-induction needs).
    """

    def __init__(self, session: EquivalenceSession,
                 networks: Sequence[LogicNetwork], *, initialized: bool = True):
        _check_interface(networks)
        self.session = session
        self.nets = list(networks)
        self.n_real_pis = self.nets[0].num_real_pis()
        self._regs = [ntk.registers for ntk in self.nets]
        self._ro_of = [{n: i for i, (n, _, _) in enumerate(regs)}
                       for regs in self._regs]
        if initialized:
            self._state = [[session.const_literal(init) for _, _, init in regs]
                           for regs in self._regs]
        else:
            self._state = [session.new_input_vars(len(regs))
                           for regs in self._regs]
        #: frame-0 register literals per network (arbitrary-state variables
        #: when ``initialized=False`` — what register sweep assumes over)
        self.initial_state = [list(s) for s in self._state]
        #: per frame: the shared real-PI solver variables
        self.pi_vars: List[List[int]] = []
        #: per frame, per network: signed PO solver literals
        self.po_lits: List[List[List[int]]] = []
        #: per frame, per network: signed next-state solver literals
        self.ri_lits: List[List[List[int]]] = []

    @property
    def depth(self) -> int:
        """Number of frames encoded so far."""
        return len(self.pi_vars)

    def extend(self) -> int:
        """Encode one more frame for every network; returns its index."""
        session = self.session
        pvars = session.new_input_vars(self.n_real_pis)
        self.pi_vars.append(pvars)
        frame_pos: List[List[int]] = []
        frame_ris: List[List[int]] = []
        for k, ntk in enumerate(self.nets):
            ro_of = self._ro_of[k]
            state = self._state[k]
            it = iter(pvars)
            ci = [state[ro_of[n]] if n in ro_of else next(it) for n in ntk.pis]
            var_of, po_lits = session.encode_frame(ntk, ci)
            ris = []
            for _, ri, _ in self._regs[k]:
                v = var_of[ri >> 1]
                ris.append(-v if ri & 1 else v)
            frame_pos.append(po_lits)
            frame_ris.append(ris)
            self._state[k] = ris
        self.po_lits.append(frame_pos)
        self.ri_lits.append(frame_ris)
        return self.depth - 1

    def extract_trace(self, last_frame: int) -> List[List[bool]]:
        """Per-frame real-PI assignments from the last SAT model."""
        session = self.session
        return [[session.literal_value(v) for v in self.pi_vars[t]]
                for t in range(last_frame + 1)]


def bmc_cec(a: LogicNetwork, b: LogicNetwork, depth: int, *,
            session: Optional[EquivalenceSession] = None,
            conflict_limit: Optional[int] = None) -> SeqCecResult:
    """Bounded model checking: compare all POs over ``depth`` frames.

    Complete for refutation up to the bound — any returned counterexample
    trace is a real divergence from the initial state.  A ``True`` verdict
    is *bounded* equivalence only (``bounded=True`` on the result).
    """
    if session is None:
        session = EquivalenceSession(n_pis=0)
    frames = TimeFrames(session, [a, b], initialized=True)
    for t in range(depth):
        frames.extend()
        for la, lb in zip(frames.po_lits[t][0], frames.po_lits[t][1]):
            res = session.prove_equal(la, lb, conflict_limit)
            if res is False:
                return SeqCecResult(False, "bmc", t + 1,
                                    counterexample=frames.extract_trace(t))
            if res is None:
                return SeqCecResult(None, "bmc (conflict budget exhausted)", t)
    return SeqCecResult(True, "bmc", depth, bounded=True)


def k_induction_cec(a: LogicNetwork, b: LogicNetwork, *, max_k: int = 8,
                    conflict_limit: Optional[int] = None) -> SeqCecResult:
    """k-induction CEC: base case by incremental BMC, inductive step by
    PO-equality assumptions over a window of arbitrary-state frames.

    ``True`` is a full (unbounded) sequential equivalence proof; ``False``
    carries a concrete trace from the base case; ``None`` means no ``k`` up
    to ``max_k`` was inductive — the networks may still be equivalent.
    """
    base_sess = EquivalenceSession(n_pis=0)
    base = TimeFrames(base_sess, [a, b], initialized=True)
    step_sess = EquivalenceSession(n_pis=0)
    step = TimeFrames(step_sess, [a, b], initialized=False)
    eq_selectors: List[List[int]] = []  # per hypothesized frame
    for k in range(1, max_k + 1):
        # base case: frames 0..k-1 from the initial state
        while base.depth < k:
            t = base.extend()
            for la, lb in zip(base.po_lits[t][0], base.po_lits[t][1]):
                res = base_sess.prove_equal(la, lb, conflict_limit)
                if res is False:
                    return SeqCecResult(False, f"k-induction base (k={k})",
                                        t + 1,
                                        counterexample=base.extract_trace(t))
                if res is None:
                    return SeqCecResult(
                        None, "k-induction (conflict budget exhausted)", t)
        # inductive step: arbitrary state, assume equality on 0..k-1,
        # prove it on frame k
        while step.depth < k + 1:
            step.extend()
        while len(eq_selectors) < k:
            t = len(eq_selectors)
            eq_selectors.append([
                step_sess.assume_equal(la, lb)
                for la, lb in zip(step.po_lits[t][0], step.po_lits[t][1])])
        assumptions = [s for sels in eq_selectors for s in sels]
        inductive = all(
            step_sess.prove_equal(la, lb, conflict_limit,
                                  assumptions=assumptions) is True
            for la, lb in zip(step.po_lits[k][0], step.po_lits[k][1]))
        if inductive:
            return SeqCecResult(True, f"k-induction (k={k})", k)
    return SeqCecResult(None, f"k-induction inconclusive (max_k={max_k})", max_k)


def seq_cec(a: LogicNetwork, b: LogicNetwork, *, max_k: int = 8,
            depth: Optional[int] = None, sim_frames: int = 16,
            n_patterns: int = 64, seed: int = 1,
            conflict_limit: Optional[int] = None) -> SeqCecResult:
    """Sequential CEC entry point: simulate, induct, fall back to BMC.

    Random multi-frame simulation hunts for cheap refutations first (the
    reported trace is then re-derived by BMC so it is exact), k-induction
    tries for an unbounded proof, and if no ``k <= max_k`` is inductive the
    verdict degrades to bounded equivalence over ``depth`` frames
    (default ``2 * max_k``; ``bounded=True`` on the result).
    """
    _check_interface([a, b])
    if depth is None:
        depth = 2 * max_k
    # cheap refutation: same random stimulus into both networks
    rng = random.Random(seed)
    mask = (1 << n_patterns) - 1
    stim = [[rng.getrandbits(n_patterns) for _ in range(a.num_real_pis())]
            for _ in range(sim_frames)]
    for t, (oa, ob) in enumerate(zip(simulate_sequential(a, stim, mask),
                                     simulate_sequential(b, stim, mask))):
        if oa != ob:
            # replay through BMC for an exact minimal-depth trace
            return bmc_cec(a, b, t + 1, conflict_limit=conflict_limit)
    res = k_induction_cec(a, b, max_k=max_k, conflict_limit=conflict_limit)
    if res.equivalent is not None:
        return res
    return bmc_cec(a, b, depth, conflict_limit=conflict_limit)
