"""Sequential-circuit engines built on the combinational stack.

Registers are part of the network model itself
(:meth:`~repro.networks.base.LogicNetwork.create_ro` /
:meth:`~repro.networks.base.LogicNetwork.create_ri`); this package adds the
classic sequential algorithms on top of the existing engines:

* :func:`unroll` — time-frame expansion into a plain combinational network,
  the brute-force reference every other engine is checked against;
* :func:`simulate_sequential` — multi-frame bit-parallel simulation with
  state feedback through the compiled :mod:`repro.sim.engine`;
* :func:`bmc_cec` / :func:`k_induction_cec` / :func:`seq_cec` — bounded
  model checking and k-induction equivalence checking as incremental
  time-frame Tseitin encodings on one
  :class:`~repro.sat.session.EquivalenceSession`;
* :func:`register_sweep` — simulation-guided, induction-proved merging of
  equivalent registers;
* :func:`retime_forward` — conservative forward retiming.
"""

from .bmc import SeqCecResult, TimeFrames, bmc_cec, k_induction_cec, seq_cec
from .sim import simulate_sequential
from .sweep import register_sweep
from .retime import retime_forward
from .unroll import unroll

__all__ = [
    "SeqCecResult",
    "TimeFrames",
    "bmc_cec",
    "k_induction_cec",
    "seq_cec",
    "register_sweep",
    "retime_forward",
    "simulate_sequential",
    "unroll",
]
