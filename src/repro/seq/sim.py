"""Multi-frame bit-parallel simulation with state feedback.

Each frame is one call into the compiled combinational simulator
(:func:`repro.sim.engine.simulate_words` — the per-network program cache
means the compile cost is paid once per network, not per frame); register
state flows between frames as packed words, so ``n_patterns`` independent
traces advance per Python-level frame iteration.
"""

from __future__ import annotations

from typing import List, Sequence

from ..networks.base import LogicNetwork
from ..sim.engine import simulate_words

__all__ = ["simulate_sequential"]


def simulate_sequential(ntk: LogicNetwork,
                        frame_inputs: Sequence[Sequence[int]],
                        mask: int) -> List[List[int]]:
    """Simulate ``len(frame_inputs)`` clock cycles bit-parallel.

    ``frame_inputs[t][i]`` is the packed stimulus word of real PI ``i`` at
    frame ``t`` (bit ``j`` = trace ``j``); ``mask`` selects the valid bits.
    Registers start at their init values and feed their next-state words
    forward between frames.  Returns one packed word per PO per frame.
    """
    regs = ntk.registers
    ro_of = {n: i for i, (n, _, _) in enumerate(regs)}
    n_real = ntk.num_real_pis()
    state = [mask if init else 0 for _, _, init in regs]
    out: List[List[int]] = []
    for t, words in enumerate(frame_inputs):
        if len(words) != n_real:
            raise ValueError(
                f"frame {t}: expected {n_real} real-PI words, got {len(words)}")
        it = iter(words)
        ci = [state[ro_of[n]] if n in ro_of else (next(it) & mask)
              for n in ntk.pis]
        vals = simulate_words(ntk, ci, mask)
        out.append([vals[p >> 1] ^ (mask if p & 1 else 0) for p in ntk.pos])
        state = [vals[ri >> 1] ^ (mask if ri & 1 else 0) for _, ri, _ in regs]
    return out
