"""Register sweep: merge registers proven equivalent by 1-induction.

The scorr-style recipe on the repo's existing engines: multi-frame
bit-parallel simulation (:mod:`repro.seq.sim`) partitions registers into
candidate classes by init value and simulated state history; a single
arbitrary-state time frame on an :class:`~repro.sat.session.EquivalenceSession`
then proves the surviving pairs by 1-step induction — assume every candidate
pair equal at frame 0 (selector-guarded, so refinement is free), prove each
pair's next-state literals equal.  Failed pairs refine their class and the
round repeats; proven classes merge onto their leader register and dead
next-state cones are swept by the register-aware ``cleanup``.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from ..networks.base import LogicNetwork
from ..sat.session import EquivalenceSession
from .bmc import TimeFrames
from .sim import simulate_sequential

__all__ = ["register_sweep"]


def _signatures(ntk: LogicNetwork, n_frames: int, n_patterns: int,
                seed: int) -> List[Tuple]:
    """Per-register (init, state-history) signatures under random stimulus."""
    regs = ntk.registers
    rng = random.Random(seed)
    mask = (1 << n_patterns) - 1
    stim = [[rng.getrandbits(n_patterns) for _ in range(ntk.num_real_pis())]
            for _ in range(n_frames)]
    ro_of = {n: i for i, (n, _, _) in enumerate(regs)}
    # track the register state words across frames (cheaper than re-running
    # simulate_sequential per register: one pass, read the RI words)
    from ..sim.engine import simulate_words

    state = [mask if init else 0 for _, _, init in regs]
    history = [[s] for s in state]
    for words in stim:
        it = iter(words)
        ci = [state[ro_of[n]] if n in ro_of else next(it) for n in ntk.pis]
        vals = simulate_words(ntk, ci, mask)
        state = [vals[ri >> 1] ^ (mask if ri & 1 else 0) for _, ri, _ in regs]
        for i, s in enumerate(state):
            history[i].append(s)
    return [tuple(h) for h in history]


def _merge(ntk: LogicNetwork, replace: Dict[int, int]) -> LogicNetwork:
    """Rebuild with register ``i`` replaced by its leader for each map entry."""
    regs = ntk.registers
    ro_of = {n: i for i, (n, _, _) in enumerate(regs)}
    dst = type(ntk)()
    mapping = {0: 0}
    names = ntk.pi_names
    kept: List[int] = []
    for j, n in enumerate(ntk.pis):
        i = ro_of.get(n)
        if i is None:
            mapping[n] = dst.create_pi(names[j])
        elif i not in replace:
            mapping[n] = dst.create_ro(names[j], regs[i][2])
            kept.append(i)
    for i, leader in replace.items():
        mapping[regs[i][0]] = mapping[regs[leader][0]]
    for n in ntk.gates():
        fis = tuple(mapping[f >> 1] ^ (f & 1) for f in ntk.fanins(n))
        mapping[n] = dst.create_gate(ntk.node_type(n), fis)
    for p, name in zip(ntk.pos, ntk.po_names):
        dst.create_po(mapping[p >> 1] ^ (p & 1), name)
    for i in kept:
        ri = regs[i][1]
        dst.create_ri(mapping[ri >> 1] ^ (ri & 1))
    return dst.cleanup()  # drop the merged registers' dead next-state cones


def register_sweep(ntk: LogicNetwork, *, n_frames: int = 8,
                   n_patterns: int = 64, seed: int = 1,
                   conflict_limit: Optional[int] = 5000,
                   max_rounds: int = 16) -> Tuple[LogicNetwork, int]:
    """Merge induction-proven equivalent registers; returns ``(ntk, merged)``.

    Sound: a merge happens only when, assuming all surviving candidate
    pairs equal in an arbitrary state, every pair's next-state functions
    are SAT-proven equal (and the init values already match).  Networks
    without mergeable registers come back unchanged (same object).
    """
    regs = ntk.registers
    if len(regs) < 2:
        return ntk, 0
    sigs = _signatures(ntk, n_frames, n_patterns, seed)
    classes: Dict[Tuple, List[int]] = {}
    for i, sig in enumerate(sigs):
        classes.setdefault(sig, []).append(i)
    pairs = [(members[0], m) for members in classes.values()
             for m in members[1:]]
    if not pairs:
        return ntk, 0

    session = EquivalenceSession(n_pis=0)
    frames = TimeFrames(session, [ntk], initialized=False)
    frames.extend()
    state0 = frames.initial_state[0]   # arbitrary-state RO variables
    next0 = frames.ri_lits[0][0]       # frame-0 next-state literals
    selector = {(l, m): session.assume_equal(state0[l], state0[m])
                for l, m in pairs}
    for _ in range(max_rounds):
        assumptions = [selector[p] for p in pairs]
        failed = [p for p in pairs
                  if session.prove_equal(next0[p[0]], next0[p[1]],
                                         conflict_limit,
                                         assumptions=assumptions) is not True]
        if not failed:
            break
        pairs = [p for p in pairs if p not in failed]
        if not pairs:
            return ntk, 0
    else:
        return ntk, 0  # never converged inside the round budget
    replace = {m: l for l, m in pairs}
    return _merge(ntk, replace), len(replace)
