"""Time-frame expansion of sequential networks.

Unrolling turns ``k`` clock cycles of a registered network into one plain
combinational network: frame ``t`` gets its own copy of every real PI
(named ``<pi>@t``) and every PO (named ``<po>@t``), register outputs read
the previous frame's next-state literals, and frame 0 reads the init values
(or fresh ``<reg>@init`` PIs for an arbitrary-state unrolling).

This is the brute-force reference semantics: every sequential engine in
this package (BMC, k-induction, multi-frame simulation) is differentially
tested against CEC over :func:`unroll` outputs.
"""

from __future__ import annotations

from ..networks.base import LogicNetwork

__all__ = ["unroll"]


def unroll(ntk: LogicNetwork, depth: int, *, initialized: bool = True) -> LogicNetwork:
    """Expand ``depth`` time frames into one combinational network.

    With ``initialized=True`` (default) frame 0 registers read their init
    values as constants; otherwise each register's initial state becomes an
    extra leading PI named ``<reg>@init``, which is the arbitrary-state
    unrolling k-induction reasons over.
    """
    if depth < 0:
        raise ValueError(f"unroll depth must be >= 0, got {depth}")
    regs = ntk.registers
    ro_of = {n: i for i, (n, _, _) in enumerate(regs)}
    dst = type(ntk)()
    names = ntk.pi_names
    if initialized:
        state = [init for _, _, init in regs]  # literals 0/1 are the constants
    else:
        state = [dst.create_pi(f"{names[j]}@init")
                 for j, n in enumerate(ntk.pis) if n in ro_of]
    for t in range(depth):
        mapping = {0: 0}
        for j, n in enumerate(ntk.pis):
            i = ro_of.get(n)
            mapping[n] = state[i] if i is not None else dst.create_pi(f"{names[j]}@{t}")
        for n in ntk.gates():
            fis = tuple(mapping[f >> 1] ^ (f & 1) for f in ntk.fanins(n))
            mapping[n] = dst.create_gate(ntk.node_type(n), fis)
        for p, name in zip(ntk.pos, ntk.po_names):
            dst.create_po(mapping[p >> 1] ^ (p & 1), f"{name}@{t}")
        state = [mapping[ri >> 1] ^ (ri & 1) for _, ri, _ in regs]
    return dst
