"""Conservative forward retiming.

Moves registers forward through gates fed *only* by registers: a gate
``g = OP(r1^p1, ..., rk^pk)`` whose fanin registers have no other consumer
(no other gate, PO or next-state reference) is replaced by a single fresh
register whose init value is ``OP`` applied to the fanin init values and
whose next-state function is ``OP`` applied to the fanin next-state
literals.  Each move trades ``k`` registers for one and shortens the
combinational paths through ``g`` by a level, and is exact: the new
register's value at every cycle (including the initial one) equals the old
gate output, so the transform is sequentially equivalent by construction —
which the ``seq-retime`` flow pass verifies via :func:`repro.seq.seq_cec`
when the flow runs with verification enabled.
"""

from __future__ import annotations

from typing import List, Tuple

from ..networks.base import GateType, LogicNetwork

__all__ = ["retime_forward"]


def _eval_gate(gate: GateType, bits: List[int]) -> int:
    if gate == GateType.AND:
        return int(all(bits))
    if gate == GateType.XOR or gate == GateType.XOR3:
        return sum(bits) & 1
    if gate == GateType.MAJ:
        return int(sum(bits) >= 2)
    raise ValueError(f"cannot evaluate gate type {gate}")


def retime_forward(ntk: LogicNetwork) -> Tuple[LogicNetwork, int]:
    """Forward-retime all eligible gates at once; returns ``(ntk, moves)``.

    Eligible: every fanin is a register output whose *only* consumer is
    this gate (counting gate fanins, POs and next-state references), so a
    move never duplicates a register.  Returns the input unchanged (same
    object) when nothing is eligible.
    """
    regs = ntk.registers
    if not regs:
        return ntk, 0
    ro_of = {n: i for i, (n, _, _) in enumerate(regs)}
    # consumer counts including next-state references (fanout_counts only
    # covers gate fanins and POs)
    counts = list(ntk.fanout_counts())
    for _, ri, _ in regs:
        counts[ri >> 1] += 1
    moved: List[int] = []
    consumed = set()
    for g in ntk.gates():
        fis = ntk.fanins(g)
        regs_in = [ro_of.get(f >> 1) for f in fis]
        if any(i is None for i in regs_in):
            continue
        if any(counts[f >> 1] != 1 for f in fis):
            continue
        moved.append(g)
        consumed.update(regs_in)
    if not moved:
        return ntk, 0
    moved_set = set(moved)

    dst = type(ntk)()
    mapping = {0: 0}
    names = ntk.pi_names
    kept: List[int] = []
    for j, n in enumerate(ntk.pis):
        i = ro_of.get(n)
        if i is None:
            mapping[n] = dst.create_pi(names[j])
        elif i not in consumed:
            mapping[n] = dst.create_ro(names[j], regs[i][2])
            kept.append(i)
    for idx, g in enumerate(moved):
        bits = [regs[ro_of[f >> 1]][2] ^ (f & 1) for f in ntk.fanins(g)]
        init = _eval_gate(ntk.node_type(g), bits)
        mapping[g] = dst.create_ro(f"rt{idx}", init)
    for n in ntk.gates():
        if n in moved_set:
            continue
        fis = tuple(mapping[f >> 1] ^ (f & 1) for f in ntk.fanins(n))
        mapping[n] = dst.create_gate(ntk.node_type(n), fis)
    for p, name in zip(ntk.pos, ntk.po_names):
        dst.create_po(mapping[p >> 1] ^ (p & 1), name)
    for i in kept:
        ri = regs[i][1]
        dst.create_ri(mapping[ri >> 1] ^ (ri & 1))
    for g in moved:
        nexts = []
        for f in ntk.fanins(g):
            ri = regs[ro_of[f >> 1]][1]
            nexts.append(mapping[ri >> 1] ^ (ri & 1) ^ (f & 1))
        dst.create_ri(dst.create_gate(ntk.node_type(g), tuple(nexts)))
    return dst, len(moved)
