"""Structural Verilog writers for mapped netlists and logic networks."""

from __future__ import annotations

from typing import Dict, List

from ..networks.base import GateType, LogicNetwork
from ..networks.netlist import CellNetlist

__all__ = ["write_verilog_netlist", "write_verilog_logic"]


def _sanitize(name: str) -> str:
    out = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    return out if out and not out[0].isdigit() else "_" + out


def write_verilog_netlist(netlist: CellNetlist, module: str = "top") -> str:
    """Gate-level Verilog with one cell instance per line."""
    pi_names = [_sanitize(n) for n in netlist._pi_names]
    po_names = [_sanitize(n) for n in netlist._po_names]
    lines = [f"module {module} ("]
    ports = pi_names + po_names
    lines.append("    " + ", ".join(ports))
    lines.append(");")
    for n in pi_names:
        lines.append(f"  input {n};")
    for n in po_names:
        lines.append(f"  output {n};")

    net_name: Dict[int, str] = {0: "const0_", 1: "const1_"}
    for name, net in zip(pi_names, netlist.pis):
        net_name[net] = name
    wires = []
    for net, d in enumerate(netlist._drivers):
        if d is not None and net not in net_name:
            net_name[net] = f"w{net}"
            wires.append(f"w{net}")
    if wires:
        lines.append("  wire " + ", ".join(wires) + ";")
    lines.append("  wire const0_, const1_;")
    lines.append("  assign const0_ = 1'b0;")
    lines.append("  assign const1_ = 1'b1;")

    inst = 0
    for net, d in enumerate(netlist._drivers):
        if d is None:
            continue
        cell, fis = d
        pins = ", ".join(
            f".{pin}({net_name[f]})" for pin, f in zip(cell.pin_names, fis)
        )
        lines.append(f"  {cell.name} g{inst} ({pins}, .O({net_name[net]}));")
        inst += 1

    for name, net in zip(po_names, netlist.pos):
        lines.append(f"  assign {name} = {net_name[net]};")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


_OPS = {
    GateType.AND: lambda a, b: f"({a} & {b})",
    GateType.XOR: lambda a, b: f"({a} ^ {b})",
}


def write_verilog_logic(ntk: LogicNetwork, module: str = "top") -> str:
    """Behavioural (assign-based) Verilog for a logic network."""
    pi_names = [_sanitize(n) for n in ntk.pi_names]
    po_names = [_sanitize(n) for n in ntk.po_names]
    lines = [f"module {module} ("]
    lines.append("    " + ", ".join(pi_names + po_names))
    lines.append(");")
    for n in pi_names:
        lines.append(f"  input {n};")
    for n in po_names:
        lines.append(f"  output {n};")

    name: Dict[int, str] = {0: "1'b0"}
    for nm, n in zip(pi_names, ntk.pis):
        name[n] = nm

    def ref(literal: int) -> str:
        base = name[literal >> 1]
        return f"(~{base})" if literal & 1 else base

    wires = [f"n{g}" for g in ntk.gates()]
    if wires:
        lines.append("  wire " + ", ".join(wires) + ";")
    for g in ntk.gates():
        name[g] = f"n{g}"
        fis = ntk.fanins(g)
        t = ntk.node_type(g)
        if t in _OPS:
            expr = _OPS[t](ref(fis[0]), ref(fis[1]))
        elif t == GateType.MAJ:
            a, b, c = (ref(f) for f in fis)
            expr = f"(({a} & {b}) | ({a} & {c}) | ({b} & {c}))"
        else:  # XOR3
            a, b, c = (ref(f) for f in fis)
            expr = f"({a} ^ {b} ^ {c})"
        lines.append(f"  assign n{g} = {expr};")
    for nm, p in zip(po_names, ntk.pos):
        lines.append(f"  assign {nm} = {ref(p)};")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"
