"""File-format I/O: AIGER, BLIF, genlib, structural Verilog."""

from .aiger import read_aag, read_aig_binary, write_aag, write_aig_binary
from .blif import read_blif, write_blif
from .verilog import write_verilog_logic, write_verilog_netlist
from .dot import write_choice_dot, write_dot
from ..mapping.library import parse_genlib, write_genlib

__all__ = [
    "read_aag",
    "write_aag",
    "read_aig_binary",
    "write_aig_binary",
    "read_blif",
    "write_blif",
    "write_verilog_logic",
    "write_verilog_netlist",
    "write_dot",
    "write_choice_dot",
    "parse_genlib",
    "write_genlib",
]
