"""AIGER format I/O (ASCII ``aag`` and binary ``aig``), sequential-capable.

The AIGER literal convention matches ours (literal = 2*var + phase), so the
translation is direct.  Latches map onto the network's registers: AIGER
variable order is inputs, then latches, then ANDs, which the writer
reproduces by relabeling real PIs first, register outputs second and gates
last.  Latch lines carry the next-state literal plus an optional 0/1 reset
value (omitted means 0, the AIGER default); uninitialized latches — a reset
field equal to the latch literal itself — are rejected, as nothing in the
repo models three-valued initial states.

Writes are canonical: fanin pairs are emitted max-first after relabeling and
init values only when 1, so ``write → read → write`` is bit-identical for
both the ASCII and the binary format.
"""

from __future__ import annotations

from typing import List, Tuple, Union

from ..networks.aig import Aig

__all__ = ["write_aag", "read_aag", "write_aig_binary", "read_aig_binary"]


def _relabel(ntk: Aig):
    """AIGER-order relabeling: real PIs, then ROs, then gates in topo order.

    Returns ``(index, inputs, latches, gates)`` where ``index`` maps node →
    AIGER variable, ``inputs``/``latches`` are node lists in emission order.
    """
    regs = ntk.registers  # validates RO/RI pairing
    ro_set = frozenset(n for n, _, _ in regs)
    inputs = [n for n in ntk.pis if n not in ro_set]
    index = {0: 0}
    for i, n in enumerate(inputs):
        index[n] = i + 1
    for j, (n, _, _) in enumerate(regs):
        index[n] = len(inputs) + 1 + j
    gates = list(ntk.gates())
    for j, n in enumerate(gates):
        index[n] = len(inputs) + len(regs) + 1 + j
    return index, inputs, regs, gates


def _parse_header(parts: List, magic) -> Tuple[int, int, int, int, int]:
    """Validate an AIGER header line; errors carry the parsed counts."""
    if not parts or parts[0] != magic:
        kind = "an ASCII" if magic in ("aag", b"aag") else "a binary"
        raise ValueError(f"not {kind} AIGER file")
    if len(parts) < 6:
        raise ValueError(
            f"malformed AIGER header: expected 'aag/aig M I L O A', got "
            f"{len(parts) - 1} of 5 counts")
    try:
        m, i, l, o, a = (int(x) for x in parts[1:6])
    except ValueError:
        raise ValueError(f"malformed AIGER header: non-integer counts in {parts[1:6]}")
    if min(m, i, l, o, a) < 0:
        raise ValueError(
            f"malformed AIGER header: negative counts (M={m} I={i} L={l} O={o} A={a})")
    if m < i + l + a:
        raise ValueError(
            f"malformed AIGER header: M={m} < I+L+A={i + l + a} "
            f"(I={i} L={l} O={o} A={a})")
    return m, i, l, o, a


def write_aag(ntk: Aig, include_symbols: bool = True) -> str:
    """Serialize an AIG (combinational or sequential) to ASCII AIGER."""
    index, inputs, regs, gates = _relabel(ntk)

    def relit(l: int) -> int:
        return (index[l >> 1] << 1) | (l & 1)

    m = len(inputs) + len(regs) + len(gates)
    lines = [f"aag {m} {len(inputs)} {len(regs)} {ntk.num_pos()} {len(gates)}"]
    for n in inputs:
        lines.append(str(index[n] << 1))
    for n, ri, init in regs:
        line = f"{index[n] << 1} {relit(ri)}"
        lines.append(f"{line} 1" if init else line)
    for p in ntk.pos:
        lines.append(str(relit(p)))
    for n in gates:
        a, b = sorted((relit(f) for f in ntk.fanins(n)), reverse=True)
        lines.append(f"{index[n] << 1} {a} {b}")
    if include_symbols:
        names = ntk.pi_names
        ci_pos = {n: j for j, n in enumerate(ntk.pis)}
        for i, n in enumerate(inputs):
            lines.append(f"i{i} {names[ci_pos[n]]}")
        for i, (n, _, _) in enumerate(regs):
            lines.append(f"l{i} {names[ci_pos[n]]}")
        for i, name in enumerate(ntk.po_names):
            lines.append(f"o{i} {name}")
    return "\n".join(lines) + "\n"


def read_aag(text: str) -> Aig:
    """Parse ASCII AIGER (with latches) into an :class:`Aig`."""
    lines = [l for l in text.splitlines() if l.strip()]
    if not lines:
        raise ValueError("empty AIGER file")
    m, i, l, o, a = _parse_header(lines[0].split(), "aag")
    sym_start = 1 + i + l + o + a
    if len(lines) < sym_start:
        raise ValueError(
            f"truncated AIGER file: header promises {i} inputs, {l} latches, "
            f"{o} outputs and {a} ANDs ({sym_start - 1} definition lines) "
            f"but only {len(lines) - 1} lines follow")
    ntk = Aig()
    lit_of = {0: 0}
    idx = 1

    # symbol table first (it names CIs we are about to create)
    pi_names, latch_names, po_names = {}, {}, {}
    for line in lines[sym_start:]:
        if line.startswith("c"):
            break
        if " " not in line:
            continue
        k, name = line.split(" ", 1)
        if k[0] == "i" and k[1:].isdigit():
            pi_names[int(k[1:])] = name
        elif k[0] == "l" and k[1:].isdigit():
            latch_names[int(k[1:])] = name
        elif k[0] == "o" and k[1:].isdigit():
            po_names[int(k[1:])] = name

    for j in range(i):
        v = int(lines[idx]); idx += 1
        lit_of[v >> 1] = ntk.create_pi(pi_names.get(j, f"pi{j}"))
    latch_defs = []
    for j in range(l):
        parts = lines[idx].split(); idx += 1
        if len(parts) not in (2, 3):
            raise ValueError(
                f"malformed latch line {j} of {l}: {lines[idx - 1]!r}")
        lhs, nxt = int(parts[0]), int(parts[1])
        init = int(parts[2]) if len(parts) == 3 else 0
        if init not in (0, 1):
            raise ValueError(
                f"latch {j} of {l} has unsupported reset value {init} "
                "(only 0/1 initial states are modeled)")
        lit_of[lhs >> 1] = ntk.create_ro(latch_names.get(j, f"r{j}"), init)
        latch_defs.append(nxt)
    pos_lits: List[int] = []
    for _ in range(o):
        pos_lits.append(int(lines[idx])); idx += 1
    and_defs = []
    for _ in range(a):
        x, y, z = (int(t) for t in lines[idx].split()); idx += 1
        and_defs.append((x, y, z))

    def get(lit: int) -> int:
        return lit_of[lit >> 1] ^ (lit & 1)

    for x, y, z in and_defs:
        lit_of[x >> 1] = ntk.create_and(get(y), get(z))
    for j, p in enumerate(pos_lits):
        ntk.create_po(get(p), po_names.get(j, f"po{j}"))
    for nxt in latch_defs:
        ntk.create_ri(get(nxt))
    return ntk


def _encode_delta(out: bytearray, delta: int) -> None:
    while delta >= 0x80:
        out.append((delta & 0x7F) | 0x80)
        delta >>= 7
    out.append(delta)


def write_aig_binary(ntk: Aig) -> bytes:
    """Serialize to binary AIGER (``aig``), latches included."""
    index, inputs, regs, gates = _relabel(ntk)

    def relit(l: int) -> int:
        return (index[l >> 1] << 1) | (l & 1)

    m = len(inputs) + len(regs) + len(gates)
    out = bytearray()
    out += (f"aig {m} {len(inputs)} {len(regs)} "
            f"{ntk.num_pos()} {len(gates)}\n").encode()
    for _, ri, init in regs:
        line = f"{relit(ri)} 1" if init else f"{relit(ri)}"
        out += (line + "\n").encode()
    for p in ntk.pos:
        out += f"{relit(p)}\n".encode()
    for n in gates:
        a, b = (relit(f) for f in ntk.fanins(n))
        lhs = index[n] << 1
        if a < b:
            a, b = b, a
        _encode_delta(out, lhs - a)
        _encode_delta(out, a - b)
    return bytes(out)


def read_aig_binary(data: bytes) -> Aig:
    """Parse binary AIGER, latches included."""
    nl = data.index(b"\n")
    m, i, l, o, a = _parse_header(data[:nl].split(), b"aig")
    idx = nl + 1
    latch_defs = []
    for j in range(l):
        nl2 = data.index(b"\n", idx)
        parts = data[idx:nl2].split()
        idx = nl2 + 1
        if len(parts) not in (1, 2):
            raise ValueError(f"malformed latch line {j} of {l}: {parts!r}")
        nxt = int(parts[0])
        init = int(parts[1]) if len(parts) == 2 else 0
        if init not in (0, 1):
            raise ValueError(
                f"latch {j} of {l} has unsupported reset value {init} "
                "(only 0/1 initial states are modeled)")
        latch_defs.append((nxt, init))
    pos_lits = []
    for _ in range(o):
        nl2 = data.index(b"\n", idx)
        pos_lits.append(int(data[idx:nl2]))
        idx = nl2 + 1

    ntk = Aig()
    lit_of = {0: 0}
    for v in range(1, i + 1):
        lit_of[v] = ntk.create_pi()
    for j, (_, init) in enumerate(latch_defs):
        lit_of[i + 1 + j] = ntk.create_ro(f"r{j}", init)

    def decode() -> int:
        nonlocal idx
        x = 0
        shift = 0
        while True:
            byte = data[idx]
            idx += 1
            x |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return x
            shift += 7

    def get(lit: int) -> int:
        return lit_of[lit >> 1] ^ (lit & 1)

    for j in range(a):
        lhs = (i + l + 1 + j) << 1
        d1 = decode()
        d2 = decode()
        rhs0 = lhs - d1
        rhs1 = rhs0 - d2
        lit_of[lhs >> 1] = ntk.create_and(get(rhs0), get(rhs1))
    for j, p in enumerate(pos_lits):
        ntk.create_po(get(p), f"po{j}")
    for nxt, _ in latch_defs:
        ntk.create_ri(get(nxt))
    return ntk
