"""AIGER format I/O (ASCII ``aag`` and binary ``aig``), combinational subset.

The AIGER literal convention matches ours (literal = 2*var + phase), so the
translation is direct.  Latches are not supported — the paper's flow is
purely combinational.
"""

from __future__ import annotations

from typing import List, Union

from ..networks.aig import Aig

__all__ = ["write_aag", "read_aag", "write_aig_binary", "read_aig_binary"]


def write_aag(ntk: Aig, include_symbols: bool = True) -> str:
    """Serialize an AIG to ASCII AIGER."""
    # compact relabeling: PIs first, then reachable gates in topo order
    index = {0: 0}
    for i, n in enumerate(ntk.pis):
        index[n] = i + 1
    gates = [n for n in ntk.gates()]
    for j, n in enumerate(gates):
        index[n] = ntk.num_pis() + 1 + j

    def relit(l: int) -> int:
        return (index[l >> 1] << 1) | (l & 1)

    m = ntk.num_pis() + len(gates)
    lines = [f"aag {m} {ntk.num_pis()} 0 {ntk.num_pos()} {len(gates)}"]
    for n in ntk.pis:
        lines.append(str(index[n] << 1))
    for p in ntk.pos:
        lines.append(str(relit(p)))
    for n in gates:
        a, b = ntk.fanins(n)
        lines.append(f"{index[n] << 1} {relit(a)} {relit(b)}")
    if include_symbols:
        for i, name in enumerate(ntk.pi_names):
            lines.append(f"i{i} {name}")
        for i, name in enumerate(ntk.po_names):
            lines.append(f"o{i} {name}")
    return "\n".join(lines) + "\n"


def read_aag(text: str) -> Aig:
    """Parse ASCII AIGER into an :class:`Aig`."""
    lines = [l for l in text.splitlines() if l.strip()]
    header = lines[0].split()
    if header[0] != "aag":
        raise ValueError("not an ASCII AIGER file")
    m, i, l, o, a = (int(x) for x in header[1:6])
    if l:
        raise ValueError("latches are not supported")
    ntk = Aig()
    lit_of = {0: 0}
    pos_lits: List[int] = []
    idx = 1
    pi_lits = []
    for _ in range(i):
        v = int(lines[idx]); idx += 1
        pi_lits.append(v)
        lit_of[v >> 1] = ntk.create_pi()
    for _ in range(o):
        pos_lits.append(int(lines[idx])); idx += 1
    and_defs = []
    for _ in range(a):
        x, y, z = (int(t) for t in lines[idx].split()); idx += 1
        and_defs.append((x, y, z))

    def get(lit: int) -> int:
        return lit_of[lit >> 1] ^ (lit & 1)

    for x, y, z in and_defs:
        lit_of[x >> 1] = ntk.create_and(get(y), get(z))
    # symbol table
    pi_names = {}
    po_names = {}
    for line in lines[idx:]:
        if line.startswith("i") and " " in line:
            k, name = line.split(" ", 1)
            pi_names[int(k[1:])] = name
        elif line.startswith("o") and " " in line:
            k, name = line.split(" ", 1)
            po_names[int(k[1:])] = name
        elif line.startswith("c"):
            break
    if pi_names:
        ntk._pi_names = [pi_names.get(j, f"pi{j}") for j in range(i)]
    for j, p in enumerate(pos_lits):
        ntk.create_po(get(p), po_names.get(j, f"po{j}"))
    return ntk


def _encode_delta(out: bytearray, delta: int) -> None:
    while delta >= 0x80:
        out.append((delta & 0x7F) | 0x80)
        delta >>= 7
    out.append(delta)


def write_aig_binary(ntk: Aig) -> bytes:
    """Serialize to binary AIGER (``aig``)."""
    index = {0: 0}
    for i, n in enumerate(ntk.pis):
        index[n] = i + 1
    gates = list(ntk.gates())
    for j, n in enumerate(gates):
        index[n] = ntk.num_pis() + 1 + j

    def relit(l: int) -> int:
        return (index[l >> 1] << 1) | (l & 1)

    m = ntk.num_pis() + len(gates)
    out = bytearray()
    out += f"aig {m} {ntk.num_pis()} 0 {ntk.num_pos()} {len(gates)}\n".encode()
    for p in ntk.pos:
        out += f"{relit(p)}\n".encode()
    for n in gates:
        a, b = (relit(f) for f in ntk.fanins(n))
        lhs = index[n] << 1
        if a < b:
            a, b = b, a
        _encode_delta(out, lhs - a)
        _encode_delta(out, a - b)
    return bytes(out)


def read_aig_binary(data: bytes) -> Aig:
    """Parse binary AIGER."""
    nl = data.index(b"\n")
    header = data[:nl].split()
    if header[0] != b"aig":
        raise ValueError("not a binary AIGER file")
    m, i, l, o, a = (int(x) for x in header[1:6])
    if l:
        raise ValueError("latches are not supported")
    pos_lits = []
    idx = nl + 1
    for _ in range(o):
        nl2 = data.index(b"\n", idx)
        pos_lits.append(int(data[idx:nl2]))
        idx = nl2 + 1

    ntk = Aig()
    lit_of = {0: 0}
    for v in range(1, i + 1):
        lit_of[v] = ntk.create_pi()

    def decode() -> int:
        nonlocal idx
        x = 0
        shift = 0
        while True:
            byte = data[idx]
            idx += 1
            x |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return x
            shift += 7

    def get(lit: int) -> int:
        return lit_of[lit >> 1] ^ (lit & 1)

    for j in range(a):
        lhs = (i + 1 + j) << 1
        d1 = decode()
        d2 = decode()
        rhs0 = lhs - d1
        rhs1 = rhs0 - d2
        lit_of[lhs >> 1] = ntk.create_and(get(rhs0), get(rhs1))
    for j, p in enumerate(pos_lits):
        ntk.create_po(get(p), f"po{j}")
    return ntk
