"""Graphviz DOT writers for networks and choice networks (visualization)."""

from __future__ import annotations

from ..core.choice import ChoiceNetwork
from ..networks.base import GateType, LogicNetwork

__all__ = ["write_dot", "write_choice_dot"]

_SHAPE = {
    GateType.AND: ("AND", "box"),
    GateType.XOR: ("XOR", "diamond"),
    GateType.MAJ: ("MAJ", "ellipse"),
    GateType.XOR3: ("XOR3", "diamond"),
}


def write_dot(ntk: LogicNetwork, name: str = "network") -> str:
    """Serialize a network to Graphviz DOT (dashed edges = complemented)."""
    lines = [f"digraph {name} {{", "  rankdir=BT;"]
    for i, n in enumerate(ntk.pis):
        lines.append(f'  n{n} [label="{ntk.pi_names[i]}" shape=triangle];')
    for g in ntk.gates():
        label, shape = _SHAPE[ntk.node_type(g)]
        lines.append(f'  n{g} [label="{label}\\n{g}" shape={shape}];')
        for f in ntk.fanins(g):
            style = " [style=dashed]" if f & 1 else ""
            if (f >> 1) == 0:
                lines.append(f'  c{g}_{f} [label="{f & 1}" shape=none];')
                lines.append(f"  c{g}_{f} -> n{g}{style};")
            else:
                lines.append(f"  n{f >> 1} -> n{g}{style};")
    for j, p in enumerate(ntk.pos):
        lines.append(f'  o{j} [label="{ntk.po_names[j]}" shape=invtriangle];')
        style = " [style=dashed]" if p & 1 else ""
        lines.append(f"  n{p >> 1} -> o{j}{style};")
    lines.append("}")
    return "\n".join(lines) + "\n"


def write_choice_dot(choice_net: ChoiceNetwork, name: str = "choices") -> str:
    """DOT with equivalence links drawn as red double-headed edges."""
    base = write_dot(choice_net.ntk, name)
    extra = []
    for rep, members in choice_net.choices_of.items():
        for node, phase in members:
            style = "dashed" if phase else "solid"
            extra.append(
                f"  n{node} -> n{rep} [color=red dir=both style={style} constraint=false];"
            )
    return base.replace("}\n", "\n".join(extra) + "\n}\n") if extra else base
