"""BLIF I/O for LUT networks (``.names``-based logic)."""

from __future__ import annotations

from typing import Dict, List

from ..networks.lut_network import LutNetwork
from ..truth.truth_table import TruthTable
from ..truth.isop import cube_literals, isop

__all__ = ["write_blif", "read_blif"]


def write_blif(lut: LutNetwork, model: str = "top") -> str:
    """Serialize a LUT network to BLIF (one ``.names`` per LUT)."""
    name_of: Dict[int, str] = {0: "const0"}
    lines = [f".model {model}"]
    pi_names = []
    for i, n in enumerate(lut.pis):
        nm = f"pi{i}"
        name_of[n] = nm
        pi_names.append(nm)
    lines.append(".inputs " + " ".join(pi_names))
    po_names = []
    for j, (node, phase) in enumerate(lut.pos):
        po_names.append(f"po{j}")
    lines.append(".outputs " + " ".join(po_names))

    uses_const0 = any(node == 0 for node, _ in lut.pos)
    body: List[str] = []
    for n in range(0, len(lut._is_lut)):
        if not lut.is_lut(n):
            continue
        name_of[n] = f"n{n}"
        fis = lut.fanins(n)
        tt = lut.lut_function(n)
        body.append(".names " + " ".join(name_of[f] for f in fis) + f" n{n}")
        if tt.is_const1():
            body.append("-" * len(fis) + " 1" if fis else "1")
        else:
            for cube in isop(tt):  # empty cover == constant 0
                row = ["-"] * len(fis)
                for v, neg in cube_literals(cube):
                    row[v] = "0" if neg else "1"
                body.append("".join(row) + " 1")
    if uses_const0:
        body.append(".names const0")  # empty cover == constant 0

    for j, (node, phase) in enumerate(lut.pos):
        src = name_of[node]
        body.append(f".names {src} po{j}")
        body.append(("0" if phase else "1") + " 1")

    lines.extend(body)
    lines.append(".end")
    return "\n".join(lines) + "\n"


def read_blif(text: str, k: int = 6) -> LutNetwork:
    """Parse a (subset of) BLIF into a LUT network."""
    # join continuation lines, drop comments
    raw: List[str] = []
    for line in text.splitlines():
        line = line.split("#", 1)[0].rstrip()
        if not line:
            continue
        if raw and raw[-1].endswith("\\"):
            raw[-1] = raw[-1][:-1] + " " + line.strip()
        else:
            raw.append(line)

    inputs: List[str] = []
    outputs: List[str] = []
    tables: List = []  # (fanin names, out name, rows)
    i = 0
    while i < len(raw):
        line = raw[i]
        if line.startswith(".inputs"):
            inputs.extend(line.split()[1:])
        elif line.startswith(".outputs"):
            outputs.extend(line.split()[1:])
        elif line.startswith(".names"):
            sig = line.split()[1:]
            fis, out = sig[:-1], sig[-1]
            rows = []
            while i + 1 < len(raw) and not raw[i + 1].startswith("."):
                rows.append(raw[i + 1])
                i += 1
            tables.append((fis, out, rows))
        elif line.startswith((".model", ".end")):
            pass
        else:
            raise ValueError(f"unsupported BLIF construct: {line!r}")
        i += 1

    lut = LutNetwork(k)
    node_of: Dict[str, int] = {}
    for nm in inputs:
        node_of[nm] = lut.create_pi(nm)

    # topological instantiation of .names tables
    pending = list(tables)
    while pending:
        progressed = False
        rest = []
        for fis, out, rows in pending:
            if any(f not in node_of for f in fis):
                rest.append((fis, out, rows))
                continue
            nv = len(fis)
            bits = 0
            on_value = True
            for row in rows:
                parts = row.split()
                pattern = parts[0] if len(parts) == 2 else ""
                value = parts[-1]
                if value == "0":
                    on_value = False
                stars = [j for j, c in enumerate(pattern) if c == "-"]
                base = 0
                for j, c in enumerate(pattern):
                    if c == "1":
                        base |= 1 << j
                for mask in range(1 << len(stars)):
                    m = base
                    for t, j in enumerate(stars):
                        if (mask >> t) & 1:
                            m |= 1 << j
                    bits |= 1 << m
                if nv == 0 and value == "1":
                    bits = 1
            tt = TruthTable(nv, bits)
            if not on_value:
                tt = ~tt
            node_of[out] = lut.create_lut([node_of[f] for f in fis], tt)
            progressed = True
        if not progressed:
            raise ValueError("cyclic or underdefined BLIF")
        pending = rest

    for nm in outputs:
        if nm not in node_of:
            raise ValueError(f"undriven output {nm}")
        lut.create_po(node_of[nm], False, nm)
    return lut
