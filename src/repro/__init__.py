"""repro — Mixed Structural Choices (MCH) for technology mapping.

A from-scratch Python reproduction of "Mixed Structural Choice Operator:
Enhancing Technology Mapping with Heterogeneous Representations" (DAC 2025):
logic networks (AIG/XAG/MIG/XMG), structural-choice networks mixing
heterogeneous representations, choice-aware ASIC / FPGA technology mappers,
mapping-based logic optimization, plus the full substrate they need —
truth-table engine, cut enumeration, NPN matching, SAT-based equivalence
checking, optimization flows, benchmark generators and file I/O.

Quickstart::

    from repro import load, run_flow, optimize, lut_map, asic_map, cec

    aig = load("adder")                         # benchmark name or .aag path
    opt = optimize(aig)                         # the compress2rs flow spec
    result = run_flow(aig, "b; rf; rs; gm -k 4; b", verify=True)

    # or drive the engines directly:
    from repro import Xmg, build_mch, MchParams

    mch = build_mch(opt, MchParams(representations=(Xmg,)))
    luts = lut_map(mch, k=6, objective="area")  # choice-aware FPGA mapping
    netlist = asic_map(mch, objective="delay")  # choice-aware ASIC mapping

    # whole-suite execution across worker processes, with result tracking:
    from repro import BatchRunner, get_suite

    batch = BatchRunner(jobs=4).run(get_suite("epfl-arithmetic"),
                                    "compress2rs", store="results.jsonl")

    # or as a long-lived service (``repro serve``) with a warm worker pool
    # and a content-addressed result cache:
    from repro import ServeDaemon, ServeClient

    with ServeDaemon(port=0, jobs=2, store="serve.jsonl") as daemon:
        record = ServeClient(port=daemon.port).run("adder", flow="compress2rs")

    # sequential circuits: registers, BMC / k-induction CEC, register sweep
    from repro import load, seq_cec
    from repro.seq import register_sweep, retime_forward

    counter = load("counter", scale="tiny")     # register-bearing benchmark
    swept, merged = register_sweep(counter)
    assert seq_cec(counter, swept)              # sequential equivalence proof
"""

from .networks import (
    Aig,
    CellNetlist,
    GateType,
    LogicNetwork,
    LutNetwork,
    MixedNetwork,
    Mig,
    Xag,
    Xmg,
    convert,
)
from .truth import TruthTable
from .core import ChoiceNetwork, MchParams, build_dch, build_mch
from .cuts import CutDatabase
from .mapping import (
    MappingSession,
    asap7_library,
    asic_map,
    graph_map,
    graph_map_iterate,
    lut_map,
)
from .opt import balance, compress2rs, resyn2rs, sweep
from .sat import cec
from .circuits import load
from .flow import (
    Flow,
    FlowContext,
    FlowResult,
    FlowRunner,
    optimize,
    run_flow,
)
from .batch import (
    BatchResult,
    BatchRunner,
    ResultStore,
    Suite,
    available_suites,
    get_suite,
)
from .serve import ServeClient, ServeDaemon
from .seq import SeqCecResult, bmc_cec, k_induction_cec, seq_cec

__version__ = "1.2.0"

__all__ = [
    # flow API
    "load",
    "optimize",
    "run_flow",
    "Flow",
    "FlowContext",
    "FlowRunner",
    "FlowResult",
    # batch API
    "Suite",
    "available_suites",
    "get_suite",
    "BatchRunner",
    "BatchResult",
    "ResultStore",
    # serve API
    "ServeDaemon",
    "ServeClient",
    "Aig",
    "Xag",
    "Mig",
    "Xmg",
    "MixedNetwork",
    "LogicNetwork",
    "LutNetwork",
    "CellNetlist",
    "GateType",
    "convert",
    "TruthTable",
    "ChoiceNetwork",
    "MchParams",
    "build_mch",
    "build_dch",
    "MappingSession",
    "CutDatabase",
    "lut_map",
    "asic_map",
    "graph_map",
    "graph_map_iterate",
    "asap7_library",
    "balance",
    "compress2rs",
    "resyn2rs",
    "sweep",
    "cec",
    # sequential API
    "SeqCecResult",
    "seq_cec",
    "bmc_cec",
    "k_induction_cec",
    "__version__",
]
