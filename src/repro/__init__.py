"""repro — Mixed Structural Choices (MCH) for technology mapping.

A from-scratch Python reproduction of "Mixed Structural Choice Operator:
Enhancing Technology Mapping with Heterogeneous Representations" (DAC 2025):
logic networks (AIG/XAG/MIG/XMG), structural-choice networks mixing
heterogeneous representations, choice-aware ASIC / FPGA technology mappers,
mapping-based logic optimization, plus the full substrate they need —
truth-table engine, cut enumeration, NPN matching, SAT-based equivalence
checking, optimization flows, benchmark generators and file I/O.

Quickstart::

    from repro import Aig, Xmg, build_mch, MchParams, lut_map, asic_map

    aig = ...                                   # build or load a network
    mch = build_mch(aig, MchParams(representations=(Xmg,)))
    luts = lut_map(mch, k=6, objective="area")  # choice-aware FPGA mapping
    netlist = asic_map(mch, objective="delay")  # choice-aware ASIC mapping
"""

from .networks import (
    Aig,
    CellNetlist,
    GateType,
    LogicNetwork,
    LutNetwork,
    MixedNetwork,
    Mig,
    Xag,
    Xmg,
    convert,
)
from .truth import TruthTable
from .core import ChoiceNetwork, MchParams, build_dch, build_mch
from .cuts import CutDatabase
from .mapping import (
    MappingSession,
    asap7_library,
    asic_map,
    graph_map,
    graph_map_iterate,
    lut_map,
)
from .opt import balance, compress2rs, sweep
from .sat import cec

__version__ = "1.0.0"

__all__ = [
    "Aig",
    "Xag",
    "Mig",
    "Xmg",
    "MixedNetwork",
    "LogicNetwork",
    "LutNetwork",
    "CellNetlist",
    "GateType",
    "convert",
    "TruthTable",
    "ChoiceNetwork",
    "MchParams",
    "build_mch",
    "build_dch",
    "MappingSession",
    "CutDatabase",
    "lut_map",
    "asic_map",
    "graph_map",
    "graph_map_iterate",
    "asap7_library",
    "balance",
    "compress2rs",
    "sweep",
    "cec",
    "__version__",
]
