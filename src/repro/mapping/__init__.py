"""Technology mapping: shared engine, K-LUT, ASIC standard cells, graph mapping."""

from .engine import (
    CostModel,
    FunctionCostModel,
    LibraryCostModel,
    MappingCover,
    MappingSession,
    NpnCostModel,
    UnitCostModel,
    library_cost_model,
    run_cover,
)
from .lut_mapper import CutMapper, lut_map
from .graph_mapper import graph_map, graph_map_iterate
from .library import Cell, Library, parse_genlib, write_genlib
from .asap7 import asap7_library
from .matcher import Match, MatchTable
from .asic_mapper import AsicMapper, asic_map
from .supergates import Supergate, expand_with_supergates
from .timing import LinearLoadModel, critical_path, sta

__all__ = [
    "MappingSession",
    "MappingCover",
    "CostModel",
    "UnitCostModel",
    "FunctionCostModel",
    "NpnCostModel",
    "LibraryCostModel",
    "library_cost_model",
    "run_cover",
    "CutMapper",
    "lut_map",
    "graph_map",
    "graph_map_iterate",
    "Cell",
    "Library",
    "parse_genlib",
    "write_genlib",
    "asap7_library",
    "Match",
    "MatchTable",
    "AsicMapper",
    "asic_map",
    "Supergate",
    "expand_with_supergates",
    "LinearLoadModel",
    "critical_path",
    "sta",
]
