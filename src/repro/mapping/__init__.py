"""Technology mapping: K-LUT, ASIC standard cells, graph mapping."""

from .lut_mapper import CutMapper, MappingCover, lut_map
from .graph_mapper import graph_map, graph_map_iterate
from .library import Cell, Library, parse_genlib, write_genlib
from .asap7 import asap7_library
from .matcher import Match, MatchTable
from .asic_mapper import AsicMapper, asic_map
from .supergates import Supergate, expand_with_supergates
from .timing import LinearLoadModel, critical_path, sta

__all__ = [
    "CutMapper",
    "MappingCover",
    "lut_map",
    "graph_map",
    "graph_map_iterate",
    "Cell",
    "Library",
    "parse_genlib",
    "write_genlib",
    "asap7_library",
    "Match",
    "MatchTable",
    "AsicMapper",
    "asic_map",
    "Supergate",
    "expand_with_supergates",
    "LinearLoadModel",
    "critical_path",
    "sta",
]
