"""Boolean matching of cut functions against library cells.

The matcher pre-expands every library cell over all input permutations and
input polarities and indexes the resulting functions in a hash table, so
matching a cut during mapping is a single dictionary lookup on the cut
function (Boolean matching by total enumeration, practical for cells with up
to 4-5 pins).  Output polarity is *not* free in a standard-cell netlist, so a
cut is looked up separately in both polarities by the phase-aware mapper.

Complemented pins do not instantiate inverters here: pin polarity is simply
the *phase* of the leaf signal the mapper requests, and the mapper decides
whether that phase comes for free (e.g. a NAND output) or costs an inverter.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..truth.truth_table import TruthTable
from .library import Cell, Library

__all__ = ["Match", "MatchTable"]


@dataclass(frozen=True)
class Match:
    """One way to realize a function with a cell.

    ``leaf_of_pin[i]`` is the function-variable index driving pin ``i``;
    ``pin_phases[i]`` is True when pin ``i`` consumes the complemented
    leaf signal.
    """

    cell: Cell
    leaf_of_pin: Tuple[int, ...]
    pin_phases: Tuple[bool, ...]


class MatchTable:
    """Hash-based exact Boolean matcher for a cell library."""

    def __init__(self, library: Library, max_pins: int = 4):
        self.library = library
        self.max_pins = min(max_pins, library.max_pins)
        self._table: Dict[Tuple[int, int], List[Match]] = {}
        for cell in library:
            if 1 <= cell.num_pins <= self.max_pins:
                self._expand(cell)

    def _expand(self, cell: Cell) -> None:
        m = cell.num_pins
        seen_profiles = {}
        for perm in itertools.permutations(range(m)):
            for ph in range(1 << m):
                phases = tuple(bool((ph >> i) & 1) for i in range(m))
                # variable i drives pin perm[i] with polarity phases[i]
                tt = cell.function
                variant_bits = 0
                for x in range(1 << m):
                    y = 0
                    for i in range(m):
                        bit = ((x >> i) & 1) ^ int(phases[i])
                        if bit:
                            y |= 1 << perm[i]
                    if (tt.bits >> y) & 1:
                        variant_bits |= 1 << x
                key = (m, variant_bits)
                leaf_of_pin = [0] * m
                pin_phases = [False] * m
                for i in range(m):
                    leaf_of_pin[perm[i]] = i
                    pin_phases[perm[i]] = phases[i]
                # deduplicate matches that are indistinguishable in cost
                profile = (
                    cell.name,
                    tuple(sorted(
                        (leaf_of_pin[p], pin_phases[p], cell.pin_delays[p])
                        for p in range(m)
                    )),
                )
                bucket = seen_profiles.setdefault(key, set())
                if profile in bucket:
                    continue
                bucket.add(profile)
                self._table.setdefault(key, []).append(
                    Match(cell, tuple(leaf_of_pin), tuple(pin_phases))
                )

    def lookup(self, tt: TruthTable) -> List[Match]:
        """Matches realizing exactly ``tt`` (same polarity)."""
        return self._table.get((tt.num_vars, tt.bits), [])

    def num_entries(self) -> int:
        return sum(len(v) for v in self._table.values())
