"""Supergate generation: two-level cell compositions for richer matching.

Boolean matching with single cells misses many cut functions that a pair of
cells implements well (Mishchenko et al., "Technology mapping with Boolean
matching, supergates and choices", 2005 — reference [19] of the paper).
This module composes an *outer* cell with one *inner* cell plugged into one
of its pins, producing virtual :class:`Supergate` cells whose area is the
sum and whose pin delays chain through the inner cell.  The ASIC mapper
treats supergates like ordinary cells; the netlist deriver expands them
back into their two component instances.

Generation is bounded: compositions are capped at ``max_pins`` inputs, and
per resulting function only the cheapest few supergates per NPN class are
kept to contain the match-table size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..truth.truth_table import TruthTable
from ..cuts.enumeration import expand_tt
from .library import Cell, Library

__all__ = ["Supergate", "expand_with_supergates"]


@dataclass(frozen=True)
class Supergate(Cell):
    """A virtual cell made of an outer cell with an inner cell on one pin.

    Pin order of the supergate: the inner cell's pins first, then the outer
    cell's remaining pins in order (skipping ``position``).
    """

    outer: Cell = None
    inner: Cell = None
    position: int = 0  # outer pin driven by the inner cell's output


def _compose(outer: Cell, inner: Cell, position: int) -> Optional[Supergate]:
    m_in = inner.num_pins
    m_out = outer.num_pins
    nv = m_in + m_out - 1
    # variable layout: inner pins -> vars [0, m_in); outer pins (minus the
    # plugged one) -> vars [m_in, nv)
    inner_bits = expand_tt(inner.function, list(range(m_in)), nv)
    inner_tt = TruthTable(nv, inner_bits)
    outer_vars: List[TruthTable] = []
    next_var = m_in
    for pin in range(m_out):
        if pin == position:
            outer_vars.append(inner_tt)
        else:
            outer_vars.append(TruthTable.var(nv, next_var))
            next_var += 1
    # evaluate the outer function over (possibly composed) pin functions
    result = TruthTable.const(nv, False)
    for minterm in range(1 << m_out):
        if not outer.function.get_bit(minterm):
            continue
        term = TruthTable.const(nv, True)
        for pin in range(m_out):
            v = outer_vars[pin]
            term = term & (v if (minterm >> pin) & 1 else ~v)
        result = result | term
    if result.support_size() < nv:
        return None  # degenerate composition (some input vanishes)

    delays = []
    for i in range(m_in):
        delays.append(inner.pin_delays[i] + outer.pin_delays[position])
    next_pin = 0
    names = [f"I{i}" for i in range(m_in)]
    for pin in range(m_out):
        if pin == position:
            continue
        delays.append(outer.pin_delays[pin])
        names.append(f"O{next_pin}")
        next_pin += 1

    return Supergate(
        name=f"{outer.name}__{inner.name}@{position}",
        function=result,
        area=outer.area + inner.area,
        pin_delays=tuple(delays),
        pin_names=tuple(names),
        outer=outer,
        inner=inner,
        position=position,
    )


def expand_with_supergates(lib: Library, max_pins: int = 4,
                           per_class: int = 2) -> Library:
    """Return a new library with two-level supergates appended.

    ``per_class`` limits how many supergates are kept per (semi-canonical)
    NPN class of the resulting function, preferring smaller area.
    """
    from ..truth.npn import canonicalize, semi_canonicalize

    singles: Dict[Tuple[int, int], float] = {}
    for cell in lib:
        if cell.num_pins <= 4:
            canon, _ = canonicalize(cell.function)
            key = (cell.num_pins, canon.bits)
            singles[key] = min(singles.get(key, float("inf")), cell.area)

    candidates: List[Supergate] = []
    for outer in lib:
        if outer.num_pins < 2:
            continue
        for inner in lib:
            if inner.num_pins < 2:
                continue
            nv = inner.num_pins + outer.num_pins - 1
            if nv > max_pins:
                continue
            for position in range(outer.num_pins):
                sg = _compose(outer, inner, position)
                if sg is not None:
                    candidates.append(sg)

    # keep only the cheapest few per NPN class, and only classes not already
    # covered by a cheaper single cell
    buckets: Dict[Tuple[int, int], List[Supergate]] = {}
    for sg in candidates:
        if sg.function.num_vars <= 4:
            canon, _ = canonicalize(sg.function)
        else:
            canon, _ = semi_canonicalize(sg.function)
        key = (sg.function.num_vars, canon.bits)
        if key in singles and singles[key] <= sg.area:
            continue
        buckets.setdefault(key, []).append(sg)

    kept: List[Supergate] = []
    for key, sgs in buckets.items():
        sgs.sort(key=lambda s: (s.area, s.max_delay()))
        kept.extend(sgs[:per_class])

    return Library(f"{lib.name}+supergates", list(lib.cells) + kept)
