"""A synthetic ASAP7-flavoured standard-cell library.

The paper maps onto the Arizona State Predictive PDK 7 nm (ASAP7) library.
That liberty file is not redistributable here, so this module defines a
compact genlib-style library whose *cell set* mirrors the combinational
subset of ASAP7 RVT (inverter/buffer, NAND/NOR/AND/OR 2-4, AOI/OAI 21/22/211,
AO/OA 21/22, XOR/XNOR, MAJ/MAJI, O21BAI — the cell the paper's Fig. 2 netlist
uses) and whose area (µm²) and delay (ps) values follow the relative cost
structure of published ASAP7 numbers (7.5-track cells, ~0.0541 µm² per
NAND2-equivalent; XOR ≈ 2.5x NAND2 area and ~2x its delay; 3-input MAJ built
on the transmission-gate variant).

Absolute PPA is therefore *modeled*, not measured — the experiments compare
mapping strategies against each other on the same library, so only the
relative cost structure matters (see DESIGN.md §2).

The 3-input XOR/XNOR and MAJ-inverted entries are provided as two-level
*supergates* (pre-composed cell pairs) with accordingly scaled area/delay, as
a supergate-enabled matcher (Mishchenko et al., 2005) would generate.
"""

from __future__ import annotations

from functools import lru_cache

from ..truth.truth_table import TruthTable
from .library import Cell, Library

__all__ = ["asap7_library"]


def _tt(num_vars: int, fn) -> TruthTable:
    return TruthTable.from_function(num_vars, fn)


# name, num_vars, function, area (µm²), per-pin delay (ps)
_CELLS = [
    ("INVx1",    1, lambda a: not a,                         0.054, (8.0,)),
    ("BUFx2",    1, lambda a: a,                             0.081, (12.0,)),
    ("NAND2x1",  2, lambda a, b: not (a and b),              0.081, (10.0, 10.0)),
    ("NOR2x1",   2, lambda a, b: not (a or b),               0.081, (12.0, 12.0)),
    ("AND2x2",   2, lambda a, b: a and b,                    0.108, (16.0, 16.0)),
    ("OR2x2",    2, lambda a, b: a or b,                     0.108, (18.0, 18.0)),
    ("NAND3x1",  3, lambda a, b, c: not (a and b and c),     0.108, (14.0, 14.0, 14.0)),
    ("NOR3x1",   3, lambda a, b, c: not (a or b or c),       0.108, (17.0, 17.0, 17.0)),
    ("AND3x1",   3, lambda a, b, c: a and b and c,           0.135, (19.0, 19.0, 19.0)),
    ("OR3x1",    3, lambda a, b, c: a or b or c,             0.135, (21.0, 21.0, 21.0)),
    ("NAND4x1",  4, lambda a, b, c, d: not (a and b and c and d), 0.135, (17.0, 17.0, 17.0, 17.0)),
    ("NOR4x1",   4, lambda a, b, c, d: not (a or b or c or d),    0.135, (21.0, 21.0, 21.0, 21.0)),
    ("AOI21x1",  3, lambda a, b, c: not ((a and b) or c),    0.108, (14.0, 14.0, 11.0)),
    ("OAI21x1",  3, lambda a, b, c: not ((a or b) and c),    0.108, (14.0, 14.0, 11.0)),
    ("AOI22x1",  4, lambda a, b, c, d: not ((a and b) or (c and d)), 0.135, (16.0, 16.0, 16.0, 16.0)),
    ("OAI22x1",  4, lambda a, b, c, d: not ((a or b) and (c or d)),  0.135, (16.0, 16.0, 16.0, 16.0)),
    ("AO21x1",   3, lambda a, b, c: (a and b) or c,          0.135, (18.0, 18.0, 15.0)),
    ("OA21x1",   3, lambda a, b, c: (a or b) and c,          0.135, (18.0, 18.0, 15.0)),
    ("AOI211x1", 4, lambda a, b, c, d: not ((a and b) or c or d), 0.135, (17.0, 17.0, 14.0, 14.0)),
    ("OAI211x1", 4, lambda a, b, c, d: not (((a or b) and c) or d), 0.135, (17.0, 17.0, 14.0, 14.0)),
    # the cell featured in the paper's Fig. 2 mapped netlist
    ("O21BAIx1", 3, lambda a, b, c: not ((a or b) and (not c)), 0.122, (15.0, 15.0, 12.0)),
    ("XOR2x1",   2, lambda a, b: a != b,                     0.189, (22.0, 22.0)),
    ("XNOR2x1",  2, lambda a, b: a == b,                     0.189, (22.0, 22.0)),
    ("MAJx2",    3, lambda a, b, c: (a + b + c) >= 2,        0.216, (24.0, 24.0, 24.0)),
    ("MAJIx2",   3, lambda a, b, c: (a + b + c) < 2,         0.203, (22.0, 22.0, 22.0)),
    # two-level supergates (XOR2 cascade) for the XOR3 family
    ("XOR3xp5",  3, lambda a, b, c: (a + b + c) % 2 == 1,    0.378, (44.0, 44.0, 44.0)),
    ("XNOR3xp5", 3, lambda a, b, c: (a + b + c) % 2 == 0,    0.378, (44.0, 44.0, 44.0)),
]


@lru_cache(maxsize=1)
def asap7_library() -> Library:
    """The synthetic ASAP7-like library used by all ASIC experiments.

    Memoized: every ``asic_map`` call shares one library object, which also
    lets the engine's :func:`~repro.mapping.engine.library_cost_model` reuse
    one pre-expanded match table across calls.
    """
    cells = []
    for name, nv, fn, area, delays in _CELLS:
        cells.append(
            Cell(
                name=name,
                function=_tt(nv, fn),
                area=area,
                pin_delays=delays,
                pin_names=tuple("ABCD"[:nv]),
            )
        )
    return Library("asap7-like", cells)
