"""Phase-aware standard-cell technology mapping.

The classical cut-based ASIC mapper (Chatterjee et al., TCAD'06; ABC's
``map`` / ``&nf``): every node is mapped in both polarities, cut functions
are Boolean-matched against the library in both phases, inverters connect the
two polarities where profitable, and delay / area-flow passes select the
cover under required times.  Like the rest of the mapping stack it is
choice-aware — handing it a :class:`~repro.core.choice.ChoiceNetwork` built
by MCH turns it into the paper's MCH-based ASIC mapper (Algorithm 3).

Delay model: fixed per-pin cell delays in ps, load-independent (see
``asap7.py``).  Objectives: ``'delay'`` minimizes arrival then recovers area
under required times; ``'area'`` minimizes area flow directly.

Cuts come from the shared :class:`~repro.mapping.engine.MappingSession` cut
database and Boolean matching runs through the memoizing
:class:`~repro.mapping.engine.LibraryCostModel`, so repeated mappings of the
same subject (or the same library) share all the expensive precomputation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from ..core.choice import ChoiceNetwork
from ..cuts.cut import Cut
from ..networks.base import LogicNetwork
from ..networks.netlist import CellNetlist
from .library import Library
from .asap7 import asap7_library
from .engine import MappingSession, library_cost_model
from .matcher import Match

__all__ = ["AsicMapper", "asic_map"]

INF = float("inf")


@dataclass
class _Impl:
    """Chosen implementation of one (node, phase)."""

    kind: str                     # "match", "inv" or "const"
    cut: Optional[Cut] = None
    match: Optional[Match] = None
    value: bool = False           # for kind == "const"


class AsicMapper:
    """Cut-based Boolean-matching mapper onto a standard-cell library."""

    def __init__(self, subject: Union[LogicNetwork, ChoiceNetwork, MappingSession],
                 library: Optional[Library] = None, objective: str = "delay",
                 cut_limit: int = 8, flow_iterations: int = 2,
                 exact_iterations: int = 2):
        self.session = MappingSession.of(subject)
        self.ntk = self.session.ntk
        self.choices = self.session.choices
        self.order = self.session.order()
        if objective not in ("delay", "area"):
            raise ValueError("objective must be 'delay' or 'area'")
        self.lib = library or asap7_library()
        self.objective = objective
        self.costs = library_cost_model(self.lib, max_pins=4)
        self.k = self.costs.max_pins
        self.cut_limit = cut_limit
        self.flow_iterations = flow_iterations
        self.exact_iterations = exact_iterations
        self.table = self.costs.table
        self.inv = self.lib.inverter

    # ------------------------------------------------------------------ #

    def run(self) -> CellNetlist:
        import sys

        ntk = self.ntk
        n = ntk.num_nodes()
        sys.setrecursionlimit(max(sys.getrecursionlimit(), 4 * n + 1000))
        self.cuts = self.session.cut_database(self.k, self.cut_limit).cut_lists()
        gate_nodes = self.session.gate_nodes()

        arrival = [[INF, INF] for _ in range(n)]
        flow = [[INF, INF] for _ in range(n)]
        impl: List[List[Optional[_Impl]]] = [[None, None] for _ in range(n)]
        inv_d, inv_a = self.inv.max_delay(), self.inv.area

        for pi in ntk.pis:
            arrival[pi][0], flow[pi][0] = 0.0, 0.0
            arrival[pi][1], flow[pi][1] = inv_d, inv_a

        # Initial fanout estimate from PO-reachable structure only, so choice
        # candidate cones do not inflate sharing estimates.
        refs = [max(1, r) for r in self.session.initial_refs()]

        def select(m: int, required: Optional[List[List[float]]]) -> None:
            """(Re)select the best implementation of both phases of node m."""
            cand: List[List[Tuple[Tuple[float, float], _Impl, float, float]]] = [[], []]
            for cut in self.cuts[m]:
                if len(cut.leaves) == 1 and cut.leaves[0] == m:
                    continue
                base_tt = cut.tt
                for phase in (0, 1):
                    tt = base_tt if phase == 0 else ~base_tt
                    small, sup = self.costs.min_base(tt)
                    if small.num_vars == 0:
                        # the node is constant under this phase: zero-cost tie
                        cand[phase].append((
                            (0.0, 0.0), _Impl("const", value=small.is_const1()),
                            0.0, 0.0,
                        ))
                        continue
                    leaves = [cut.leaves[s] for s in sup]
                    for match in self.table.lookup(small):
                        arr = 0.0
                        fl = match.cell.area
                        ok = True
                        for pin in range(match.cell.num_pins):
                            leaf = leaves[match.leaf_of_pin[pin]]
                            lphase = int(match.pin_phases[pin])
                            la = arrival[leaf][lphase]
                            if la == INF:
                                ok = False
                                break
                            arr = max(arr, la + match.cell.pin_delays[pin])
                            fl += flow[leaf][lphase] / refs[leaf]
                        if not ok:
                            continue
                        if required is not None and arr > required[m][phase] + 1e-9:
                            continue
                        key = (arr, fl) if self.objective == "delay" else (fl, arr)
                        cand[phase].append((key, _Impl("match", cut, match), arr, fl))
            for phase in (0, 1):
                if cand[phase]:
                    key, best, arr, fl = min(cand[phase], key=lambda t: t[0])
                    impl[m][phase] = best
                    arrival[m][phase] = arr
                    flow[m][phase] = fl
                elif impl[m][phase] is None:
                    arrival[m][phase] = INF
                    flow[m][phase] = INF
                # else: keep the previous implementation — leaf arrivals may
                # have drifted past the required time during recovery passes,
                # but an already-selected match must never be discarded
            # inverter relaxation: implement the weaker phase off the stronger
            for phase in (0, 1):
                o = 1 - phase
                if arrival[m][o] == INF:
                    continue
                via_arr = arrival[m][o] + inv_d
                via_fl = flow[m][o] + inv_a
                if required is not None and via_arr > required[m][phase] + 1e-9:
                    continue
                cur = (arrival[m][phase], flow[m][phase]) if self.objective == "delay" \
                    else (flow[m][phase], arrival[m][phase])
                new = (via_arr, via_fl) if self.objective == "delay" else (via_fl, via_arr)
                if impl[m][phase] is None or new < cur:
                    # never let both phases be inverters of each other
                    if impl[m][o] is not None and impl[m][o].kind == "inv":
                        continue
                    impl[m][phase] = _Impl("inv")
                    arrival[m][phase] = via_arr
                    flow[m][phase] = via_fl

        # ---- pass 1: delay (or plain flow for area objective) ----
        for m in gate_nodes:
            select(m, None)
            if impl[m][0] is None and impl[m][1] is None:
                raise RuntimeError(f"no library match for node {m}; library too weak")

        required = self._compute_required(arrival, impl)

        # ---- area-flow recovery passes ----
        for _ in range(self.flow_iterations):
            refs = self._cover_refs(impl)
            saved_objective = self.objective
            self.objective = "area"  # flow-first selection under required
            for m in gate_nodes:
                select(m, required)
            self.objective = saved_objective
            required = self._compute_required(arrival, impl)

        # ---- exact local area recovery ----
        for _ in range(self.exact_iterations):
            self._exact_area_pass(gate_nodes, arrival, impl, required)
            required = self._compute_required(arrival, impl)

        return self._derive(impl)

    # -- exact-area machinery -------------------------------------------------

    def _phase_refs(self, impl) -> List[List[int]]:
        """Per-(node, phase) reference counts of the current cover."""
        ntk = self.ntk
        refs = [[0, 0] for _ in range(ntk.num_nodes())]
        stack = []
        for node, phase in self._po_requirements():
            refs[node][phase] += 1
            if refs[node][phase] == 1:
                stack.append((node, phase))
        while stack:
            node, phase = stack.pop()
            if not ntk.is_gate(node):
                continue
            im = impl[node][phase]
            if im is None or im.kind == "const":
                continue
            if im.kind == "inv":
                refs[node][1 - phase] += 1
                if refs[node][1 - phase] == 1:
                    stack.append((node, 1 - phase))
                continue
            leaves, match = self._match_leaves(im)
            for pin in range(match.cell.num_pins):
                leaf = leaves[match.leaf_of_pin[pin]]
                lp = int(match.pin_phases[pin])
                refs[leaf][lp] += 1
                if refs[leaf][lp] == 1:
                    stack.append((leaf, lp))
        return refs

    def _area_of(self, node: int, phase: int, impl) -> float:
        """Cell area charged when (node, phase) first becomes referenced."""
        ntk = self.ntk
        if ntk.is_const(node):
            return 0.0
        if ntk.is_pi(node):
            return self.inv.area if phase else 0.0
        im = impl[node][phase]
        if im is None:
            return INF
        if im.kind == "const":
            return 0.0
        return self.inv.area if im.kind == "inv" else im.match.cell.area

    def _node_ref(self, node: int, phase: int, refs, impl) -> float:
        """Add one reference to (node, phase); returns newly materialized area."""
        refs[node][phase] += 1
        if refs[node][phase] > 1:
            return 0.0
        area = self._area_of(node, phase, impl)
        if self.ntk.is_gate(node):
            area += self._inputs_ref(node, phase, refs, impl)
        return area

    def _node_deref(self, node: int, phase: int, refs, impl) -> float:
        refs[node][phase] -= 1
        if refs[node][phase] > 0:
            return 0.0
        area = self._area_of(node, phase, impl)
        if self.ntk.is_gate(node):
            area += self._inputs_deref(node, phase, refs, impl)
        return area

    def _inputs_ref(self, node: int, phase: int, refs, impl) -> float:
        im = impl[node][phase]
        if im.kind == "const":
            return 0.0
        if im.kind == "inv":
            return self._node_ref(node, 1 - phase, refs, impl)
        leaves, match = self._match_leaves(im)
        area = 0.0
        for pin in range(match.cell.num_pins):
            leaf = leaves[match.leaf_of_pin[pin]]
            area += self._node_ref(leaf, int(match.pin_phases[pin]), refs, impl)
        return area

    def _inputs_deref(self, node: int, phase: int, refs, impl) -> float:
        im = impl[node][phase]
        if im.kind == "const":
            return 0.0
        if im.kind == "inv":
            return self._node_deref(node, 1 - phase, refs, impl)
        leaves, match = self._match_leaves(im)
        area = 0.0
        for pin in range(match.cell.num_pins):
            leaf = leaves[match.leaf_of_pin[pin]]
            area += self._node_deref(leaf, int(match.pin_phases[pin]), refs, impl)
        return area

    def _exact_area_pass(self, gate_nodes, arrival, impl, required) -> None:
        """Re-select implementations by exact local area under required times."""
        refs = self._phase_refs(impl)
        for m in gate_nodes:
            for phase in (0, 1):
                if refs[m][phase] == 0 or impl[m][phase] is None:
                    continue
                if impl[m][phase].kind in ("inv", "const"):
                    continue  # inverters re-decide through their base phase
                old = impl[m][phase]
                old_arr = arrival[m][phase]
                # release the current implementation's input charges
                self._inputs_deref(m, phase, refs, impl)
                best_key = (old.match.cell.area + self._trial_area(m, phase, old, refs, impl),
                            old_arr)
                best_impl, best_arr = old, old_arr
                for cut in self.cuts[m]:
                    if len(cut.leaves) == 1 and cut.leaves[0] == m:
                        continue
                    tt = cut.tt if phase == 0 else ~cut.tt
                    small, sup = self.costs.min_base(tt)
                    if small.num_vars == 0:
                        continue
                    leaves = [cut.leaves[s] for s in sup]
                    for match in self.table.lookup(small):
                        arr = 0.0
                        ok = True
                        for pin in range(match.cell.num_pins):
                            leaf = leaves[match.leaf_of_pin[pin]]
                            la = arrival[leaf][int(match.pin_phases[pin])]
                            if la == INF:
                                ok = False
                                break
                            arr = max(arr, la + match.cell.pin_delays[pin])
                        if not ok or arr > required[m][phase] + 1e-9:
                            continue
                        cand = _Impl("match", cut, match)
                        gained = match.cell.area + self._trial_area(m, phase, cand, refs, impl)
                        key = (gained, arr)
                        if key < best_key:
                            best_key = key
                            best_impl, best_arr = cand, arr
                impl[m][phase] = best_impl
                arrival[m][phase] = best_arr
                self._inputs_ref(m, phase, refs, impl)

    def _trial_area(self, node: int, phase: int, cand: "_Impl", refs, impl) -> float:
        """Input area a candidate implementation would materialize."""
        saved = impl[node][phase]
        impl[node][phase] = cand
        area = self._inputs_ref(node, phase, refs, impl)
        self._inputs_deref(node, phase, refs, impl)
        impl[node][phase] = saved
        return area

    # ------------------------------------------------------------------ #

    def _po_requirements(self) -> List[Tuple[int, int]]:
        out = []
        for p in self.ntk.pos:
            node, phase = p >> 1, p & 1
            if self.ntk.is_gate(node) or self.ntk.is_pi(node):
                out.append((node, phase))
        return out

    def _compute_required(self, arrival, impl) -> List[List[float]]:
        ntk = self.ntk
        n = ntk.num_nodes()
        required = [[INF, INF] for _ in range(n)]
        po_req = self._po_requirements()
        if self.objective != "delay":
            return required
        target = 0.0
        for node, phase in po_req:
            if arrival[node][phase] < INF:
                target = max(target, arrival[node][phase])
        for node, phase in po_req:
            required[node][phase] = min(required[node][phase], target)
        for m in reversed(self.order):
            if not ntk.is_gate(m):
                continue
            for phase in (0, 1):
                req = required[m][phase]
                if req == INF or impl[m][phase] is None:
                    continue
                im = impl[m][phase]
                if im.kind == "const":
                    continue
                if im.kind == "inv":
                    o = 1 - phase
                    required[m][o] = min(required[m][o], req - self.inv.max_delay())
                else:
                    leaves, match = self._match_leaves(im)
                    for pin in range(match.cell.num_pins):
                        leaf = leaves[match.leaf_of_pin[pin]]
                        lp = int(match.pin_phases[pin])
                        required[leaf][lp] = min(
                            required[leaf][lp], req - match.cell.pin_delays[pin]
                        )
        return required

    def _match_leaves(self, im: _Impl) -> Tuple[List[int], Match]:
        _, sup = self.costs.min_base(im.cut.tt)
        leaves = [im.cut.leaves[s] for s in sup]
        return leaves, im.match

    def _cover_refs(self, impl) -> List[int]:
        """Combined (both-phase) reference counts of the current cover."""
        ntk = self.ntk
        refs = [0] * ntk.num_nodes()
        seen = set()
        stack = []
        for node, phase in self._po_requirements():
            refs[node] += 1
            if ntk.is_gate(node):
                stack.append((node, phase))
        while stack:
            node, phase = stack.pop()
            if (node, phase) in seen:
                continue
            seen.add((node, phase))
            im = impl[node][phase]
            if im is None or im.kind == "const":
                continue
            if im.kind == "inv":
                refs[node] += 1
                stack.append((node, 1 - phase))
                continue
            leaves, match = self._match_leaves(im)
            for pin in range(match.cell.num_pins):
                leaf = leaves[match.leaf_of_pin[pin]]
                refs[leaf] += 1
                if ntk.is_gate(leaf):
                    stack.append((leaf, int(match.pin_phases[pin])))
        return [max(1, r) for r in refs]

    def _derive(self, impl) -> CellNetlist:
        ntk = self.ntk
        netlist = CellNetlist(self.lib.name)
        net_of: Dict[Tuple[int, int], int] = {(0, 0): netlist.const0, (0, 1): netlist.const1}
        for name, pi in zip(ntk.pi_names, ntk.pis):
            net_of[(pi, 0)] = netlist.create_pi(name)

        def materialize(node: int, phase: int) -> int:
            key = (node, phase)
            if key in net_of:
                return net_of[key]
            if ntk.is_pi(node):  # phase must be 1 here
                net = netlist.add_cell(self.inv, (net_of[(node, 0)],))
                net_of[key] = net
                return net
            im = impl[node][phase]
            if im is None:
                raise RuntimeError(f"phase {phase} of node {node} not implemented")
            if im.kind == "const":
                net = netlist.const1 if im.value else netlist.const0
                net_of[key] = net
                return net
            if im.kind == "inv":
                src = materialize(node, 1 - phase)
                net = netlist.add_cell(self.inv, (src,))
                net_of[key] = net
                return net
            leaves, match = self._match_leaves(im)
            pins = []
            for pin in range(match.cell.num_pins):
                leaf = leaves[match.leaf_of_pin[pin]]
                pins.append(materialize(leaf, int(match.pin_phases[pin])))
            net = netlist.add_cell(match.cell, tuple(pins))
            net_of[key] = net
            return net

        # iterative wrapper to avoid deep recursion on long chains
        import sys
        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, 4 * ntk.num_nodes() + 1000))
        try:
            for p, name in zip(ntk.pos, ntk.po_names):
                node, phase = p >> 1, p & 1
                netlist.create_po(materialize(node, phase), name)
        finally:
            sys.setrecursionlimit(old_limit)
        return netlist


def asic_map(subject: Union[LogicNetwork, ChoiceNetwork, MappingSession],
             library: Optional[Library] = None, objective: str = "delay",
             cut_limit: int = 8, flow_iterations: int = 2,
             exact_iterations: int = 2) -> CellNetlist:
    """Map a (choice) network onto a standard-cell library.

    Returns a :class:`CellNetlist`; ``netlist.area()`` and
    ``netlist.delay()`` report the Table-I metrics.  Passing a
    :class:`MappingSession` (or re-mapping the same subject) reuses the
    shared cut database.
    """
    return AsicMapper(subject, library=library, objective=objective,
                      cut_limit=cut_limit, flow_iterations=flow_iterations,
                      exact_iterations=exact_iterations).run()
