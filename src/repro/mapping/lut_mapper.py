"""Cut-based structural mapper (K-LUT / graph-mapping front-end).

The covering machinery — priority cuts, depth pass, required times,
area-flow and exact-area recovery — lives in :mod:`repro.mapping.engine`;
this module is the thin K-LUT front-end over it.  The mapper is
*choice-aware*: handed a :class:`~repro.core.choice.ChoiceNetwork`, the
engine enumerates cuts in choice processing order and merges choice cut sets
into their representatives (Algorithm 3 of the paper), so candidates from
heterogeneous representations compete on equal terms inside the dynamic
program.

The same engine drives three consumers:

* :func:`lut_map` — FPGA K-LUT mapping (:class:`~repro.mapping.engine.UnitCostModel`);
* ASIC pre-selection experiments (custom ``cut_cost_fn``);
* :mod:`repro.mapping.graph_mapper` — mapping-based logic optimization,
  where the cut cost is the estimated gate count of resynthesizing the cut
  in the target representation.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Union

from ..core.choice import ChoiceNetwork
from ..cuts.cut import Cut
from ..networks.base import LogicNetwork
from ..networks.lut_network import LutNetwork
from .engine import (
    FunctionCostModel,
    MappingCover,
    MappingSession,
    UnitCostModel,
    run_cover,
)

__all__ = ["CutMapper", "MappingCover", "lut_map"]

Subject = Union[LogicNetwork, ChoiceNetwork, MappingSession]


class CutMapper:
    """Priority-cuts mapper over a (choice) network.

    Thin configuration front-end over :func:`repro.mapping.engine.run_cover`;
    accepts a plain network, a choice network, or an existing
    :class:`MappingSession` (to share one cut database across runs).
    """

    def __init__(self, subject: Subject, k: int = 6,
                 cut_limit: int = 8, objective: str = "delay",
                 flow_iterations: int = 1, exact_iterations: int = 2,
                 cut_cost_fn: Optional[Callable[[Cut], float]] = None,
                 cut_delay_fn: Optional[Callable[[Cut], int]] = None):
        if objective not in ("delay", "area"):
            raise ValueError("objective must be 'delay' or 'area'")
        self.session = MappingSession.of(subject)
        self.ntk = self.session.ntk
        self.k = k
        self.cut_limit = cut_limit
        self.objective = objective
        self.flow_iterations = flow_iterations
        self.exact_iterations = exact_iterations
        if cut_cost_fn is None and cut_delay_fn is None:
            self.cost_model = UnitCostModel()
        else:
            self.cost_model = FunctionCostModel(cut_cost_fn, cut_delay_fn)

    def run(self) -> MappingCover:
        return run_cover(
            self.session, self.cost_model, k=self.k, cut_limit=self.cut_limit,
            objective=self.objective, flow_iterations=self.flow_iterations,
            exact_iterations=self.exact_iterations,
        )


def lut_map(subject: Subject, k: int = 6,
            cut_limit: int = 8, objective: str = "area",
            flow_iterations: int = 1, exact_iterations: int = 2) -> LutNetwork:
    """Map a (choice) network into a K-LUT network.

    ``objective='delay'`` minimizes LUT depth first then recovers area under
    required times; ``objective='area'`` minimizes LUT count directly.
    Passing a :class:`MappingSession` reuses its shared cut database.
    """
    mapper = CutMapper(
        subject, k=k, cut_limit=cut_limit, objective=objective,
        flow_iterations=flow_iterations, exact_iterations=exact_iterations,
    )
    cover = mapper.run()

    lut = LutNetwork(k)
    mapping: Dict[int, int] = {0: 0}
    for name, n in zip(cover.pi_names, cover.pi_nodes):
        mapping[n] = lut.create_pi(name)
    for m in cover.order:
        cut = cover.selection[m]
        fis = [mapping[l] for l in cut.leaves]
        mapping[m] = lut.create_lut(fis, cut.tt)
    for p, name in zip(cover.po_literals, cover.po_names):
        node = p >> 1
        lut.create_po(mapping[node], bool(p & 1), name)
    return lut
