"""Cut-based structural mapper (K-LUT / graph-mapping core).

Implements the classic priority-cuts mapping loop (Mishchenko et al.,
ICCAD'07 / FPGA'06): a depth-oriented pass, global required-time
computation, area-flow recovery passes and exact-area recovery passes with
reference counting.  The mapper is *choice-aware*: handed a
:class:`~repro.core.choice.ChoiceNetwork`, it enumerates cuts in choice
processing order and merges choice cut sets into their representatives
(Algorithm 3 of the paper), so candidates from heterogeneous representations
compete on equal terms inside the dynamic program.

The same engine drives three consumers:

* :func:`lut_map` — FPGA K-LUT mapping (cost = 1 per LUT);
* ASIC pre-selection experiments (custom ``cut_cost_fn``);
* :mod:`repro.mapping.graph_mapper` — mapping-based logic optimization,
  where the cut cost is the estimated gate count of resynthesizing the cut
  in the target representation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..core.choice import ChoiceNetwork
from ..cuts.cut import Cut
from ..cuts.enumeration import enumerate_cuts
from ..networks.base import LogicNetwork
from ..networks.lut_network import LutNetwork

__all__ = ["CutMapper", "MappingCover", "lut_map"]

INF = float("inf")


@dataclass
class MappingCover:
    """Result of the covering phase: which cut realizes which node."""

    ntk: LogicNetwork
    selection: Dict[int, Cut]          # covered node -> selected cut
    order: List[int]                   # covered nodes in topological order
    depth: int
    area: float
    po_literals: List[int]
    po_names: List[str]
    pi_names: List[str]
    pi_nodes: List[int]


class CutMapper:
    """Priority-cuts mapper over a (choice) network."""

    def __init__(self, subject: Union[LogicNetwork, ChoiceNetwork], k: int = 6,
                 cut_limit: int = 8, objective: str = "delay",
                 flow_iterations: int = 1, exact_iterations: int = 2,
                 cut_cost_fn: Optional[Callable[[Cut], float]] = None,
                 cut_delay_fn: Optional[Callable[[Cut], int]] = None):
        if isinstance(subject, ChoiceNetwork):
            self.ntk = subject.ntk
            self.choices = subject.choices_of
            self.order = subject.processing_order()
        else:
            self.ntk = subject
            self.choices = None
            self.order = list(range(subject.num_nodes()))
        if objective not in ("delay", "area"):
            raise ValueError("objective must be 'delay' or 'area'")
        self.k = k
        self.cut_limit = cut_limit
        self.objective = objective
        self.flow_iterations = flow_iterations
        self.exact_iterations = exact_iterations
        self.cost = cut_cost_fn or (lambda cut: 1.0)
        self.delay = cut_delay_fn or (lambda cut: 1)

    # -- pass machinery ----------------------------------------------------

    def run(self) -> MappingCover:
        ntk = self.ntk
        n = ntk.num_nodes()
        self.cuts = enumerate_cuts(
            ntk, k=self.k, cut_limit=self.cut_limit,
            order=self.order, choices=self.choices,
        )
        gate_nodes = [m for m in self.order if ntk.is_gate(m)]

        arrival = [0.0] * n
        flow = [0.0] * n
        best: List[Optional[Cut]] = [None] * n
        # Initial sharing estimate over the PO-reachable structure only, so
        # choice candidate cones do not inflate fanout counts.
        reach = set()
        stack = [p >> 1 for p in ntk.pos]
        while stack:
            x = stack.pop()
            if x in reach:
                continue
            reach.add(x)
            stack.extend(f >> 1 for f in ntk.fanins(x))
        refs = [0] * n
        for x in reach:
            for f in ntk.fanins(x):
                refs[f >> 1] += 1
        refs = [max(1, r) for r in refs]

        def usable_cuts(node: int) -> List[Cut]:
            return [c for c in self.cuts[node] if len(c.leaves) > 1 or
                    (len(c.leaves) == 1 and c.leaves[0] != node)]

        # ---- pass 1: depth-oriented ----
        for m in gate_nodes:
            best_key = None
            for cut in usable_cuts(m):
                arr = self.delay(cut) + max((arrival[l] for l in cut.leaves), default=0)
                fl = self.cost(cut) + sum(flow[l] / refs[l] for l in cut.leaves)
                key = (arr, fl) if self.objective == "delay" else (fl, arr)
                if best_key is None or key < best_key:
                    best_key = key
                    best[m] = cut
                    arrival[m] = arr
                    flow[m] = fl
            if best[m] is None:
                raise RuntimeError(f"node {m} has no usable cut")

        required = self._compute_required(arrival, best)

        # ---- pass 2+: area flow under required-time constraint ----
        for _ in range(self.flow_iterations):
            refs = [max(1, r) for r in self._cover_refs(best)]
            for m in gate_nodes:
                best_key = None
                for cut in usable_cuts(m):
                    arr = self.delay(cut) + max((arrival[l] for l in cut.leaves), default=0)
                    if arr > required[m]:
                        continue
                    fl = self.cost(cut) + sum(flow[l] / refs[l] for l in cut.leaves)
                    key = (fl, arr)
                    if best_key is None or key < best_key:
                        best_key = key
                        best[m] = cut
                        arrival[m] = arr
                        flow[m] = fl
            required = self._compute_required(arrival, best)

        # ---- pass 3+: exact local area ----
        for _ in range(self.exact_iterations):
            map_refs = self._cover_refs(best)
            for m in gate_nodes:
                if map_refs[m] == 0:
                    continue
                old_cut = best[m]
                self._cut_deref(old_cut, map_refs, best)
                best_key = None
                best_cut = old_cut
                for cut in usable_cuts(m):
                    arr = self.delay(cut) + max((arrival[l] for l in cut.leaves), default=0)
                    if arr > required[m]:
                        continue
                    area = self._cut_ref(cut, map_refs, best)
                    self._cut_deref(cut, map_refs, best)
                    key = (area, arr)
                    if best_key is None or key < best_key:
                        best_key = key
                        best_cut = cut
                        arrival[m] = arr
                best[m] = best_cut
                self._cut_ref(best_cut, map_refs, best)
            required = self._compute_required(arrival, best)

        return self._derive_cover(best)

    # -- helpers -------------------------------------------------------------

    def _compute_required(self, arrival: List[float], best: List[Optional[Cut]]) -> List[float]:
        ntk = self.ntk
        n = ntk.num_nodes()
        required = [INF] * n
        po_gate_nodes = [p >> 1 for p in ntk.pos if ntk.is_gate(p >> 1)]
        if self.objective == "delay":
            target = max((arrival[m] for m in po_gate_nodes), default=0)
            for m in po_gate_nodes:
                required[m] = target
            # reverse topological propagation through selected cuts
            for m in reversed(self.order):
                if not ntk.is_gate(m) or required[m] == INF or best[m] is None:
                    continue
                slack = required[m] - self.delay(best[m])
                for l in best[m].leaves:
                    if slack < required[l]:
                        required[l] = slack
        return required

    def _cover_refs(self, best: List[Optional[Cut]]) -> List[int]:
        """Reference counts of the cover induced by the current best cuts."""
        ntk = self.ntk
        refs = [0] * ntk.num_nodes()
        stack = [p >> 1 for p in ntk.pos if ntk.is_gate(p >> 1)]
        for m in stack:
            refs[m] += 1
        seen = set(stack)
        work = list(seen)
        while work:
            m = work.pop()
            for l in best[m].leaves:
                refs[l] += 1
                if ntk.is_gate(l) and l not in seen:
                    seen.add(l)
                    work.append(l)
        return refs

    def _cut_ref(self, cut: Cut, refs: List[int], best: List[Optional[Cut]]) -> float:
        area = self.cost(cut)
        for l in cut.leaves:
            refs[l] += 1
            if refs[l] == 1 and self.ntk.is_gate(l):
                area += self._cut_ref(best[l], refs, best)
        return area

    def _cut_deref(self, cut: Cut, refs: List[int], best: List[Optional[Cut]]) -> float:
        area = self.cost(cut)
        for l in cut.leaves:
            refs[l] -= 1
            if refs[l] == 0 and self.ntk.is_gate(l):
                area += self._cut_deref(best[l], refs, best)
        return area

    def _derive_cover(self, best: List[Optional[Cut]]) -> MappingCover:
        ntk = self.ntk
        selection: Dict[int, Cut] = {}
        needed = set()
        stack = [p >> 1 for p in ntk.pos if ntk.is_gate(p >> 1)]
        while stack:
            m = stack.pop()
            if m in needed:
                continue
            needed.add(m)
            selection[m] = best[m]
            for l in best[m].leaves:
                if ntk.is_gate(l):
                    stack.append(l)
        order = [m for m in self.order if m in needed]
        area = sum(self.cost(c) for c in selection.values())
        po_gate_nodes = [p >> 1 for p in ntk.pos if ntk.is_gate(p >> 1)]
        depth_val = 0
        lev: Dict[int, int] = {}
        for m in order:
            lev[m] = self.delay(selection[m]) + max(
                (lev.get(l, 0) for l in selection[m].leaves), default=0
            )
        depth_val = max((lev[m] for m in po_gate_nodes), default=0)
        return MappingCover(
            ntk=ntk,
            selection=selection,
            order=order,
            depth=depth_val,
            area=area,
            po_literals=ntk.pos,
            po_names=ntk.po_names,
            pi_names=ntk.pi_names,
            pi_nodes=ntk.pis,
        )


def lut_map(subject: Union[LogicNetwork, ChoiceNetwork], k: int = 6,
            cut_limit: int = 8, objective: str = "area",
            flow_iterations: int = 1, exact_iterations: int = 2) -> LutNetwork:
    """Map a (choice) network into a K-LUT network.

    ``objective='delay'`` minimizes LUT depth first then recovers area under
    required times; ``objective='area'`` minimizes LUT count directly.
    """
    mapper = CutMapper(
        subject, k=k, cut_limit=cut_limit, objective=objective,
        flow_iterations=flow_iterations, exact_iterations=exact_iterations,
    )
    cover = mapper.run()

    lut = LutNetwork(k)
    mapping: Dict[int, int] = {0: 0}
    for name, n in zip(cover.pi_names, cover.pi_nodes):
        mapping[n] = lut.create_pi(name)
    for m in cover.order:
        cut = cover.selection[m]
        fis = [mapping[l] for l in cut.leaves]
        mapping[m] = lut.create_lut(fis, cut.tt)
    for p, name in zip(cover.po_literals, cover.po_names):
        node = p >> 1
        lut.create_po(mapping[node], bool(p & 1), name)
    return lut
