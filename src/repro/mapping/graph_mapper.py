"""Graph mapping: mapping-based logic optimization / representation conversion.

Implements the versatile-mapping idea (Calvino et al., ASP-DAC'22) the paper
uses both as its "Graph Map" baseline and as the host of the MCH extension
(Section III-C): the subject network (optionally a mixed choice network) is
covered with cuts exactly like in LUT mapping — through the shared
:mod:`repro.mapping.engine` pipeline — but each selected cut is
*resynthesized* into a target representation, with the cut cost model
(:class:`~repro.mapping.engine.NpnCostModel`) taken from the target
representation's NPN structure database.  The output is a new
AIG/XAG/MIG/XMG rather than a LUT netlist.

Iterating ``graph_map`` to a fixpoint is a logic optimization loop; handing
it an MCH choice network lets it jump out of the single-representation local
optima, which is the paper's Fig. 6 experiment.
"""

from __future__ import annotations

from typing import Dict, Optional, Type, Union

from ..core.choice import ChoiceNetwork
from ..networks.base import LogicNetwork
from ..synthesis.npn_db import NpnCostCache
from ..synthesis.factoring import synthesize_tt
from .engine import MappingSession, NpnCostModel, run_cover

__all__ = ["graph_map", "graph_map_iterate"]


def graph_map(subject: Union[LogicNetwork, ChoiceNetwork, MappingSession],
              target_cls: Type[LogicNetwork],
              objective: str = "area", k: int = 4, cut_limit: int = 8,
              flow_iterations: int = 1, exact_iterations: int = 1,
              cache: Optional[NpnCostCache] = None) -> LogicNetwork:
    """Remap ``subject`` into a fresh network of class ``target_cls``.

    ``objective='area'`` minimizes the estimated target gate count;
    ``objective='delay'`` minimizes the estimated target depth and recovers
    gates under required times.
    """
    session = MappingSession.of(subject)
    cost_model = NpnCostModel(target_cls, objective, cache=cache)
    cover = run_cover(
        session, cost_model, k=k, cut_limit=cut_limit, objective=objective,
        flow_iterations=flow_iterations, exact_iterations=exact_iterations,
    )

    target = target_cls()
    mapping: Dict[int, int] = {0: target.const0}
    for name, n in zip(cover.pi_names, cover.pi_nodes):
        mapping[n] = target.create_pi(name)
    for m in cover.order:
        cut = cover.selection[m]
        leaf_lits = [mapping[l] for l in cut.leaves]
        method = cost_model.best(cut.tt)[0]
        mapping[m] = synthesize_tt(target, cut.tt, leaf_lits, method=method)
    for p, name in zip(cover.po_literals, cover.po_names):
        target.create_po(mapping[p >> 1] ^ (p & 1), name)
    return target


def graph_map_iterate(ntk: LogicNetwork, target_cls: Type[LogicNetwork],
                      objective: str = "area", k: int = 4, cut_limit: int = 8,
                      max_rounds: int = 10) -> LogicNetwork:
    """Iterate graph mapping until no further improvement (a local optimum).

    This is the paper's "Baseline" protocol in the Fig. 6 experiment:
    repeatedly remap until gate count (area) or depth (delay) stops
    improving.
    """
    cache = NpnCostCache(target_cls)
    current = graph_map(ntk, target_cls, objective=objective, k=k,
                        cut_limit=cut_limit, cache=cache)

    def score(net: LogicNetwork):
        return (net.num_gates(), net.depth()) if objective == "area" \
            else (net.depth(), net.num_gates())

    best = score(current)
    for _ in range(max_rounds - 1):
        nxt = graph_map(current, target_cls, objective=objective, k=k,
                        cut_limit=cut_limit, cache=cache)
        s = score(nxt)
        if s >= best:
            break
        current, best = nxt, s
    return current
