"""Shared mapping engine: sessions, cut databases, cost models, pass pipeline.

This module is the common substrate of all three cut-based mappers:

* :class:`MappingSession` owns the expensive per-network state — the
  processing order, the PO-reachable node set, initial fanout reference
  estimates and one flat :class:`~repro.cuts.database.CutDatabase` per
  ``(k, cut_limit)`` — computed once and shared by every mapper pass and
  consumer.  Sessions are cached on the subject network and invalidated
  automatically when the network (or its choice structure) mutates.
* The :class:`CostModel` protocol is the unified cost layer: the K-LUT
  mapper uses :class:`UnitCostModel` (one LUT per cut), graph mapping uses
  :class:`NpnCostModel` (estimated target-representation gate count), and
  the ASIC mapper's Boolean matching runs through :class:`LibraryCostModel`
  (memoized min-base reduction + library match lookup).
* :func:`run_cover` is the single covering pipeline — depth-oriented pass,
  global required times, area-flow recovery and exact-area recovery with
  reference counting — that used to be duplicated across the mappers.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Union

from ..core.choice import ChoiceNetwork
from ..cuts.cut import Cut
from ..cuts.database import CutDatabase
from ..cuts.enumeration import expand_cache_stats
from ..networks.base import LogicNetwork, require_combinational
from ..synthesis.npn_db import NpnCostCache
from ..truth.truth_table import TruthTable

__all__ = [
    "MappingSession",
    "MappingCover",
    "CostModel",
    "UnitCostModel",
    "FunctionCostModel",
    "NpnCostModel",
    "LibraryCostModel",
    "library_cost_model",
    "run_cover",
]

INF = float("inf")

Subject = Union[LogicNetwork, ChoiceNetwork, "MappingSession"]


# ---------------------------------------------------------------------- #
# session                                                                 #
# ---------------------------------------------------------------------- #

class MappingSession:
    """Shared mapping state for one subject network (plain or choice).

    All derived structures are computed lazily, memoized, and shared by
    reference — treat everything a session hands out as read-only.
    """

    def __init__(self, subject: Union[LogicNetwork, ChoiceNetwork]):
        if isinstance(subject, MappingSession):
            raise TypeError("subject is already a MappingSession; use MappingSession.of")
        if isinstance(subject, ChoiceNetwork):
            self.subject = subject
            self.ntk: LogicNetwork = subject.ntk
            require_combinational(self.ntk, "MappingSession")
            self.choices: Optional[Dict[int, List[Tuple[int, bool]]]] = subject.choices_of
        else:
            require_combinational(subject, "MappingSession")
            self.subject = subject
            self.ntk = subject
            self.choices = None
        self._network_version = self.ntk.version
        self._num_choices = self._count_choices()
        self._order: Optional[List[int]] = None
        self._gate_nodes: Optional[List[int]] = None
        self._reachable: Optional[set] = None
        self._initial_refs: Optional[List[int]] = None
        self._databases: Dict[Tuple[int, int], CutDatabase] = {}

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def of(cls, subject: Subject) -> "MappingSession":
        """The session of ``subject``, reusing a cached one when still valid.

        Sessions attach themselves to the subject object, so mapping the
        same network (or choice network) repeatedly — e.g. a delay- and an
        area-oriented run in one experiment — shares one cut database.
        """
        if isinstance(subject, MappingSession):
            return subject
        cached = getattr(subject, "_mapping_session", None)
        if cached is not None and cached.is_current():
            return cached
        session = cls(subject)
        try:
            subject._mapping_session = session
        except AttributeError:
            pass  # subjects with __slots__ simply don't cache
        return session

    def _count_choices(self) -> int:
        if self.choices is None:
            return 0
        return sum(len(v) for v in self.choices.values())

    def is_current(self) -> bool:
        """True while the subject has not structurally changed."""
        return (self.ntk.version == self._network_version
                and self._count_choices() == self._num_choices)

    # -- shared derived state ---------------------------------------------

    def order(self) -> List[int]:
        """Node processing order (choice roots before representatives)."""
        if self._order is None:
            if isinstance(self.subject, ChoiceNetwork):
                self._order = self.subject.processing_order()
            else:
                self._order = self.ntk.topological_order()
        return self._order

    def gate_nodes(self) -> List[int]:
        """Gate nodes in processing order."""
        if self._gate_nodes is None:
            ntk = self.ntk
            self._gate_nodes = [m for m in self.order() if ntk.is_gate(m)]
        return self._gate_nodes

    def reachable(self) -> set:
        """Nodes inside the PO-reachable structure (choice cones excluded)."""
        if self._reachable is None:
            ntk = self.ntk
            reach = set()
            stack = [p >> 1 for p in ntk.pos]
            while stack:
                x = stack.pop()
                if x in reach:
                    continue
                reach.add(x)
                stack.extend(f >> 1 for f in ntk.fanins(x))
            self._reachable = reach
        return self._reachable

    def initial_refs(self) -> List[int]:
        """Structural fanout counts over the PO-reachable structure only.

        This is the initial sharing estimate of the area-flow passes; choice
        candidate cones are excluded so they do not inflate fanout counts.
        Callers must copy before mutating.
        """
        if self._initial_refs is None:
            ntk = self.ntk
            refs = [0] * ntk.num_nodes()
            for x in self.reachable():
                for f in ntk.fanins(x):
                    refs[f >> 1] += 1
            self._initial_refs = refs
        return self._initial_refs

    def cut_database(self, k: int, cut_limit: int) -> CutDatabase:
        """The flat cut database for ``(k, cut_limit)``, built once."""
        key = (k, cut_limit)
        db = self._databases.get(key)
        if db is None:
            db = CutDatabase(self.ntk, k=k, cut_limit=cut_limit,
                             order=self.order(), choices=self.choices)
            self._databases[key] = db
        return db

    def stats(self) -> dict:
        """Aggregate engine statistics (cut databases + expansion cache)."""
        out = {
            "network_nodes": self.ntk.num_nodes(),
            "choices": self._num_choices,
            "databases": {
                f"k={k},limit={l}": db.stats for (k, l), db in self._databases.items()
            },
            "expand_cache": expand_cache_stats(),
        }
        return out

    def __repr__(self) -> str:
        dbs = ",".join(f"({k},{l})" for k, l in self._databases)
        return (f"<MappingSession nodes={self.ntk.num_nodes()} "
                f"choices={self._num_choices} dbs=[{dbs}]>")


# ---------------------------------------------------------------------- #
# cost models                                                             #
# ---------------------------------------------------------------------- #

class CostModel:
    """Protocol of the unified cut cost layer.

    ``cut_cost`` is the area charged for selecting a cut; ``cut_delay`` the
    delay through it.  Implementations may memoize on the cut function.
    """

    def cut_cost(self, cut: Cut) -> float:
        raise NotImplementedError

    def cut_delay(self, cut: Cut) -> float:
        raise NotImplementedError


class UnitCostModel(CostModel):
    """K-LUT costs: every cut is one LUT, one level."""

    def cut_cost(self, cut: Cut) -> float:
        return 1.0

    def cut_delay(self, cut: Cut) -> float:
        return 1


class FunctionCostModel(CostModel):
    """Adapter for ad-hoc callables (the legacy ``cut_cost_fn`` interface)."""

    def __init__(self, cost_fn: Optional[Callable[[Cut], float]] = None,
                 delay_fn: Optional[Callable[[Cut], float]] = None):
        if cost_fn is not None:
            self.cut_cost = cost_fn  # type: ignore[assignment]
        if delay_fn is not None:
            self.cut_delay = delay_fn  # type: ignore[assignment]

    def cut_cost(self, cut: Cut) -> float:
        return 1.0

    def cut_delay(self, cut: Cut) -> float:
        return 1


class NpnCostModel(CostModel):
    """Graph-mapping costs: estimated gate count / depth of resynthesizing
    the cut function in the target representation.

    Results are memoized per raw cut function, so the NPN canonicalization
    inside :class:`NpnCostCache` runs once per distinct function instead of
    once per (cut, pass) pair.
    """

    def __init__(self, target_cls: type, objective: str,
                 cache: Optional[NpnCostCache] = None):
        self.cache = cache if cache is not None and cache.rep_cls is target_cls \
            else NpnCostCache(target_cls)
        self.synth_objective = "area" if objective == "area" else "level"
        self._memo: Dict[Tuple[int, int], Tuple[str, int, int, bool]] = {}

    def best(self, tt: TruthTable) -> Tuple[str, int, int, bool]:
        """(method, gates, depth, has_support) for a cut function."""
        key = (tt.num_vars, tt.bits)
        got = self._memo.get(key)
        if got is None:
            method, gates, depth = self.cache.best_method(tt, self.synth_objective)
            got = (method, gates, depth, bool(tt.support()))
            self._memo[key] = got
        return got

    def cut_cost(self, cut: Cut) -> float:
        if len(cut.leaves) <= 1:
            return 0.0
        return float(self.best(cut.tt)[1])

    def cut_delay(self, cut: Cut) -> float:
        if len(cut.leaves) <= 1:
            return 0
        _, _, depth, has_support = self.best(cut.tt)
        return max(depth, 1) if has_support else 0


class LibraryCostModel:
    """Boolean-matching cost layer for standard-cell mapping.

    Owns the pre-expanded :class:`~repro.mapping.matcher.MatchTable` of a
    library and memoizes the min-base reduction (support minimization) of
    every cut function it sees — the part the phase-aware mapper used to
    recompute for every (cut, phase, pass) triple.
    """

    def __init__(self, library, max_pins: int = 4):
        from .matcher import MatchTable  # local import: avoid cycle at module load

        self.library = library
        self.max_pins = min(max_pins, library.max_pins)
        self.table = MatchTable(library, max_pins=self.max_pins)
        self.inverter = library.inverter
        self._minbase: Dict[Tuple[int, int], Tuple[TruthTable, Tuple[int, ...]]] = {}

    def min_base(self, tt: TruthTable) -> Tuple[TruthTable, Tuple[int, ...]]:
        """Memoized ``tt.min_base()`` — (support-reduced tt, support vars)."""
        key = (tt.num_vars, tt.bits)
        got = self._minbase.get(key)
        if got is None:
            small, sup = tt.min_base()
            got = (small, tuple(sup))
            self._minbase[key] = got
        return got

    def matches(self, small: TruthTable):
        """Library matches realizing exactly ``small`` (same polarity)."""
        return self.table.lookup(small)

    def stats(self) -> dict:
        return {
            "library": self.library.name,
            "table_entries": self.table.num_entries(),
            "minbase_memo": len(self._minbase),
        }


# One cost model per (library object, pin bound): the match table expansion
# is expensive and libraries are immutable in practice.  Keyed by object id
# with a strong reference kept inside the model (so ids cannot be recycled
# while cached) and bounded LRU-style so sweeps over many parsed libraries
# cannot leak match tables.
_LIBRARY_MODELS: "OrderedDict[Tuple[int, int], LibraryCostModel]" = OrderedDict()
_LIBRARY_MODELS_LIMIT = 8


def library_cost_model(library, max_pins: int = 4) -> LibraryCostModel:
    """Shared :class:`LibraryCostModel` of a library (built once, LRU-bounded)."""
    key = (id(library), max_pins)
    model = _LIBRARY_MODELS.get(key)
    if model is None:
        model = LibraryCostModel(library, max_pins=max_pins)
        _LIBRARY_MODELS[key] = model
        while len(_LIBRARY_MODELS) > _LIBRARY_MODELS_LIMIT:
            _LIBRARY_MODELS.popitem(last=False)
    else:
        _LIBRARY_MODELS.move_to_end(key)
    return model


# ---------------------------------------------------------------------- #
# the covering pipeline                                                   #
# ---------------------------------------------------------------------- #

@dataclass
class MappingCover:
    """Result of the covering phase: which cut realizes which node."""

    ntk: LogicNetwork
    selection: Dict[int, Cut]          # covered node -> selected cut
    order: List[int]                   # covered nodes in topological order
    depth: int
    area: float
    po_literals: List[int]
    po_names: List[str]
    pi_names: List[str]
    pi_nodes: List[int]


def run_cover(session: MappingSession, cost_model: CostModel, *,
              k: int = 6, cut_limit: int = 8, objective: str = "delay",
              flow_iterations: int = 1, exact_iterations: int = 2) -> MappingCover:
    """Cover the session's network with cuts under a cost model.

    The classic priority-cuts pipeline (Mishchenko et al., ICCAD'07 /
    FPGA'06): a depth-oriented pass, global required-time computation,
    area-flow recovery passes and exact-area recovery passes with reference
    counting.  Every mapper consumes this one implementation.
    """
    if objective not in ("delay", "area"):
        raise ValueError("objective must be 'delay' or 'area'")
    return _CoverPipeline(session, cost_model, k, cut_limit, objective,
                          flow_iterations, exact_iterations).run()


class _CoverPipeline:
    def __init__(self, session, cost_model, k, cut_limit, objective,
                 flow_iterations, exact_iterations):
        self.session = session
        self.ntk = session.ntk
        self.order = session.order()
        self.objective = objective
        self.flow_iterations = flow_iterations
        self.exact_iterations = exact_iterations
        self.cost = cost_model.cut_cost
        self.delay = cost_model.cut_delay
        self.db = session.cut_database(k, cut_limit)

    def run(self) -> MappingCover:
        ntk = self.ntk
        n = ntk.num_nodes()
        db = self.db
        gate_nodes = self.session.gate_nodes()

        # Cuts a node may be implemented by: every cut except its own
        # trivial cut (single-leaf cuts of *other* nodes — absorbed choice
        # buffers — stay usable).  Computed once and reused by every pass.
        usable: Dict[int, List[Cut]] = {}
        for m in gate_nodes:
            usable[m] = [c for c in db.cuts(m)
                         if len(c.leaves) > 1 or
                         (len(c.leaves) == 1 and c.leaves[0] != m)]

        arrival = [0.0] * n
        flow = [0.0] * n
        best: List[Optional[Cut]] = [None] * n
        refs = [max(1, r) for r in self.session.initial_refs()]
        cost = self.cost
        delay = self.delay

        # ---- pass 1: depth-oriented ----
        delay_first = self.objective == "delay"
        for m in gate_nodes:
            best_key = None
            for cut in usable[m]:
                arr = delay(cut) + max((arrival[l] for l in cut.leaves), default=0)
                fl = cost(cut) + sum(flow[l] / refs[l] for l in cut.leaves)
                key = (arr, fl) if delay_first else (fl, arr)
                if best_key is None or key < best_key:
                    best_key = key
                    best[m] = cut
                    arrival[m] = arr
                    flow[m] = fl
            if best[m] is None:
                raise RuntimeError(f"node {m} has no usable cut")

        required = self._compute_required(arrival, best)

        # ---- pass 2+: area flow under required-time constraint ----
        for _ in range(self.flow_iterations):
            refs = [max(1, r) for r in self._cover_refs(best)]
            for m in gate_nodes:
                best_key = None
                for cut in usable[m]:
                    arr = delay(cut) + max((arrival[l] for l in cut.leaves), default=0)
                    if arr > required[m]:
                        continue
                    fl = cost(cut) + sum(flow[l] / refs[l] for l in cut.leaves)
                    key = (fl, arr)
                    if best_key is None or key < best_key:
                        best_key = key
                        best[m] = cut
                        arrival[m] = arr
                        flow[m] = fl
            required = self._compute_required(arrival, best)

        # ---- pass 3+: exact local area ----
        for _ in range(self.exact_iterations):
            map_refs = self._cover_refs(best)
            for m in gate_nodes:
                if map_refs[m] == 0:
                    continue
                old_cut = best[m]
                self._cut_deref(old_cut, map_refs, best)
                best_key = None
                best_cut = old_cut
                for cut in usable[m]:
                    arr = delay(cut) + max((arrival[l] for l in cut.leaves), default=0)
                    if arr > required[m]:
                        continue
                    area = self._cut_ref(cut, map_refs, best)
                    self._cut_deref(cut, map_refs, best)
                    key = (area, arr)
                    if best_key is None or key < best_key:
                        best_key = key
                        best_cut = cut
                        arrival[m] = arr
                best[m] = best_cut
                self._cut_ref(best_cut, map_refs, best)
            required = self._compute_required(arrival, best)

        return self._derive_cover(best)

    # -- helpers -------------------------------------------------------------

    def _compute_required(self, arrival: List[float], best: List[Optional[Cut]]) -> List[float]:
        ntk = self.ntk
        n = ntk.num_nodes()
        required = [INF] * n
        po_gate_nodes = [p >> 1 for p in ntk.pos if ntk.is_gate(p >> 1)]
        if self.objective == "delay":
            target = max((arrival[m] for m in po_gate_nodes), default=0)
            for m in po_gate_nodes:
                required[m] = target
            # reverse topological propagation through selected cuts
            for m in reversed(self.order):
                if not ntk.is_gate(m) or required[m] == INF or best[m] is None:
                    continue
                slack = required[m] - self.delay(best[m])
                for l in best[m].leaves:
                    if slack < required[l]:
                        required[l] = slack
        return required

    def _cover_refs(self, best: List[Optional[Cut]]) -> List[int]:
        """Reference counts of the cover induced by the current best cuts."""
        ntk = self.ntk
        refs = [0] * ntk.num_nodes()
        stack = [p >> 1 for p in ntk.pos if ntk.is_gate(p >> 1)]
        for m in stack:
            refs[m] += 1
        seen = set(stack)
        work = list(seen)
        while work:
            m = work.pop()
            for l in best[m].leaves:
                refs[l] += 1
                if ntk.is_gate(l) and l not in seen:
                    seen.add(l)
                    work.append(l)
        return refs

    def _cut_ref(self, cut: Cut, refs: List[int], best: List[Optional[Cut]]) -> float:
        area = self.cost(cut)
        for l in cut.leaves:
            refs[l] += 1
            if refs[l] == 1 and self.ntk.is_gate(l):
                area += self._cut_ref(best[l], refs, best)
        return area

    def _cut_deref(self, cut: Cut, refs: List[int], best: List[Optional[Cut]]) -> float:
        area = self.cost(cut)
        for l in cut.leaves:
            refs[l] -= 1
            if refs[l] == 0 and self.ntk.is_gate(l):
                area += self._cut_deref(best[l], refs, best)
        return area

    def _derive_cover(self, best: List[Optional[Cut]]) -> MappingCover:
        ntk = self.ntk
        selection: Dict[int, Cut] = {}
        needed = set()
        stack = [p >> 1 for p in ntk.pos if ntk.is_gate(p >> 1)]
        while stack:
            m = stack.pop()
            if m in needed:
                continue
            needed.add(m)
            selection[m] = best[m]
            for l in best[m].leaves:
                if ntk.is_gate(l):
                    stack.append(l)
        order = [m for m in self.order if m in needed]
        area = sum(self.cost(c) for c in selection.values())
        po_gate_nodes = [p >> 1 for p in ntk.pos if ntk.is_gate(p >> 1)]
        lev: Dict[int, int] = {}
        for m in order:
            lev[m] = self.delay(selection[m]) + max(
                (lev.get(l, 0) for l in selection[m].leaves), default=0
            )
        depth_val = max((lev[m] for m in po_gate_nodes), default=0)
        return MappingCover(
            ntk=ntk,
            selection=selection,
            order=order,
            depth=depth_val,
            area=area,
            po_literals=ntk.pos,
            po_names=ntk.po_names,
            pi_names=ntk.pi_names,
            pi_nodes=ntk.pis,
        )
