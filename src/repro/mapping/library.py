"""Standard-cell library model and genlib parsing.

A :class:`Cell` is a single-output combinational gate with a truth table,
an area, and one propagation delay per input pin (fixed, load-independent —
the usual academic simplification of an NLDM table).  A :class:`Library` is a
cell collection with an inverter and optional buffer singled out.

The genlib grammar supported is the classic SIS/ABC subset::

    GATE <name> <area> <output>=<expr>;  PIN * <phase> 1 999 <rise> <slope> <fall> <slope>
    GATE <name> <area> <output>=<expr>;  PIN <pin> ...

Expressions use ``!`` (NOT), ``*`` (AND), ``+`` (OR), ``^`` (XOR), parentheses
and the constants ``CONST0`` / ``CONST1``.  Pin order in the truth table is
the order of first appearance in the expression.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..truth.truth_table import TruthTable

__all__ = ["Cell", "Library", "parse_genlib", "write_genlib", "parse_expression"]


@dataclass(frozen=True)
class Cell:
    """A combinational standard cell."""

    name: str
    function: TruthTable       # over pins, pin i = variable i
    area: float                # µm²
    pin_delays: Tuple[float, ...]  # ps, pin -> output
    pin_names: Tuple[str, ...]

    @property
    def num_pins(self) -> int:
        return self.function.num_vars

    def max_delay(self) -> float:
        return max(self.pin_delays) if self.pin_delays else 0.0

    def __repr__(self) -> str:
        return f"Cell({self.name}, pins={self.num_pins}, area={self.area})"


class Library:
    """A collection of cells with convenience accessors."""

    def __init__(self, name: str, cells: Sequence[Cell]):
        self.name = name
        self.cells: List[Cell] = list(cells)
        self._by_name: Dict[str, Cell] = {c.name: c for c in self.cells}
        if len(self._by_name) != len(self.cells):
            raise ValueError("duplicate cell names in library")
        self.inverter = self._cheapest(lambda c: c.num_pins == 1 and c.function.bits == 0b01)
        self.buffer = self._cheapest(lambda c: c.num_pins == 1 and c.function.bits == 0b10)
        if self.inverter is None:
            raise ValueError("library must contain an inverter")

    def _cheapest(self, pred) -> Optional[Cell]:
        matches = [c for c in self.cells if pred(c)]
        return min(matches, key=lambda c: c.area) if matches else None

    def cell(self, name: str) -> Cell:
        return self._by_name[name]

    @property
    def max_pins(self) -> int:
        return max(c.num_pins for c in self.cells)

    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self):
        return iter(self.cells)

    def __repr__(self) -> str:
        return f"<Library {self.name}: {len(self.cells)} cells, max {self.max_pins} pins>"


# --------------------------------------------------------------------------- #
# boolean expression parsing (genlib)                                          #
# --------------------------------------------------------------------------- #


class _ExprParser:
    """Recursive-descent parser for genlib gate expressions."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.pin_order: List[str] = []

    def _peek(self) -> str:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def _ident(self) -> str:
        self._peek()
        start = self.pos
        while self.pos < len(self.text) and (self.text[self.pos].isalnum() or self.text[self.pos] in "_[]."):
            self.pos += 1
        if start == self.pos:
            raise ValueError(f"expected identifier at {self.text[start:]!r}")
        return self.text[start:self.pos]

    # grammar: or_expr := and_expr (('+'|'|') and_expr)*
    #          and_expr := xor_expr (('*'|'&'|juxt) xor_expr)*
    #          xor_expr := atom ('^' atom)*
    #          atom := '!' atom | '(' or_expr ')' | ident ["'"]

    def parse(self):
        node = self._or()
        if self._peek():
            raise ValueError(f"trailing input {self.text[self.pos:]!r}")
        return node

    def _or(self):
        node = self._and()
        while self._peek() and self._peek() in "+|":
            self.pos += 1
            node = ("or", node, self._and())
        return node

    def _and(self):
        node = self._xor()
        while True:
            c = self._peek()
            if c and c in "*&":
                self.pos += 1
                node = ("and", node, self._xor())
            elif c and (c.isalnum() or c in "!(_"):
                node = ("and", node, self._xor())
            else:
                return node

    def _xor(self):
        node = self._atom()
        while self._peek() == "^":
            self.pos += 1
            node = ("xor", node, self._atom())
        return node

    def _atom(self):
        c = self._peek()
        if c == "!":
            self.pos += 1
            return ("not", self._atom())
        if c == "(":
            self.pos += 1
            node = self._or()
            if self._peek() != ")":
                raise ValueError("unbalanced parenthesis")
            self.pos += 1
            return self._postfix(node)
        name = self._ident()
        if name in ("CONST0", "CONST1"):
            return self._postfix(("const", name == "CONST1"))
        if name not in self.pin_order:
            self.pin_order.append(name)
        return self._postfix(("var", name))

    def _postfix(self, node):
        if self._peek() == "'":
            self.pos += 1
            return ("not", node)
        return node


def parse_expression(text: str) -> Tuple[TruthTable, List[str]]:
    """Parse a genlib expression; returns (truth table, pin name order)."""
    parser = _ExprParser(text)
    ast = parser.parse()
    pins = parser.pin_order
    n = len(pins)
    index = {p: i for i, p in enumerate(pins)}

    def ev(node) -> TruthTable:
        kind = node[0]
        if kind == "const":
            return TruthTable.const(n, node[1])
        if kind == "var":
            return TruthTable.var(n, index[node[1]])
        if kind == "not":
            return ~ev(node[1])
        a, b = ev(node[1]), ev(node[2])
        if kind == "and":
            return a & b
        if kind == "or":
            return a | b
        return a ^ b

    return ev(ast), pins


def parse_genlib(text: str, name: str = "genlib") -> Library:
    """Parse genlib text into a :class:`Library`."""
    cells: List[Cell] = []
    # normalize: strip comments, join continuation lines
    lines = []
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if line:
            lines.append(line)
    blob = " ".join(lines)
    chunks = [c.strip() for c in blob.split("GATE") if c.strip()]
    for chunk in chunks:
        head, _, pin_part = chunk.partition("PIN")
        head = head.strip().rstrip(";").strip()
        # head: <name> <area> <out>=<expr>
        fields = head.split(None, 2)
        if len(fields) != 3:
            raise ValueError(f"malformed GATE line: {head!r}")
        cell_name, area_s, assign = fields
        _, _, expr = assign.partition("=")
        if not expr:
            raise ValueError(f"missing output assignment in {head!r}")
        tt, pins = parse_expression(expr.strip().rstrip(";"))
        # pins: genlib allows one PIN * line for all pins or one per pin
        delays = {p: 1.0 for p in pins}
        if pin_part:
            for spec in ("PIN " + pin_part).split("PIN"):
                spec = spec.strip().rstrip(";").strip()
                if not spec:
                    continue
                toks = spec.split()
                pin_name = toks[0]
                rise = float(toks[4]) if len(toks) > 4 else 1.0
                fall = float(toks[6]) if len(toks) > 6 else rise
                d = max(rise, fall)
                if pin_name == "*":
                    delays = {p: d for p in pins}
                else:
                    delays[pin_name] = d
        cells.append(
            Cell(
                name=cell_name,
                function=tt,
                area=float(area_s),
                pin_delays=tuple(delays[p] for p in pins),
                pin_names=tuple(pins),
            )
        )
    return Library(name, cells)


def write_genlib(lib: Library) -> str:
    """Serialize a library to genlib text (SOP form of each cell function)."""
    from ..truth.isop import cube_literals, isop

    out = [f"# library {lib.name}"]
    for cell in lib.cells:
        cubes = isop(cell.function)
        if not cubes:
            expr = "CONST0"
        elif cubes == [(0, 0)]:
            expr = "CONST1"
        else:
            terms = []
            appearance = []
            for cube in cubes:
                lits = []
                for v, neg in cube_literals(cube):
                    lits.append(("!" if neg else "") + cell.pin_names[v])
                    if v not in appearance:
                        appearance.append(v)
                terms.append("*".join(lits) if lits else "CONST1")
            expr = "+".join(terms)
            if appearance != sorted(appearance) or len(appearance) != cell.num_pins:
                # The parser assigns variables by first appearance; force the
                # declared pin order with a tautological prefix.
                prefix = "*".join(f"({p}+!{p})" for p in cell.pin_names)
                expr = f"{prefix}*({expr})"
        out.append(f"GATE {cell.name} {cell.area} O={expr};")
        for pin, d in zip(cell.pin_names, cell.pin_delays):
            out.append(f"  PIN {pin} UNKNOWN 1 999 {d} 0.0 {d} 0.0")
    return "\n".join(out) + "\n"
