"""Load-aware static timing analysis for mapped netlists.

The mapper itself uses fixed per-pin delays (a common academic
simplification); this module provides the more realistic *linear load
model* for post-mapping analysis:

    delay(pin -> out) = intrinsic(pin) + R_drive * C_load

where ``C_load`` sums the input capacitances of the fanout pins (plus a
wire constant per fanout).  Capacitance and drive values are derived from
the library's area/delay figures with standard scaling assumptions, so the
model is synthetic but *consistent*: comparing two mappings of the same
function under it is meaningful, absolute picoseconds are not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..networks.netlist import CellNetlist

__all__ = ["LinearLoadModel", "sta", "critical_path"]


@dataclass(frozen=True)
class LinearLoadModel:
    """Parameters of the synthetic linear delay model."""

    #: input capacitance per pin, scaled by cell area (fF per µm²-ish)
    cap_per_area: float = 4.0
    #: base input capacitance per pin
    cap_base: float = 0.6
    #: fraction of the nominal pin delay attributed to intrinsic delay
    intrinsic_fraction: float = 0.6
    #: wire capacitance added per fanout edge
    wire_cap: float = 0.3
    #: load at primary outputs
    output_cap: float = 1.0

    def pin_cap(self, cell) -> float:
        return self.cap_base + self.cap_per_area * cell.area / max(cell.num_pins, 1)

    def split(self, cell, pin: int) -> Tuple[float, float]:
        """(intrinsic delay, drive resistance) for a pin of a cell.

        Calibrated so the nominal pin delay is reproduced at a fanout-of-2
        reference load.
        """
        nominal = cell.pin_delays[pin]
        intrinsic = nominal * self.intrinsic_fraction
        # fixed fanout-of-2 reference load (independent of the cap knobs so
        # changing capacitances genuinely changes the analysis)
        ref_load = 2.0
        resistance = (nominal - intrinsic) / ref_load
        return intrinsic, resistance


def sta(netlist: CellNetlist, model: LinearLoadModel = LinearLoadModel()) -> List[float]:
    """Load-aware arrival times per net; index by net id."""
    n = len(netlist._drivers)
    # accumulate load per net
    load = [0.0] * n
    for net, d in enumerate(netlist._drivers):
        if d is None:
            continue
        cell, fis = d
        for f in fis:
            load[f] += model.pin_cap(cell) + model.wire_cap
    for po in netlist.pos:
        load[po] += model.output_cap

    arrival = [0.0] * n
    for net, d in enumerate(netlist._drivers):
        if d is None:
            continue
        cell, fis = d
        worst = 0.0
        for pin, f in enumerate(fis):
            intrinsic, res = model.split(cell, pin)
            worst = max(worst, arrival[f] + intrinsic + res * load[net])
        arrival[net] = worst
    return arrival


def critical_path(netlist: CellNetlist,
                  model: LinearLoadModel = LinearLoadModel()) -> List[int]:
    """Nets along the load-aware critical path, PO first."""
    arrival = sta(netlist, model)
    if not netlist.pos:
        return []
    end = max(netlist.pos, key=lambda p: arrival[p])
    path = [end]
    net = end
    while True:
        d = netlist._drivers[net]
        if d is None:
            break
        cell, fis = d
        best_f, best_a = None, -1.0
        for pin, f in enumerate(fis):
            if arrival[f] > best_a:
                best_f, best_a = f, arrival[f]
        if best_f is None:
            break
        path.append(best_f)
        net = best_f
    return path
