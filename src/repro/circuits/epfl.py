"""Registry of the 20 EPFL-analogue benchmark circuits.

``build(name, scale)`` constructs any suite member at one of three scales:

* ``tiny``  — unit-test sizes (seconds for the whole suite end to end);
* ``small`` — the default experiment scale used by the benchmark harness;
* ``medium`` — closer to the original EPFL widths, slower.

The names mirror the EPFL combinational benchmark suite: ten arithmetic
circuits and ten random/control circuits.  A fifth group of register-bearing
generators (:data:`SEQUENTIAL`) shares the same ``build``/``suite``
machinery but is kept out of :data:`ALL_BENCHMARKS` — the combinational
harnesses iterate that list and would trip the comb-only engine guards.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..networks.aig import Aig
from . import arithmetic as arith
from . import control as ctl
from . import sequential as seq

__all__ = ["ARITHMETIC", "CONTROL", "SEQUENTIAL", "ALL_BENCHMARKS",
           "build", "suite"]

# name -> scale -> kwargs
_SIZES: Dict[str, Dict[str, dict]] = {
    "adder":      {"tiny": {"width": 6},  "small": {"width": 24}, "medium": {"width": 64}},
    "bar":        {"tiny": {"width": 8},  "small": {"width": 32}, "medium": {"width": 64}},
    "div":        {"tiny": {"width": 4},  "small": {"width": 8},  "medium": {"width": 12}},
    "hyp":        {"tiny": {"width": 4},  "small": {"width": 8},  "medium": {"width": 12}},
    "log2":       {"tiny": {"width": 6},  "small": {"width": 16}, "medium": {"width": 32}},
    "max":        {"tiny": {"width": 4},  "small": {"width": 16}, "medium": {"width": 32}},
    "multiplier": {"tiny": {"width": 4},  "small": {"width": 8},  "medium": {"width": 12}},
    "sin":        {"tiny": {"width": 4},  "small": {"width": 8},  "medium": {"width": 12}},
    "sqrt":       {"tiny": {"width": 8},  "small": {"width": 16}, "medium": {"width": 24}},
    "square":     {"tiny": {"width": 5},  "small": {"width": 10}, "medium": {"width": 16}},
    "arbiter":    {"tiny": {"lines": 8},  "small": {"lines": 16}, "medium": {"lines": 32}},
    "cavlc":      {"tiny": {}, "small": {}, "medium": {}},
    "ctrl":       {"tiny": {}, "small": {}, "medium": {}},
    "dec":        {"tiny": {"bits": 5},   "small": {"bits": 7},  "medium": {"bits": 8}},
    "i2c":        {"tiny": {}, "small": {}, "medium": {}},
    "int2float":  {"tiny": {"width": 8, "exp_bits": 3, "man_bits": 4}, "small": {}, "medium": {}},
    "mem_ctrl":   {"tiny": {}, "small": {}, "medium": {}},
    "priority":   {"tiny": {"lines": 16}, "small": {"lines": 64}, "medium": {"lines": 128}},
    "router":     {"tiny": {}, "small": {}, "medium": {}},
    "voter":      {"tiny": {"inputs": 15}, "small": {"inputs": 49}, "medium": {"inputs": 101}},
    "counter":    {"tiny": {"width": 4},  "small": {"width": 16}, "medium": {"width": 48}},
    "shiftreg":   {"tiny": {"depth": 6},  "small": {"depth": 24}, "medium": {"depth": 96}},
    "lfsr":       {"tiny": {"width": 5},  "small": {"width": 16}, "medium": {"width": 48}},
    "pipeline":   {"tiny": {"width": 4, "stages": 2},
                   "small": {"width": 12, "stages": 3},
                   "medium": {"width": 32, "stages": 4}},
    "fsm":        {"tiny": {"pattern": "1101"},
                   "small": {"pattern": "11010011"},
                   "medium": {"pattern": "1101001110001011"}},
}

_BUILDERS: Dict[str, Callable[..., Aig]] = {
    "adder": arith.adder,
    "bar": arith.barrel_shifter,
    "div": arith.divider,
    "hyp": arith.hypotenuse,
    "log2": arith.log2_circuit,
    "max": arith.max_circuit,
    "multiplier": arith.multiplier,
    "sin": arith.sine,
    "sqrt": arith.square_root,
    "square": arith.square,
    "arbiter": ctl.round_robin_arbiter,
    "cavlc": ctl.cavlc,
    "ctrl": ctl.ctrl,
    "dec": ctl.decoder,
    "i2c": ctl.i2c,
    "int2float": ctl.int2float,
    "mem_ctrl": ctl.mem_ctrl,
    "priority": ctl.priority_circuit,
    "router": ctl.router,
    "voter": ctl.voter,
    "counter": seq.counter,
    "shiftreg": seq.shift_register,
    "lfsr": seq.lfsr,
    "pipeline": seq.pipelined_adder,
    "fsm": seq.sequence_detector,
}

ARITHMETIC: List[str] = [
    "adder", "bar", "div", "hyp", "log2", "max", "multiplier", "sin", "sqrt", "square",
]
CONTROL: List[str] = [
    "arbiter", "cavlc", "ctrl", "dec", "i2c", "int2float", "mem_ctrl",
    "priority", "router", "voter",
]
SEQUENTIAL: List[str] = ["counter", "shiftreg", "lfsr", "pipeline", "fsm"]
#: the combinational suite — sequential names stay separate on purpose
ALL_BENCHMARKS: List[str] = ARITHMETIC + CONTROL


def build(name: str, scale: str = "small") -> Aig:
    """Construct one benchmark circuit by name."""
    if name not in _BUILDERS:
        raise KeyError(f"unknown benchmark {name!r}; know {sorted(_BUILDERS)}")
    if scale not in ("tiny", "small", "medium"):
        raise ValueError("scale must be tiny/small/medium")
    return _BUILDERS[name](**_SIZES[name][scale])


def suite(scale: str = "small", names: List[str] = None) -> Dict[str, Aig]:
    """Build (a subset of) the whole suite; returns name -> AIG."""
    return {name: build(name, scale) for name in (names or ALL_BENCHMARKS)}
