"""Generated sequential benchmark families.

Register-bearing analogues of the combinational EPFL-style generators:
counters, shift registers, LFSRs, pipelined datapaths and FSM-style
sequence detectors.  Every builder returns an :class:`~repro.networks.aig.Aig`
whose registers are created through the ``create_ro``/``create_ri`` pairing,
so the circuits flow through the same batch, flow and verification layers
as the combinational suite — but exercise the sequential engines
(:mod:`repro.seq`) instead of the comb-only ones.
"""

from __future__ import annotations

from typing import List

from ..networks.aig import Aig
from .wordlevel import add_words

__all__ = [
    "counter",
    "shift_register",
    "lfsr",
    "pipelined_adder",
    "sequence_detector",
]


def counter(width: int = 8) -> Aig:
    """``width``-bit binary up-counter with enable.

    State increments by one each cycle ``en`` is high; the count bits are
    the POs.  The next-state logic is a ripple half-adder chain, so depth
    grows linearly in ``width`` — retiming and register sweep both have
    something to chew on.
    """
    ntk = Aig()
    en = ntk.create_pi("en")
    state = [ntk.create_ro(f"c{i}", init=0) for i in range(width)]
    carry = en
    nexts: List[int] = []
    for s in state:
        nexts.append(ntk.create_xor(s, carry))
        carry = ntk.create_and(s, carry)
    for i, nx in enumerate(nexts):
        ntk.create_po(nx, f"count{i}")
    for nx in nexts:
        ntk.create_ri(nx)
    return ntk


def shift_register(depth: int = 8, taps: int = 2) -> Aig:
    """Serial-in shift register of ``depth`` stages with XOR tap outputs.

    ``sout`` is the delayed serial input; ``taps`` additional POs XOR
    evenly spaced stages (parity probes that make the outputs depend on
    several registers at once).
    """
    ntk = Aig()
    din = ntk.create_pi("din")
    state = [ntk.create_ro(f"s{i}", init=0) for i in range(depth)]
    ntk.create_po(state[-1], "sout")
    step = max(1, depth // max(1, taps))
    for t in range(taps):
        lo, hi = (t * step) % depth, (t * step + step // 2 + 1) % depth
        ntk.create_po(ntk.create_xor(state[lo], state[hi]), f"tap{t}")
    ntk.create_ri(din)
    for s in state[:-1]:
        ntk.create_ri(s)
    return ntk


def lfsr(width: int = 8) -> Aig:
    """Fibonacci LFSR with enable; one register initialised to 1.

    Feedback XORs the last stage with a mid tap; ``init=1`` on stage 0
    keeps the register state out of the all-zero lock-up, giving the
    sequential simulator and BMC non-trivial reachable-state structure.
    """
    ntk = Aig()
    en = ntk.create_pi("en")
    state = [ntk.create_ro(f"l{i}", init=1 if i == 0 else 0)
             for i in range(width)]
    fb = ntk.create_xor(state[-1], state[max(0, width // 2 - 1)])
    if width > 2:
        fb = ntk.create_xor(fb, state[1])
    for i in range(width):
        ntk.create_po(state[i], f"q{i}")
    shifted = [fb] + state[:-1]
    for held, nx in zip(state, shifted):
        ntk.create_ri(ntk.create_mux(en, nx, held))
    return ntk


def pipelined_adder(width: int = 8, stages: int = 2) -> Aig:
    """Registered ripple-carry adder with a ``stages``-deep output pipeline.

    Operands are registered on the way in, added combinationally, and the
    ``width + 1`` sum bits ripple through ``stages - 1`` further register
    ranks — deep register chains with multi-fanout state, the shape BMC
    depth sweeps and register sweep get exercised on.
    """
    if stages < 1:
        raise ValueError("pipelined_adder needs stages >= 1")
    ntk = Aig()
    a = [ntk.create_pi(f"a{i}") for i in range(width)]
    b = [ntk.create_pi(f"b{i}") for i in range(width)]
    ra = [ntk.create_ro(f"ra{i}", init=0) for i in range(width)]
    rb = [ntk.create_ro(f"rb{i}", init=0) for i in range(width)]
    total = add_words(ntk, ra, rb)
    ranks = [total]
    for s in range(1, stages):
        ranks.append([ntk.create_ro(f"p{s}_{i}", init=0)
                      for i in range(len(total))])
    for i, bit in enumerate(ranks[-1]):
        ntk.create_po(bit, f"sum{i}")
    for ai in a:
        ntk.create_ri(ai)
    for bi in b:
        ntk.create_ri(bi)
    for prev in ranks[:-1]:
        for bit in prev:
            ntk.create_ri(bit)
    return ntk


def sequence_detector(pattern: str = "1101") -> Aig:
    """Moore-style FSM that raises ``match`` after seeing ``pattern``.

    Implemented as a history window over the serial input plus a
    registered match flag (the Moore output register), so the PO depends
    on the state only — the classic FSM shape for sequential sweep and
    induction tests.
    """
    if not pattern or set(pattern) - {"0", "1"}:
        raise ValueError(f"pattern must be a non-empty 0/1 string, got {pattern!r}")
    k = len(pattern)
    ntk = Aig()
    din = ntk.create_pi("din")
    hist = [ntk.create_ro(f"h{i}", init=0) for i in range(k)]
    flag = ntk.create_ro("match_r", init=0)
    hit = ntk.const1
    # hist[0] is the most recent bit; pattern[-1] is the most recent symbol
    for bit, sym in zip(hist, reversed(pattern)):
        want = bit if sym == "1" else bit ^ 1
        hit = ntk.create_and(hit, want)
    ntk.create_po(flag, "match")
    ntk.create_ri(din)
    for h in hist[:-1]:
        ntk.create_ri(h)
    ntk.create_ri(hit)
    return ntk
