"""Word-level datapath construction helpers.

Gate-level builders for the arithmetic blocks the EPFL-style benchmark
generators are composed of: ripple/carry adders, subtractors, array
multipliers, comparators, multiplexed shifters, priority encoders.  All
functions take literal vectors (LSB first) and build into any
:class:`~repro.networks.base.LogicNetwork`.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..networks.base import LogicNetwork, lit_not

__all__ = [
    "full_adder",
    "add_words",
    "sub_words",
    "negate_word",
    "multiply_words",
    "square_word",
    "less_than",
    "equal_words",
    "mux_word",
    "shift_left",
    "shift_right",
    "priority_encoder",
    "popcount",
    "constant_word",
]


def constant_word(ntk: LogicNetwork, value: int, width: int) -> List[int]:
    return [ntk.const1 if (value >> i) & 1 else ntk.const0 for i in range(width)]


def full_adder(ntk: LogicNetwork, a: int, b: int, cin: int) -> Tuple[int, int]:
    """Returns (sum, carry-out)."""
    return ntk.create_xor3(a, b, cin), ntk.create_maj(a, b, cin)


def add_words(ntk: LogicNetwork, a: Sequence[int], b: Sequence[int],
              cin: int = 0) -> List[int]:
    """Ripple-carry addition; result has ``len(a) + 1`` bits (carry last)."""
    if len(a) != len(b):
        raise ValueError("operand widths differ")
    out = []
    carry = cin
    for x, y in zip(a, b):
        s, carry = full_adder(ntk, x, y, carry)
        out.append(s)
    out.append(carry)
    return out


def negate_word(ntk: LogicNetwork, a: Sequence[int]) -> List[int]:
    """Two's-complement negation (same width, overflow wraps)."""
    inv = [lit_not(x) for x in a]
    one = constant_word(ntk, 1, len(a))
    return add_words(ntk, inv, one)[: len(a)]


def sub_words(ntk: LogicNetwork, a: Sequence[int], b: Sequence[int]) -> List[int]:
    """a - b; returns ``len(a)`` difference bits plus borrow-free flag last.

    The final element is the carry-out of ``a + ~b + 1`` (1 when ``a >= b``).
    """
    inv_b = [lit_not(x) for x in b]
    res = add_words(ntk, list(a), inv_b, cin=ntk.const1)
    return res


def multiply_words(ntk: LogicNetwork, a: Sequence[int], b: Sequence[int]) -> List[int]:
    """Array multiplier; returns ``len(a) + len(b)`` product bits."""
    wa, wb = len(a), len(b)
    acc: List[int] = [ntk.const0] * (wa + wb)
    for j, bj in enumerate(b):
        partial = [ntk.create_and(ai, bj) for ai in a]
        carry = ntk.const0
        for i, p in enumerate(partial):
            s, carry = full_adder(ntk, acc[i + j], p, carry)
            acc[i + j] = s
        # propagate the final carry
        pos = j + wa
        while carry != ntk.const0 and pos < wa + wb:
            s, carry = full_adder(ntk, acc[pos], carry, ntk.const0)
            acc[pos] = s
            pos += 1
    return acc


def square_word(ntk: LogicNetwork, a: Sequence[int]) -> List[int]:
    """Squarer (a * a) — ``2 * len(a)`` output bits."""
    return multiply_words(ntk, a, a)


def less_than(ntk: LogicNetwork, a: Sequence[int], b: Sequence[int]) -> int:
    """Unsigned ``a < b``."""
    res = sub_words(ntk, list(a), list(b))
    return lit_not(res[-1])  # borrow set when a < b


def equal_words(ntk: LogicNetwork, a: Sequence[int], b: Sequence[int]) -> int:
    bits = [ntk.create_xnor(x, y) for x, y in zip(a, b)]
    return ntk.create_nary_and(bits)


def mux_word(ntk: LogicNetwork, sel: int, hi: Sequence[int], lo: Sequence[int]) -> List[int]:
    """Per-bit 2:1 mux: ``sel ? hi : lo``."""
    return [ntk.create_mux(sel, h, l) for h, l in zip(hi, lo)]


def shift_left(ntk: LogicNetwork, data: Sequence[int], amount: Sequence[int]) -> List[int]:
    """Logical barrel shift left by the binary ``amount``."""
    word = list(data)
    for stage, s in enumerate(amount):
        shift = 1 << stage
        shifted = [ntk.const0] * min(shift, len(word)) + list(word[: len(word) - shift])
        shifted = shifted[: len(word)]
        word = mux_word(ntk, s, shifted, word)
    return word


def shift_right(ntk: LogicNetwork, data: Sequence[int], amount: Sequence[int]) -> List[int]:
    """Logical barrel shift right by the binary ``amount``."""
    word = list(data)
    for stage, s in enumerate(amount):
        shift = 1 << stage
        shifted = list(word[shift:]) + [ntk.const0] * min(shift, len(word))
        shifted = shifted[: len(word)]
        word = mux_word(ntk, s, shifted, word)
    return word


def priority_encoder(ntk: LogicNetwork, requests: Sequence[int]) -> Tuple[List[int], int]:
    """Highest-index-wins priority encoder.

    Returns (index bits, valid).  ``index`` has ``ceil(log2(len(requests)))``
    bits and encodes the highest asserted request line.
    """
    n = len(requests)
    width = max(1, (n - 1).bit_length())
    index = constant_word(ntk, 0, width)
    valid = ntk.const0
    for i, r in enumerate(requests):  # later (higher) requests override
        index = mux_word(ntk, r, constant_word(ntk, i, width), index)
        valid = ntk.create_or(valid, r)
    return index, valid


def popcount(ntk: LogicNetwork, bits: Sequence[int]) -> List[int]:
    """Population count via a full-adder compression tree."""
    columns: List[List[int]] = [list(bits)]
    while any(len(col) > 1 for col in columns):
        new_cols: List[List[int]] = [[] for _ in range(len(columns) + 1)]
        for w, col in enumerate(columns):
            col = list(col)
            while len(col) >= 3:
                a, b, c = col.pop(), col.pop(), col.pop()
                s, cy = full_adder(ntk, a, b, c)
                new_cols[w].append(s)
                new_cols[w + 1].append(cy)
            while len(col) >= 2:
                a, b = col.pop(), col.pop()
                s = ntk.create_xor(a, b)
                cy = ntk.create_and(a, b)
                new_cols[w].append(s)
                new_cols[w + 1].append(cy)
            new_cols[w].extend(col)
        while new_cols and not new_cols[-1]:
            new_cols.pop()
        columns = new_cols
    return [col[0] if col else ntk.const0 for col in columns]
