"""Benchmark circuit generators (EPFL combinational suite analogues)."""

from pathlib import Path

from .epfl import ALL_BENCHMARKS, ARITHMETIC, CONTROL, SEQUENTIAL, build, suite
from . import arithmetic, control, sequential, wordlevel

__all__ = [
    "ALL_BENCHMARKS",
    "ARITHMETIC",
    "CONTROL",
    "SEQUENTIAL",
    "build",
    "load",
    "suite",
    "arithmetic",
    "control",
    "sequential",
    "wordlevel",
]


def load(circuit, scale: str = "small"):
    """Resolve a circuit spec into a network.

    ``circuit`` is a benchmark name (see :data:`ALL_BENCHMARKS`), the path
    of an ASCII AIGER file (``.aag``), or an already-built network (returned
    unchanged).  This is the loader behind the CLI, ``repro.load`` and
    ``FlowRunner.run_many``.
    """
    from ..networks.base import LogicNetwork

    if isinstance(circuit, LogicNetwork):
        return circuit
    path = Path(circuit)
    if path.suffix == ".aag" and path.exists():
        from ..io import read_aag

        return read_aag(path.read_text())
    if str(circuit) in ALL_BENCHMARKS or str(circuit) in SEQUENTIAL:
        return build(str(circuit), scale)
    raise ValueError(
        f"unknown circuit {circuit!r} (not a benchmark name or .aag file)")
