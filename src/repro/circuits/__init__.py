"""Benchmark circuit generators (EPFL combinational suite analogues)."""

from .epfl import ALL_BENCHMARKS, ARITHMETIC, CONTROL, build, suite
from . import arithmetic, control, wordlevel

__all__ = [
    "ALL_BENCHMARKS",
    "ARITHMETIC",
    "CONTROL",
    "build",
    "suite",
    "arithmetic",
    "control",
    "wordlevel",
]
