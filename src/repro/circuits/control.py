"""Random-control benchmark generators (EPFL control-suite analogues).

The EPFL "random/control" circuits (arbiter, cavlc, ctrl, i2c, mem_ctrl,
router, ...) are control-dominated netlists.  Where the function is public
(decoder, priority encoder, int-to-float, voter, round-robin arbiter) we
implement it exactly; for the opaque controller blobs (cavlc, ctrl, i2c,
mem_ctrl, router) we generate *seeded multi-output factored SOP control
logic* of comparable interface size — the same unate, SOP-heavy structure
class, which is what matters for the mapping experiments (DESIGN.md §2).
"""

from __future__ import annotations

import random
from typing import List

from ..networks.aig import Aig
from ..networks.base import lit_not
from ..synthesis.factoring import build_from_cubes
from .wordlevel import (
    add_words,
    constant_word,
    equal_words,
    mux_word,
    popcount,
    priority_encoder,
    shift_right,
    sub_words,
)

__all__ = [
    "round_robin_arbiter",
    "decoder",
    "int2float",
    "priority_circuit",
    "voter",
    "random_control",
    "cavlc",
    "ctrl",
    "i2c",
    "mem_ctrl",
    "router",
]


def round_robin_arbiter(lines: int = 16) -> Aig:
    """Round-robin arbiter (EPFL ``arbiter`` family).

    Grants the highest-priority active request, where priority rotates
    according to a pointer input: requests at or above the pointer win over
    requests below it.
    """
    ntk = Aig()
    req = [ntk.create_pi(f"req{i}") for i in range(lines)]
    ptr = [ntk.create_pi(f"ptr{i}") for i in range((lines - 1).bit_length())]

    # mask[i] = (i >= pointer)
    masked: List[int] = []
    for i in range(lines):
        c = constant_word(ntk, i, len(ptr))
        ge = sub_words(ntk, c, ptr)[-1]  # carry of (i - ptr) is set iff i >= ptr
        masked.append(ntk.create_and(req[i], ge))

    # grant: lowest-index masked request if any, else lowest-index request
    def lowest_grant(lines_in: List[int]) -> List[int]:
        grants = []
        none_before = ntk.const1
        for r in lines_in:
            grants.append(ntk.create_and(r, none_before))
            none_before = ntk.create_and(none_before, lit_not(r))
        return grants

    g_hi = lowest_grant(masked)
    g_lo = lowest_grant(req)
    any_hi = ntk.create_nary_or(masked)
    for i in range(lines):
        ntk.create_po(ntk.create_mux(any_hi, g_hi[i], g_lo[i]), f"gnt{i}")
    return ntk


def decoder(bits: int = 8) -> Aig:
    """Full binary decoder, ``bits`` -> ``2**bits`` one-hot (EPFL ``dec``)."""
    ntk = Aig()
    sel = [ntk.create_pi(f"s{i}") for i in range(bits)]
    for code in range(1 << bits):
        lits = [sel[i] if (code >> i) & 1 else lit_not(sel[i]) for i in range(bits)]
        ntk.create_po(ntk.create_nary_and(lits), f"d{code}")
    return ntk


def int2float(width: int = 11, exp_bits: int = 4, man_bits: int = 5) -> Aig:
    """Unsigned integer to tiny floating point (EPFL ``int2float`` family)."""
    ntk = Aig()
    x = [ntk.create_pi(f"x{i}") for i in range(width)]
    index, valid = priority_encoder(ntk, x)
    # exponent = index (zero-extended), zero when input is zero
    for i in range(exp_bits):
        bit = index[i] if i < len(index) else ntk.const0
        ntk.create_po(ntk.create_and(bit, valid), f"e{i}")
    # mantissa = bits right below the leading one: shift right by (index - man_bits)
    # equivalently normalize left then take the top bits; use right shift of
    # x by max(index - man_bits, 0)
    shift_amt = sub_words(ntk, index, constant_word(ntk, man_bits, len(index)))
    nonneg = shift_amt[-1]
    amt = mux_word(ntk, nonneg, shift_amt[: len(index)], constant_word(ntk, 0, len(index)))
    shifted = shift_right(ntk, x, amt)
    for i in range(man_bits):
        ntk.create_po(ntk.create_and(shifted[i], valid), f"m{i}")
    ntk.create_po(valid, "valid")
    return ntk


def priority_circuit(lines: int = 64) -> Aig:
    """Priority encoder with valid flag (EPFL ``priority``)."""
    ntk = Aig()
    req = [ntk.create_pi(f"r{i}") for i in range(lines)]
    index, valid = priority_encoder(ntk, req)
    for i, b in enumerate(index):
        ntk.create_po(b, f"i{i}")
    ntk.create_po(valid, "v")
    return ntk


def voter(inputs: int = 49) -> Aig:
    """Majority voter over ``inputs`` lines (EPFL ``voter``, 1001 lines)."""
    if inputs % 2 == 0:
        raise ValueError("voter needs an odd number of inputs")
    ntk = Aig()
    xs = [ntk.create_pi(f"x{i}") for i in range(inputs)]
    count = popcount(ntk, xs)
    threshold = constant_word(ntk, inputs // 2 + 1, len(count))
    # majority when count >= threshold
    ge = sub_words(ntk, count, threshold)[-1]
    ntk.create_po(ge, "maj")
    return ntk


def random_control(name: str, num_inputs: int, num_outputs: int,
                   cubes_per_output: int, max_cube_lits: int, seed: int) -> Aig:
    """Seeded multi-output factored-SOP control logic.

    Stands in for the opaque EPFL controller netlists: each output is a
    factored cover of random cubes over a random input subset, which yields
    the unate, AND-OR-heavy structure typical of decoded control logic.
    """
    rng = random.Random(seed)
    ntk = Aig()
    pis = [ntk.create_pi(f"x{i}") for i in range(num_inputs)]
    for o in range(num_outputs):
        cubes = []
        for _ in range(cubes_per_output):
            n_lits = rng.randint(2, max_cube_lits)
            vars_ = rng.sample(range(num_inputs), n_lits)
            pos = neg = 0
            for v in vars_:
                if rng.random() < 0.5:
                    pos |= 1 << v
                else:
                    neg |= 1 << v
            cubes.append((pos, neg))
        out = build_from_cubes(ntk, cubes, pis)
        if rng.random() < 0.3:
            out = lit_not(out)
        ntk.create_po(out, f"y{o}")
    return ntk


def cavlc(seed: int = 101) -> Aig:
    """CAVLC coefficient-token control logic analogue."""
    return random_control("cavlc", num_inputs=10, num_outputs=11,
                          cubes_per_output=18, max_cube_lits=7, seed=seed)


def ctrl(seed: int = 102) -> Aig:
    """Small controller analogue."""
    return random_control("ctrl", num_inputs=7, num_outputs=25,
                          cubes_per_output=6, max_cube_lits=5, seed=seed)


def i2c(seed: int = 103) -> Aig:
    """I²C controller analogue."""
    return random_control("i2c", num_inputs=18, num_outputs=15,
                          cubes_per_output=14, max_cube_lits=8, seed=seed)


def mem_ctrl(seed: int = 104) -> Aig:
    """Memory-controller analogue (the largest control case)."""
    return random_control("mem_ctrl", num_inputs=26, num_outputs=22,
                          cubes_per_output=22, max_cube_lits=9, seed=seed)


def router(seed: int = 105) -> Aig:
    """Packet-router control analogue."""
    return random_control("router", num_inputs=14, num_outputs=10,
                          cubes_per_output=8, max_cube_lits=6, seed=seed)
