"""Arithmetic benchmark generators (EPFL arithmetic-suite analogues).

Each function builds an AIG of the same circuit *family* as the EPFL
benchmark of the same name, at a configurable (reduced) bit-width so the
pure-Python flow completes quickly.  See DESIGN.md §2 for the substitution
rationale: the structural-bias phenomena the paper studies come from the
circuit families (carry chains, multiplier arrays, shifters), not from the
specific 64/128-bit instances.
"""

from __future__ import annotations

from typing import List

from ..networks.aig import Aig
from ..networks.base import lit_not
from .wordlevel import (
    add_words,
    constant_word,
    full_adder,
    less_than,
    multiply_words,
    mux_word,
    priority_encoder,
    shift_left,
    shift_right,
    square_word,
    sub_words,
)

__all__ = [
    "adder",
    "barrel_shifter",
    "divider",
    "hypotenuse",
    "log2_circuit",
    "max_circuit",
    "multiplier",
    "sine",
    "square_root",
    "square",
]


def _pis(ntk: Aig, prefix: str, width: int) -> List[int]:
    return [ntk.create_pi(f"{prefix}{i}") for i in range(width)]


def adder(width: int = 24) -> Aig:
    """Ripple-carry adder (EPFL ``adder``, 128-bit in the original)."""
    ntk = Aig()
    a = _pis(ntk, "a", width)
    b = _pis(ntk, "b", width)
    out = add_words(ntk, a, b)
    for i, s in enumerate(out):
        ntk.create_po(s, f"s{i}")
    return ntk


def barrel_shifter(width: int = 32) -> Aig:
    """Logarithmic barrel shifter (EPFL ``bar``)."""
    ntk = Aig()
    data = _pis(ntk, "d", width)
    amount = _pis(ntk, "s", (width - 1).bit_length())
    out = shift_right(ntk, data, amount)
    for i, o in enumerate(out):
        ntk.create_po(o, f"q{i}")
    return ntk


def divider(width: int = 8) -> Aig:
    """Restoring array divider (EPFL ``div``): quotient and remainder."""
    ntk = Aig()
    num = _pis(ntk, "n", width)
    den = _pis(ntk, "d", width)
    rem: List[int] = [ntk.const0] * width
    quot: List[int] = [ntk.const0] * width
    for step in range(width - 1, -1, -1):
        # shift remainder left, bring down next numerator bit
        rem = [num[step]] + rem[:-1]
        diff = sub_words(ntk, rem, den)
        fits = diff[-1]  # 1 when rem >= den
        rem = mux_word(ntk, fits, diff[:width], rem)
        quot[step] = fits
    for i, q in enumerate(quot):
        ntk.create_po(q, f"q{i}")
    for i, r in enumerate(rem):
        ntk.create_po(r, f"r{i}")
    return ntk


def _isqrt(ntk: Aig, value: List[int]) -> List[int]:
    """Non-restoring integer square root of a word (helper)."""
    w_in = len(value)
    w_out = (w_in + 1) // 2
    root: List[int] = []
    rem: List[int] = [ntk.const0] * (w_in + 2)
    val = list(value)
    for step in range(w_out - 1, -1, -1):
        # bring down two bits
        hi = val[2 * step + 1] if 2 * step + 1 < w_in else ntk.const0
        lo = val[2 * step]
        rem = [lo, hi] + rem[:-2]
        # trial subtrahend: root bits so far, then 0, 1
        trial = [ntk.const1, ntk.const0] + [r for r in reversed(root)]
        trial += [ntk.const0] * (len(rem) - len(trial))
        diff = sub_words(ntk, rem, trial)
        fits = diff[-1]
        rem = mux_word(ntk, fits, diff[: len(rem)], rem)
        root.append(fits)  # MSB-first accumulation
    root.reverse()
    return root


def square_root(width: int = 16) -> Aig:
    """Non-restoring square root (EPFL ``sqrt``)."""
    ntk = Aig()
    x = _pis(ntk, "x", width)
    r = _isqrt(ntk, x)
    for i, b in enumerate(r):
        ntk.create_po(b, f"r{i}")
    return ntk


def hypotenuse(width: int = 8) -> Aig:
    """sqrt(a² + b²) datapath (EPFL ``hyp``)."""
    ntk = Aig()
    a = _pis(ntk, "a", width)
    b = _pis(ntk, "b", width)
    aa = square_word(ntk, a)
    bb = square_word(ntk, b)
    s = add_words(ntk, aa, bb)
    r = _isqrt(ntk, s)
    for i, bit in enumerate(r):
        ntk.create_po(bit, f"h{i}")
    return ntk


def log2_circuit(width: int = 16, frac_bits: int = 4) -> Aig:
    """Fixed-point log2: integer part via priority encoding, fraction via
    normalization shift (EPFL ``log2`` family)."""
    ntk = Aig()
    x = _pis(ntk, "x", width)
    index, valid = priority_encoder(ntk, x)
    # normalize x so the leading one moves to the top: shift left by
    # (width-1 - index)
    inv_index = sub_words(ntk, constant_word(ntk, width - 1, len(index)), index)[: len(index)]
    normalized = shift_left(ntk, x, inv_index)
    for i, b in enumerate(index):
        ntk.create_po(b, f"int{i}")
    # top fraction bits just below the leading one
    for i in range(frac_bits):
        pos = width - 2 - i
        bit = normalized[pos] if pos >= 0 else ntk.const0
        ntk.create_po(bit, f"frac{i}")
    ntk.create_po(valid, "valid")
    return ntk


def max_circuit(width: int = 16, ways: int = 4) -> Aig:
    """Maximum of ``ways`` unsigned words via a comparator tree (EPFL ``max``)."""
    ntk = Aig()
    words = [_pis(ntk, f"w{j}_", width) for j in range(ways)]
    current = words[0]
    for w in words[1:]:
        is_less = less_than(ntk, current, w)
        current = mux_word(ntk, is_less, w, current)
    for i, b in enumerate(current):
        ntk.create_po(b, f"m{i}")
    return ntk


def multiplier(width: int = 8) -> Aig:
    """Array multiplier (EPFL ``multiplier``)."""
    ntk = Aig()
    a = _pis(ntk, "a", width)
    b = _pis(ntk, "b", width)
    p = multiply_words(ntk, a, b)
    for i, bit in enumerate(p):
        ntk.create_po(bit, f"p{i}")
    return ntk


def sine(width: int = 8) -> Aig:
    """Polynomial sine approximation (EPFL ``sin`` family).

    Computes ``x - x³/6`` in fixed point: one squarer, one multiplier and a
    constant-multiply/subtract — the same mult-add cone structure as the
    original CORDIC-free sine netlist.
    """
    ntk = Aig()
    x = _pis(ntk, "x", width)
    xx = square_word(ntk, x)[:width]          # x² (truncated)
    xxx = multiply_words(ntk, xx, x)[:width]  # x³ (truncated)
    # divide by 6 ~ multiply by 43/256 (8-bit reciprocal) then truncate
    recip = constant_word(ntk, 43, width)
    scaled = multiply_words(ntk, xxx, recip)[width:2 * width]
    diff = sub_words(ntk, x, scaled)
    for i in range(width):
        ntk.create_po(diff[i], f"s{i}")
    return ntk


def square(width: int = 10) -> Aig:
    """Squarer (EPFL ``square``)."""
    ntk = Aig()
    a = _pis(ntk, "a", width)
    p = square_word(ntk, a)
    for i, bit in enumerate(p):
        ntk.create_po(bit, f"p{i}")
    return ntk
