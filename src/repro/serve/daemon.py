"""ServeDaemon — synthesis-as-a-service over the warm worker pool.

``repro serve`` turns the library into a long-lived service: an HTTP/JSON
job API (:mod:`repro.serve.http`) in front of a persistent supervised
worker pool (:mod:`repro.serve.pool`), fronted by a content-addressed
result cache (:mod:`repro.serve.cache`).  The request path:

1. ``POST /jobs`` carries a circuit source (registry name, inline AIGER,
   or builder invocation) plus a flow script.  The daemon builds the
   network, takes its **structural fingerprint**, canonicalizes the flow
   script, and derives the cache key.
2. A key already in the cache returns the stored result record without
   touching a worker (a **cache hit**); a key currently being computed
   attaches the new job to the in-flight one (**coalescing** — duplicate
   concurrent traffic costs one computation); anything else dispatches to
   the pool, which keeps per-worker :class:`~repro.flow.context.FlowContext`
   engines warm across requests and scales itself to zero when idle.
3. Completed ``ok`` records are cached in memory *and* appended durably to
   the JSONL result store, so a restarted daemon is warm.

Every route (the :data:`ROUTES` table) returns JSON; job progress is the
PR 7 :class:`~repro.batch.events.RunEvent` stream, readable per job as
NDJSON.  ``POST /shutdown`` drains in-flight jobs, stops accepting new
ones, flushes the store and exits cleanly.

Resource governance: ``max_queued`` bounds the pool backlog — a saturated
daemon sheds new computations with ``429`` + a ``Retry-After`` header
(cache hits and coalesced duplicates are still always served: they cost no
worker).  ``memory_limit`` caps each pool worker's memory (``oom``
outcomes, see :mod:`repro.serve.pool`).  ``GET /healthz`` answers 200 as
long as the event loop is alive (liveness); ``GET /readyz`` checks
acceptance, pool supervisor, queue headroom and store writability, and
answers 503 with the failing checks when the daemon should not receive
new traffic (readiness).
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..batch.runner import state_fingerprint
from ..batch.suite import SuiteEntry
from ..flow import FlowError, FlowScriptError, resolve_flow
from .cache import ResultCache, cache_key
from .http import HttpError, Request, Response, serve_connection
from .pool import ServePool

__all__ = ["ServeDaemon", "ROUTES", "TERMINAL_STATUSES"]

#: the daemon's HTTP surface — docs/serve.md documents every row
ROUTES = (
    "GET /",
    "GET /stats",
    "GET /healthz",
    "GET /readyz",
    "POST /jobs",
    "GET /jobs",
    "GET /jobs/{id}",
    "GET /jobs/{id}/events",
    "POST /shutdown",
)

#: job statuses that mean the job will never change again
TERMINAL_STATUSES = ("done", "error", "timeout", "crashed", "oom")

#: the longest a ``?wait=`` long-poll may hold a connection open
MAX_WAIT = 60.0


@dataclass
class _Job:
    """One submitted job — the daemon-side state machine.

    ``status`` walks ``queued`` → ``running`` → one of
    :data:`TERMINAL_STATUSES` (cache hits are born ``done``).  All
    mutation happens on the event loop; handlers read freely.
    """

    id: str
    name: str
    key: str
    fingerprint: str
    flow: str
    status: str = "queued"
    cached: bool = False                 # served from cache / coalesced
    coalesced: bool = False              # attached to an in-flight job
    record: Optional[dict] = None        # the result record, when terminal
    error: str = ""
    events: List[dict] = field(default_factory=list)
    created: float = field(default_factory=time.time)
    finished: float = 0.0
    done: asyncio.Event = field(default_factory=asyncio.Event)
    followers: List["_Job"] = field(default_factory=list)

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL_STATUSES

    def to_dict(self) -> dict:
        """The wire form of this job (``GET /jobs/{id}``)."""
        out = {
            "id": self.id,
            "name": self.name,
            "status": self.status,
            "cached": self.cached,
            "coalesced": self.coalesced,
            "cache_key": self.key,
            "fingerprint": self.fingerprint,
            "flow": self.flow,
            "created": round(self.created, 3),
            "events": len(self.events),
        }
        if self.record is not None:
            out["record"] = self.record
        if self.error:
            out["error"] = self.error
        if self.finished:
            out["finished"] = round(self.finished, 3)
        return out


class ServeDaemon:
    """The synthesis service: HTTP job API + warm pool + result cache.

    ``store`` (a path or :class:`~repro.batch.store.ResultStore`) persists
    cache entries — omit it for a memory-only daemon.  ``jobs`` bounds the
    worker pool; ``timeout`` is the default hard per-job limit;
    ``idle_timeout`` scales the pool to zero after that many idle seconds;
    ``events`` is an optional global sink (e.g.
    :func:`~repro.batch.events.event_sink`) receiving every job's run
    events.  ``port=0`` binds an ephemeral port, readable from
    :attr:`port` after :meth:`start`.

    ``max_queued`` is the admission-control bound: a submission that
    would need a worker while that many jobs are already queued is shed
    with ``429`` and ``Retry-After: retry_after`` (cache hits and
    coalesced duplicates are exempt — they cost no worker).
    ``memory_limit`` (bytes or ``"512M"``) caps each worker's memory;
    over-budget jobs resolve as ``oom``.

    Use as a context manager, or ``start()``/``stop()`` explicitly::

        with ServeDaemon(port=0, jobs=2, store="serve.jsonl") as daemon:
            client = ServeClient(port=daemon.port)
            record = client.run("adder", flow="b; rf; b", scale="tiny")
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 jobs: int = 2, store=None, timeout: Optional[float] = None,
                 idle_timeout: Optional[float] = None, n_patterns: int = 256,
                 seed: int = 1, events=None, max_queued: Optional[int] = None,
                 memory_limit=None, retry_after: float = 2.0):
        if max_queued is not None and max_queued < 0:
            raise ValueError(f"max_queued must be >= 0, got {max_queued}")
        if retry_after <= 0:
            raise ValueError(f"retry_after must be positive, got {retry_after}")
        self.host = host
        self.port = port
        self.cache = ResultCache(store)
        self.pool = ServePool(jobs, n_patterns=n_patterns, seed=seed,
                              timeout=timeout, idle_timeout=idle_timeout,
                              events=events, memory_limit=memory_limit)
        self.max_queued = max_queued
        self.retry_after = retry_after
        self.shed = 0                        # submissions rejected with 429
        self.draining = False
        self.started_at = time.time()
        self._jobs: Dict[str, _Job] = {}
        self._by_key: Dict[str, _Job] = {}    # in-flight primaries
        self._counter = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stopping: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    # -- life cycle ----------------------------------------------------------

    def start(self) -> "ServeDaemon":
        """Bind and serve on a background thread; returns once the socket
        is listening (so :attr:`port` is the real bound port)."""
        if self._thread is not None:
            raise RuntimeError("daemon already started")
        self._thread = threading.Thread(target=self._run, name="repro-serve",
                                        daemon=True)
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            self._thread.join(5)
            raise self._startup_error
        return self

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the daemon stops (``POST /shutdown`` or
        :meth:`stop`); returns whether it did."""
        if self._thread is None:
            return True
        self._thread.join(timeout)
        return not self._thread.is_alive()

    def stop(self, *, drain: bool = True) -> None:
        """Graceful programmatic shutdown: drain, flush, close.  Idempotent."""
        if self._thread is None or not self._thread.is_alive():
            self.pool.shutdown(drain=False)
            return
        loop = self._loop
        if loop is not None:
            try:
                loop.call_soon_threadsafe(
                    lambda: asyncio.ensure_future(self._shutdown(drain=drain)))
            except RuntimeError:
                pass                          # loop already closed
        self.wait(30)

    def __enter__(self) -> "ServeDaemon":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:          # surface bind errors to start()
            self._startup_error = exc
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stopping = asyncio.Event()
        server = await asyncio.start_server(self._on_connection,
                                            self.host, self.port)
        self.port = server.sockets[0].getsockname()[1]
        self._ready.set()
        async with server:
            await self._stopping.wait()

    async def _shutdown(self, *, drain: bool = True) -> None:
        """Drain the pool off-loop, flush, then release the server."""
        self.draining = True
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            None, lambda: self.pool.shutdown(drain=drain))
        for job in self._jobs.values():       # anything still non-terminal
            if not job.terminal:
                self._resolve(job, status="error",
                              error="daemon shut down before completion")
        self._stopping.set()

    # -- connection plumbing -------------------------------------------------

    async def _on_connection(self, reader, writer) -> None:
        await serve_connection(reader, writer, self._route)

    async def _route(self, request: Request) -> Response:
        method, path = request.method, request.path.rstrip("/") or "/"
        if path == "/":
            if method == "GET":
                return self._info()
        elif path == "/stats":
            if method == "GET":
                return Response(200, self.stats())
        elif path == "/healthz":
            if method == "GET":
                return Response(200, {"ok": True,
                                      "uptime": round(time.time()
                                                      - self.started_at, 3)})
        elif path == "/readyz":
            if method == "GET":
                ready = self.readiness()
                return Response(200 if ready["ready"] else 503, ready)
        elif path == "/jobs":
            if method == "POST":
                return await self._submit(request)
            if method == "GET":
                return self._list_jobs()
        elif path == "/shutdown":
            if method == "POST":
                return self._request_shutdown(request)
        elif path.startswith("/jobs/"):
            rest = path[len("/jobs/"):]
            job_id, _, tail = rest.partition("/")
            job = self._jobs.get(job_id)
            if job is None:
                raise HttpError(404, f"no such job {job_id!r}")
            if not tail and method == "GET":
                return await self._job_status(job, request)
            if tail == "events" and method == "GET":
                return await self._job_events(job, request)
            if tail:
                raise HttpError(404, f"no such endpoint {path!r}")
        else:
            raise HttpError(404, f"no such endpoint {path!r}")
        raise HttpError(405, f"{method} not allowed on {path}")

    # -- handlers ------------------------------------------------------------

    def _info(self) -> Response:
        from .. import __version__

        return Response(200, {
            "service": "repro-serve",
            "version": __version__,
            "routes": list(ROUTES),
            "store": str(self.cache.store.path) if self.cache.store else "",
        })

    def stats(self) -> dict:
        """The ``GET /stats`` payload: cache, job and pool health."""
        counts: Dict[str, int] = {}
        for job in self._jobs.values():
            counts[job.status] = counts.get(job.status, 0) + 1
        pool = self.pool.stats()
        return {
            "uptime": round(time.time() - self.started_at, 3),
            "draining": self.draining,
            "cache": self.cache.stats(),
            "jobs": {"total": len(self._jobs), **counts},
            "queue_depth": pool["queue_depth"],
            "max_queued": self.max_queued,
            "shed": self.shed,
            "pool": pool,
        }

    def readiness(self) -> dict:
        """The ``GET /readyz`` payload: per-check booleans + the verdict.

        Ready means: not draining, the pool supervisor is alive, the
        queue has headroom under ``max_queued``, and (when a store is
        configured) an append would succeed.  An external supervisor
        routes traffic away — or restarts the daemon — on 503.
        """
        pool = self.pool.stats()
        checks = {
            "accepting": not self.draining,
            "pool_supervisor": self.pool.alive,
            "queue_headroom": (self.max_queued is None
                               or pool["queue_depth"] < self.max_queued),
        }
        if self.cache.store is not None:
            checks["store_writable"] = self.cache.store.writable()
        return {
            "ready": all(checks.values()),
            "checks": checks,
            "queue_depth": pool["queue_depth"],
            "max_queued": self.max_queued,
        }

    def _list_jobs(self) -> Response:
        return Response(200, {"jobs": [j.to_dict() for j in
                                       self._jobs.values()]})

    async def _submit(self, request: Request) -> Response:
        if self.draining:
            raise HttpError(503, "daemon is draining (shutdown requested)")
        body = request.json()
        script = body.get("flow")
        if not script or not isinstance(script, str):
            raise HttpError(400, "submission needs a 'flow' script")
        try:
            flow = resolve_flow(script).to_script()
        except (FlowScriptError, FlowError) as exc:
            raise HttpError(400, f"bad flow script: {exc}")
        scale = body.get("scale", "small")
        loop = asyncio.get_running_loop()
        try:
            name, ntk = await loop.run_in_executor(
                None, _build_input, body, scale)
        except HttpError:
            raise
        except Exception as exc:
            raise HttpError(400, f"cannot build the submitted circuit: "
                                 f"{type(exc).__name__}: {exc}")
        fingerprint = await loop.run_in_executor(None, state_fingerprint, ntk)
        key = cache_key(fingerprint, flow)

        self._counter += 1
        job = _Job(id=f"j{self._counter:06d}", name=body.get("name") or name,
                   key=key, fingerprint=fingerprint, flow=flow)
        self._jobs[job.id] = job

        primary = self._by_key.get(key)
        if primary is not None and not primary.terminal:
            # duplicate of an in-flight computation: attach, don't recompute
            job.coalesced = True
            job.cached = True
            primary.followers.append(job)
            self.cache.note_hit()
            self._event(job, kind="claimed",
                        detail=f"coalesced onto in-flight job {primary.id}")
            return Response(202, job.to_dict())
        record = self.cache.get(key)
        if record is not None:
            self._event(job, kind="skipped", detail=f"cache hit {key}")
            self._resolve(job, status="done", record=record, cached=True)
            return Response(200, job.to_dict())

        # admission control — only computations that need a worker are
        # shed; the cache-hit and coalescing paths above always serve
        if self.max_queued is not None:
            depth = self.pool.stats()["queue_depth"]
            if depth >= self.max_queued:
                del self._jobs[job.id]
                self.shed += 1
                raise HttpError(
                    429,
                    f"saturated: {depth} job(s) queued >= max_queued "
                    f"{self.max_queued}; retry after "
                    f"{self.retry_after:g}s",
                    headers={"Retry-After": f"{self.retry_after:g}"})

        self._by_key[key] = job
        payload = {
            "index": self._counter, "name": job.name, "spec": ntk,
            "scale": scale, "flow": flow, "attempt": 1,
            "verify": bool(body.get("verify", False)), "checkpoint": False,
            "return_network": False, "pack_return": False,
        }
        if body.get("faults"):                # chaos hook (tests, drills)
            payload["faults"] = body["faults"]
        timeout = body.get("timeout")
        if timeout is not None:
            timeout = float(timeout)
        try:
            self.pool.submit(
                payload,
                timeout=timeout,
                on_event=lambda ev: self._threadsafe(
                    self._on_pool_event, job, ev),
                on_done=lambda out: self._threadsafe(
                    self._on_pool_done, job, out))
        except RuntimeError:                  # lost the race with shutdown
            del self._by_key[key]
            self._resolve(job, status="error", error="daemon is shutting down")
            raise HttpError(503, "daemon is shutting down")
        return Response(202, job.to_dict())

    async def _job_status(self, job: _Job, request: Request) -> Response:
        await self._maybe_wait(job, request)
        return Response(200, job.to_dict())

    async def _job_events(self, job: _Job, request: Request) -> Response:
        import json as _json

        await self._maybe_wait(job, request)
        lines = "".join(_json.dumps(e, sort_keys=True) + "\n"
                        for e in job.events)
        return Response(200, lines, content_type="application/x-ndjson")

    def _request_shutdown(self, request: Request) -> Response:
        body = request.json()
        drain = bool(body.get("drain", True))
        self.draining = True
        asyncio.ensure_future(self._shutdown(drain=drain))
        return Response(202, {"shutting_down": True, "drain": drain})

    # -- job state transitions (event-loop side) -----------------------------

    async def _maybe_wait(self, job: _Job, request: Request) -> None:
        """Honour ``?wait=SECS`` long-polls: wait for terminality, bounded."""
        wait = request.query.get("wait")
        if not wait or job.terminal:
            return
        try:
            seconds = min(float(wait), MAX_WAIT)
        except ValueError:
            raise HttpError(400, f"bad wait value {wait!r}")
        try:
            await asyncio.wait_for(job.done.wait(), seconds)
        except asyncio.TimeoutError:
            pass                              # report current state instead

    def _threadsafe(self, fn, *args) -> None:
        """Bounce a pool-thread callback onto the event loop."""
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        try:
            loop.call_soon_threadsafe(fn, *args)
        except RuntimeError:
            pass                              # loop shut down mid-callback

    def _event(self, job: _Job, *, kind: str, detail: str = "",
               event=None) -> None:
        if event is None:
            from ..batch.events import RunEvent

            event = RunEvent(kind=kind, circuit=job.name, index=0,
                             detail=detail, at=time.time())
        job.events.append(event.to_dict())

    def _on_pool_event(self, job: _Job, event) -> None:
        job.events.append(event.to_dict())
        if event.kind == "started" and job.status == "queued":
            job.status = "running"

    def _on_pool_done(self, job: _Job, outcome) -> None:
        record = outcome.to_record()
        status = "done" if outcome.status == "ok" else outcome.status
        if outcome.status == "ok":
            self.cache.put(job.key, record, fingerprint=job.fingerprint,
                           flow=job.flow)
        self._resolve(job, status=status, record=record, error=outcome.error)
        if self._by_key.get(job.key) is job:
            del self._by_key[job.key]

    def _resolve(self, job: _Job, *, status: str, record: Optional[dict] = None,
                 error: str = "", cached: bool = False) -> None:
        """Finalize a job (and every coalesced follower) in one step."""
        job.status = status
        job.record = record
        job.error = error
        job.cached = cached or job.cached
        job.finished = time.time()
        job.done.set()
        for follower in job.followers:
            if follower.terminal:
                continue
            self._event(follower, kind="finished",
                        detail=f"resolved by job {job.id}")
            self._resolve(follower, status=status, record=record,
                          error=error, cached=True)
        job.followers.clear()


def _build_input(body: dict, scale: str):
    """Materialize the submitted circuit source into ``(name, network)``.

    Three source forms, mirroring suite entries: a registry benchmark
    name (``circuit``), inline ASCII-AIGER text (``aag``), or a builder
    invocation (``builder`` + ``params``).  Runs on an executor thread —
    builds can be slow and must not block the event loop.
    """
    forms = [k for k in ("circuit", "aag", "builder") if body.get(k)]
    if len(forms) != 1:
        raise HttpError(400, "submission needs exactly one of 'circuit', "
                             "'aag' or 'builder'")
    if body.get("circuit"):
        from ..circuits import load

        name = str(body["circuit"])
        return name, load(name, scale)
    if body.get("aag"):
        from ..io import read_aag

        return "aag", read_aag(body["aag"])
    params = body.get("params") or {}
    if not isinstance(params, dict):
        raise HttpError(400, "'params' must be an object of builder kwargs")
    entry = SuiteEntry(name=str(body["builder"]), builder=str(body["builder"]),
                       params=tuple(sorted(params.items())))
    return entry.describe(), entry.build(scale)
