"""ServeClient — the stdlib client for a running serve daemon.

A thin, dependency-free wrapper over :mod:`http.client` speaking the
daemon's JSON job API (:data:`~repro.serve.daemon.ROUTES`).  One client
holds one keep-alive connection and transparently reconnects, so a tight
submit loop does not pay a TCP handshake per request.

The common path is one call::

    from repro.serve import ServeClient

    client = ServeClient(port=8787)
    record = client.run("adder", flow="b; rf; b", scale="tiny")

``repro submit`` is this module behind a CLI.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from typing import List, Optional

__all__ = ["ServeClient", "ServeError"]


class ServeError(Exception):
    """A request the daemon rejected, a failed job, or an unreachable
    daemon — the message carries the daemon's error text when there is
    one.  ``retry_after`` holds the daemon's ``Retry-After`` header (in
    seconds) when the rejection was a 429 shed."""

    def __init__(self, message: str, status: int = 0,
                 payload: Optional[dict] = None,
                 retry_after: Optional[float] = None):
        super().__init__(message)
        self.status = status
        self.payload = payload or {}
        self.retry_after = retry_after


class ServeClient:
    """A connection to one serve daemon.

    ``host``/``port`` name the daemon; ``timeout`` bounds every socket
    operation (long-polls add their wait on top).  Safe to use from one
    thread at a time; give each thread its own client.

    A saturated daemon sheds submissions with ``429`` + ``Retry-After``;
    :meth:`submit` honors that for up to ``retries`` re-submissions,
    sleeping at least the advertised ``Retry-After`` with bounded
    jittered exponential backoff on top (the same
    :func:`~repro.batch.runner.jittered_backoff` the batch runner uses,
    so a burst of shed clients does not re-arrive in lockstep).
    ``retries=0`` surfaces the 429 immediately.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8787, *,
                 timeout: float = 30.0, retries: int = 4,
                 backoff: float = 0.5):
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if backoff <= 0:
            raise ValueError(f"backoff must be positive, got {backoff}")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self._conn: Optional[http.client.HTTPConnection] = None

    # -- transport -----------------------------------------------------------

    def _request_raw(self, method: str, path: str,
                     body: Optional[dict] = None, *,
                     timeout: Optional[float] = None):
        payload = json.dumps(body).encode() if body is not None else None
        headers = {"Content-Type": "application/json"} if payload else {}
        last: Optional[Exception] = None
        for _attempt in range(2):             # one transparent reconnect
            conn = self._connect(timeout)
            try:
                conn.request(method, path, body=payload, headers=headers)
                resp = conn.getresponse()
                raw = resp.read()
                break
            except (http.client.HTTPException, ConnectionError,
                    socket.timeout, OSError) as exc:
                self.close()
                last = exc
        else:
            raise ServeError(f"daemon at {self.host}:{self.port} "
                             f"unreachable: {last}")
        if resp.status >= 400:
            try:
                data = json.loads(raw) if raw else {}
            except json.JSONDecodeError:
                data = {}
            message = data.get("error") or raw.decode(errors="replace")
            retry_after = None
            header = resp.getheader("Retry-After")
            if header is not None:
                try:
                    retry_after = float(header)
                except ValueError:
                    pass                      # HTTP-date form: ignore
            raise ServeError(f"{method} {path} -> {resp.status}: {message}",
                             status=resp.status,
                             payload=data if isinstance(data, dict) else {},
                             retry_after=retry_after)
        return resp.status, raw

    def _request(self, method: str, path: str,
                 body: Optional[dict] = None, *,
                 timeout: Optional[float] = None) -> dict:
        _status, raw = self._request_raw(method, path, body, timeout=timeout)
        try:
            return json.loads(raw) if raw else {}
        except json.JSONDecodeError as exc:
            raise ServeError(f"{method} {path}: daemon sent a non-JSON "
                             f"body: {exc}")

    def _connect(self, timeout: Optional[float]) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=timeout or self.timeout)
        elif timeout is not None and self._conn.sock is not None:
            self._conn.sock.settimeout(timeout)
        return self._conn

    def close(self) -> None:
        """Drop the keep-alive connection (reopened on next use)."""
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:
                pass
            self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- the job API ---------------------------------------------------------

    def info(self) -> dict:
        """``GET /`` — service name, version and route table."""
        return self._request("GET", "/")

    def stats(self) -> dict:
        """``GET /stats`` — cache hit/miss counters, job counts, pool
        health."""
        return self._request("GET", "/stats")

    def healthz(self) -> dict:
        """``GET /healthz`` — liveness: 200 while the daemon's event loop
        answers at all."""
        return self._request("GET", "/healthz")

    def readyz(self) -> dict:
        """``GET /readyz`` — readiness: the per-check payload, with
        ``ready`` False (rather than an exception) when the daemon
        answered 503-not-ready."""
        try:
            return self._request("GET", "/readyz")
        except ServeError as exc:
            if exc.status == 503 and "ready" in exc.payload:
                return exc.payload
            raise

    def submit(self, circuit: str = "", *, flow: str, scale: str = "small",
               aag: str = "", builder: str = "", params: Optional[dict] = None,
               name: str = "", verify: bool = False,
               timeout: Optional[float] = None,
               faults: Optional[list] = None) -> dict:
        """``POST /jobs`` — submit one work unit, return the job summary.

        Give exactly one circuit source: a registry ``circuit`` name,
        inline ASCII-AIGER ``aag`` text, or a ``builder`` name (plus
        ``params``).  ``flow`` is any flow script/name the daemon's
        :func:`~repro.flow.resolve_flow` accepts; ``timeout`` is this
        job's hard wall-time limit.  A cache hit comes back already
        ``done`` with the stored record.
        """
        body: dict = {"flow": flow, "scale": scale}
        if circuit:
            body["circuit"] = circuit
        if aag:
            body["aag"] = aag
        if builder:
            body["builder"] = builder
            if params:
                body["params"] = params
        if name:
            body["name"] = name
        if verify:
            body["verify"] = True
        if timeout is not None:
            body["timeout"] = timeout
        if faults:
            body["faults"] = faults
        attempt = 0
        while True:
            try:
                return self._request("POST", "/jobs", body)
            except ServeError as exc:
                if exc.status != 429 or attempt >= self.retries:
                    raise
                attempt += 1
                from ..batch.runner import jittered_backoff

                delay = max(exc.retry_after or 0.0,
                            jittered_backoff(self.backoff, attempt, cap=30.0))
                time.sleep(delay)

    def status(self, job_id: str, *, wait: Optional[float] = None) -> dict:
        """``GET /jobs/{id}`` — the job's current state; ``wait`` long-polls
        up to that many seconds for it to finish first."""
        path = f"/jobs/{job_id}"
        if wait:
            path += f"?wait={wait:g}"
            return self._request("GET", path, timeout=self.timeout + wait)
        return self._request("GET", path)

    def wait(self, job_id: str, timeout: float = 300.0) -> dict:
        """Long-poll until the job is terminal; :class:`ServeError` if it
        is still running after ``timeout`` seconds."""
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                job = self.status(job_id)
                raise ServeError(f"job {job_id} still "
                                 f"{job.get('status')!r} after {timeout:g}s",
                                 payload=job)
            job = self.status(job_id, wait=min(remaining, 30.0))
            if job.get("status") in ("done", "error", "timeout", "crashed",
                                     "oom"):
                return job

    def result(self, job_id: str, timeout: float = 300.0) -> dict:
        """The finished job's result record; :class:`ServeError` if the
        job did not end ``done``."""
        job = self.wait(job_id, timeout)
        if job.get("status") != "done":
            raise ServeError(
                f"job {job_id} ended {job.get('status')!r}: "
                f"{job.get('error') or job.get('record', {}).get('error', '')}",
                payload=job)
        return job["record"]

    def run(self, circuit: str = "", *, flow: str, scale: str = "small",
            timeout: float = 300.0, **kwargs) -> dict:
        """Submit and wait in one call, returning the result record."""
        job = self.submit(circuit, flow=flow, scale=scale, **kwargs)
        if job.get("status") == "done" and "record" in job:
            return job["record"]              # cache hit — already finished
        return self.result(job["id"], timeout)

    def events(self, job_id: str, *, wait: Optional[float] = None) -> List[dict]:
        """``GET /jobs/{id}/events`` — the job's run-event stream as a
        list of dicts (``wait`` long-polls for terminality first)."""
        path = f"/jobs/{job_id}/events"
        extra = 0.0
        if wait:
            path += f"?wait={wait:g}"
            extra = wait
        _status, raw = self._request_raw("GET", path,
                                         timeout=self.timeout + extra)
        text = raw.decode(errors="replace")
        return [json.loads(line) for line in text.splitlines() if line.strip()]

    def jobs(self) -> List[dict]:
        """``GET /jobs`` — every job the daemon knows about."""
        return self._request("GET", "/jobs").get("jobs", [])

    def shutdown(self, *, drain: bool = True) -> dict:
        """``POST /shutdown`` — ask the daemon to drain and exit."""
        try:
            return self._request("POST", "/shutdown", {"drain": drain})
        finally:
            self.close()
