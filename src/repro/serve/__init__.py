"""Synthesis as a service: a daemon, a warm pool, a content-addressed cache.

``repro serve`` runs the library as a long-lived HTTP/JSON service so the
cost of process spawn, engine warm-up and — above all — *recomputation*
is paid once, not per invocation:

* :mod:`~repro.serve.daemon` — :class:`ServeDaemon`: the asyncio HTTP job
  API (``POST /jobs``, ``GET /jobs/{id}``, ``GET /jobs/{id}/events``,
  ``GET /stats``, ``GET /healthz``, ``GET /readyz``, ``POST /shutdown``),
  with admission control (``--max-queued`` → 429 + ``Retry-After``) and
  per-worker memory budgets (``--memory-limit``);
* :mod:`~repro.serve.pool` — :class:`ServePool`: a persistent supervised
  worker pool (the PR 7 kill-never-join machinery, kept warm across
  requests, scaled to zero after ``--idle-timeout``);
* :mod:`~repro.serve.cache` — :class:`ResultCache` keyed by
  :func:`cache_key` (structural fingerprint of the input ×
  canonical flow script), persisted as ``kind: "cache"`` lines in the
  batch layer's JSONL :class:`~repro.batch.store.ResultStore` so a
  restarted daemon is warm;
* :mod:`~repro.serve.http` — the minimal stdlib HTTP/1.1 layer;
* :mod:`~repro.serve.client` — :class:`ServeClient` (and the
  ``repro submit`` CLI).

Quickstart — daemon in one terminal, client anywhere::

    $ repro serve --port 8787 --jobs 4 --store serve.jsonl

    from repro.serve import ServeClient
    client = ServeClient(port=8787)
    record = client.run("adder", flow="compress2rs", scale="small")

See ``docs/serve.md`` for the full API, the cache-key definition and the
failure-mode matrix.
"""

from .cache import ResultCache, cache_key
from .client import ServeClient, ServeError
from .daemon import ROUTES, ServeDaemon
from .http import HttpError, Request, Response
from .pool import ServePool

__all__ = [
    "ServeDaemon",
    "ServeClient",
    "ServeError",
    "ServePool",
    "ResultCache",
    "cache_key",
    "ROUTES",
    "Request",
    "Response",
    "HttpError",
]
