"""A minimal HTTP/1.1 JSON layer over ``asyncio`` streams.

The serve daemon speaks plain HTTP/1.1 with JSON bodies — enough for any
stock client (``curl``, ``http.client``, a browser fetch) — without adding
a web-framework dependency: this module implements exactly the subset the
job API needs.

* :func:`read_request` parses one request (request line, headers,
  ``Content-Length``-framed body) off a stream reader;
* :class:`Response` carries status + JSON (or raw text) payload;
* :func:`serve_connection` runs the keep-alive loop for one client
  connection, mapping exceptions from the handler into ``500`` responses
  so a bad request can never take the daemon down.

Deliberately **not** implemented: chunked request bodies, multipart,
compression, TLS.  The daemon is an internal service fronted by trusted
clients; anything fancier belongs behind a reverse proxy.
"""

from __future__ import annotations

import asyncio
import json
import traceback
from dataclasses import dataclass, field
from typing import Awaitable, Callable, Dict, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

__all__ = ["Request", "Response", "HttpError", "read_request",
           "write_response", "serve_connection"]

#: request framing limits — a trusted-client service still should not be
#: taken out by one runaway line
MAX_LINE = 64 * 1024
MAX_HEADERS = 100
MAX_BODY = 64 * 1024 * 1024

_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout", 409: "Conflict",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
}


class HttpError(Exception):
    """An error with a designated HTTP status — handlers raise these to
    produce clean JSON error responses (anything else becomes a 500).
    ``headers`` ride along onto the response (the admission controller
    uses this for ``Retry-After`` on 429s)."""

    def __init__(self, status: int, message: str,
                 headers: Optional[Dict[str, str]] = None):
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = dict(headers or {})


@dataclass
class Request:
    """One parsed HTTP request: method, split path, query, headers, body."""

    method: str
    path: str                                  # path without the query string
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> dict:
        """The request body parsed as a JSON object (``{}`` when empty)."""
        if not self.body:
            return {}
        try:
            data = json.loads(self.body)
        except json.JSONDecodeError as exc:
            raise HttpError(400, f"request body is not valid JSON: {exc}")
        if not isinstance(data, dict):
            raise HttpError(400, "request body must be a JSON object")
        return data

    @property
    def keep_alive(self) -> bool:
        """Whether the client asked to reuse the connection (HTTP/1.1
        default unless ``Connection: close``)."""
        return self.headers.get("connection", "").lower() != "close"


@dataclass
class Response:
    """One response: a status plus a JSON-serializable payload.

    ``data`` may be a dict/list (sent as ``application/json``) or a
    ``str`` (sent as ``text/plain`` — the NDJSON event stream uses this).
    ``headers`` adds extra response headers (e.g. ``Retry-After``) on top
    of the framing ones.
    """

    status: int = 200
    data: object = None
    content_type: str = ""
    headers: Dict[str, str] = field(default_factory=dict)

    def encode(self) -> Tuple[bytes, str]:
        if isinstance(self.data, str):
            return self.data.encode(), self.content_type or "text/plain; charset=utf-8"
        body = json.dumps(self.data if self.data is not None else {},
                          sort_keys=True)
        return (body + "\n").encode(), self.content_type or "application/json"


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request off ``reader``; ``None`` on a cleanly closed
    connection, :class:`HttpError` on a malformed one."""
    try:
        line = await reader.readline()
    except (ConnectionError, asyncio.IncompleteReadError):
        return None
    if not line:
        return None
    if len(line) > MAX_LINE:
        raise HttpError(400, "request line too long")
    try:
        method, target, _version = line.decode("latin-1").split(None, 2)
    except ValueError:
        raise HttpError(400, f"malformed request line: {line!r}")
    parts = urlsplit(target)
    headers: Dict[str, str] = {}
    for _ in range(MAX_HEADERS):
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        if len(line) > MAX_LINE:
            raise HttpError(400, "header line too long")
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    else:
        raise HttpError(400, "too many headers")
    length = int(headers.get("content-length", "0") or "0")
    if length > MAX_BODY:
        raise HttpError(413, f"request body exceeds {MAX_BODY} bytes")
    body = await reader.readexactly(length) if length else b""
    return Request(method=method.upper(), path=parts.path,
                   query=dict(parse_qsl(parts.query)), headers=headers,
                   body=body)


async def write_response(writer: asyncio.StreamWriter, response: Response,
                         *, keep_alive: bool = True) -> None:
    """Serialize one response (with framing headers) onto ``writer``."""
    body, ctype = response.encode()
    reason = _REASONS.get(response.status, "Unknown")
    extra = "".join(f"{name}: {value}\r\n"
                    for name, value in response.headers.items())
    head = (f"HTTP/1.1 {response.status} {reason}\r\n"
            f"Content-Type: {ctype}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"{extra}"
            f"\r\n")
    writer.write(head.encode() + body)
    await writer.drain()


async def serve_connection(reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter,
                           handler: Callable[[Request], Awaitable[Response]],
                           ) -> None:
    """The per-connection keep-alive loop: read, dispatch, respond.

    A handler raising :class:`HttpError` produces its status; any other
    exception produces a 500 carrying the traceback (trusted clients —
    hiding the trace only slows debugging down).  The connection closes on
    ``Connection: close``, a framing error, or EOF.
    """
    try:
        while True:
            try:
                request = await read_request(reader)
            except HttpError as exc:
                await write_response(
                    writer, Response(exc.status, {"error": exc.message}),
                    keep_alive=False)
                break
            if request is None:
                break
            try:
                response = await handler(request)
            except HttpError as exc:
                response = Response(exc.status, {"error": exc.message},
                                    headers=exc.headers)
            except Exception as exc:
                response = Response(500, {
                    "error": f"{type(exc).__name__}: {exc}",
                    "traceback": traceback.format_exc(),
                })
            keep = request.keep_alive
            await write_response(writer, response, keep_alive=keep)
            if not keep:
                break
    except (ConnectionError, asyncio.IncompleteReadError):
        pass                                  # client went away mid-exchange
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
