"""ServePool — the daemon's persistent supervised worker pool.

The batch layer's pool (PR 7) lives exactly as long as one
``BatchRunner.run`` call; a daemon needs the opposite: workers that stay
warm *across* requests, scale **up on demand and down to zero when idle**,
and execute one job at a time with per-job hard timeouts.  This module is
that pool, built on the same worker primitives
(:func:`~repro.batch.runner.spawn_pool_worker` /
:func:`~repro.batch.runner.kill_pool_worker`, the
``_worker_main``/``_execute_flow_job`` loop and its payload shape), so a
job runs byte-for-byte the way a batch circuit does — same warm
per-worker :class:`~repro.flow.context.FlowContext`, same failure
isolation, same SIGKILL path for hung workers.

Life cycle guarantees:

* workers spawn lazily (submission time), up to ``jobs`` of them — an
  idle daemon that has reaped its pool holds **zero** worker processes;
* a job exceeding its hard ``timeout`` gets its worker SIGKILLed (never
  joined first) and a ``timeout`` outcome; the pool shrinks and respawns
  on demand;
* a worker dying mid-job (crash, OOM-kill) costs exactly that job a
  ``crashed`` outcome — queued jobs are unaffected;
* with a ``memory_limit``, workers run under ``RLIMIT_AS`` and the
  supervisor RSS-polls them — a job over budget becomes exactly one
  ``oom`` outcome (a MemoryError in the worker, or a kill from the poll);
* after ``idle_timeout`` seconds with nothing queued or running, every
  worker is reaped (``scale-to-zero``); the next submission respawns;
* completion/progress callbacks are invoked on the supervisor thread and
  may never kill it — exceptions are caught and warned about, exactly
  like batch event sinks.
"""

from __future__ import annotations

import os
import threading
import time
import warnings
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional

from ..batch.events import RunEvent
from ..batch.runner import (
    CircuitOutcome,
    _PoolWorker,
    _rss_bytes,
    _MEM_POLL,
    kill_pool_worker,
    parse_memory_limit,
    spawn_pool_worker,
)

__all__ = ["ServePool"]


@dataclass
class _Job:
    """One queued/in-flight pool job: the worker payload plus its hooks."""

    payload: dict
    on_event: Optional[Callable] = None      # called with RunEvent
    on_done: Optional[Callable] = None       # called with CircuitOutcome
    timeout: Optional[float] = None          # hard wall-clock limit
    queued_at: float = field(default_factory=time.monotonic)


class ServePool:
    """A persistent, scale-to-zero pool executing flow jobs one at a time.

    ``submit`` enqueues a worker payload (the
    :meth:`~repro.batch.runner.BatchRunner` job shape: name/spec/scale/
    flow/…); a supervisor thread dispatches to idle workers, spawning up
    to ``jobs`` of them on demand.  ``timeout`` is the default hard
    per-job limit (overridable per submission); ``idle_timeout`` reaps
    the whole pool after that many idle seconds.  ``events`` is an
    optional global sink additionally receiving every job's
    :class:`~repro.batch.events.RunEvent` transitions.
    """

    def __init__(self, jobs: int = 2, *, n_patterns: int = 256, seed: int = 1,
                 timeout: Optional[float] = None,
                 idle_timeout: Optional[float] = None,
                 events: Optional[Callable] = None,
                 memory_limit=None):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        if idle_timeout is not None and idle_timeout < 0:
            raise ValueError(f"idle_timeout must be >= 0, got {idle_timeout}")
        self.max_workers = jobs
        self.n_patterns = n_patterns
        self.seed = seed
        self.timeout = timeout
        self.idle_timeout = idle_timeout
        self.events = events
        self.memory_limit = parse_memory_limit(memory_limit)
        self._queue: Deque[_Job] = deque()
        self._workers: List[_PoolWorker] = []   # supervisor thread only
        self._lock = threading.Lock()
        self._idle = threading.Event()
        self._idle.set()
        self._stop = False
        self._idle_since = time.monotonic()
        self._stats: Dict[str, int] = {
            "dispatched": 0, "completed": 0, "failed": 0, "crashed": 0,
            "timeouts": 0, "ooms": 0, "spawned": 0, "reaped": 0,
        }
        self._wake_r, self._wake_w = os.pipe()
        os.set_blocking(self._wake_w, False)
        self._wake_closed = False
        self._thread = threading.Thread(target=self._supervise,
                                        name="serve-pool", daemon=True)
        self._thread.start()

    # -- public API ----------------------------------------------------------

    def submit(self, payload: dict, *, on_event: Optional[Callable] = None,
               on_done: Optional[Callable] = None,
               timeout: Optional[float] = None) -> None:
        """Enqueue one job; hooks fire on the supervisor thread.

        ``on_event`` receives ``started``/``finished``/``timeout``/
        ``crashed`` :class:`RunEvent` transitions for this job;
        ``on_done`` receives the final
        :class:`~repro.batch.runner.CircuitOutcome`.  ``timeout``
        overrides the pool default for this job only.
        """
        job = _Job(payload=payload, on_event=on_event, on_done=on_done,
                   timeout=timeout if timeout is not None else self.timeout)
        with self._lock:
            if self._stop:
                raise RuntimeError("pool is shut down")
            self._queue.append(job)
            self._idle.clear()
        self._wake()

    def stats(self) -> dict:
        """Counters plus live pool state (worker/busy/queue depth)."""
        with self._lock:
            out = dict(self._stats)
            out["workers"] = len(self._workers)
            out["busy"] = sum(1 for w in self._workers
                              if w.payload is not None)
            out["queue_depth"] = len(self._queue)
            out["max_workers"] = self.max_workers
        return out

    @property
    def alive(self) -> bool:
        """Whether the supervisor thread is up and accepting work — the
        ``/readyz`` pool check."""
        return self._thread.is_alive() and not self._stop

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until the queue is empty and no job is in flight (or
        ``timeout`` seconds elapsed); returns whether the pool drained."""
        return self._idle.wait(timeout)

    def shutdown(self, *, drain: bool = True,
                 timeout: Optional[float] = None) -> None:
        """Stop the pool: optionally drain in-flight work first, then kill
        every worker and join the supervisor.  Idempotent."""
        if drain:
            self.drain(timeout)
        with self._lock:
            self._stop = True
        self._wake()
        self._thread.join(10)

    # -- supervisor internals ------------------------------------------------

    def _wake(self) -> None:
        # check-and-write under the lock: once the supervisor closed the
        # pipe the fd number may belong to an unrelated open file.  The
        # write fd is non-blocking, so holding the lock cannot stall.
        with self._lock:
            if self._wake_closed:
                return
            try:
                os.write(self._wake_w, b"x")
            except OSError:
                pass

    def _emit(self, job: _Job, kind: str, *, worker: int = 0,
              outcome: Optional[CircuitOutcome] = None) -> None:
        """One event to the job's hook and the global sink; never raises."""
        payload = job.payload
        if outcome is not None:
            event = RunEvent(kind=kind, circuit=outcome.name,
                             index=outcome.index, attempt=outcome.attempts,
                             status=outcome.status, seconds=outcome.seconds,
                             worker=outcome.worker, at=time.time())
        else:
            event = RunEvent(kind=kind, circuit=payload["name"],
                             index=payload["index"],
                             attempt=payload.get("attempt", 1),
                             worker=worker, at=time.time())
        for sink in (job.on_event, self.events):
            if sink is None:
                continue
            try:
                sink(event)
            except Exception as exc:
                warnings.warn(f"serve pool event hook failed on {kind!r}: {exc}")

    def _finish(self, job: _Job, outcome: CircuitOutcome, kind: str) -> None:
        with self._lock:
            self._stats["completed"] += 1
            if outcome.status != "ok":
                self._stats["failed"] += 1
            if outcome.status == "oom":
                self._stats["ooms"] += 1
        self._emit(job, kind, outcome=outcome)
        if job.on_done is not None:
            try:
                job.on_done(outcome)
            except Exception as exc:
                warnings.warn(f"serve pool completion hook failed: {exc}")

    def _drop_worker(self, worker: _PoolWorker) -> None:
        kill_pool_worker(worker)
        with self._lock:
            self._workers.remove(worker)

    def _dispatch(self) -> None:
        """Hand queued jobs to idle workers, spawning up to the cap."""
        while True:
            with self._lock:
                if not self._queue:
                    return
                idle = [w for w in self._workers if w.payload is None]
                can_spawn = len(self._workers) < self.max_workers
                if not idle and not can_spawn:
                    return
                job = self._queue.popleft()
            if idle:
                worker = idle[0]
            else:
                worker = spawn_pool_worker(self.n_patterns, self.seed,
                                           self.memory_limit)
                with self._lock:
                    self._workers.append(worker)
                    self._stats["spawned"] += 1
            try:
                worker.conn.send(job.payload)
            except (BrokenPipeError, OSError):
                # worker died while idle: drop it and retry the job
                self._drop_worker(worker)
                with self._lock:
                    self._queue.appendleft(job)
                continue
            worker.payload = job
            worker.started = time.monotonic()
            with self._lock:
                self._stats["dispatched"] += 1
            self._emit(job, "started", worker=worker.proc.pid or 0)

    def _collect(self, ready) -> None:
        """Pull outcomes (or detect deaths) off ready worker pipes."""
        with self._lock:
            by_conn = {w.conn: w for w in self._workers}
        for conn in ready:
            worker = by_conn.get(conn)
            if worker is None or worker.payload is None:
                continue
            job: _Job = worker.payload
            started = worker.started
            try:
                outcome = conn.recv()
            except (EOFError, OSError):
                pid = worker.proc.pid
                worker.payload = None
                self._drop_worker(worker)
                with self._lock:
                    self._stats["crashed"] += 1
                outcome = CircuitOutcome(
                    name=job.payload["name"], index=job.payload["index"],
                    status="crashed", seconds=time.monotonic() - started,
                    worker=pid or 0,
                    error=f"worker {pid} died mid-job")
                self._finish(job, outcome, "crashed")
                continue
            worker.payload = None
            self._finish(job, outcome,
                         "oom" if outcome.status == "oom" else "finished")

    def _check_memory(self) -> None:
        """SIGKILL workers whose RSS exceeds the memory budget.

        The supervisor-side backstop behind the in-worker ``RLIMIT_AS``
        (see :class:`~repro.batch.runner.BatchRunner`): a worker the
        rlimit cannot protect is killed here and its job becomes an
        ``oom`` outcome — queued jobs are unaffected.
        """
        if self.memory_limit is None:
            return
        now = time.monotonic()
        with self._lock:
            candidates = [w for w in self._workers if w.payload is not None]
        for worker in candidates:
            rss = _rss_bytes(worker.proc.pid)
            if rss is None or rss <= self.memory_limit:
                continue
            job: _Job = worker.payload
            if job is None:              # finished while we were polling
                continue
            elapsed = now - worker.started
            pid = worker.proc.pid
            worker.payload = None
            self._drop_worker(worker)
            outcome = CircuitOutcome(
                name=job.payload["name"], index=job.payload["index"],
                status="oom", seconds=elapsed, worker=pid or 0,
                error=f"killed: worker RSS {rss // (1024 * 1024)}MiB "
                      f"exceeded the "
                      f"{self.memory_limit // (1024 * 1024)}MiB memory "
                      f"budget")
            self._finish(job, outcome, "oom")

    def _expire(self) -> None:
        """SIGKILL workers whose job exceeded its hard timeout."""
        now = time.monotonic()
        with self._lock:
            expired = [w for w in self._workers
                       if w.payload is not None
                       and w.payload.timeout is not None
                       and now - w.started >= w.payload.timeout]
        for worker in expired:
            job: _Job = worker.payload
            elapsed = now - worker.started
            pid = worker.proc.pid
            worker.payload = None
            self._drop_worker(worker)
            with self._lock:
                self._stats["timeouts"] += 1
            outcome = CircuitOutcome(
                name=job.payload["name"], index=job.payload["index"],
                status="timeout", seconds=elapsed, worker=pid or 0,
                error=f"killed after exceeding the {job.timeout}s job timeout")
            self._finish(job, outcome, "timeout")

    def _reap_idle(self) -> None:
        """Scale the pool to zero once it has been idle long enough."""
        with self._lock:
            if (self.idle_timeout is None or self._queue
                    or any(w.payload is not None for w in self._workers)
                    or not self._workers
                    or time.monotonic() - self._idle_since < self.idle_timeout):
                return
            victims = list(self._workers)
        for worker in victims:
            self._drop_worker(worker)
            with self._lock:
                self._stats["reaped"] += 1

    def _supervise(self) -> None:
        from multiprocessing.connection import wait as _conn_wait

        while True:
            self._dispatch()
            with self._lock:
                stop = self._stop
                busy = [w for w in self._workers if w.payload is not None]
                queued = bool(self._queue)
                if not busy and not queued:
                    self._idle.set()
                else:
                    self._idle_since = time.monotonic()
            if stop:
                break
            # sleep until a result, a timeout deadline, the idle-reap
            # deadline, or a wake byte from submit()/shutdown()
            deadlines = [w.started + w.payload.timeout for w in busy
                         if w.payload.timeout is not None]
            if (self.idle_timeout is not None and not busy and not queued
                    and self._workers):
                deadlines.append(self._idle_since + self.idle_timeout)
            tick = None
            if deadlines:
                tick = max(0.0, min(deadlines) - time.monotonic())
            if self.memory_limit is not None and busy:
                # wake often enough for the RSS poll to matter
                tick = _MEM_POLL if tick is None else min(tick, _MEM_POLL)
            ready = _conn_wait([w.conn for w in busy] + [self._wake_r],
                               timeout=tick)
            if self._wake_r in ready:
                try:
                    os.read(self._wake_r, 4096)
                except OSError:
                    pass
                ready = [r for r in ready if r is not self._wake_r]
            self._collect(ready)
            self._expire()
            self._check_memory()
            self._reap_idle()
        # orderly stop: kill whatever is left (drain happened in shutdown)
        with self._lock:
            victims = list(self._workers)
            self._workers.clear()
            abandoned = list(self._queue)
            self._queue.clear()
        for worker in victims:
            kill_pool_worker(worker)
        for job in abandoned:
            outcome = CircuitOutcome(
                name=job.payload["name"], index=job.payload["index"],
                status="error", error="pool shut down before dispatch")
            self._finish(job, outcome, "finished")
        self._idle.set()
        with self._lock:
            self._wake_closed = True
            os.close(self._wake_r)
            os.close(self._wake_w)
