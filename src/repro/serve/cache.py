"""The content-addressed result cache behind the serve daemon.

Production synthesis traffic is dominated by duplicates — the same RTL
block, the same flow, submitted again and again.  The cache makes every
duplicate a lookup instead of a recompute, keyed exactly the way the
batch layer already fingerprints work:

* the **structural fingerprint** of the input network
  (:func:`~repro.batch.runner.state_fingerprint` — canonical AIGER
  serialization, hashed), so the *same circuit* hits regardless of how it
  was submitted (registry name, ``.aag`` file, builder invocation,
  inline source);
* the **canonical flow script** (``Flow.parse(s).to_script()``), so
  whitespace/alias/default-argument variants of the *same flow* hit, and
  any pass-argument change misses.

Entries persist as ``kind: "cache"`` lines in the same append-only JSONL
:class:`~repro.batch.store.ResultStore` file the batch layer records runs
into — a restarted daemon replays the file and starts warm.
"""

from __future__ import annotations

import hashlib
import json
import threading
import warnings
from pathlib import Path
from typing import Dict, Optional, Union

from ..batch.store import ResultStore, StoreWriteError

__all__ = ["cache_key", "ResultCache"]


def cache_key(fingerprint: str, flow: str) -> str:
    """The content address of one work unit (16 hex chars).

    ``fingerprint`` is the structural fingerprint of the input network;
    ``flow`` the **canonical** flow script.  Two submissions share a key
    iff the same circuit structure would run the same flow — the caller
    must canonicalize (``resolve_flow(...).to_script()``) first.
    """
    payload = json.dumps({"input": fingerprint, "flow": flow},
                         sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


class ResultCache:
    """An in-memory key → result-record index, persisted through a store.

    ``store`` is a :class:`~repro.batch.store.ResultStore` (or a path, or
    ``None`` for a memory-only cache).  On construction the store's
    ``cache`` lines are replayed into memory — the warm-restart path.
    Thread safe: the daemon reads from handler coroutines while the pool
    supervisor writes completions.
    """

    def __init__(self, store: Optional[Union[str, Path, ResultStore]] = None):
        if store is not None and not isinstance(store, ResultStore):
            store = ResultStore(store)
        self.store = store
        self._lock = threading.Lock()
        self._mem: Dict[str, dict] = {}
        self.hits = 0
        self.misses = 0
        if self.store is not None:
            for rec in self.store.cache_records():
                key = rec.get("cache_key")
                if key and isinstance(rec.get("record"), dict):
                    self._mem[key] = rec["record"]

    def __len__(self) -> int:
        return len(self._mem)

    def get(self, key: str) -> Optional[dict]:
        """The stored result record under ``key`` (counted as a hit), or
        ``None`` (counted as a miss)."""
        with self._lock:
            rec = self._mem.get(key)
            if rec is None:
                self.misses += 1
            else:
                self.hits += 1
        return rec

    def note_hit(self) -> None:
        """Count a hit that bypassed :meth:`get` — an in-flight duplicate
        coalesced onto a running job."""
        with self._lock:
            self.hits += 1

    def put(self, key: str, record: dict, *, fingerprint: str = "",
            flow: str = "") -> None:
        """Index ``record`` under ``key`` and persist it durably.

        ``fingerprint``/``flow`` ride along in the JSONL line so the store
        stays self-describing (a human can grep what a key meant).

        A failed persist (full disk) only warns: the entry still serves
        from memory, the store keeps its clean prefix, and ``/readyz``
        reports the store unwritable — the daemon degrades, not dies.
        """
        with self._lock:
            self._mem[key] = record
        if self.store is not None:
            try:
                self.store.append_cache({
                    "cache_key": key,
                    "input": fingerprint,
                    "flow": flow,
                    "record": record,
                })
            except StoreWriteError as exc:
                warnings.warn(f"result cache: persisting {key} failed "
                              f"({exc}); entry kept in memory only")

    def stats(self) -> dict:
        """Hit/miss counters plus the entry count."""
        with self._lock:
            return {"hits": self.hits, "misses": self.misses,
                    "entries": len(self._mem)}
