"""MCH core: choice networks, critical paths, Algorithms 1-3 glue."""

from .choice import ChoiceNetwork
from .critical import critical_nodes, node_heights
from .mch import MchParams, build_mch
from .dch import build_dch

__all__ = [
    "ChoiceNetwork",
    "critical_nodes",
    "node_heights",
    "MchParams",
    "build_mch",
    "build_dch",
]
