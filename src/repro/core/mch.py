"""Mixed Structural Choices — the paper's core contribution (Algorithms 1-2).

:func:`build_mch` takes an input network and produces a
:class:`~repro.core.choice.ChoiceNetwork` over a mixed-representation
network:

1. the input structure is retained one-to-one inside a mixed network (the
   "more expressive logic representation" of Algorithm 1, line 1);
2. critical-path nodes are collected with ratio ``r`` (line 2);
3. cuts are enumerated with size ``k`` and limit ``l`` (line 3);
4. the multi-strategy structural choice algorithm (Algorithm 2) synthesizes,
   for every node, functionally equivalent candidate structures: critical
   nodes get *level-oriented* resyntheses of their cuts, non-critical nodes
   get *area-oriented* resyntheses of their cuts and of their MFFC
   (bounded by ``K`` leaf inputs);
5. candidates are registered as choice nodes of their representative — the
   original network is never modified, only extended.

The candidates are expressed in the gate vocabulary of the requested
heterogeneous representations (e.g. AIG + XMG), which is what lets the
choice-aware mapper (Algorithm 3) pick per region whichever representation
maps best.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple, Type

from ..cuts.database import CutDatabase
from ..networks.base import GateType, LogicNetwork, require_combinational
from ..networks.mixed import MixedNetwork
from ..synthesis.strategies import StrategyLibrary, synthesize_candidates
from .choice import ChoiceNetwork
from .critical import critical_nodes

__all__ = ["MchParams", "build_mch"]


@dataclass
class MchParams:
    """Parameters of MCH construction (names follow Algorithm 1).

    ``representations`` selects the heterogeneous candidate vocabularies; the
    default pairs the original structure with XMG-flavoured candidates, the
    combination the paper uses for its FPGA record runs.
    """

    cut_size: int = 4            # k
    cut_limit: int = 8           # l
    mffc_max_pis: int = 8        # K
    ratio: float = 1.0           # r — critical-path threshold
    representations: Tuple[Type[LogicNetwork], ...] = ()
    strategies: StrategyLibrary = field(default_factory=StrategyLibrary)
    max_cuts_per_node: int = 3   # candidate-generation budget per node
    min_cut_size: int = 2        # skip trivial/buffer cuts during generation


def _default_representations() -> Tuple[Type[LogicNetwork], ...]:
    from ..networks.xmg import Xmg

    return (Xmg,)


def build_mch(ntk: LogicNetwork, params: Optional[MchParams] = None) -> ChoiceNetwork:
    """Build a mixed choice network from ``ntk`` (Algorithm 1).

    The input network is copied one-to-one into a :class:`MixedNetwork`; all
    candidate structures are added alongside as choice nodes.  The result is
    ready for choice-aware technology mapping.
    """
    require_combinational(ntk, "build_mch")
    params = params or MchParams()
    reps = params.representations or _default_representations()

    # line 1: host the input structure, unchanged, in the expressive network
    mixed = MixedNetwork()
    ntk.copy_into(mixed)
    choice_net = ChoiceNetwork(mixed)

    # line 2: critical-path node collection
    critical = critical_nodes(mixed, params.ratio)

    # line 3: cut enumeration on the original structure (shared flat database)
    cuts = CutDatabase(mixed, k=params.cut_size, cut_limit=params.cut_limit)

    # Algorithm 2: multi-strategy structural choices.
    # Snapshot the original gate list — candidates appended during the loop
    # must not be re-expanded.
    original_gates = list(mixed.gates())
    fanout_counts = mixed.fanout_counts()

    for node in original_gates:
        if node in critical:
            strategy = params.strategies.for_objective("level")
            sources = _node_cut_functions(mixed, cuts, node, params)
        else:
            strategy = params.strategies.for_objective("area")
            sources = _node_cut_functions(mixed, cuts, node, params)
            mffc_source = _mffc_function(mixed, node, fanout_counts, params)
            if mffc_source is not None:
                sources.append(mffc_source)
        for tt, leaf_lits in sources:
            candidates = synthesize_candidates(mixed, tt, leaf_lits, strategy, reps)
            for cand in candidates:
                choice_net.add_choice(node, cand)

    return choice_net


def _node_cut_functions(mixed: MixedNetwork, cuts: CutDatabase, node: int, params: MchParams):
    """(tt, leaf literals) pairs for the node's most useful cuts."""
    out = []
    taken = 0
    for cut in cuts.cuts(node):
        if len(cut.leaves) < params.min_cut_size:
            continue
        if taken >= params.max_cuts_per_node:
            break
        taken += 1
        leaf_lits = [leaf << 1 for leaf in cut.leaves]
        out.append((cut.tt, leaf_lits))
    return out


def _mffc_function(mixed: MixedNetwork, node: int, fanout_counts, params: MchParams):
    """The node's MFFC as a (tt, leaf literals) synthesis source, if small."""
    cone = mixed.mffc(node, fanout_counts)
    if len(cone) < 2:
        return None
    leaves = mixed.mffc_leaves(cone)
    if not leaves or len(leaves) > params.mffc_max_pis:
        return None
    tt = mixed.local_function(node, leaves)
    return tt, [leaf << 1 for leaf in leaves]
