"""Critical-path node classification (Algorithm 1, line 2).

The paper collects "PO nodes with logic depths greater than or equal to the
network logic depth * r, along with all nodes on paths from these POs to the
PIs".  We implement this with the usual slack formulation: a node is critical
when some PO-to-PI path through it has length at least ``r * depth``; i.e.
``level(n) + height(n) >= r * depth`` where ``height`` is the longest path
from ``n`` to any PO.  ``r = 1`` selects exactly the zero-slack (critical
path) nodes; smaller ``r`` widens the set, which is how MCH's delay-oriented
mode expands the range of level-optimized candidates; ``r > 1`` empties the
set (area-oriented mode).
"""

from __future__ import annotations

from typing import List, Set

from ..networks.base import LogicNetwork

__all__ = ["critical_nodes", "node_heights"]


def node_heights(ntk: LogicNetwork) -> List[int]:
    """Longest path (in gate levels) from each node to any PO driver."""
    n = ntk.num_nodes()
    height = [-1] * n  # -1: not in any PO cone
    for p in ntk.pos:
        height[p >> 1] = max(height[p >> 1], 0)
    for m in range(n - 1, -1, -1):
        h = height[m]
        if h < 0 or not ntk.is_gate(m):
            continue
        for f in ntk.fanins(m):
            leaf = f >> 1
            if height[leaf] < h + 1:
                height[leaf] = h + 1
    return height


def critical_nodes(ntk: LogicNetwork, ratio: float) -> Set[int]:
    """Gate nodes lying on a PO-to-PI path of length >= ``ratio * depth``."""
    depth = ntk.depth()
    if depth == 0:
        return set()
    threshold = ratio * depth
    levels = ntk.levels()
    height = node_heights(ntk)
    out = set()
    for m in ntk.gates():
        if height[m] >= 0 and levels[m] + height[m] >= threshold:
            out.add(m)
    return out
