"""Structural choice networks: representatives and equivalence classes.

A choice network is a plain logic network plus an equivalence structure: some
nodes (*representatives*) carry a list of *choice nodes* — roots of
alternative subnetworks computing the same function (possibly complemented).
The network containing both original and candidate structures is typically a
:class:`~repro.networks.mixed.MixedNetwork`, which is what makes the choices
"mixed": candidates may use MAJ/XOR gates while the original is an AIG.

The class enforces the invariants the mapper relies on:

* a choice root is never in the transitive fanin of its representative's
  fanout cone (no combinational cycles through equivalence links);
* each node belongs to at most one equivalence class;
* a topological :meth:`processing_order` exists that visits every choice
  root before its representative, so merged cut sets (Algorithm 3) are
  complete when fanouts of the representative are processed.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..networks.base import LogicNetwork

__all__ = ["ChoiceNetwork"]


class ChoiceNetwork:
    """A logic network annotated with structural-choice classes."""

    def __init__(self, ntk: LogicNetwork):
        self.ntk = ntk
        #: representative -> list of (choice node, phase); phase True means
        #: the choice computes the complement of the representative.
        self.choices_of: Dict[int, List[Tuple[int, bool]]] = {}
        #: choice node -> (representative, phase)
        self.repr_of: Dict[int, Tuple[int, bool]] = {}
        # memoized processing order, keyed by (network version, #choices)
        self._order_cache: Optional[Tuple[Tuple[int, int], List[int]]] = None

    # ------------------------------------------------------------------ #

    def add_choice(self, representative: int, choice_literal: int) -> bool:
        """Register ``choice_literal`` as an equivalent of ``representative``.

        The literal's node computes ``f(representative) ^ phase`` where
        ``phase`` is the literal's complement bit.  Returns False (and adds
        nothing) if the pairing would be degenerate or cyclic.
        """
        node = choice_literal >> 1
        phase = bool(choice_literal & 1)
        if node == representative:
            return False
        if not self.ntk.is_gate(node) or not self.ntk.is_gate(representative):
            return False
        if node in self.repr_of or node in self.choices_of:
            return False
        if representative in self.repr_of:
            return False
        # Reject equivalence links that would create a cycle: the candidate
        # cone must not contain the representative.  Node ids are
        # topological, so the walk can prune at ids below the representative.
        stack = [node]
        seen = set()
        while stack:
            m = stack.pop()
            if m == representative:
                return False
            if m < representative or m in seen:
                continue
            seen.add(m)
            stack.extend(f >> 1 for f in self.ntk.fanins(m))
        self.choices_of.setdefault(representative, []).append((node, phase))
        self.repr_of[node] = (representative, phase)
        return True

    def num_choices(self) -> int:
        return sum(len(v) for v in self.choices_of.values())

    def num_classes(self) -> int:
        return len(self.choices_of)

    def choices(self, representative: int) -> List[Tuple[int, bool]]:
        return list(self.choices_of.get(representative, []))

    def is_repr(self, node: int) -> bool:
        return node in self.choices_of

    # ------------------------------------------------------------------ #

    def processing_order(self) -> List[int]:
        """Topological node order where choice roots precede representatives.

        Standard Kahn's algorithm over structural fanin edges plus one extra
        edge per equivalence link (choice root -> representative).  The order
        is memoized and recomputed only when the network or the equivalence
        structure changes; treat the returned list as read-only.
        """
        key = (self.ntk.version, self.num_choices())
        if self._order_cache is not None and self._order_cache[0] == key:
            return self._order_cache[1]
        order = self._compute_processing_order()
        self._order_cache = (key, order)
        return order

    def _compute_processing_order(self) -> List[int]:
        ntk = self.ntk
        n = ntk.num_nodes()
        indeg = [0] * n
        extra: List[List[int]] = [[] for _ in range(n)]
        for node in range(n):
            indeg[node] += len(set(f >> 1 for f in ntk.fanins(node)))
        for rep, lst in self.choices_of.items():
            for ch, _ in lst:
                extra[ch].append(rep)
                indeg[rep] += 1
        fanouts = ntk.fanouts()
        order: List[int] = []
        stack = [i for i in range(n) if indeg[i] == 0]
        while stack:
            m = stack.pop()
            order.append(m)
            seen_children = set()
            for child in fanouts[m]:
                if child in seen_children:
                    continue
                seen_children.add(child)
                indeg[child] -= 1
                if indeg[child] == 0:
                    stack.append(child)
            for child in extra[m]:
                indeg[child] -= 1
                if indeg[child] == 0:
                    stack.append(child)
        if len(order) != n:
            raise RuntimeError("choice network has a cycle through equivalence links")
        return order

    def verify(self, samples: int = 64, seed: int = 7) -> bool:
        """Random-simulation check that every choice matches its representative."""
        from ..sim.engine import PatternPool, SimEngine

        pool = PatternPool(self.ntk.num_pis(), n_patterns=samples, seed=seed)
        vals = SimEngine(self.ntk, pool).signatures()
        mask = pool.mask
        for rep, lst in self.choices_of.items():
            for node, phase in lst:
                expect = vals[rep] ^ (mask if phase else 0)
                if vals[node] != expect:
                    return False
        return True

    def verify_sat(self, conflict_limit: int = 20000) -> bool:
        """Prove every equivalence link with SAT (slower, exact).

        One :class:`~repro.sat.session.EquivalenceSession` encodes the
        network once; each link is an incremental assumption query, exactly
        like ABC's choice verification.  Returns False on any disproved (or
        timed-out) link.
        """
        from ..sat.session import EquivalenceSession

        session = EquivalenceSession(self.ntk)
        for rep, members in self.choices_of.items():
            for node, phase in members:
                res = session.prove_node_equal(rep, node, phase,
                                               conflict_limit=conflict_limit)
                if res is not True:
                    return False
        return True

    def stats(self) -> dict:
        """Summary counters for reporting."""
        sizes = [len(v) for v in self.choices_of.values()]
        return {
            "gates": self.ntk.num_gates(),
            "classes": self.num_classes(),
            "choices": self.num_choices(),
            "max_class_size": max(sizes, default=0),
            "complement_links": sum(
                1 for v in self.choices_of.values() for _, ph in v if ph
            ),
        }

    def __repr__(self) -> str:
        return (
            f"<ChoiceNetwork gates={self.ntk.num_gates()} "
            f"classes={self.num_classes()} choices={self.num_choices()}>"
        )
