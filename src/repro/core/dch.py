"""DCH — the traditional single-representation structural-choice baseline.

Reimplements the essence of ABC's ``dch`` (Chatterjee et al., TCAD'06,
"lossless synthesis"): run a technology-independent optimization script a
couple of times, superimpose the snapshots over shared PIs into one strashed
network, detect functionally equivalent nodes across snapshots (simulation +
SAT), and expose them as structural choices for the mapper.

This is the baseline MCH is compared against in Table I: its candidates all
live in the *same* representation and come from whole-network optimization,
so it inherits the structural bias of the optimization script — exactly the
limitation the paper's mixed choices remove.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from ..networks.base import LogicNetwork, require_combinational
from ..networks.mixed import MixedNetwork
from ..opt.equivalence import functional_classes
from .choice import ChoiceNetwork

__all__ = ["build_dch"]


def build_dch(snapshots: Sequence[LogicNetwork], sat_verify: bool = True,
              **eq_kwargs) -> ChoiceNetwork:
    """Build a choice network from functionally equivalent snapshots.

    ``snapshots[0]`` provides the base structure and the POs (typically the
    *most optimized* network, as in ABC); later snapshots contribute choice
    candidates.  All snapshots must share the PI/PO interface.
    """
    if not snapshots:
        raise ValueError("need at least one snapshot")
    for snap in snapshots:
        require_combinational(snap, "build_dch")
    base = snapshots[0]
    for s in snapshots[1:]:
        if s.num_pis() != base.num_pis() or s.num_pos() != base.num_pos():
            raise ValueError("snapshots must share the PI/PO interface")

    mixed = MixedNetwork()
    base_map = base.copy_into_with_map(mixed, include_pos=True)
    pi_lits = {i: base_map[n] for i, n in enumerate(base.pis)}
    for snap in snapshots[1:]:
        snap_pi_map = {n: pi_lits[i] for i, n in enumerate(snap.pis)}
        snap.copy_into_with_map(mixed, include_pos=False, pi_map=snap_pi_map)

    choice_net = ChoiceNetwork(mixed)
    # one shared verification pass over the superimposed network: a single
    # equivalence session plus pattern pool (with SAT counterexamples
    # recycled into the simulation signatures) detects cross-snapshot choices
    classes = functional_classes(mixed, sat_verify=sat_verify, **eq_kwargs)
    for members in classes:
        rep, _ = members[0]
        for node, phase in members[1:]:
            choice_net.add_choice(rep, (node << 1) | int(phase))
    return choice_net
