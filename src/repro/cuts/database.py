"""Flat, signature-indexed priority-cut database.

One :class:`CutDatabase` holds every cut of a network in parallel flat
arrays — interned leaf tuples, 64-bit leaf signatures, truth tables as raw
ints — computed once and shared by all mapper passes and consumers (LUT
mapper, ASIC Boolean matcher, graph mapper, MCH candidate generation).

Compared to the original per-mapper enumeration this builder is lazy and
signature-driven:

* merged leaf sets are deduplicated and dominance-filtered **before** any
  truth table is computed, so cut functions are evaluated only for the at
  most ``cut_limit - 1`` cuts that survive per node;
* dominance (is one cut's leaf set a subset of another's?) is pre-rejected
  with 64-bit Bloom-style leaf signatures — ``sig(a) & ~sig(b) != 0`` proves
  non-subset in one integer op, so the exact subset test runs only on the
  rare signature hits;
* leaf tuples are interned, so equal leaf sets across nodes share one object
  and the database's memory stays proportional to the number of *distinct*
  leaf sets.

The legacy ``enumerate_cuts`` API is a thin list-of-:class:`Cut` view over
this database (see :func:`repro.cuts.enumeration.enumerate_cuts`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..networks.base import GateType
from ..truth.truth_table import TruthTable
from .cut import Cut
from .enumeration import _expand_bits

__all__ = ["CutDatabase", "leaf_signature"]

_VAR1_BITS = 2  # TruthTable.var(1, 0).bits — the single-variable projection

# gate kinds as plain ints (the flat core stores kinds as bytes; comparing
# against ints keeps IntEnum overhead out of the enumeration loop)
def _mask_leaves(mask: int) -> Tuple[int, ...]:
    """The ascending leaf tuple of an exact leaf bitmask."""
    out = []
    while mask:
        low = mask & -mask
        out.append(low.bit_length() - 1)
        mask ^= low
    return tuple(out)


_CONST = int(GateType.CONST)
_PI = int(GateType.PI)
_XOR = int(GateType.XOR)    # kinds <= _XOR with fanins are binary gates


def leaf_signature(leaves: Sequence[int]) -> int:
    """64-bit Bloom signature of a leaf set (bit ``node % 64`` per leaf)."""
    sig = 0
    for leaf in leaves:
        sig |= 1 << (leaf & 63)
    return sig


class CutDatabase:
    """All priority cuts of one network in flat parallel arrays.

    ``spans[node] == (start, end)`` indexes the node's cut records inside the
    flat arrays; the trivial cut of a gate node is always the last record of
    its span.  :meth:`cuts` materializes (and memoizes) the node's records as
    :class:`Cut` objects for consumers that want the object view.
    """

    __slots__ = (
        "ntk", "k", "cut_limit", "network_version",
        "leaves", "leaf_mask", "sig", "tt_bits", "tt_vars", "root", "phase",
        "spans", "stats", "_materialized", "_intern",
    )

    def __init__(self, ntk, k: int = 6, cut_limit: int = 8,
                 nodes: Optional[Sequence[int]] = None,
                 order: Optional[Sequence[int]] = None,
                 choices: Optional[Dict[int, List[Tuple[int, bool]]]] = None):
        self.ntk = ntk
        self.k = k
        self.cut_limit = cut_limit
        self.network_version = getattr(ntk, "version", 0)

        n_total = ntk.num_nodes()
        # flat per-cut arrays
        self.leaves: List[Tuple[int, ...]] = []
        #: exact leaf set of each cut as a node-indexed bitmask — the merge
        #: loop unions / bounds / dominance-tests cuts in single int ops
        self.leaf_mask: List[int] = []
        self.sig: List[int] = []
        self.tt_bits: List[int] = []
        self.tt_vars: List[int] = []
        self.root: List[int] = []
        self.phase: List[bool] = []
        # per-node (start, end) spans into the flat arrays
        self.spans: List[Tuple[int, int]] = [(0, 0)] * n_total
        self._materialized: List[Optional[List[Cut]]] = [None] * n_total
        self._intern: Dict[Tuple[int, ...], Tuple[int, ...]] = {}
        # subset_checks counts pairwise dominance comparisons; each is one
        # exact bitmask subset test, so sig_rejections (comparisons settled
        # by the 64-bit Bloom signature alone, before the masks existed) is
        # retained for record compatibility but always 0.
        self.stats: Dict[str, int] = {
            "nodes": 0, "cuts": 0, "candidates": 0, "dominated": 0,
            "sig_rejections": 0, "subset_checks": 0,
        }
        self._build(nodes, order, choices)
        self.stats["cuts"] = len(self.leaves)
        self.stats["distinct_leaf_sets"] = len(self._intern)

    # ------------------------------------------------------------------ #
    # construction                                                        #
    # ------------------------------------------------------------------ #

    def _build(self, nodes, order, choices) -> None:
        ntk = self.ntk
        k = self.k
        n_total = ntk.num_nodes()

        # the flat struct-of-arrays core: gate kinds and fanin literals as
        # plain int lists, so the enumeration loop below never touches a
        # node object or a network method
        if hasattr(ntk, "flat"):
            snapshot = ntk.flat
            kinds = list(snapshot.kind)
            fanin3 = list(snapshot.fanin)
        else:  # duck-typed network without the flat core (none in-tree)
            kinds = [int(ntk.node_type(n)) for n in range(n_total)]
            fanin3 = []
            for n in range(n_total):
                fis = ntk.fanins(n)
                fanin3 += (fis + (0, 0, 0))[:3]

        todo = None
        if nodes is not None:
            if choices is not None:
                raise ValueError("node restriction cannot be combined with choices")
            todo = set()
            stack = list(nodes)
            while stack:
                m = stack.pop()
                if m in todo:
                    continue
                todo.add(m)
                stack.extend(f >> 1 for f in ntk.fanins(m))

        # local aliases for the hot loop
        flat_leaves = self.leaves
        flat_mask = self.leaf_mask
        flat_sig = self.sig
        flat_bits = self.tt_bits
        flat_vars = self.tt_vars
        flat_root = self.root
        flat_phase = self.phase
        spans = self.spans
        intern = self._intern
        stats = self.stats
        limit = max(self.cut_limit - 1, 0)

        if order is None:
            order = ntk.topological_order() if hasattr(ntk, "topological_order") \
                else range(n_total)

        for node in order:
            if todo is not None and node not in todo:
                continue
            stats["nodes"] += 1
            start = len(flat_leaves)
            t = kinds[node]
            if t == _CONST:
                empty = intern.setdefault((), ())
                flat_leaves.append(empty)
                flat_mask.append(0)
                flat_sig.append(0)
                flat_bits.append(0)
                flat_vars.append(0)
                flat_root.append(node)
                flat_phase.append(False)
                spans[node] = (start, len(flat_leaves))
                continue
            if t == _PI:
                self._append_trivial(node)
                spans[node] = (start, len(flat_leaves))
                continue

            base = 3 * node
            if t <= _XOR:   # binary gate kinds (AND, XOR)
                fis = (fanin3[base], fanin3[base + 1])
            else:           # ternary gate kinds (MAJ, XOR3)
                fis = (fanin3[base], fanin3[base + 1], fanin3[base + 2])
            fanin_phases = [f & 1 for f in fis]
            fanin_ranges = [spans[f >> 1] for f in fis]

            # -- candidate merge on exact leaf bitmasks --
            # a cut's leaf set is one node-indexed bitmask, so the union is
            # one ``|``, the k-bound one popcount and duplicate detection one
            # set probe — no per-leaf tuple walking until a cut survives
            seen = set()
            cand: List[Tuple[int, Tuple[int, ...]]] = []
            if len(fis) == 2:
                (s0, e0), (s1, e1) = fanin_ranges
                for i0 in range(s0, e0):
                    m0 = flat_mask[i0]
                    for i1 in range(s1, e1):
                        merged = m0 | flat_mask[i1]
                        if merged.bit_count() > k or merged in seen:
                            continue
                        seen.add(merged)
                        cand.append((merged, (i0, i1)))
            else:
                (s0, e0), (s1, e1), (s2, e2) = fanin_ranges
                for i0 in range(s0, e0):
                    m0 = flat_mask[i0]
                    for i1 in range(s1, e1):
                        m01 = m0 | flat_mask[i1]
                        if m01.bit_count() > k:
                            continue
                        for i2 in range(s2, e2):
                            merged = m01 | flat_mask[i2]
                            if merged.bit_count() > k or merged in seen:
                                continue
                            seen.add(merged)
                            cand.append((merged, (i0, i1, i2)))
            stats["candidates"] += len(cand)

            # -- exact dominance on the masks, smallest cuts first --
            cand.sort(key=lambda c: c[0].bit_count())
            kept: List[Tuple[int, Tuple[int, ...]]] = []
            subset_checks = 0
            for mask, ids in cand:
                if len(kept) >= limit:
                    break
                not_mask = ~mask
                dominated = False
                for kmask, _ in kept:
                    subset_checks += 1
                    if not kmask & not_mask:   # kept leaves ⊆ candidate leaves
                        dominated = True
                        break
                if dominated:
                    stats["dominated"] += 1
                    continue
                kept.append((mask, ids))
            stats["subset_checks"] += subset_checks

            # -- truth tables, only for the survivors --
            for lmask, ids in kept:
                leaves = _mask_leaves(lmask)
                sig = 0
                for i in ids:
                    sig |= flat_sig[i]
                nv = len(leaves)
                full = (1 << (1 << nv)) - 1
                pos_of = {leaf: i for i, leaf in enumerate(leaves)}
                vals = []
                for i, ph in zip(ids, fanin_phases):
                    cl = flat_leaves[i]
                    positions = tuple(pos_of[x] for x in cl)
                    bits = _expand_bits(flat_bits[i], positions, nv)
                    if ph:
                        bits ^= full
                    vals.append(bits)
                out = self._apply_gate(t, vals) & full
                flat_leaves.append(intern.setdefault(leaves, leaves))
                flat_mask.append(lmask)
                flat_sig.append(sig)
                flat_bits.append(out)
                flat_vars.append(nv)
                flat_root.append(node)
                flat_phase.append(False)

            # -- Algorithm 3 (lines 2-8): absorb choice-node cuts into the
            # representative's cut set, normalized to the representative's
            # polarity.  The representative keeps its own cut budget; choice
            # cuts get an equal extra budget so good structural cuts are never
            # evicted by candidate cuts (and vice versa).
            if choices is not None and node in choices:
                seen_leafsets = {flat_leaves[i] for i in range(start, len(flat_leaves))}
                merged_ids: List[Tuple[int, bool]] = []
                for ch_node, ch_phase in choices[node]:
                    cs, ce = spans[ch_node]
                    for i in range(cs, ce):
                        cl = flat_leaves[i]
                        if len(cl) == 1 and cl[0] == node:
                            continue
                        if cl in seen_leafsets:
                            continue
                        seen_leafsets.add(cl)
                        merged_ids.append((i, ch_phase))
                merged_ids.sort(key=lambda e: len(flat_leaves[e[0]]), reverse=True)
                for i, ch_phase in merged_ids[: self.cut_limit]:
                    bits = flat_bits[i]
                    if ch_phase:
                        bits ^= (1 << (1 << flat_vars[i])) - 1
                    flat_leaves.append(flat_leaves[i])
                    flat_mask.append(flat_mask[i])
                    flat_sig.append(flat_sig[i])
                    flat_bits.append(bits)
                    flat_vars.append(flat_vars[i])
                    flat_root.append(flat_root[i])
                    flat_phase.append(ch_phase)

            self._append_trivial(node)
            spans[node] = (start, len(flat_leaves))

    def _append_trivial(self, node: int) -> None:
        leaves = self._intern.setdefault((node,), (node,))
        self.leaves.append(leaves)
        self.leaf_mask.append(1 << node)
        self.sig.append(1 << (node & 63))
        self.tt_bits.append(_VAR1_BITS)
        self.tt_vars.append(1)
        self.root.append(node)
        self.phase.append(False)

    @staticmethod
    def _apply_gate(gate: GateType, vals: List[int]) -> int:
        if gate == GateType.AND:
            return vals[0] & vals[1]
        if gate == GateType.XOR:
            return vals[0] ^ vals[1]
        if gate == GateType.MAJ:
            a, b, c = vals
            return (a & b) | (a & c) | (b & c)
        if gate == GateType.XOR3:
            return vals[0] ^ vals[1] ^ vals[2]
        raise ValueError(f"unsupported gate {gate}")

    # ------------------------------------------------------------------ #
    # views                                                               #
    # ------------------------------------------------------------------ #

    def num_cuts(self) -> int:
        return len(self.leaves)

    def cuts(self, node: int) -> List[Cut]:
        """The node's cut records as :class:`Cut` objects (memoized).

        The returned list (and its cuts) is shared between all consumers of
        the database — treat it as read-only.
        """
        got = self._materialized[node]
        if got is None:
            start, end = self.spans[node]
            got = [
                Cut(self.leaves[i],
                    TruthTable(self.tt_vars[i], self.tt_bits[i]),
                    self.root[i], self.phase[i])
                for i in range(start, end)
            ]
            self._materialized[node] = got
        return got

    def cut_lists(self) -> List[List[Cut]]:
        """Per-node cut lists for all nodes (the ``enumerate_cuts`` view)."""
        return [self.cuts(n) for n in range(len(self.spans))]

    def signatures(self, node: int) -> List[int]:
        """Leaf signatures of the node's cuts, aligned with :meth:`cuts`."""
        start, end = self.spans[node]
        return self.sig[start:end]

    def __repr__(self) -> str:
        return (f"<CutDatabase nodes={self.stats['nodes']} cuts={self.num_cuts()} "
                f"k={self.k} limit={self.cut_limit}>")
