"""Flat, signature-indexed priority-cut database.

One :class:`CutDatabase` holds every cut of a network in parallel flat
arrays — interned leaf tuples, 64-bit leaf signatures, truth tables as raw
ints — computed once and shared by all mapper passes and consumers (LUT
mapper, ASIC Boolean matcher, graph mapper, MCH candidate generation).

Compared to the original per-mapper enumeration this builder is lazy and
signature-driven:

* merged leaf sets are deduplicated and dominance-filtered **before** any
  truth table is computed, so cut functions are evaluated only for the at
  most ``cut_limit - 1`` cuts that survive per node;
* dominance (is one cut's leaf set a subset of another's?) is pre-rejected
  with 64-bit Bloom-style leaf signatures — ``sig(a) & ~sig(b) != 0`` proves
  non-subset in one integer op, so the exact subset test runs only on the
  rare signature hits;
* leaf tuples are interned, so equal leaf sets across nodes share one object
  and the database's memory stays proportional to the number of *distinct*
  leaf sets.

The legacy ``enumerate_cuts`` API is a thin list-of-:class:`Cut` view over
this database (see :func:`repro.cuts.enumeration.enumerate_cuts`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..networks.base import GateType
from ..truth.truth_table import TruthTable
from .cut import Cut
from .enumeration import _expand_bits, _merge_leaves

__all__ = ["CutDatabase", "leaf_signature"]

_VAR1_BITS = 2  # TruthTable.var(1, 0).bits — the single-variable projection


def leaf_signature(leaves: Sequence[int]) -> int:
    """64-bit Bloom signature of a leaf set (bit ``node % 64`` per leaf)."""
    sig = 0
    for leaf in leaves:
        sig |= 1 << (leaf & 63)
    return sig


class CutDatabase:
    """All priority cuts of one network in flat parallel arrays.

    ``spans[node] == (start, end)`` indexes the node's cut records inside the
    flat arrays; the trivial cut of a gate node is always the last record of
    its span.  :meth:`cuts` materializes (and memoizes) the node's records as
    :class:`Cut` objects for consumers that want the object view.
    """

    __slots__ = (
        "ntk", "k", "cut_limit", "network_version",
        "leaves", "sig", "tt_bits", "tt_vars", "root", "phase", "spans",
        "stats", "_materialized", "_intern",
    )

    def __init__(self, ntk, k: int = 6, cut_limit: int = 8,
                 nodes: Optional[Sequence[int]] = None,
                 order: Optional[Sequence[int]] = None,
                 choices: Optional[Dict[int, List[Tuple[int, bool]]]] = None):
        self.ntk = ntk
        self.k = k
        self.cut_limit = cut_limit
        self.network_version = getattr(ntk, "version", 0)

        n_total = ntk.num_nodes()
        # flat per-cut arrays
        self.leaves: List[Tuple[int, ...]] = []
        self.sig: List[int] = []
        self.tt_bits: List[int] = []
        self.tt_vars: List[int] = []
        self.root: List[int] = []
        self.phase: List[bool] = []
        # per-node (start, end) spans into the flat arrays
        self.spans: List[Tuple[int, int]] = [(0, 0)] * n_total
        self._materialized: List[Optional[List[Cut]]] = [None] * n_total
        self._intern: Dict[Tuple[int, ...], Tuple[int, ...]] = {}
        # sig_rejections: dominance comparisons settled by the 64-bit
        # signature alone; subset_checks: comparisons that needed the exact
        # subset test.  Their sum is the number of pairwise comparisons made.
        self.stats: Dict[str, int] = {
            "nodes": 0, "cuts": 0, "candidates": 0, "dominated": 0,
            "sig_rejections": 0, "subset_checks": 0,
        }
        self._build(nodes, order, choices)
        self.stats["cuts"] = len(self.leaves)
        self.stats["distinct_leaf_sets"] = len(self._intern)

    # ------------------------------------------------------------------ #
    # construction                                                        #
    # ------------------------------------------------------------------ #

    def _build(self, nodes, order, choices) -> None:
        ntk = self.ntk
        k = self.k
        n_total = ntk.num_nodes()

        todo = None
        if nodes is not None:
            if choices is not None:
                raise ValueError("node restriction cannot be combined with choices")
            todo = set()
            stack = list(nodes)
            while stack:
                m = stack.pop()
                if m in todo:
                    continue
                todo.add(m)
                stack.extend(f >> 1 for f in ntk.fanins(m))

        # local aliases for the hot loop
        flat_leaves = self.leaves
        flat_sig = self.sig
        flat_bits = self.tt_bits
        flat_vars = self.tt_vars
        flat_root = self.root
        flat_phase = self.phase
        spans = self.spans
        intern = self._intern
        stats = self.stats
        limit = max(self.cut_limit - 1, 0)

        if order is None:
            order = ntk.topological_order() if hasattr(ntk, "topological_order") \
                else range(n_total)

        for node in order:
            if todo is not None and node not in todo:
                continue
            stats["nodes"] += 1
            start = len(flat_leaves)
            t = ntk.node_type(node)
            if t == GateType.CONST:
                empty = intern.setdefault((), ())
                flat_leaves.append(empty)
                flat_sig.append(0)
                flat_bits.append(0)
                flat_vars.append(0)
                flat_root.append(node)
                flat_phase.append(False)
                spans[node] = (start, len(flat_leaves))
                continue
            if t == GateType.PI:
                self._append_trivial(node)
                spans[node] = (start, len(flat_leaves))
                continue

            fis = ntk.fanins(node)
            fanin_phases = [f & 1 for f in fis]
            fanin_ranges = [spans[f >> 1] for f in fis]

            # -- candidate merge (leaf sets only, truth tables deferred) --
            seen = set()
            cand: List[Tuple[Tuple[int, ...], Tuple[int, ...]]] = []
            if len(fis) == 2:
                (s0, e0), (s1, e1) = fanin_ranges
                for i0 in range(s0, e0):
                    l0 = flat_leaves[i0]
                    for i1 in range(s1, e1):
                        merged = _merge_leaves(l0, flat_leaves[i1], k)
                        if merged is None or merged in seen:
                            continue
                        seen.add(merged)
                        cand.append((merged, (i0, i1)))
            else:
                (s0, e0), (s1, e1), (s2, e2) = fanin_ranges
                for i0 in range(s0, e0):
                    l0 = flat_leaves[i0]
                    for i1 in range(s1, e1):
                        m01 = _merge_leaves(l0, flat_leaves[i1], k)
                        if m01 is None:
                            continue
                        for i2 in range(s2, e2):
                            merged = _merge_leaves(m01, flat_leaves[i2], k)
                            if merged is None or merged in seen:
                                continue
                            seen.add(merged)
                            cand.append((merged, (i0, i1, i2)))
            stats["candidates"] += len(cand)

            # -- signature-prefiltered dominance, smallest cuts first --
            cand.sort(key=lambda c: len(c[0]))
            kept: List[Tuple[Tuple[int, ...], Tuple[int, ...], int]] = []
            kept_sets: List[frozenset] = []
            sig_rejections = subset_checks = 0
            for leaves, ids in cand:
                if len(kept) >= limit:
                    break
                sig = 0
                for i in ids:
                    sig |= flat_sig[i]
                not_sig = ~sig
                dominated = False
                for j, (_, _, fsig) in enumerate(kept):
                    if fsig & not_sig:
                        # some leaf of the kept cut is provably absent
                        sig_rejections += 1
                        continue
                    subset_checks += 1
                    if kept_sets[j].issubset(leaves):
                        dominated = True
                        break
                if dominated:
                    stats["dominated"] += 1
                    continue
                kept.append((leaves, ids, sig))
                kept_sets.append(frozenset(leaves))
            stats["sig_rejections"] += sig_rejections
            stats["subset_checks"] += subset_checks

            # -- truth tables, only for the survivors --
            for leaves, ids, sig in kept:
                nv = len(leaves)
                mask = (1 << (1 << nv)) - 1
                pos_of = {leaf: i for i, leaf in enumerate(leaves)}
                vals = []
                for i, ph in zip(ids, fanin_phases):
                    cl = flat_leaves[i]
                    positions = tuple(pos_of[x] for x in cl)
                    bits = _expand_bits(flat_bits[i], positions, nv)
                    if ph:
                        bits ^= mask
                    vals.append(bits)
                out = self._apply_gate(t, vals) & mask
                flat_leaves.append(intern.setdefault(leaves, leaves))
                flat_sig.append(sig)
                flat_bits.append(out)
                flat_vars.append(nv)
                flat_root.append(node)
                flat_phase.append(False)

            # -- Algorithm 3 (lines 2-8): absorb choice-node cuts into the
            # representative's cut set, normalized to the representative's
            # polarity.  The representative keeps its own cut budget; choice
            # cuts get an equal extra budget so good structural cuts are never
            # evicted by candidate cuts (and vice versa).
            if choices is not None and node in choices:
                seen_leafsets = {flat_leaves[i] for i in range(start, len(flat_leaves))}
                merged_ids: List[Tuple[int, bool]] = []
                for ch_node, ch_phase in choices[node]:
                    cs, ce = spans[ch_node]
                    for i in range(cs, ce):
                        cl = flat_leaves[i]
                        if len(cl) == 1 and cl[0] == node:
                            continue
                        if cl in seen_leafsets:
                            continue
                        seen_leafsets.add(cl)
                        merged_ids.append((i, ch_phase))
                merged_ids.sort(key=lambda e: len(flat_leaves[e[0]]), reverse=True)
                for i, ch_phase in merged_ids[: self.cut_limit]:
                    bits = flat_bits[i]
                    if ch_phase:
                        bits ^= (1 << (1 << flat_vars[i])) - 1
                    flat_leaves.append(flat_leaves[i])
                    flat_sig.append(flat_sig[i])
                    flat_bits.append(bits)
                    flat_vars.append(flat_vars[i])
                    flat_root.append(flat_root[i])
                    flat_phase.append(ch_phase)

            self._append_trivial(node)
            spans[node] = (start, len(flat_leaves))

    def _append_trivial(self, node: int) -> None:
        leaves = self._intern.setdefault((node,), (node,))
        self.leaves.append(leaves)
        self.sig.append(1 << (node & 63))
        self.tt_bits.append(_VAR1_BITS)
        self.tt_vars.append(1)
        self.root.append(node)
        self.phase.append(False)

    @staticmethod
    def _apply_gate(gate: GateType, vals: List[int]) -> int:
        if gate == GateType.AND:
            return vals[0] & vals[1]
        if gate == GateType.XOR:
            return vals[0] ^ vals[1]
        if gate == GateType.MAJ:
            a, b, c = vals
            return (a & b) | (a & c) | (b & c)
        if gate == GateType.XOR3:
            return vals[0] ^ vals[1] ^ vals[2]
        raise ValueError(f"unsupported gate {gate}")

    # ------------------------------------------------------------------ #
    # views                                                               #
    # ------------------------------------------------------------------ #

    def num_cuts(self) -> int:
        return len(self.leaves)

    def cuts(self, node: int) -> List[Cut]:
        """The node's cut records as :class:`Cut` objects (memoized).

        The returned list (and its cuts) is shared between all consumers of
        the database — treat it as read-only.
        """
        got = self._materialized[node]
        if got is None:
            start, end = self.spans[node]
            got = [
                Cut(self.leaves[i],
                    TruthTable(self.tt_vars[i], self.tt_bits[i]),
                    self.root[i], self.phase[i])
                for i in range(start, end)
            ]
            self._materialized[node] = got
        return got

    def cut_lists(self) -> List[List[Cut]]:
        """Per-node cut lists for all nodes (the ``enumerate_cuts`` view)."""
        return [self.cuts(n) for n in range(len(self.spans))]

    def signatures(self, node: int) -> List[int]:
        """Leaf signatures of the node's cuts, aligned with :meth:`cuts`."""
        start, end = self.spans[node]
        return self.sig[start:end]

    def __repr__(self) -> str:
        return (f"<CutDatabase nodes={self.stats['nodes']} cuts={self.num_cuts()} "
                f"k={self.k} limit={self.cut_limit}>")
