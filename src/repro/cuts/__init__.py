"""k-feasible cut enumeration with cut functions."""

from .cut import Cut
from .database import CutDatabase, leaf_signature
from .enumeration import (
    clear_expand_cache,
    enumerate_cuts,
    expand_cache_stats,
    expand_tt,
    set_expand_cache_limit,
)

__all__ = [
    "Cut",
    "CutDatabase",
    "leaf_signature",
    "enumerate_cuts",
    "expand_tt",
    "expand_cache_stats",
    "set_expand_cache_limit",
    "clear_expand_cache",
]
