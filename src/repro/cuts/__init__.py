"""k-feasible cut enumeration with cut functions."""

from .cut import Cut
from .enumeration import enumerate_cuts, expand_tt

__all__ = ["Cut", "enumerate_cuts", "expand_tt"]
