"""Cut objects: k-feasible cuts with attached cut functions."""

from __future__ import annotations

from typing import Optional, Tuple

from ..truth.truth_table import TruthTable

__all__ = ["Cut"]


class Cut:
    """A cut of a node: a leaf set plus the local function over the leaves.

    ``leaves`` is a sorted tuple of node indices.  ``tt`` is the function of
    the cut's *root node* expressed over the leaves in tuple order (leaf
    ``leaves[i]`` is truth-table variable ``i``).  ``root`` records which node
    the cut belongs to — for choice-merged cut sets (Algorithm 3) the root may
    be a choice node different from the representative whose cut set holds it;
    ``phase`` is True when the root is equivalent to the *complement* of the
    representative.
    """

    __slots__ = ("leaves", "tt", "root", "phase")

    def __init__(self, leaves: Tuple[int, ...], tt: Optional[TruthTable], root: int, phase: bool = False):
        self.leaves = leaves
        self.tt = tt
        self.root = root
        self.phase = phase

    def size(self) -> int:
        return len(self.leaves)

    def is_trivial(self) -> bool:
        return len(self.leaves) == 1 and self.leaves[0] == self.root

    def dominates(self, other: "Cut") -> bool:
        """True if this cut's leaves are a subset of the other's."""
        return set(self.leaves) <= set(other.leaves)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Cut)
            and self.leaves == other.leaves
            and self.root == other.root
            and self.phase == other.phase
        )

    def __hash__(self) -> int:
        return hash((self.leaves, self.root, self.phase))

    def __repr__(self) -> str:
        tt = self.tt.to_hex() if self.tt is not None else "?"
        mark = "!" if self.phase else ""
        return f"Cut({mark}{self.root}: {list(self.leaves)}, tt={tt})"
