"""Priority-cut enumeration (Mishchenko et al., ICCAD'07).

For every node of a network this computes up to ``cut_limit`` k-feasible cuts
by merging the fanin cut sets, filtering dominated cuts, and attaching the
exact cut function as a truth table.  Cut functions are what both the
K-LUT mapper (LUT content) and the ASIC mapper (Boolean matching against
library cells) consume, and what MCH's multi-strategy resynthesis
(Algorithm 2) rewrites.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..networks.base import GateType, LogicNetwork
from ..truth.truth_table import TruthTable, var_mask
from .cut import Cut

__all__ = ["enumerate_cuts", "expand_tt"]

# cache: (positions, num_vars) -> minterm index map
_EXPAND_CACHE: Dict[Tuple[Tuple[int, ...], int], Tuple[int, ...]] = {}


def expand_tt(tt: TruthTable, positions: Sequence[int], num_vars: int) -> int:
    """Re-express ``tt`` over a larger variable set.

    ``positions[i]`` gives the new index of old variable ``i``.  Returns raw
    bits over ``num_vars`` variables.
    """
    key = (tuple(positions), num_vars)
    idx = _EXPAND_CACHE.get(key)
    if idx is None:
        idx = []
        for m in range(1 << num_vars):
            src = 0
            for i, p in enumerate(key[0]):
                if (m >> p) & 1:
                    src |= 1 << i
            idx.append(src)
        idx = tuple(idx)
        _EXPAND_CACHE[key] = idx
    bits = 0
    src_bits = tt.bits
    for m, s in enumerate(idx):
        if (src_bits >> s) & 1:
            bits |= 1 << m
    return bits


def _merge_leaves(a: Tuple[int, ...], b: Tuple[int, ...], k: int):
    """Sorted union of two leaf tuples, or None if it exceeds ``k``."""
    out = []
    i = j = 0
    la, lb = len(a), len(b)
    while i < la and j < lb:
        if len(out) > k:
            return None
        if a[i] == b[j]:
            out.append(a[i])
            i += 1
            j += 1
        elif a[i] < b[j]:
            out.append(a[i])
            i += 1
        else:
            out.append(b[j])
            j += 1
    out.extend(a[i:])
    out.extend(b[j:])
    if len(out) > k:
        return None
    return tuple(out)


def _apply_gate(gate: GateType, vals: List[int], mask: int) -> int:
    if gate == GateType.AND:
        return vals[0] & vals[1]
    if gate == GateType.XOR:
        return vals[0] ^ vals[1]
    if gate == GateType.MAJ:
        a, b, c = vals
        return (a & b) | (a & c) | (b & c)
    if gate == GateType.XOR3:
        return vals[0] ^ vals[1] ^ vals[2]
    raise ValueError(f"unsupported gate {gate}")


def enumerate_cuts(ntk: LogicNetwork, k: int = 6, cut_limit: int = 8,
                   nodes: Sequence[int] = None, order: Sequence[int] = None,
                   choices: "Dict[int, List[Tuple[int, bool]]]" = None) -> List[List[Cut]]:
    """Compute priority cuts for every node.

    Returns ``cuts[node]`` — a list of at most ``cut_limit`` cuts, the first
    of which is always the trivial cut ``{node}`` for gate nodes at the end
    of the list (kept last so the mapper can always fall back on it).  Cut
    truth tables are exact.

    ``nodes`` optionally restricts computation to a node subset (plus their
    transitive fanin), used when only part of the network needs cuts.

    ``choices`` maps representative nodes to ``(choice_node, phase)`` pairs;
    when given (together with a compatible ``order``, normally
    :meth:`ChoiceNetwork.processing_order`), the cut set of each
    representative absorbs the cut sets of its choice nodes — the cut-merging
    step of the paper's Algorithm 3.  Merged cut truth tables are normalized
    to the representative's polarity, so downstream consumers never see the
    choice phase.
    """
    n_total = ntk.num_nodes()
    cuts: List[List[Cut]] = [[] for _ in range(n_total)]

    todo = None
    if nodes is not None:
        todo = set()
        stack = list(nodes)
        while stack:
            m = stack.pop()
            if m in todo:
                continue
            todo.add(m)
            stack.extend(f >> 1 for f in ntk.fanins(m))
        if choices is not None:
            raise ValueError("node restriction cannot be combined with choices")

    iteration = order if order is not None else range(n_total)
    for node in iteration:
        if todo is not None and node not in todo:
            continue
        t = ntk.node_type(node)
        if t == GateType.CONST:
            cuts[node] = [Cut((), TruthTable(0, 0), node)]
            continue
        if t == GateType.PI:
            cuts[node] = [Cut((node,), TruthTable.var(1, 0), node)]
            continue

        fis = ntk.fanins(node)
        fanin_cut_sets = [cuts[f >> 1] for f in fis]
        fanin_phases = [f & 1 for f in fis]
        new_cuts: List[Cut] = []
        seen = set()

        def consider(leaf_combo: List[Cut]):
            leaves: Tuple[int, ...] = ()
            for c in leaf_combo:
                merged = _merge_leaves(leaves, c.leaves, k)
                if merged is None:
                    return
                leaves = merged
            if leaves in seen:
                return
            seen.add(leaves)
            nv = len(leaves)
            pos_of = {leaf: i for i, leaf in enumerate(leaves)}
            mask = (1 << (1 << nv)) - 1
            vals = []
            for c, ph in zip(leaf_combo, fanin_phases):
                positions = [pos_of[leaf] for leaf in c.leaves]
                bits = expand_tt(c.tt, positions, nv)
                if ph:
                    bits ^= mask
                vals.append(bits)
            out = _apply_gate(t, vals, mask) & mask
            new_cuts.append(Cut(leaves, TruthTable(nv, out), node))

        # cartesian merge of fanin cut sets
        if len(fis) == 2:
            for c0 in fanin_cut_sets[0]:
                for c1 in fanin_cut_sets[1]:
                    consider([c0, c1])
        else:
            for c0 in fanin_cut_sets[0]:
                for c1 in fanin_cut_sets[1]:
                    for c2 in fanin_cut_sets[2]:
                        consider([c0, c1, c2])

        # drop dominated cuts (a cut is useless if another cut's leaves are a
        # strict subset)
        filtered: List[Cut] = []
        new_cuts.sort(key=lambda c: len(c.leaves))
        for c in new_cuts:
            if any(f.dominates(c) for f in filtered):
                continue
            filtered.append(c)

        filtered = filtered[: cut_limit - 1]

        # Algorithm 3 (lines 2-8): absorb choice-node cuts into the
        # representative's cut set, normalized to the representative's
        # polarity.  The representative keeps its own cut budget; choice cuts
        # get an equal extra budget so good structural cuts are never evicted
        # by candidate cuts (and vice versa).
        if choices is not None and node in choices:
            merged: List[Cut] = []
            seen_leafsets = {c.leaves for c in filtered}
            for ch_node, ch_phase in choices[node]:
                for c in cuts[ch_node]:
                    if len(c.leaves) == 1 and c.leaves[0] == node:
                        continue
                    if c.leaves in seen_leafsets:
                        continue
                    seen_leafsets.add(c.leaves)
                    tt = ~c.tt if ch_phase else c.tt
                    merged.append(Cut(c.leaves, tt, c.root, ch_phase))
            merged.sort(key=lambda c: len(c.leaves), reverse=True)
            filtered.extend(merged[:cut_limit])

        filtered.append(Cut((node,), TruthTable.var(1, 0), node))  # trivial
        cuts[node] = filtered

    return cuts
