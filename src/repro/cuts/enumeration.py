"""Priority-cut enumeration (Mishchenko et al., ICCAD'07).

For every node of a network this computes up to ``cut_limit`` k-feasible cuts
by merging the fanin cut sets, filtering dominated cuts, and attaching the
exact cut function as a truth table.  Cut functions are what both the
K-LUT mapper (LUT content) and the ASIC mapper (Boolean matching against
library cells) consume, and what MCH's multi-strategy resynthesis
(Algorithm 2) rewrites.

The actual enumeration engine lives in :mod:`repro.cuts.database` — a flat,
signature-indexed :class:`~repro.cuts.database.CutDatabase` shared by all
mapper passes.  :func:`enumerate_cuts` is the stable list-of-``Cut`` view of
that database.

This module also owns the truth-table *expansion* machinery (re-expressing a
cut function over a merged leaf set).  Expansion index maps are memoized in a
bounded LRU cache; :func:`expand_cache_stats` exposes hit/miss/eviction
counters so long-running services can monitor it.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Sequence, Tuple

from ..truth.truth_table import TruthTable
from .cut import Cut

__all__ = [
    "enumerate_cuts",
    "expand_tt",
    "expand_cache_stats",
    "set_expand_cache_limit",
    "clear_expand_cache",
]

# LRU cache: (positions, num_vars) -> per-source-minterm destination masks.
# Entry ``masks[s]`` is the OR of ``1 << m`` over all destination minterms
# ``m`` that read source minterm ``s``, so applying an expansion is one mask
# OR per *set* source bit instead of one Python iteration per destination
# minterm.
_EXPAND_CACHE: "OrderedDict[Tuple[Tuple[int, ...], int], Tuple[int, ...]]" = OrderedDict()
_EXPAND_CACHE_LIMIT = 8192
_EXPAND_STATS = {"hits": 0, "misses": 0, "evictions": 0}


def _expand_masks(key: Tuple[Tuple[int, ...], int]) -> Tuple[int, ...]:
    """Destination masks for one (positions, num_vars) expansion, LRU-cached."""
    cache = _EXPAND_CACHE
    masks = cache.get(key)
    if masks is not None:
        _EXPAND_STATS["hits"] += 1
        cache.move_to_end(key)
        return masks
    _EXPAND_STATS["misses"] += 1
    positions, num_vars = key
    out = [0] * (1 << len(positions))
    for m in range(1 << num_vars):
        src = 0
        for i, p in enumerate(positions):
            if (m >> p) & 1:
                src |= 1 << i
        out[src] |= 1 << m
    masks = tuple(out)
    cache[key] = masks
    while len(cache) > _EXPAND_CACHE_LIMIT:
        cache.popitem(last=False)
        _EXPAND_STATS["evictions"] += 1
    return masks


def _expand_bits(src_bits: int, positions: Tuple[int, ...], num_vars: int) -> int:
    """Raw-int core of :func:`expand_tt`; ``positions`` must be a tuple."""
    masks = _expand_masks((positions, num_vars))
    bits = 0
    while src_bits:
        low = src_bits & -src_bits
        bits |= masks[low.bit_length() - 1]
        src_bits ^= low
    return bits


def expand_tt(tt: TruthTable, positions: Sequence[int], num_vars: int) -> int:
    """Re-express ``tt`` over a larger variable set.

    ``positions[i]`` gives the new index of old variable ``i``.  Returns raw
    bits over ``num_vars`` variables.
    """
    return _expand_bits(tt.bits, tuple(positions), num_vars)


def expand_cache_stats() -> Dict[str, int]:
    """Counters of the expansion-mask LRU cache (the cache-stats hook)."""
    return {
        "hits": _EXPAND_STATS["hits"],
        "misses": _EXPAND_STATS["misses"],
        "evictions": _EXPAND_STATS["evictions"],
        "size": len(_EXPAND_CACHE),
        "limit": _EXPAND_CACHE_LIMIT,
    }


def set_expand_cache_limit(limit: int) -> None:
    """Re-bound the expansion cache; evicts LRU entries beyond ``limit``."""
    global _EXPAND_CACHE_LIMIT
    if limit < 1:
        raise ValueError("cache limit must be positive")
    _EXPAND_CACHE_LIMIT = limit
    while len(_EXPAND_CACHE) > _EXPAND_CACHE_LIMIT:
        _EXPAND_CACHE.popitem(last=False)
        _EXPAND_STATS["evictions"] += 1


def clear_expand_cache() -> None:
    """Drop all cached expansion masks and reset the counters."""
    _EXPAND_CACHE.clear()
    _EXPAND_STATS.update(hits=0, misses=0, evictions=0)


def _merge_leaves(a: Tuple[int, ...], b: Tuple[int, ...], k: int):
    """Sorted union of two leaf tuples, or None if it exceeds ``k``."""
    out = []
    i = j = 0
    la, lb = len(a), len(b)
    while i < la and j < lb:
        if len(out) > k:
            return None
        if a[i] == b[j]:
            out.append(a[i])
            i += 1
            j += 1
        elif a[i] < b[j]:
            out.append(a[i])
            i += 1
        else:
            out.append(b[j])
            j += 1
    out.extend(a[i:])
    out.extend(b[j:])
    if len(out) > k:
        return None
    return tuple(out)


def enumerate_cuts(ntk, k: int = 6, cut_limit: int = 8,
                   nodes: Sequence[int] = None, order: Sequence[int] = None,
                   choices: "Dict[int, List[Tuple[int, bool]]]" = None) -> List[List[Cut]]:
    """Compute priority cuts for every node.

    Returns ``cuts[node]`` — a list of at most ``cut_limit`` priority cuts
    followed by the trivial cut ``{node}``, which for gate nodes is **always
    the last element** of the list (kept last so the mapper can always fall
    back on it without it ever displacing a real cut from the budget).  Cut
    truth tables are exact.

    ``nodes`` optionally restricts computation to a node subset (plus their
    transitive fanin), used when only part of the network needs cuts.

    ``choices`` maps representative nodes to ``(choice_node, phase)`` pairs;
    when given (together with a compatible ``order``, normally
    :meth:`ChoiceNetwork.processing_order`), the cut set of each
    representative absorbs the cut sets of its choice nodes — the cut-merging
    step of the paper's Algorithm 3.  Merged cut truth tables are normalized
    to the representative's polarity, so downstream consumers never see the
    choice phase.
    """
    from .database import CutDatabase

    db = CutDatabase(ntk, k=k, cut_limit=cut_limit, nodes=nodes, order=order,
                     choices=choices)
    return db.cut_lists()
