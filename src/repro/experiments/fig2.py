"""Experiment E2 — Fig. 2: the motivating demo circuit.

The paper's Verilog demo::

    module demo(input [1:0] a, input [1:0] b, output res);
      assign res = (a + b) > 2'b00;
    endmodule

Technology-independent optimization *shrinks* the AIG but *worsens* the
mapped netlist; traditional DCH choices cannot recover, while the
MCH-based flow does.  We rebuild the circuit, run the three flows and
report the same (nodes, levels, choices, area, delay) tuples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..circuits.wordlevel import add_words
from ..core import MchParams, build_dch, build_mch
from ..mapping import asic_map
from ..networks import Aig, Mig, Xmg
from .common import batch_map, format_table, preoptimize

__all__ = ["demo_circuit", "run_fig2", "format_fig2"]

FLOW_ORDER = ["original", "optimized", "dch", "mch"]


@dataclass
class Fig2Row:
    flow: str
    nodes: int
    choices: int
    area: float
    delay: float


def demo_circuit() -> Aig:
    """(a + b) > 0 for two 2-bit inputs — the paper's Fig. 2 module."""
    ntk = Aig()
    a = [ntk.create_pi(f"a{i}") for i in range(2)]
    b = [ntk.create_pi(f"b{i}") for i in range(2)]
    total = add_words(ntk, a, b)
    ntk.create_po(ntk.create_nary_or(total), "res")
    return ntk


def _flow_task(task, ctx):
    """One of the four demo flows (sharded by ``run_fig2``)."""
    label, ntk, opt = task
    if label == "original":
        nl = asic_map(ntk, objective="delay")
        return label, Fig2Row("original", ntk.num_gates(), 0, nl.area(), nl.delay())
    if label == "optimized":
        nl = asic_map(opt, objective="delay")
        return label, Fig2Row("optimized (traditional)", opt.num_gates(), 0,
                              nl.area(), nl.delay())
    if label == "dch":
        dch = build_dch([opt, ntk])
        nl = asic_map(dch, objective="delay")
        return label, Fig2Row("DCH for map", dch.ntk.num_gates(),
                              dch.num_choices(), nl.area(), nl.delay())
    mch = build_mch(opt, MchParams(representations=(Mig, Xmg), ratio=0.8))
    nl = asic_map(mch, objective="delay")
    return label, Fig2Row("MCH for map", mch.ntk.num_gates(),
                          mch.num_choices(), nl.area(), nl.delay())


def run_fig2(jobs: int = 1) -> Dict[str, Fig2Row]:
    """Run the four demo flows; returns flow label -> row (in figure order).

    The demo circuit and its pre-optimization are computed once and shared
    by all four tasks.
    """
    ntk = demo_circuit()
    opt = preoptimize(ntk, rounds=2)
    tasks = [(label, ntk, opt) for label in FLOW_ORDER]
    return dict(batch_map(tasks, _flow_task, jobs=jobs))


def format_fig2(rows: Dict[str, Fig2Row]) -> str:
    return format_table(
        ["flow", "nodes", "choices", "area", "delay"],
        [[r.flow, r.nodes, r.choices, r.area, r.delay] for r in rows.values()],
        title="Fig. 2 — demo circuit through the flows",
    )
