"""Experiment E4 — Table II: the EPFL best-results 6-LUT challenge protocol.

The paper strashes the published best 6-LUT results back into redundant AIGs
and shows that the MCH mapper alone (no logic optimization, no post-mapping
optimization) recovers or beats the record LUT counts, usually with better
levels.

Without the published record netlists we reproduce the *protocol* against
our own best-known results: a heavily optimized network is LUT-mapped to
give the "best known" reference, the LUT network is strashed back into a
redundant AIG (exactly what ABC's ``strash`` does to a record entry), and
the plain mapper vs the MCH (AIG+XMG) mapper remap it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..circuits import build
from ..core import MchParams, build_mch
from ..mapping import graph_map_iterate, lut_map
from ..networks import Aig, Xmg
from .common import batch_map, experiment_context, format_table, preoptimize

__all__ = ["DEFAULT_CIRCUITS", "run_table2", "format_table2"]

DEFAULT_CIRCUITS = ["sin", "sqrt", "square", "hyp", "voter"]


@dataclass
class Table2Row:
    best_luts: int
    best_levels: int
    strash_luts: int
    strash_levels: int
    mch_luts: int
    mch_levels: int


def _record_task(task, ctx):
    """One Table-II circuit's challenge protocol as a batch task."""
    name, scale, k = task
    ntk = build(name, scale)
    # our stand-in for the published record: optimize hard, then area-map
    optimized = graph_map_iterate(preoptimize(ntk, rounds=2, context=ctx), Xmg,
                                  objective="area", max_rounds=4)
    best = lut_map(optimized, k=k, objective="area")

    # challenge protocol: strash the record back to a redundant AIG
    redundant = best.to_logic_network(Aig)

    plain = lut_map(redundant, k=k, objective="area")
    # wide candidate generation (6-input cuts, larger MFFCs) — the LUT
    # challenge rewards structure recovery over speed
    mch = build_mch(redundant, MchParams(
        representations=(Xmg,), ratio=1.5, cut_size=6,
        max_cuts_per_node=4, mffc_max_pis=10,
    ))
    with_choices = lut_map(mch, k=k, objective="area")

    return name, Table2Row(
        best_luts=best.num_luts(), best_levels=best.depth(),
        strash_luts=plain.num_luts(), strash_levels=plain.depth(),
        mch_luts=with_choices.num_luts(), mch_levels=with_choices.depth(),
    )


def run_table2(names: Optional[Sequence[str]] = None, scale: str = "small",
               k: int = 6, jobs: int = 1) -> Dict[str, Table2Row]:
    """Run the Table-II challenge protocol; returns circuit -> row.

    ``jobs>1`` shards the circuits across worker processes.
    """
    tasks = [(name, scale, k) for name in (names or DEFAULT_CIRCUITS)]
    pairs = batch_map(tasks, _record_task, jobs=jobs,
                      context=experiment_context())
    return dict(pairs)


def format_table2(rows: Dict[str, Table2Row]) -> str:
    return format_table(
        ["circuit", "best.luts", "best.lev", "strash.luts", "strash.lev",
         "mch.luts", "mch.lev"],
        [[name, r.best_luts, r.best_levels, r.strash_luts, r.strash_levels,
          r.mch_luts, r.mch_levels] for name, r in rows.items()],
        title="Table II — EPFL best-result 6-LUT challenge protocol",
    )
