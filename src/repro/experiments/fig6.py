"""Experiment E5 — Fig. 6: MCH-based graph-mapping logic optimization.

Protocol (Section IV-B): iterate XMG graph mapping until it stops improving
(the *Baseline* local optimum); then build mixed choice networks (MIG + XMG
candidates) and keep graph-mapping through the choices until convergence
(*MCH for Graph Map*).  Both results are then 6-LUT-mapped (*MCH for LUT
Map*).  Reported numbers are percent improvements of MCH over the baseline
in node count and level, per circuit, plus geometric means.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..circuits import ALL_BENCHMARKS, build
from ..core import MchParams, build_mch
from ..mapping import graph_map, graph_map_iterate, lut_map
from ..networks import Mig, Xmg
from .common import format_table, geomean, improvement

__all__ = ["run_fig6", "format_fig6", "summarize_fig6"]


@dataclass
class Fig6Row:
    base_nodes: int
    base_levels: int
    mch_nodes: int
    mch_levels: int
    base_luts: int
    base_lut_levels: int
    mch_luts: int
    mch_lut_levels: int

    @property
    def node_gain(self) -> float:
        return improvement(self.base_nodes, self.mch_nodes)

    @property
    def level_gain(self) -> float:
        return improvement(self.base_levels, self.mch_levels)

    @property
    def lut_gain(self) -> float:
        return improvement(self.base_luts, self.mch_luts)

    @property
    def lut_level_gain(self) -> float:
        return improvement(self.base_lut_levels, self.mch_lut_levels)


def _mch_graph_map_iterate(ntk, max_rounds: int = 6):
    """Iterate choice-driven XMG graph mapping to a fixpoint."""
    current = ntk
    best = (current.num_gates(), current.depth())
    for _ in range(max_rounds):
        choices = build_mch(current, MchParams(representations=(Mig, Xmg), ratio=1.0))
        remapped = graph_map(choices, Xmg, objective="area")
        score = (remapped.num_gates(), remapped.depth())
        if score >= best:
            break
        current, best = remapped, score
    return current


def run_fig6(names: Optional[Sequence[str]] = None, scale: str = "small",
             k: int = 6) -> Dict[str, Fig6Row]:
    out: Dict[str, Fig6Row] = {}
    for name in names or ALL_BENCHMARKS:
        ntk = build(name, scale)
        baseline = graph_map_iterate(ntk, Xmg, objective="area", max_rounds=8)
        improved = _mch_graph_map_iterate(baseline)
        base_lut = lut_map(baseline, k=k, objective="area")
        mch_lut = lut_map(improved, k=k, objective="area")
        out[name] = Fig6Row(
            base_nodes=baseline.num_gates(), base_levels=baseline.depth(),
            mch_nodes=improved.num_gates(), mch_levels=improved.depth(),
            base_luts=base_lut.num_luts(), base_lut_levels=base_lut.depth(),
            mch_luts=mch_lut.num_luts(), mch_lut_levels=mch_lut.depth(),
        )
    return out


def summarize_fig6(rows: Dict[str, Fig6Row]) -> Dict[str, float]:
    """Geomean improvements, matching the paper's star markers."""
    def gm(ratios):
        vals = [max(r, 1e-9) for r in ratios]
        return (1.0 - geomean(vals)) * 100.0

    return {
        "graph_node_gain_%": gm(r.mch_nodes / max(r.base_nodes, 1) for r in rows.values()),
        "graph_level_gain_%": gm(r.mch_levels / max(r.base_levels, 1) for r in rows.values()),
        "lut_node_gain_%": gm(r.mch_luts / max(r.base_luts, 1) for r in rows.values()),
        "lut_level_gain_%": gm(r.mch_lut_levels / max(r.base_lut_levels, 1) for r in rows.values()),
    }


def format_fig6(rows: Dict[str, Fig6Row]) -> str:
    table = format_table(
        ["circuit", "base.xmg", "base.lev", "mch.xmg", "mch.lev",
         "node.gain%", "lev.gain%", "lut.gain%", "lutlev.gain%"],
        [[name, r.base_nodes, r.base_levels, r.mch_nodes, r.mch_levels,
          r.node_gain, r.level_gain, r.lut_gain, r.lut_level_gain]
         for name, r in rows.items()],
        title="Fig. 6 — MCH-based graph-map optimization",
    )
    s = summarize_fig6(rows)
    extra = ("\nGeomean gains: graph map nodes {graph_node_gain_%:.2f}% / levels "
             "{graph_level_gain_%:.2f}%; LUT map nodes {lut_node_gain_%:.2f}% / "
             "levels {lut_level_gain_%:.2f}%").format(**s)
    return table + extra
