"""Shared utilities for the experiment drivers (geomean, tables, timing).

Since the flow API landed the drivers also share their *wiring* here:
:func:`preoptimize` is the protocol's "simulate the logic optimization
process" step as a flow spec, and :func:`scripted` runs any flow script —
both thread one :class:`~repro.flow.context.FlowContext` through the whole
experiment so mapping sessions, pattern pools and NPN caches are reused
across circuits and configurations.
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager
from typing import Dict, Iterable, List, Sequence

__all__ = ["geomean", "improvement", "Timer", "format_table",
           "experiment_context", "preoptimize", "scripted", "batch_map"]


def experiment_context():
    """A fresh :class:`~repro.flow.context.FlowContext` for one experiment."""
    from ..flow import FlowContext

    return FlowContext()


def preoptimize(ntk, rounds: int = 2, context=None):
    """The paper's pre-mapping optimization: the ``compress2rs`` flow spec."""
    from ..flow import FlowRunner, compress2rs_flow

    return FlowRunner(context).run(ntk, compress2rs_flow(rounds=rounds)).network


def scripted(ntk, flow, context=None, **spec_kwargs):
    """Run any flow (script text / spec name / Flow) and return the network."""
    from ..flow import FlowRunner, resolve_flow

    return FlowRunner(context).run(ntk, resolve_flow(flow, **spec_kwargs)).network


def batch_map(tasks, fn, jobs: int = 1, context=None):
    """Fan ``fn(task, ctx)`` over tasks through the batch layer, in order.

    The uniform parallelism hook of the experiment drivers: ``jobs=1`` runs
    every task against one shared context (``context`` or a fresh one) —
    the historical sequential semantics — while ``jobs>1`` shards tasks
    across worker processes, each with its own warm context.  ``fn`` must
    be a module-level callable and the tasks picklable.
    """
    from ..batch import BatchRunner

    runner = BatchRunner(jobs=jobs,
                         context=context if jobs == 1 else None)
    return runner.map(tasks, fn)


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (ignores non-positive entries, like the paper's tables)."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def improvement(baseline: float, value: float) -> float:
    """Relative gain in percent: positive = better (smaller) than baseline."""
    if baseline <= 0:
        return 0.0
    return (baseline - value) / baseline * 100.0


class Timer:
    """Context-manager stopwatch: ``with Timer() as t: ...; t.seconds``."""

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        self.seconds = 0.0
        return self

    def __exit__(self, *exc) -> None:
        self.seconds = time.perf_counter() - self._start


def format_table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "") -> str:
    """Render an aligned plain-text table (used by benches and examples)."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append([
            f"{v:.2f}" if isinstance(v, float) else str(v) for v in row
        ])
    widths = [max(len(r[c]) for r in cells) for c in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(cells[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)
