"""Shared utilities for the experiment drivers (geomean, tables, timing)."""

from __future__ import annotations

import math
import time
from contextlib import contextmanager
from typing import Dict, Iterable, List, Sequence

__all__ = ["geomean", "improvement", "Timer", "format_table"]


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (ignores non-positive entries, like the paper's tables)."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def improvement(baseline: float, value: float) -> float:
    """Relative gain in percent: positive = better (smaller) than baseline."""
    if baseline <= 0:
        return 0.0
    return (baseline - value) / baseline * 100.0


class Timer:
    """Context-manager stopwatch: ``with Timer() as t: ...; t.seconds``."""

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        self.seconds = 0.0
        return self

    def __exit__(self, *exc) -> None:
        self.seconds = time.perf_counter() - self._start


def format_table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "") -> str:
    """Render an aligned plain-text table (used by benches and examples)."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append([
            f"{v:.2f}" if isinstance(v, float) else str(v) for v in row
        ])
    widths = [max(len(r[c]) for r in cells) for c in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(cells[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)
