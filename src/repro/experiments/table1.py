"""Experiment E3 — Table I: ASIC technology mapping on the EPFL suite.

Reproduces the paper's six-column comparison:

1. ``baseline``      — delay-oriented mapping of the optimized AIG (ABC's
   ``&nf`` analogue);
2. ``dch``           — traditional structural choices, delay mapping
   (``&dch -m; &nf``);
3. ``dch_area``      — traditional structural choices, area mapping
   (``dch; map -a``);
4. ``mch_balanced``  — MCH from the input AIG alone (path-classified
   level/area candidate strategies), delay mapping;
5. ``mch_delay``     — MCH after XAG conversion (XAG + AIG choices, widened
   critical region r=0.6), delay mapping;
6. ``mch_area``      — MCH with XMG + AIG choices, no critical region,
   area mapping.

Every circuit is first pushed through the ``compress2rs`` analogue, exactly
like the paper "simulates the logic optimization process" before mapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..circuits import ALL_BENCHMARKS, build
from ..core import MchParams, build_dch, build_mch
from ..mapping import asic_map, graph_map
from ..networks import Aig, Xag, Xmg
from .common import (
    Timer,
    batch_map,
    experiment_context,
    format_table,
    geomean,
    improvement,
    preoptimize,
)

__all__ = ["CONFIG_ORDER", "run_circuit", "run_table1", "summarize", "format_results"]

CONFIG_ORDER = ["baseline", "dch", "dch_area", "mch_balanced", "mch_delay", "mch_area"]


@dataclass
class MappingResultRow:
    area: float
    delay: float
    seconds: float


def run_circuit(ntk: Aig, configs: Optional[Sequence[str]] = None,
                opt_rounds: int = 2, context=None) -> Dict[str, MappingResultRow]:
    """Run the Table-I configurations on one circuit; returns config -> row.

    ``context`` threads one shared :class:`~repro.flow.context.FlowContext`
    (engines, caches) through the pre-optimization and the choice builds.
    """
    configs = list(configs or CONFIG_ORDER)
    ctx = context if context is not None else experiment_context()
    out: Dict[str, MappingResultRow] = {}
    opt = preoptimize(ntk, rounds=opt_rounds, context=ctx)

    if "baseline" in configs:
        with Timer() as t:
            nl = asic_map(opt, objective="delay")
        out["baseline"] = MappingResultRow(nl.area(), nl.delay(), t.seconds)

    if "dch" in configs or "dch_area" in configs:
        with Timer() as t_build:
            snapshots = [opt, preoptimize(opt, rounds=2, context=ctx), ntk]
            dch = build_dch(snapshots, sat_verify=True)
            # One session: the delay- and area-oriented runs share the cut
            # database.  Prebuild it here (k=4 matches the ASIC mapper's pin
            # bound) so both configs' mapping times stay comparable — the
            # shared enumeration is charged to the shared build time.
            session = ctx.mapping_session(dch)
            session.cut_database(4, 8)
        if "dch" in configs:
            with Timer() as t:
                nl = asic_map(session, objective="delay")
            out["dch"] = MappingResultRow(nl.area(), nl.delay(), t_build.seconds + t.seconds)
        if "dch_area" in configs:
            with Timer() as t:
                nl = asic_map(session, objective="area")
            out["dch_area"] = MappingResultRow(nl.area(), nl.delay(), t_build.seconds + t.seconds)

    if "mch_balanced" in configs:
        with Timer() as t:
            mch = build_mch(opt, MchParams(representations=(Aig,), ratio=1.0))
            nl = asic_map(mch, objective="delay")
        out["mch_balanced"] = MappingResultRow(nl.area(), nl.delay(), t.seconds)

    if "mch_delay" in configs:
        with Timer() as t:
            xag = graph_map(opt, Xag, objective="delay")
            mch = build_mch(xag, MchParams(representations=(Xag, Aig), ratio=0.6))
            nl = asic_map(mch, objective="delay")
        out["mch_delay"] = MappingResultRow(nl.area(), nl.delay(), t.seconds)

    if "mch_area" in configs:
        with Timer() as t:
            mch = build_mch(opt, MchParams(representations=(Xmg, Aig), ratio=1.5))
            nl = asic_map(mch, objective="area")
        out["mch_area"] = MappingResultRow(nl.area(), nl.delay(), t.seconds)

    return out


def _circuit_task(task, ctx):
    """One Table-I circuit as a batch task (sharded by ``run_table1``)."""
    name, scale, configs, opt_rounds = task
    return name, run_circuit(build(name, scale), configs=configs,
                             opt_rounds=opt_rounds, context=ctx)


def run_table1(names: Optional[Sequence[str]] = None, scale: str = "small",
               configs: Optional[Sequence[str]] = None,
               opt_rounds: int = 2, jobs: int = 1) -> Dict[str, Dict[str, MappingResultRow]]:
    """Run Table I over the suite; returns circuit -> config -> row.

    ``jobs=1`` threads one engine context across the whole table (the
    historical behavior); ``jobs>1`` shards circuits across worker
    processes, each with its own warm context.
    """
    names = list(names or ALL_BENCHMARKS)
    tasks = [(name, scale, tuple(configs) if configs else None, opt_rounds)
             for name in names]
    pairs = batch_map(tasks, _circuit_task, jobs=jobs,
                      context=experiment_context())
    return dict(pairs)


def summarize(results: Dict[str, Dict[str, MappingResultRow]]) -> Dict[str, Dict[str, float]]:
    """Geomean per config plus improvement over the baseline config."""
    configs = [c for c in CONFIG_ORDER if any(c in r for r in results.values())]
    summary: Dict[str, Dict[str, float]] = {}
    for cfg in configs:
        rows = [r[cfg] for r in results.values() if cfg in r]
        summary[cfg] = {
            "area": geomean(r.area for r in rows),
            "delay": geomean(r.delay for r in rows),
            "time": geomean(max(r.seconds, 1e-3) for r in rows),
        }
    if "baseline" in summary:
        base = summary["baseline"]
        for cfg in configs:
            summary[cfg]["area_gain_%"] = improvement(base["area"], summary[cfg]["area"])
            summary[cfg]["delay_gain_%"] = improvement(base["delay"], summary[cfg]["delay"])
    return summary


def format_results(results: Dict[str, Dict[str, MappingResultRow]]) -> str:
    """Render the full Table-I text block (per-circuit rows + summary)."""
    configs = [c for c in CONFIG_ORDER if any(c in r for r in results.values())]
    headers = ["circuit"]
    for cfg in configs:
        headers += [f"{cfg}.area", f"{cfg}.delay", f"{cfg}.t(s)"]
    rows = []
    for name, per_cfg in results.items():
        row: List = [name]
        for cfg in configs:
            r = per_cfg.get(cfg)
            row += [r.area, r.delay, r.seconds] if r else ["-", "-", "-"]
        rows.append(row)
    summary = summarize(results)
    geo_row: List = ["GEOMEAN"]
    gain_row: List = ["GAIN vs &nf %"]
    for cfg in configs:
        geo_row += [summary[cfg]["area"], summary[cfg]["delay"], summary[cfg]["time"]]
        gain_row += [summary[cfg].get("area_gain_%", 0.0),
                     summary[cfg].get("delay_gain_%", 0.0), ""]
    rows.append(geo_row)
    rows.append(gain_row)
    return format_table(headers, rows, title="Table I — ASIC technology mapping")
