"""Experiment drivers reproducing every table and figure of the paper."""

from .common import Timer, format_table, geomean, improvement
from .fig1 import format_fig1, run_fig1
from .fig2 import demo_circuit, format_fig2, run_fig2
from .table1 import CONFIG_ORDER, format_results, run_circuit, run_table1, summarize
from .table2 import format_table2, run_table2
from .fig6 import format_fig6, run_fig6, summarize_fig6
from .ablation import (
    merge_ablation,
    ratio_sweep,
    representation_ablation,
    strategy_ablation,
)

__all__ = [
    "Timer",
    "format_table",
    "geomean",
    "improvement",
    "run_fig1",
    "format_fig1",
    "demo_circuit",
    "run_fig2",
    "format_fig2",
    "CONFIG_ORDER",
    "run_circuit",
    "run_table1",
    "summarize",
    "format_results",
    "run_table2",
    "format_table2",
    "run_fig6",
    "format_fig6",
    "summarize_fig6",
    "ratio_sweep",
    "merge_ablation",
    "representation_ablation",
    "strategy_ablation",
]
