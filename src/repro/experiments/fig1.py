"""Experiment E1 — Fig. 1: one circuit, four representations, four mappings.

The paper's motivating figure converts the EPFL ``max`` circuit into AIG,
XAG, MIG and XMG and maps each both delay- and area-oriented with the ASAP7
library, showing that no single representation wins everywhere.  We
reproduce it with graph mapping as the conversion engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Type

from ..circuits import build
from ..mapping import asic_map, graph_map
from ..networks import Aig, LogicNetwork, Mig, Xag, Xmg
from .common import batch_map, format_table, preoptimize

__all__ = ["REPRESENTATIONS", "run_fig1", "format_fig1"]

REPRESENTATIONS: Dict[str, Type[LogicNetwork]] = {
    "AIG": Aig,
    "XAG": Xag,
    "MIG": Mig,
    "XMG": Xmg,
}


@dataclass
class Fig1Row:
    rep: str
    gates: int
    depth: int
    delay_area: float
    delay_delay: float
    area_area: float
    area_delay: float


def _rep_task(task, ctx):
    """Convert-and-map one representation (sharded by ``run_fig1``)."""
    rep_name, ntk = task
    converted = graph_map(ntk, REPRESENTATIONS[rep_name], objective="area")
    nl_d = asic_map(converted, objective="delay")
    nl_a = asic_map(converted, objective="area")
    return rep_name, Fig1Row(
        rep=rep_name,
        gates=converted.num_gates(),
        depth=converted.depth(),
        delay_area=nl_d.area(),
        delay_delay=nl_d.delay(),
        area_area=nl_a.area(),
        area_delay=nl_a.delay(),
    )


def run_fig1(circuit: str = "max", scale: str = "small",
             reps: Optional[Sequence[str]] = None,
             jobs: int = 1) -> Dict[str, Fig1Row]:
    """Map one circuit from each representation; returns rep -> row.

    The shared pre-optimized network is computed once; ``jobs>1`` fans the
    per-representation conversions and mappings across worker processes.
    """
    ntk = preoptimize(build(circuit, scale), rounds=2)
    tasks = [(rep_name, ntk) for rep_name in (reps or REPRESENTATIONS)]
    return dict(batch_map(tasks, _rep_task, jobs=jobs))


def format_fig1(rows: Dict[str, Fig1Row], circuit: str = "max") -> str:
    return format_table(
        ["rep", "gates", "depth", "delayMap.area", "delayMap.delay",
         "areaMap.area", "areaMap.delay"],
        [[r.rep, r.gates, r.depth, r.delay_area, r.delay_delay, r.area_area, r.area_delay]
         for r in rows.values()],
        title=f"Fig. 1 — '{circuit}' mapped from each representation",
    )
