"""Ablations A1/A2 — the design choices DESIGN.md calls out.

* sweep of the critical-path ratio ``r`` (how wide the level-oriented
  region is);
* sweep of the mapper cut limit ``l`` with and without choice-cut merging
  (Algorithm 3 on/off);
* candidate representation set (AIG-only vs XMG-only vs mixed);
* strategy library composition (level-only vs area-only vs both).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..circuits import build
from ..core import MchParams, build_mch
from ..mapping import asic_map, lut_map
from ..networks import Aig, Xag, Xmg
from ..synthesis import AREA_STRATEGY, LEVEL_STRATEGY, StrategyLibrary
from .common import batch_map, experiment_context, format_table, preoptimize

__all__ = ["ratio_sweep", "merge_ablation", "representation_ablation", "strategy_ablation"]


def _ratio_task(task, ctx):
    ntk, r = task
    mch = build_mch(ntk, MchParams(representations=(Xmg, Aig), ratio=r))
    nl = asic_map(mch, objective="delay")
    return {
        "ratio": r,
        "choices": mch.num_choices(),
        "area": nl.area(),
        "delay": nl.delay(),
    }


def ratio_sweep(circuit: str = "adder", scale: str = "small",
                ratios: Sequence[float] = (0.0, 0.5, 0.85, 1.0, 1.5),
                jobs: int = 1) -> List[dict]:
    """MCH quality as a function of the critical-path ratio ``r``.

    The pre-optimized network is shared; ``jobs>1`` fans the per-ratio
    choice builds and mappings across worker processes.
    """
    ntk = preoptimize(build(circuit, scale), rounds=2)
    return batch_map([(ntk, r) for r in ratios], _ratio_task, jobs=jobs)


def _merge_task(task, ctx):
    mch, l = task
    # per-task sessions come from the (per-worker) context: within one
    # worker the cut-limit sweep still reuses processing order and fanout
    # estimates (the per-limit cut databases differ regardless)
    with_merge = lut_map(ctx.mapping_session(mch), k=6, cut_limit=l,
                         objective="area")
    # Algorithm 3 off: same network and candidates, but the mapper cannot
    # see choice cuts (classes erased)
    no_merge = lut_map(ctx.mapping_session(mch.ntk), k=6, cut_limit=l,
                       objective="area")
    return {
        "cut_limit": l,
        "merged.luts": with_merge.num_luts(),
        "merged.depth": with_merge.depth(),
        "unmerged.luts": no_merge.num_luts(),
        "unmerged.depth": no_merge.depth(),
    }


def merge_ablation(circuit: str = "adder", scale: str = "small",
                   cut_limits: Sequence[int] = (4, 8, 12),
                   jobs: int = 1) -> List[dict]:
    """Effect of the cut limit ``l`` and of choice-cut merging (Alg. 3)."""
    ntk = preoptimize(build(circuit, scale), rounds=2)
    mch = build_mch(ntk, MchParams(representations=(Xmg, Aig), ratio=1.0))
    return batch_map([(mch, l) for l in cut_limits], _merge_task, jobs=jobs,
                     context=experiment_context())


_REP_VARIANTS = [("AIG", (Aig,)), ("XAG", (Xag,)), ("XMG", (Xmg,)),
                 ("AIG+XMG", (Aig, Xmg)), ("AIG+XAG+XMG", (Aig, Xag, Xmg))]


def _rep_task(task, ctx):
    ntk, label, reps = task
    mch = build_mch(ntk, MchParams(representations=reps, ratio=1.0))
    lut = lut_map(mch, k=6, objective="delay")
    return {
        "reps": label,
        "choices": mch.num_choices(),
        "luts": lut.num_luts(),
        "depth": lut.depth(),
    }


def representation_ablation(circuit: str = "adder", scale: str = "small",
                            jobs: int = 1) -> List[dict]:
    """Which candidate vocabulary drives the gains?"""
    ntk = preoptimize(build(circuit, scale), rounds=2)
    return batch_map([(ntk, label, reps) for label, reps in _REP_VARIANTS],
                     _rep_task, jobs=jobs)


def _strategy_variant(label: str) -> StrategyLibrary:
    if label == "level-only":
        return StrategyLibrary(level=LEVEL_STRATEGY, area=LEVEL_STRATEGY)
    if label == "area-only":
        return StrategyLibrary(level=AREA_STRATEGY, area=AREA_STRATEGY)
    return StrategyLibrary()


def _strategy_task(task, ctx):
    ntk, label = task
    mch = build_mch(ntk, MchParams(representations=(Xmg, Aig), ratio=1.0,
                                   strategies=_strategy_variant(label)))
    nl = asic_map(mch, objective="delay")
    return {
        "strategies": label,
        "choices": mch.num_choices(),
        "area": nl.area(),
        "delay": nl.delay(),
    }


def strategy_ablation(circuit: str = "adder", scale: str = "small",
                      jobs: int = 1) -> List[dict]:
    """Level-only vs area-only vs the full multi-strategy library."""
    ntk = preoptimize(build(circuit, scale), rounds=2)
    labels = ["level-only", "area-only", "multi (paper)"]
    return batch_map([(ntk, label) for label in labels], _strategy_task,
                     jobs=jobs)
