"""Ablations A1/A2 — the design choices DESIGN.md calls out.

* sweep of the critical-path ratio ``r`` (how wide the level-oriented
  region is);
* sweep of the mapper cut limit ``l`` with and without choice-cut merging
  (Algorithm 3 on/off);
* candidate representation set (AIG-only vs XMG-only vs mixed);
* strategy library composition (level-only vs area-only vs both).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..circuits import build
from ..core import MchParams, build_mch
from ..mapping import asic_map, lut_map
from ..networks import Aig, Xag, Xmg
from ..synthesis import AREA_STRATEGY, LEVEL_STRATEGY, StrategyLibrary
from .common import experiment_context, format_table, preoptimize

__all__ = ["ratio_sweep", "merge_ablation", "representation_ablation", "strategy_ablation"]


def ratio_sweep(circuit: str = "adder", scale: str = "small",
                ratios: Sequence[float] = (0.0, 0.5, 0.85, 1.0, 1.5)) -> List[dict]:
    """MCH quality as a function of the critical-path ratio ``r``."""
    ntk = preoptimize(build(circuit, scale), rounds=2)
    rows = []
    for r in ratios:
        mch = build_mch(ntk, MchParams(representations=(Xmg, Aig), ratio=r))
        nl = asic_map(mch, objective="delay")
        rows.append({
            "ratio": r,
            "choices": mch.num_choices(),
            "area": nl.area(),
            "delay": nl.delay(),
        })
    return rows


def merge_ablation(circuit: str = "adder", scale: str = "small",
                   cut_limits: Sequence[int] = (4, 8, 12)) -> List[dict]:
    """Effect of the cut limit ``l`` and of choice-cut merging (Alg. 3)."""
    ntk = preoptimize(build(circuit, scale), rounds=2)
    mch = build_mch(ntk, MchParams(representations=(Xmg, Aig), ratio=1.0))
    # shared sessions: the cut-limit sweep reuses processing order and fanout
    # estimates across runs (the per-limit cut databases still differ)
    ctx = experiment_context()
    merged_session = ctx.mapping_session(mch)
    plain_session = ctx.mapping_session(mch.ntk)
    rows = []
    for l in cut_limits:
        with_merge = lut_map(merged_session, k=6, cut_limit=l, objective="area")
        # Algorithm 3 off: same network and candidates, but the mapper cannot
        # see choice cuts (classes erased)
        no_merge = lut_map(plain_session, k=6, cut_limit=l, objective="area")
        rows.append({
            "cut_limit": l,
            "merged.luts": with_merge.num_luts(),
            "merged.depth": with_merge.depth(),
            "unmerged.luts": no_merge.num_luts(),
            "unmerged.depth": no_merge.depth(),
        })
    return rows


def representation_ablation(circuit: str = "adder", scale: str = "small") -> List[dict]:
    """Which candidate vocabulary drives the gains?"""
    ntk = preoptimize(build(circuit, scale), rounds=2)
    rows = []
    for label, reps in [("AIG", (Aig,)), ("XAG", (Xag,)), ("XMG", (Xmg,)),
                        ("AIG+XMG", (Aig, Xmg)), ("AIG+XAG+XMG", (Aig, Xag, Xmg))]:
        mch = build_mch(ntk, MchParams(representations=reps, ratio=1.0))
        lut = lut_map(mch, k=6, objective="delay")
        rows.append({
            "reps": label,
            "choices": mch.num_choices(),
            "luts": lut.num_luts(),
            "depth": lut.depth(),
        })
    return rows


def strategy_ablation(circuit: str = "adder", scale: str = "small") -> List[dict]:
    """Level-only vs area-only vs the full multi-strategy library."""
    ntk = preoptimize(build(circuit, scale), rounds=2)
    variants = {
        "level-only": StrategyLibrary(level=LEVEL_STRATEGY, area=LEVEL_STRATEGY),
        "area-only": StrategyLibrary(level=AREA_STRATEGY, area=AREA_STRATEGY),
        "multi (paper)": StrategyLibrary(),
    }
    rows = []
    for label, lib in variants.items():
        mch = build_mch(ntk, MchParams(representations=(Xmg, Aig), ratio=1.0,
                                       strategies=lib))
        nl = asic_map(mch, objective="delay")
        rows.append({
            "strategies": label,
            "choices": mch.num_choices(),
            "area": nl.area(),
            "delay": nl.delay(),
        })
    return rows
