"""Structure builders: truth table / SOP / DSD tree -> subnetwork.

These are the primitives behind every synthesis strategy of the MCH
strategy library (Algorithm 2).  Each builder takes a target network, the
function to realize, and the literals that drive the function's inputs, and
returns the output literal of a freshly constructed (strashed, hence
maximally shared) subnetwork.

Available methods:

* ``build_from_dsd`` — disjoint-support decomposition tree, recursing into
  native AND/OR/XOR/MAJ/MUX constructors; good all-rounder and the source of
  heterogeneous (MAJ/XOR-rich) candidates.
* ``build_from_cubes`` — literal factoring of an ISOP cover (weak-division
  on the most frequent literal), the classic area-oriented resynthesis.
* ``build_shannon`` — Shannon cofactoring tree, a robust level-oriented
  fallback for prime functions.
* ``synthesize_tt`` — method dispatcher.
"""

from __future__ import annotations

import heapq
from typing import List, Sequence

from ..networks.base import LogicNetwork, lit_not
from ..truth.dsd import DsdNode, decompose
from ..truth.isop import Cube, cube_literals, isop
from ..truth.truth_table import TruthTable

__all__ = [
    "build_from_dsd",
    "build_from_cubes",
    "build_shannon",
    "synthesize_tt",
    "SYNTHESIS_METHODS",
]


def _combine_level_aware(ntk: LogicNetwork, op, lits: Sequence[int], unit: int) -> int:
    """Huffman-style combination: merge the two shallowest operands first.

    Minimizes the depth of the resulting tree for unequal arrival levels.
    """
    if not lits:
        return unit
    heap = [(ntk.level(l >> 1), i, l) for i, l in enumerate(lits)]
    heapq.heapify(heap)
    counter = len(lits)
    while len(heap) > 1:
        _, _, a = heapq.heappop(heap)
        _, _, b = heapq.heappop(heap)
        c = op(a, b)
        counter += 1
        heapq.heappush(heap, (ntk.level(c >> 1), counter, c))
    return heap[0][2]


def build_from_dsd(ntk: LogicNetwork, root: DsdNode, complemented: bool,
                   leaf_lits: Sequence[int], balanced: bool = True) -> int:
    """Materialize a DSD tree; returns the output literal."""

    def rec(node: DsdNode) -> int:
        if node.kind == "const":
            return ntk.const1 if node.value else ntk.const0
        if node.kind == "var":
            return leaf_lits[node.var_index]
        child_lits = [rec(ch) ^ int(c) for ch, c in node.children]
        if node.kind == "and":
            if balanced:
                return _combine_level_aware(ntk, ntk.create_and, child_lits, ntk.const1)
            return ntk.create_nary_and(child_lits, balanced=False)
        if node.kind == "or":
            if balanced:
                return _combine_level_aware(ntk, ntk.create_or, child_lits, ntk.const0)
            return ntk.create_nary_or(child_lits, balanced=False)
        if node.kind == "xor":
            if balanced:
                return _combine_level_aware(ntk, ntk.create_xor, child_lits, ntk.const0)
            return ntk.create_nary_xor(child_lits, balanced=False)
        if node.kind == "maj":
            return ntk.create_maj(*child_lits)
        if node.kind == "mux":
            return ntk.create_mux(*child_lits)
        raise ValueError(f"unknown DSD node kind {node.kind}")

    return rec(root) ^ int(complemented)


def build_from_cubes(ntk: LogicNetwork, cubes: List[Cube], leaf_lits: Sequence[int],
                     balanced: bool = False) -> int:
    """Literal-factored realization of a cube cover."""

    def cube_and(cube: Cube) -> int:
        lits = [leaf_lits[v] ^ int(neg) for v, neg in cube_literals(cube)]
        if not lits:
            return ntk.const1
        if balanced:
            return _combine_level_aware(ntk, ntk.create_and, lits, ntk.const1)
        return ntk.create_nary_and(lits, balanced=True)

    def fac(cs: List[Cube]) -> int:
        if not cs:
            return ntk.const0
        if len(cs) == 1:
            return cube_and(cs[0])
        # most frequent literal across cubes
        counts = {}
        for pos, neg in cs:
            m = pos
            v = 0
            while m:
                if m & 1:
                    counts[(v, False)] = counts.get((v, False), 0) + 1
                m >>= 1
                v += 1
            m = neg
            v = 0
            while m:
                if m & 1:
                    counts[(v, True)] = counts.get((v, True), 0) + 1
                m >>= 1
                v += 1
        (var, negated), best = max(counts.items(), key=lambda kv: kv[1])
        if best < 2:
            terms = [cube_and(c) for c in cs]
            if balanced:
                return _combine_level_aware(ntk, ntk.create_or, terms, ntk.const0)
            return ntk.create_nary_or(terms, balanced=True)
        bit = 1 << var
        if negated:
            quot = [(p, q & ~bit) for p, q in cs if q & bit]
            rem = [(p, q) for p, q in cs if not (q & bit)]
        else:
            quot = [(p & ~bit, q) for p, q in cs if p & bit]
            rem = [(p, q) for p, q in cs if not (p & bit)]
        lit = leaf_lits[var] ^ int(negated)
        factored = ntk.create_and(lit, fac(quot))
        if not rem:
            return factored
        return ntk.create_or(factored, fac(rem))

    return fac(cubes)


def build_shannon(ntk: LogicNetwork, tt: TruthTable, leaf_lits: Sequence[int]) -> int:
    """Shannon cofactoring tree over the function's support."""
    sup = tt.support()
    if not sup:
        return ntk.const1 if tt.is_const1() else ntk.const0
    if len(sup) == 1:
        v = sup[0]
        return leaf_lits[v] if tt == TruthTable.var(tt.num_vars, v) else lit_not(leaf_lits[v])
    # split on the most binate variable to keep both halves small
    v = max(sup, key=lambda x: (tt.cofactor(x, False) ^ tt.cofactor(x, True)).count_ones())
    hi = build_shannon(ntk, tt.cofactor(v, True), leaf_lits)
    lo = build_shannon(ntk, tt.cofactor(v, False), leaf_lits)
    return ntk.create_mux(leaf_lits[v], hi, lo)


def synthesize_tt(ntk: LogicNetwork, tt: TruthTable, leaf_lits: Sequence[int],
                  method: str = "dsd") -> int:
    """Synthesize ``tt`` into ``ntk`` with the given method; returns literal.

    Methods: ``dsd`` (balanced DSD), ``dsd_chain`` (area-leaning DSD),
    ``sop`` (factored ISOP), ``sop_balanced`` (level-aware factored ISOP),
    ``shannon`` (cofactor tree), ``nsop`` (factored ISOP of the complement,
    complemented back — catches functions whose off-set is simpler).
    """
    if len(leaf_lits) != tt.num_vars:
        raise ValueError("leaf literal count must match variable count")
    if method in ("dsd", "dsd_chain"):
        root, compl = decompose(tt)
        return build_from_dsd(ntk, root, compl, leaf_lits, balanced=(method == "dsd"))
    if method in ("sop", "sop_balanced"):
        return build_from_cubes(ntk, isop(tt), leaf_lits, balanced=(method == "sop_balanced"))
    if method == "nsop":
        return lit_not(build_from_cubes(ntk, isop(~tt), leaf_lits, balanced=False))
    if method == "shannon":
        return build_shannon(ntk, tt, leaf_lits)
    raise ValueError(f"unknown synthesis method {method!r}")


#: All methods understood by :func:`synthesize_tt`.
SYNTHESIS_METHODS = ("dsd", "dsd_chain", "sop", "sop_balanced", "nsop", "shannon")
