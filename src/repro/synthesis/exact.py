"""SAT-based exact synthesis of small functions (Knuth/SSV encoding).

Finds a *gate-count-optimal* two-input-gate network (AND/XOR vocabulary
restricted per target representation) for a given truth table by solving a
sequence of SAT instances with increasing gate counts.  This is the
"exact NPN library" entry of the synthesis-strategy spectrum: slower than
the heuristic builders but optimal, and cached per NPN class.

Encoding (single-output, normal form with complemented edges):

* ``r`` candidate gates, gate ``i`` picks two fanins (with polarity) among
  the inputs and earlier gates via one-hot selection variables;
* per input-minterm simulation variables constrain every gate's output to
  follow its operator; the last gate must match the target function
  (possibly complemented, since output polarity is free).

Practical for up to 4 inputs and ~6 gates with the bundled CDCL solver.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

from ..networks.base import LogicNetwork
from ..sat import SAT, new_solver
from ..truth.npn import canonicalize, inverse_transform, apply_transform
from ..truth.truth_table import TruthTable

__all__ = ["exact_synthesize", "exact_gate_count", "ExactRecipe"]

#: A found network: list of (lit_a, lit_b, op) per gate plus output literal.
#: Literals: 2*k (+1 for complement), where k < num_inputs means input k and
#: k >= num_inputs means gate k - num_inputs.  op is "and" or "xor".
ExactRecipe = Tuple[Tuple[Tuple[int, int, str], ...], int]


def _solve_fixed_size(tt: TruthTable, r: int, ops: Tuple[str, ...],
                      conflict_limit: Optional[int]) -> Optional[ExactRecipe]:
    n = tt.num_vars
    rows = 1 << n
    solver = new_solver()

    # selection vars: sel[i][(lit_a, lit_b, op)] one-hot per gate
    sel: List[Dict[Tuple[int, int, str], int]] = []
    # value vars: val[i][row]
    val: List[List[int]] = []

    def operands(i: int) -> List[int]:
        # literals over inputs and earlier gates, both polarities
        lits = []
        for k in range(n + i):
            lits.append(2 * k)
            lits.append(2 * k + 1)
        return lits

    def lit_value_var(lit: int, row: int) -> Tuple[Optional[int], bool]:
        """(SAT var or None for constant-input rows, negated?)"""
        k = lit >> 1
        neg = bool(lit & 1)
        if k < n:
            bit = bool((row >> k) & 1) ^ neg
            return None, bit
        return val[k - n][row], neg

    for i in range(r):
        val.append([solver.new_var() for _ in range(rows)])
    for i in range(r):
        choices: Dict[Tuple[int, int, str], int] = {}
        for op in ops:
            lits = operands(i)
            for ai in range(len(lits)):
                for bi in range(ai + 1, len(lits)):
                    a, b = lits[ai], lits[bi]
                    if a >> 1 == b >> 1:
                        continue
                    if op == "xor" and ((a & 1) or (b & 1)):
                        continue  # complement folds into output for XOR
                    choices[(a, b, op)] = solver.new_var()
        sel.append(choices)
        # exactly-one selection
        solver.add_clause(list(choices.values()))
        vs = list(choices.values())
        for x in range(len(vs)):
            for y in range(x + 1, len(vs)):
                solver.add_clause([-vs[x], -vs[y]])

    # semantics: if gate i selects (a, b, op) then val[i][row] = op(a, b)
    for i in range(r):
        for (a, b, op), s in sel[i].items():
            for row in range(rows):
                va, na = lit_value_var(a, row)
                vb, nb = lit_value_var(b, row)
                out = val[i][row]

                # encode out <-> op(x, y) conditioned on s, where constant
                # inputs specialize the clauses
                def term(var, neg, want):
                    """SAT literal asserting the operand equals ``want``.

                    For constant operands ``neg`` carries the known value:
                    None means "already satisfied", False means "combination
                    impossible" (whole clause vacuous).
                    """
                    if var is None:
                        return None if neg == want else False
                    # var^neg == want  <=>  var == want^neg
                    return var if (want ^ neg) else -var

                if op == "and":
                    combos = [(False, False, False), (False, True, False),
                              (True, False, False), (True, True, True)]
                else:  # xor
                    combos = [(False, False, False), (False, True, True),
                              (True, False, True), (True, True, False)]
                for wa, wb, wout in combos:
                    ta = term(va, na, wa)
                    tb = term(vb, nb, wb)
                    if ta is False or tb is False:
                        continue  # combination impossible for constant input
                    clause = [-s]
                    if ta is not None:
                        clause.append(-ta)
                    if tb is not None:
                        clause.append(-tb)
                    clause.append(out if wout else -out)
                    solver.add_clause(clause)

    # output: last gate equals the function, polarity free via a phase var
    phase = solver.new_var()
    for row in range(rows):
        want = tt.get_bit(row)
        # val[r-1][row] ^ phase == want
        if want:
            solver.add_clause([val[r - 1][row], phase])
            solver.add_clause([-val[r - 1][row], -phase])
        else:
            solver.add_clause([-val[r - 1][row], phase])
            solver.add_clause([val[r - 1][row], -phase])

    res = solver.solve(conflict_limit=conflict_limit)
    if res is not SAT or res is None:
        return None
    gates = []
    for i in range(r):
        pick = None
        for key, s in sel[i].items():
            if solver.model_value(s):
                pick = key
                break
        gates.append(pick)
    out_lit = (2 * (n + r - 1)) | int(solver.model_value(phase))
    return tuple(gates), out_lit


def exact_synthesize(tt: TruthTable, ops: Tuple[str, ...] = ("and",),
                     max_gates: int = 7,
                     conflict_limit: Optional[int] = 60000) -> Optional[ExactRecipe]:
    """Find a gate-count-optimal recipe for ``tt``; None if none ≤ max_gates.

    ``ops`` selects the gate vocabulary: ``("and",)`` for AIGs,
    ``("and", "xor")`` for XAGs.  Results are canonical-cached.
    """
    if tt.num_vars > 4:
        raise ValueError("exact synthesis supported for <= 4 inputs")
    if tt.is_const0() or tt.is_const1():
        raise ValueError("constants need no synthesis")
    canon, transform = canonicalize(tt)
    recipe = _exact_canon(canon.num_vars, canon.bits, tuple(ops), max_gates,
                          conflict_limit)
    if recipe is None:
        return None
    return _apply_inverse(recipe, transform, tt.num_vars)


@lru_cache(maxsize=4096)
def _exact_canon(num_vars: int, bits: int, ops: Tuple[str, ...], max_gates: int,
                 conflict_limit: Optional[int]) -> Optional[ExactRecipe]:
    tt = TruthTable(num_vars, bits)
    sup = tt.support()
    if len(sup) == 1:
        v = sup[0]
        neg = tt != TruthTable.var(num_vars, v)
        return (), (2 * v) | int(neg)
    for r in range(1, max_gates + 1):
        recipe = _solve_fixed_size(tt, r, ops, conflict_limit)
        if recipe is not None:
            return recipe
    return None


def _apply_inverse(recipe: ExactRecipe, transform, num_vars: int) -> ExactRecipe:
    """Re-express a canonical recipe in terms of the original inputs."""
    perm, phases, out_phase = transform
    gates, out_lit = recipe

    def fix(lit: int) -> int:
        k = lit >> 1
        neg = lit & 1
        if k < num_vars:
            # canonical input i is original input perm[i] xor phases[i]
            return (2 * perm[k]) | (neg ^ int(phases[k]))
        return lit

    new_gates = tuple((fix(a), fix(b), op) for a, b, op in gates)
    return new_gates, fix(out_lit) ^ int(out_phase)


def build_exact(ntk: LogicNetwork, recipe: ExactRecipe, leaf_lits: Sequence[int]) -> int:
    """Materialize an exact recipe into a network; returns the output literal."""
    gates, out_lit = recipe
    signals = list(leaf_lits)

    def sig(lit: int) -> int:
        return signals[lit >> 1] ^ (lit & 1)

    for a, b, op in gates:
        if op == "and":
            signals.append(ntk.create_and(sig(a), sig(b)))
        else:
            signals.append(ntk.create_xor(sig(a), sig(b)))
    return sig(out_lit)


def exact_gate_count(tt: TruthTable, ops: Tuple[str, ...] = ("and",),
                     max_gates: int = 7) -> Optional[int]:
    """Optimal gate count for ``tt`` under the vocabulary, or None."""
    recipe = exact_synthesize(tt, ops=ops, max_gates=max_gates)
    return len(recipe[0]) if recipe is not None else None
