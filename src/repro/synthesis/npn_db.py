"""NPN-class structure database with cost caching.

For a given target representation, :class:`NpnCostCache` answers "how many
gates / levels does it take to synthesize this function with method X?" by
probing the function's NPN canonical representative once in a scratch network
and caching the result.  NPN invariance holds because all representations use
free complemented edges, so input/output negations and permutations do not
change structure cost.

This powers the cut-cost model of graph mapping and the method selection of
the MCH strategy library — the Python analogue of the precomputed 4-input NPN
structure libraries used by rewriting engines (Huang et al., FPT'13).
"""

from __future__ import annotations

from typing import Dict, Tuple, Type

from ..networks.base import LogicNetwork
from ..truth.npn import canonicalize, semi_canonicalize
from ..truth.truth_table import TruthTable
from .factoring import SYNTHESIS_METHODS, synthesize_tt

__all__ = ["NpnCostCache"]


class NpnCostCache:
    """Per-representation synthesis cost oracle keyed by NPN class."""

    def __init__(self, rep_cls: Type[LogicNetwork]):
        self.rep_cls = rep_cls
        self._cost: Dict[Tuple[int, int, str], Tuple[int, int]] = {}
        self._best: Dict[Tuple[int, int, str], Tuple[str, int, int]] = {}

    def _canon_bits(self, tt: TruthTable) -> Tuple[int, int]:
        if tt.num_vars <= 4:
            canon, _ = canonicalize(tt)
        else:
            canon, _ = semi_canonicalize(tt)
        return tt.num_vars, canon.bits

    def cost(self, tt: TruthTable, method: str) -> Tuple[int, int]:
        """(gate count, depth) of synthesizing ``tt`` with ``method``."""
        nv, bits = self._canon_bits(tt)
        key = (nv, bits, method)
        cached = self._cost.get(key)
        if cached is not None:
            return cached
        probe = self.rep_cls()
        leaves = [probe.create_pi() for _ in range(nv)]
        out = synthesize_tt(probe, TruthTable(nv, bits), leaves, method=method)
        result = (probe.num_gates(), probe.level(out >> 1))
        self._cost[key] = result
        return result

    def best_method(self, tt: TruthTable, objective: str,
                    methods: Tuple[str, ...] = None) -> Tuple[str, int, int]:
        """Best synthesis method for ``tt``: returns (method, gates, depth).

        ``objective`` is ``'area'`` (lexicographic gates-then-depth) or
        ``'level'`` (depth-then-gates).
        """
        if objective not in ("area", "level"):
            raise ValueError("objective must be 'area' or 'level'")
        methods = methods or SYNTHESIS_METHODS
        nv, bits = self._canon_bits(tt)
        key = (nv, bits, objective) if methods == SYNTHESIS_METHODS else None
        if key is not None:
            cached = self._best.get(key)
            if cached is not None:
                return cached
        best = None
        for method in methods:
            gates, depth = self.cost(tt, method)
            rank = (gates, depth) if objective == "area" else (depth, gates)
            if best is None or rank < best[0]:
                best = (rank, method, gates, depth)
        result = (best[1], best[2], best[3])
        if key is not None:
            self._best[key] = result
        return result
