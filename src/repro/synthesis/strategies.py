"""The multi-strategy synthesis library of MCH (Algorithm 2's ``lib``).

A :class:`StrategyLibrary` bundles, per optimization objective, the synthesis
methods to apply to cut / MFFC functions and the representations the
candidates should be expressed in.  MCH construction walks the network, picks
the level- or area-oriented strategy per node (critical-path classification),
and materializes one candidate per (method, representation) pair as a choice
node.

The defaults mirror the paper's examples: level-oriented synthesis uses the
4-input-NPN-style balanced decompositions, area-oriented synthesis uses
SOP factoring and DSD.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple, Type

from ..networks.base import LogicNetwork, rep_view
from ..truth.truth_table import TruthTable
from .factoring import synthesize_tt

__all__ = ["SynthesisStrategy", "StrategyLibrary", "synthesize_candidates"]


@dataclass(frozen=True)
class SynthesisStrategy:
    """A named bundle of synthesis methods serving one objective."""

    name: str
    methods: Tuple[str, ...]
    objective: str  # "level" or "area"

    def __post_init__(self):
        if self.objective not in ("level", "area"):
            raise ValueError("objective must be 'level' or 'area'")


#: Level-oriented: balanced DSD (NPN-library style), level-aware factored
#: SOP, Shannon cofactoring.
LEVEL_STRATEGY = SynthesisStrategy("npn-level", ("dsd", "sop_balanced", "shannon"), "level")
#: Area-oriented: factored SOP of on-set and off-set, chain DSD.
AREA_STRATEGY = SynthesisStrategy("sop-area", ("sop", "nsop", "dsd_chain"), "area")


@dataclass
class StrategyLibrary:
    """Everything Algorithm 2 needs to generate candidates.

    ``representations`` lists the network classes whose gate vocabulary the
    candidates should use (the *mixed* in mixed structural choices).
    """

    level: SynthesisStrategy = LEVEL_STRATEGY
    area: SynthesisStrategy = AREA_STRATEGY
    representations: Tuple[Type[LogicNetwork], ...] = ()

    def for_objective(self, objective: str) -> SynthesisStrategy:
        return self.level if objective == "level" else self.area


def synthesize_candidates(ntk: LogicNetwork, tt: TruthTable, leaf_lits: Sequence[int],
                          strategy: SynthesisStrategy,
                          representations: Sequence[Type[LogicNetwork]]) -> List[int]:
    """Build one candidate per (method, representation); returns unique literals.

    Candidates are constructed *into* ``ntk`` (normally a mixed network)
    through representation builder views, so an MIG-flavoured candidate
    consists of MAJ gates even though the hosting network is mixed.
    """
    out: List[int] = []
    seen = set()
    for rep_cls in representations:
        view = rep_view(ntk, rep_cls)
        for method in strategy.methods:
            cand = synthesize_tt(view, tt, leaf_lits, method=method)
            if cand not in seen:
                seen.add(cand)
                out.append(cand)
    return out
