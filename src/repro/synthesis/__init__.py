"""Synthesis strategies: structure builders, NPN cost DB, strategy library."""

from .factoring import (
    SYNTHESIS_METHODS,
    build_from_cubes,
    build_from_dsd,
    build_shannon,
    synthesize_tt,
)
from .npn_db import NpnCostCache
from .exact import build_exact, exact_gate_count, exact_synthesize
from .strategies import (
    AREA_STRATEGY,
    LEVEL_STRATEGY,
    StrategyLibrary,
    SynthesisStrategy,
    synthesize_candidates,
)

__all__ = [
    "SYNTHESIS_METHODS",
    "build_from_cubes",
    "build_from_dsd",
    "build_shannon",
    "synthesize_tt",
    "NpnCostCache",
    "build_exact",
    "exact_gate_count",
    "exact_synthesize",
    "SynthesisStrategy",
    "StrategyLibrary",
    "LEVEL_STRATEGY",
    "AREA_STRATEGY",
    "synthesize_candidates",
]
