"""Literal-encoded logic-network DAGs with structural hashing.

This module implements the common machinery behind all logic representations
used by the paper — AIG, XAG, MIG, XMG and the *mixed* network that MCH choice
networks live in.  The design follows ABC / mockturtle conventions:

* Nodes are integers; node 0 is the constant-0 node, then PIs, then gates in
  topological order (fanins always precede a gate).
* Signals are *literals* ``2 * node + phase`` so complemented edges are free.
  Literal ``0`` is constant 0, literal ``1`` is constant 1.
* Every gate creation goes through normalization rules (constant folding,
  duplicate/complement collapsing, fanin sorting, complement-bubbling for the
  self-dual MAJ and the XOR family) followed by structural hashing, so
  structurally identical gates are never duplicated.

Subclasses restrict the allowed native gate set; generic constructors such as
:meth:`LogicNetwork.create_and` automatically lower onto the native gates of
the representation (e.g. ``AND`` becomes ``MAJ(a, b, 0)`` in an MIG), which
implements the paper's one-to-one mapping between representations.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..truth.truth_table import TruthTable, var_mask

__all__ = ["GateType", "LogicNetwork", "lit", "lit_node", "lit_phase", "lit_not",
           "rep_view", "require_combinational"]


class GateType(IntEnum):
    CONST = 0
    PI = 1
    AND = 2
    XOR = 3
    MAJ = 4
    XOR3 = 5


_GATE_KINDS = frozenset({GateType.AND, GateType.XOR, GateType.MAJ, GateType.XOR3})


def lit(node: int, phase: bool = False) -> int:
    """Build a literal from a node index and a complement flag."""
    return (node << 1) | int(phase)


def lit_node(literal: int) -> int:
    return literal >> 1


def lit_phase(literal: int) -> bool:
    return bool(literal & 1)


def lit_not(literal: int) -> int:
    return literal ^ 1


def require_combinational(ntk: "LogicNetwork", where: str) -> None:
    """Raise if ``ntk`` carries registers and ``where`` is comb-only.

    One shared guard for every engine that only understands the
    combinational skeleton (cut enumeration, LUT/ASIC mapping, plain CEC,
    choice-network construction, ...).  The error names the offending
    network and its register count so a failing flow points straight at
    the circuit instead of dying deep inside an engine — and so latches
    are never silently dropped.
    """
    n = ntk.num_registers()
    if n:
        raise ValueError(
            f"{where} is combinational-only but {ntk!r} has {n} register"
            f"{'s' if n != 1 else ''}; unroll the network or use a seq-* pass")


class LogicNetwork:
    """A Boolean network as a literal-encoded DAG, optionally sequential.

    Sequential networks model registers (latches in AIGER terms) as
    *register outputs* — ordinary PI nodes flagged in ``_ro_nodes`` — paired
    in creation order with *register inputs* (next-state literals in
    ``_ri_lits``) and initial values (``_ro_init``).  Every combinational
    engine therefore sees the comb skeleton unchanged: CIs = real PIs + ROs,
    COs = POs + RIs.  Comb-only engines must call
    :func:`require_combinational` instead of ignoring the pairing.
    """

    #: Native gate types this representation may contain.
    ALLOWED: frozenset = _GATE_KINDS
    #: Human-readable representation name.
    rep_name: str = "mixed"

    def __init__(self):
        self._types: List[GateType] = [GateType.CONST]
        self._fanins: List[Tuple[int, ...]] = [()]
        self._levels: List[int] = [0]
        self._pis: List[int] = []
        self._pi_names: List[str] = []
        self._pos: List[int] = []
        self._po_names: List[str] = []
        #: register bookkeeping: RO node indices (subset of ``_pis``), the
        #: paired next-state literals (same order), and 0/1 initial values
        self._ro_nodes: List[int] = []
        self._ri_lits: List[int] = []
        self._ro_init: List[int] = []
        self._strash: Dict[Tuple[GateType, Tuple[int, ...]], int] = {}
        #: bumped on every structural mutation; analysis caches key off it
        self._version: int = 0
        self._fanout_cache: Optional[Tuple[int, List[List[int]]]] = None
        self._fanout_count_cache: Optional[Tuple[int, List[int]]] = None
        self._topo_cache: Optional[Tuple[int, List[int]]] = None
        self._flat_cache: Optional[Tuple[int, object]] = None

    # ------------------------------------------------------------------ #
    # cache maintenance                                                   #
    # ------------------------------------------------------------------ #

    @property
    def version(self) -> int:
        """Monotonic structural version; changes whenever the DAG mutates."""
        return self._version

    def _touch(self) -> None:
        self._version += 1

    @property
    def flat(self) -> "FlatNetwork":
        """The flat struct-of-arrays snapshot of this network.

        Memoized per structural version: hot consumers (cut enumeration,
        Tseitin encoding, shared-memory transfer, structural hashing) of an
        unchanged network share one :class:`~repro.networks.flat.FlatNetwork`
        core.  Treat the snapshot as read-only.
        """
        cached = self._flat_cache
        if cached is not None and cached[0] == self._version:
            return cached[1]
        from .flat import FlatNetwork

        snapshot = FlatNetwork.from_network(self)
        self._flat_cache = (self._version, snapshot)
        return snapshot

    def structural_hash(self) -> str:
        """Cheap content hash of the DAG (via the flat core; version-cached).

        Networks with equal hashes are structurally identical — same node
        numbering, gates and POs — so caches keyed on this hash (e.g. the
        flow context's equivalence sessions) can serve rebuilt-but-identical
        networks without re-encoding.
        """
        return self.flat.structural_hash()

    def __getstate__(self) -> dict:
        """Pickle without derived caches (they rebuild lazily on demand)."""
        state = self.__dict__.copy()
        state["_fanout_cache"] = None
        state["_fanout_count_cache"] = None
        state["_topo_cache"] = None
        state["_flat_cache"] = None
        return state

    # ------------------------------------------------------------------ #
    # basic structure                                                     #
    # ------------------------------------------------------------------ #

    @property
    def const0(self) -> int:
        """Literal for constant 0."""
        return 0

    @property
    def const1(self) -> int:
        return 1

    def num_nodes(self) -> int:
        return len(self._types)

    def num_pis(self) -> int:
        return len(self._pis)

    def num_pos(self) -> int:
        return len(self._pos)

    def num_gates(self) -> int:
        return sum(1 for t in self._types if t in _GATE_KINDS)

    @property
    def pis(self) -> List[int]:
        """PI node indices in creation order."""
        return list(self._pis)

    @property
    def pi_names(self) -> List[str]:
        return list(self._pi_names)

    @property
    def pos(self) -> List[int]:
        """PO literals in creation order."""
        return list(self._pos)

    @property
    def po_names(self) -> List[str]:
        return list(self._po_names)

    def node_type(self, node: int) -> GateType:
        return self._types[node]

    def fanins(self, node: int) -> Tuple[int, ...]:
        """Fanin literals of a node."""
        return self._fanins[node]

    def is_pi(self, node: int) -> bool:
        return self._types[node] == GateType.PI

    def is_const(self, node: int) -> bool:
        return self._types[node] == GateType.CONST

    def is_gate(self, node: int) -> bool:
        return self._types[node] in _GATE_KINDS

    def gates(self) -> Iterator[int]:
        """Iterate gate node indices in topological order."""
        for n, t in enumerate(self._types):
            if t in _GATE_KINDS:
                yield n

    def nodes(self) -> Iterator[int]:
        return iter(range(len(self._types)))

    # ------------------------------------------------------------------ #
    # construction                                                        #
    # ------------------------------------------------------------------ #

    def create_pi(self, name: Optional[str] = None) -> int:
        node = len(self._types)
        self._types.append(GateType.PI)
        self._fanins.append(())
        self._levels.append(0)
        self._pis.append(node)
        self._pi_names.append(name if name is not None else f"pi{len(self._pis) - 1}")
        self._touch()
        return lit(node)

    def create_po(self, literal: int, name: Optional[str] = None) -> int:
        if lit_node(literal) >= len(self._types):
            raise ValueError("PO literal refers to unknown node")
        self._pos.append(literal)
        self._po_names.append(name if name is not None else f"po{len(self._pos) - 1}")
        self._touch()
        return len(self._pos) - 1

    # -- registers (sequential networks) ----------------------------------

    def create_ro(self, name: Optional[str] = None, init: int = 0) -> int:
        """Create a register output (the current-state side of a latch).

        The RO is an ordinary PI node as far as the combinational skeleton
        is concerned; it is additionally recorded as a register with the
        given initial value (0 or 1).  Pair it with a next-state function
        later via :meth:`create_ri` — registers are matched in creation
        order, exactly like AIGER latch lines.
        """
        if init not in (0, 1):
            raise ValueError(f"register init value must be 0 or 1, got {init!r}")
        if name is None:
            name = f"r{len(self._ro_nodes)}"
        literal = self.create_pi(name)
        self._ro_nodes.append(lit_node(literal))
        self._ro_init.append(int(init))
        return literal

    def create_ri(self, literal: int) -> int:
        """Attach the next-state literal of the next unconnected register.

        Returns the register index.  ROs and RIs pair up in creation order;
        engines refuse networks with unconnected registers.
        """
        if lit_node(literal) >= len(self._types):
            raise ValueError("RI literal refers to unknown node")
        if len(self._ri_lits) >= len(self._ro_nodes):
            raise ValueError("more register inputs than register outputs")
        self._ri_lits.append(literal)
        self._touch()
        return len(self._ri_lits) - 1

    def num_registers(self) -> int:
        """Number of registers (AIGER latches)."""
        return len(self._ro_nodes)

    def has_registers(self) -> bool:
        return bool(self._ro_nodes)

    @property
    def registers(self) -> List[Tuple[int, int, int]]:
        """``(ro_node, ri_literal, init)`` per register, in creation order.

        Raises if any register is missing its next-state function, so
        engines never silently treat a half-built latch as a free input.
        """
        if len(self._ri_lits) != len(self._ro_nodes):
            raise ValueError(
                f"{len(self._ro_nodes) - len(self._ri_lits)} register(s) have no "
                "next-state literal; call create_ri for every create_ro")
        return list(zip(self._ro_nodes, self._ri_lits, self._ro_init))

    def is_ro(self, node: int) -> bool:
        """True if ``node`` is a register output (still ``is_pi``-true)."""
        return node in self._ro_set()

    def _ro_set(self) -> frozenset:
        return frozenset(self._ro_nodes)

    @property
    def real_pis(self) -> List[int]:
        """Non-register PI node indices (the free inputs), creation order."""
        ros = self._ro_set()
        return [n for n in self._pis if n not in ros]

    def num_real_pis(self) -> int:
        return len(self._pis) - len(self._ro_nodes)

    def _new_node(self, gate: GateType, fanins: Tuple[int, ...]) -> int:
        key = (gate, fanins)
        found = self._strash.get(key)
        if found is not None:
            return lit(found)
        node = len(self._types)
        self._types.append(gate)
        self._fanins.append(fanins)
        self._levels.append(1 + max(self._levels[f >> 1] for f in fanins))
        self._strash[key] = node
        self._touch()
        return lit(node)

    def _require(self, gate: GateType) -> None:
        if gate not in self.ALLOWED:
            raise TypeError(f"{self.rep_name} networks do not allow {gate.name} gates")

    # -- native gates with normalization ----------------------------------

    def _and2(self, a: int, b: int) -> int:
        if a > b:
            a, b = b, a
        if a == 0:
            return 0
        if a == 1:
            return b
        if a == b:
            return a
        if a == lit_not(b):
            return 0
        return self._new_node(GateType.AND, (a, b))

    def _xor2(self, a: int, b: int) -> int:
        phase = (a & 1) ^ (b & 1)
        a &= ~1
        b &= ~1
        if a > b:
            a, b = b, a
        if a == b:
            return phase
        if a == 0:  # constant-0 input
            return b ^ phase
        return self._new_node(GateType.XOR, (a, b)) ^ phase

    def _maj3(self, a: int, b: int, c: int) -> int:
        a, b, c = sorted((a, b, c))
        # duplicate / complementary collapses
        if a == b:
            return a
        if b == c:
            return b
        if a == lit_not(b):
            return c
        if b == lit_not(c):
            return a
        # self-duality: keep at most one complemented fanin
        ncompl = (a & 1) + (b & 1) + (c & 1)
        out = 0
        if ncompl >= 2:
            a, b, c = lit_not(a), lit_not(b), lit_not(c)
            out = 1
            a, b, c = sorted((a, b, c))
        return self._new_node(GateType.MAJ, (a, b, c)) ^ out

    def _xor3(self, a: int, b: int, c: int) -> int:
        phase = (a & 1) ^ (b & 1) ^ (c & 1)
        a &= ~1
        b &= ~1
        c &= ~1
        a, b, c = sorted((a, b, c))
        if a == b:
            return c ^ phase
        if b == c:
            return a ^ phase
        if a == 0:
            # binary XOR as a degenerate XOR3 stays native in XMG; in a
            # network that also has XOR2, prefer the smaller gate.
            if GateType.XOR in self.ALLOWED:
                return self._xor2(b, c) ^ phase
            return self._new_node(GateType.XOR3, (a, b, c)) ^ phase
        return self._new_node(GateType.XOR3, (a, b, c)) ^ phase

    # -- generic constructors (lower onto the native gate set) ------------

    def create_and(self, a: int, b: int) -> int:
        if GateType.AND in self.ALLOWED:
            return self._and2(a, b)
        if GateType.MAJ in self.ALLOWED:
            return self._maj3(a, b, 0)
        raise TypeError(f"{self.rep_name} cannot express AND")

    def create_or(self, a: int, b: int) -> int:
        if GateType.MAJ in self.ALLOWED and GateType.AND not in self.ALLOWED:
            return self._maj3(a, b, 1)
        return lit_not(self.create_and(lit_not(a), lit_not(b)))

    def create_nand(self, a: int, b: int) -> int:
        return lit_not(self.create_and(a, b))

    def create_nor(self, a: int, b: int) -> int:
        return lit_not(self.create_or(a, b))

    def create_xor(self, a: int, b: int) -> int:
        if GateType.XOR in self.ALLOWED:
            return self._xor2(a, b)
        if GateType.XOR3 in self.ALLOWED:
            return self._xor3(a, b, 0)
        # AND-only decomposition: a ^ b = !( !(a !b) !( !a b) )
        t1 = self.create_and(a, lit_not(b))
        t2 = self.create_and(lit_not(a), b)
        return self.create_or(t1, t2)

    def create_xnor(self, a: int, b: int) -> int:
        return lit_not(self.create_xor(a, b))

    def create_maj(self, a: int, b: int, c: int) -> int:
        if GateType.MAJ in self.ALLOWED:
            return self._maj3(a, b, c)
        ab = self.create_and(a, b)
        ac = self.create_and(a, c)
        bc = self.create_and(b, c)
        return self.create_or(ab, self.create_or(ac, bc))

    def create_xor3(self, a: int, b: int, c: int) -> int:
        if GateType.XOR3 in self.ALLOWED:
            return self._xor3(a, b, c)
        return self.create_xor(self.create_xor(a, b), c)

    def create_mux(self, sel: int, hi: int, lo: int) -> int:
        """``sel ? hi : lo``."""
        t = self.create_and(sel, hi)
        e = self.create_and(lit_not(sel), lo)
        return self.create_or(t, e)

    def create_nary_and(self, literals: Sequence[int], balanced: bool = True) -> int:
        return self._nary(self.create_and, literals, self.const1, balanced)

    def create_nary_or(self, literals: Sequence[int], balanced: bool = True) -> int:
        return self._nary(self.create_or, literals, self.const0, balanced)

    def create_nary_xor(self, literals: Sequence[int], balanced: bool = True) -> int:
        return self._nary(self.create_xor, literals, self.const0, balanced)

    @staticmethod
    def _nary(op, literals: Sequence[int], unit: int, balanced: bool) -> int:
        lits = list(literals)
        if not lits:
            return unit
        if balanced:
            while len(lits) > 1:
                nxt = [op(lits[i], lits[i + 1]) for i in range(0, len(lits) - 1, 2)]
                if len(lits) % 2:
                    nxt.append(lits[-1])
                lits = nxt
            return lits[0]
        acc = lits[0]
        for l in lits[1:]:
            acc = op(acc, l)
        return acc

    def create_gate(self, gate: GateType, fanins: Sequence[int]) -> int:
        """Create a gate by type, applying the usual normalizations."""
        if gate == GateType.AND:
            return self.create_and(*fanins)
        if gate == GateType.XOR:
            return self.create_xor(*fanins)
        if gate == GateType.MAJ:
            return self.create_maj(*fanins)
        if gate == GateType.XOR3:
            return self.create_xor3(*fanins)
        raise ValueError(f"cannot create node of type {gate}")

    # ------------------------------------------------------------------ #
    # analysis                                                            #
    # ------------------------------------------------------------------ #

    def levels(self) -> List[int]:
        """Level of every node (PIs and constants are level 0)."""
        return list(self._levels)

    def level(self, node: int) -> int:
        return self._levels[node]

    def depth(self) -> int:
        if not self._pos:
            return 0
        return max((self._levels[p >> 1] for p in self._pos), default=0)

    def fanout_counts(self) -> List[int]:
        """Per-node consumer counts (gate fanins + PO references).

        The list is memoized until the next structural mutation; callers must
        treat it as read-only (copy before decrementing, as :meth:`mffc` does).
        """
        cached = self._fanout_count_cache
        if cached is not None and cached[0] == self._version:
            return cached[1]
        cnt = [0] * len(self._types)
        for n in range(len(self._types)):
            for f in self._fanins[n]:
                cnt[f >> 1] += 1
        for p in self._pos:
            cnt[p >> 1] += 1
        self._fanout_count_cache = (self._version, cnt)
        return cnt

    def fanouts(self) -> List[List[int]]:
        """Fanout adjacency (gate consumers only, not POs).

        Memoized until the next structural mutation; treat as read-only.
        """
        cached = self._fanout_cache
        if cached is not None and cached[0] == self._version:
            return cached[1]
        out: List[List[int]] = [[] for _ in self._types]
        for n in range(len(self._types)):
            for f in self._fanins[n]:
                out[f >> 1].append(n)
        self._fanout_cache = (self._version, out)
        return out

    def topological_order(self) -> List[int]:
        """All node indices in topological order.

        Nodes are created fanins-first, so this is simply ``0..num_nodes-1``;
        the list is memoized so hot loops can reuse one object.  Treat as
        read-only.
        """
        cached = self._topo_cache
        if cached is not None and cached[0] == self._version:
            return cached[1]
        order = list(range(len(self._types)))
        self._topo_cache = (self._version, order)
        return order

    def tfi(self, node: int) -> set:
        """Transitive fanin cone of a node, including the node itself."""
        seen = set()
        stack = [node]
        while stack:
            n = stack.pop()
            if n in seen:
                continue
            seen.add(n)
            for f in self._fanins[n]:
                stack.append(f >> 1)
        return seen

    def tfo(self, node: int) -> set:
        """Transitive fanout cone of a node, including the node itself."""
        fo = self.fanouts()
        seen = set()
        stack = [node]
        while stack:
            n = stack.pop()
            if n in seen:
                continue
            seen.add(n)
            stack.extend(fo[n])
        return seen

    def mffc(self, node: int, fanout_counts: Optional[List[int]] = None) -> set:
        """Maximum fanout-free cone of ``node`` (gate nodes only)."""
        if not self.is_gate(node):
            return set()
        # always copy: self.fanout_counts() is memoized and must stay intact
        cnt = list(fanout_counts if fanout_counts is not None else self.fanout_counts())
        cone = {node}
        stack = [node]
        while stack:
            n = stack.pop()
            for f in self._fanins[n]:
                m = f >> 1
                cnt[m] -= 1
                if cnt[m] == 0 and self.is_gate(m):
                    cone.add(m)
                    stack.append(m)
        return cone

    def mffc_leaves(self, cone: set) -> List[int]:
        """Boundary nodes feeding a cone from outside (PIs of the cone)."""
        leaves = set()
        for n in cone:
            for f in self._fanins[n]:
                m = f >> 1
                if m not in cone and not self.is_const(m):
                    leaves.add(m)
        return sorted(leaves)

    def local_function(self, root: int, leaves: Sequence[int]) -> TruthTable:
        """Function of ``root`` expressed over the given leaf nodes.

        Every path from ``root`` towards the PIs must hit a leaf (or a
        constant); otherwise a ValueError is raised.  Evaluation is
        iterative, so deep cones are safe.
        """
        leaf_pos = {leaf: i for i, leaf in enumerate(leaves)}
        nv = len(leaves)
        mask = (1 << (1 << nv)) - 1
        memo: Dict[int, int] = {0: 0}
        for leaf, i in leaf_pos.items():
            memo[leaf] = var_mask(nv, i) if nv else 0
        stack = [root]
        while stack:
            n = stack.pop()
            if n in memo:
                continue
            if not self.is_gate(n):
                raise ValueError(f"cone of {root} escapes the leaf set at node {n}")
            pending = [f >> 1 for f in self._fanins[n] if (f >> 1) not in memo]
            if pending:
                stack.append(n)
                stack.extend(pending)
                continue
            vals = [memo[f >> 1] ^ (mask if f & 1 else 0) for f in self._fanins[n]]
            t = self._types[n]
            if t == GateType.AND:
                memo[n] = vals[0] & vals[1]
            elif t == GateType.XOR:
                memo[n] = vals[0] ^ vals[1]
            elif t == GateType.MAJ:
                memo[n] = (vals[0] & vals[1]) | (vals[0] & vals[2]) | (vals[1] & vals[2])
            else:
                memo[n] = vals[0] ^ vals[1] ^ vals[2]
        return TruthTable(nv, memo[root])

    # ------------------------------------------------------------------ #
    # simulation                                                          #
    # ------------------------------------------------------------------ #

    def simulate_patterns(self, pi_patterns: Sequence[int], mask: int) -> List[int]:
        """Bit-parallel simulation; returns one packed word per node.

        ``pi_patterns[i]`` is the stimulus of PI ``i``; ``mask`` selects the
        valid bits (complementation is XOR with ``mask``).  This is a thin
        front over :func:`repro.sim.engine.simulate_words`, which compiles
        the network into gate-type-batched integer ops and caches the
        compiled program per network.
        """
        from ..sim.engine import simulate_words

        return simulate_words(self, pi_patterns, mask)

    def simulate(self, assignment: Sequence[bool]) -> List[bool]:
        """Evaluate the POs under a single PI assignment."""
        patterns = [1 if b else 0 for b in assignment]
        vals = self.simulate_patterns(patterns, 1)
        return [bool((vals[p >> 1] ^ (p & 1)) & 1) for p in self._pos]

    def simulate_truth_tables(self) -> List[TruthTable]:
        """Exact truth tables of all POs (practical for ≤ ~16 PIs)."""
        n = len(self._pis)
        if n > 20:
            raise ValueError("too many PIs for exhaustive simulation")
        mask = (1 << (1 << n)) - 1 if n else 1
        patterns = [var_mask(n, i) for i in range(n)] if n else []
        vals = self.simulate_patterns(patterns, mask)
        out = []
        for p in self._pos:
            bits = vals[p >> 1] ^ (mask if p & 1 else 0)
            out.append(TruthTable(n, bits))
        return out

    # ------------------------------------------------------------------ #
    # copying / cleanup                                                   #
    # ------------------------------------------------------------------ #

    def cleanup(self) -> "LogicNetwork":
        """Structurally-hashed copy containing only CO-reachable logic.

        Registers unreachable from any PO (through register feedback) are
        dropped together with their next-state cones; real PIs are always
        preserved so the input interface is stable.
        """
        dst = type(self)()
        return self.copy_into(dst)

    def copy_into(self, dst: "LogicNetwork") -> "LogicNetwork":
        """Copy reachable logic into ``dst`` (may change representation)."""
        self.copy_into_with_map(dst)
        return dst

    def copy_into_with_map(self, dst: "LogicNetwork", include_pos: bool = True,
                           pi_map: Optional[Dict[int, int]] = None) -> Dict[int, int]:
        """Copy PO-reachable logic into ``dst``; returns old-node -> new-literal map.

        ``include_pos=False`` copies the logic without registering POs (used
        when superimposing several snapshots into one choice network).
        ``pi_map`` reuses existing PI literals of ``dst`` (old PI node ->
        dst literal) instead of creating fresh PIs.  Both modes are
        combinational-only; the plain copy carries registers across (live
        ones keep their init values and next-state cones).
        """
        mapping: Dict[int, int] = {0: 0}
        if pi_map is not None or not include_pos:
            require_combinational(self, "copy_into_with_map(pi_map/include_pos)")
        # reachability fixpoint: reaching a register output pulls in its
        # next-state cone (registers feed themselves through time)
        ro_index = {ro: i for i, ro in enumerate(self._ro_nodes)}
        if ro_index:
            regs = self.registers  # validates RO/RI pairing up front
        reach = set()
        stack = [p >> 1 for p in self._pos]
        while stack:
            n = stack.pop()
            if n in reach:
                continue
            reach.add(n)
            stack.extend(f >> 1 for f in self._fanins[n])
            i = ro_index.get(n)
            if i is not None:
                stack.append(self._ri_lits[i] >> 1)
        kept_regs: List[int] = []
        if pi_map is not None:
            if set(pi_map) != set(self._pis):
                raise ValueError("pi_map must cover exactly the source PIs")
            mapping.update(pi_map)
        else:
            for name, n in zip(self._pi_names, self._pis):
                i = ro_index.get(n)
                if i is None:
                    mapping[n] = dst.create_pi(name)
                elif n in reach:
                    mapping[n] = dst.create_ro(name, self._ro_init[i])
                    kept_regs.append(i)
        for n in range(len(self._types)):
            if n not in reach or not self.is_gate(n):
                continue
            fis = tuple(mapping[f >> 1] ^ (f & 1) for f in self._fanins[n])
            mapping[n] = dst.create_gate(self._types[n], fis)
        if include_pos:
            for p, name in zip(self._pos, self._po_names):
                dst.create_po(mapping[p >> 1] ^ (p & 1), name)
        for i in kept_regs:
            ri = self._ri_lits[i]
            dst.create_ri(mapping[ri >> 1] ^ (ri & 1))
        return mapping

    def __repr__(self) -> str:
        regs = f" regs={self.num_registers()}" if self._ro_nodes else ""
        return (
            f"<{type(self).__name__} pis={self.num_real_pis()} pos={self.num_pos()}"
            f"{regs} gates={self.num_gates()} depth={self.depth()}>"
        )


def rep_view(ntk: LogicNetwork, rep_cls: type) -> LogicNetwork:
    """A *builder view* of ``ntk`` that lowers gates like ``rep_cls`` would.

    The returned object shares all storage with ``ntk`` (same node arrays,
    same strash table) but carries ``rep_cls``'s ``ALLOWED`` gate set, so its
    generic constructors lower onto that representation's native gates.  MCH
    uses this to synthesize, e.g., *MIG-flavoured* candidate structures
    directly inside a mixed choice network: ``rep_view(mixed, Mig).create_and(
    a, b)`` creates ``MAJ(a, b, 0)`` in the mixed network.

    Only creation/analysis methods should be called through a view; the view
    is not a separate network.
    """
    if not issubclass(rep_cls, LogicNetwork):
        raise TypeError("rep_cls must be a LogicNetwork subclass")
    view = object.__new__(rep_cls)
    view.__dict__ = ntk.__dict__
    return view
