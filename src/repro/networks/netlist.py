"""Mapped standard-cell netlists (the result of ASIC technology mapping)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Type

from ..truth.truth_table import TruthTable, var_mask
from .base import LogicNetwork

__all__ = ["CellNetlist"]


class CellNetlist:
    """A gate-level netlist of single-output library cells.

    Each net is an integer; net 0 / net 1 are the constant-0 / constant-1
    nets (zero-cost tie nets, reported separately from cell area).  Every
    other net is driven either by a PI or by exactly one cell instance.
    """

    def __init__(self, library_name: str = ""):
        self.library_name = library_name
        self._drivers: List[Optional[Tuple]] = [None, None]  # net -> (cell, fanin nets)
        self._is_pi: List[bool] = [False, False]
        self._pis: List[int] = []
        self._pi_names: List[str] = []
        self._pos: List[int] = []
        self._po_names: List[str] = []

    @property
    def const0(self) -> int:
        return 0

    @property
    def const1(self) -> int:
        return 1

    def create_pi(self, name: Optional[str] = None) -> int:
        net = len(self._drivers)
        self._drivers.append(None)
        self._is_pi.append(True)
        self._pis.append(net)
        self._pi_names.append(name if name is not None else f"pi{len(self._pis) - 1}")
        return net

    def add_cell(self, cell, fanin_nets: Sequence[int]) -> int:
        if len(fanin_nets) != cell.num_pins:
            raise ValueError(f"{cell.name} needs {cell.num_pins} fanins")
        if any(f >= len(self._drivers) for f in fanin_nets):
            raise ValueError("fanin net does not exist")
        # virtual supergates expand into their component instances
        if getattr(cell, "outer", None) is not None:
            m_in = cell.inner.num_pins
            inner_net = self.add_cell(cell.inner, tuple(fanin_nets[:m_in]))
            rest = list(fanin_nets[m_in:])
            outer_pins = []
            for pin in range(cell.outer.num_pins):
                if pin == cell.position:
                    outer_pins.append(inner_net)
                else:
                    outer_pins.append(rest.pop(0))
            return self.add_cell(cell.outer, tuple(outer_pins))
        net = len(self._drivers)
        self._drivers.append((cell, tuple(fanin_nets)))
        self._is_pi.append(False)
        return net

    def create_po(self, net: int, name: Optional[str] = None) -> None:
        self._pos.append(net)
        self._po_names.append(name if name is not None else f"po{len(self._pos) - 1}")

    # -- metrics -----------------------------------------------------------

    @property
    def pis(self) -> List[int]:
        return list(self._pis)

    @property
    def pos(self) -> List[int]:
        return list(self._pos)

    def num_cells(self) -> int:
        return sum(1 for d in self._drivers if d is not None)

    def cell_histogram(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for d in self._drivers:
            if d is not None:
                out[d[0].name] = out.get(d[0].name, 0) + 1
        return out

    def area(self) -> float:
        """Total cell area (µm² with the bundled library)."""
        return sum(d[0].area for d in self._drivers if d is not None)

    def arrival_times(self) -> List[float]:
        arr = [0.0] * len(self._drivers)
        for net, d in enumerate(self._drivers):
            if d is None:
                continue
            cell, fis = d
            arr[net] = max(
                (arr[f] + cell.pin_delays[i] for i, f in enumerate(fis)), default=0.0
            )
        return arr

    def delay(self) -> float:
        """Critical-path delay (ps with the bundled library)."""
        arr = self.arrival_times()
        return max((arr[n] for n in self._pos), default=0.0)

    def levels(self) -> List[int]:
        lev = [0] * len(self._drivers)
        for net, d in enumerate(self._drivers):
            if d is not None:
                lev[net] = 1 + max((lev[f] for f in d[1]), default=0)
        return lev

    def switching_power(self, patterns: int = 256, seed: int = 5) -> float:
        """Dynamic-power proxy: Σ toggle-rate(net) · area(driver).

        Simulates random input vectors and weighs each net's toggle
        probability by its driving cell's area (a standard capacitance
        proxy).  Arbitrary units; useful for *relative* comparisons between
        mappings of the same function.
        """
        import random

        rng = random.Random(seed)
        width = patterns
        mask = (1 << width) - 1
        stim = [rng.getrandbits(width) for _ in self._pis]
        vals = self.simulate_patterns(stim, mask)
        power = 0.0
        for net, d in enumerate(self._drivers):
            if d is None:
                continue
            v = vals[net]
            toggles = bin((v ^ (v >> 1)) & (mask >> 1)).count("1")
            rate = toggles / max(width - 1, 1)
            power += rate * d[0].area
        return power

    # -- simulation / verification -------------------------------------------

    def simulate_patterns(self, pi_patterns: Sequence[int], mask: int) -> List[int]:
        vals = [0, mask] + [0] * (len(self._drivers) - 2)
        for i, n in enumerate(self._pis):
            vals[n] = pi_patterns[i] & mask
        for net, d in enumerate(self._drivers):
            if d is None:
                continue
            cell, fis = d
            tt = cell.function
            out = 0
            for m in range(1 << len(fis)):
                if tt.get_bit(m):
                    term = mask
                    for i, f in enumerate(fis):
                        term &= vals[f] if (m >> i) & 1 else (vals[f] ^ mask)
                    out |= term
            vals[net] = out
        return vals

    def simulate(self, assignment: Sequence[bool]) -> List[bool]:
        vals = self.simulate_patterns([1 if b else 0 for b in assignment], 1)
        return [bool(vals[n] & 1) for n in self._pos]

    def simulate_truth_tables(self) -> List[TruthTable]:
        n = len(self._pis)
        if n > 20:
            raise ValueError("too many PIs for exhaustive simulation")
        mask = (1 << (1 << n)) - 1 if n else 1
        patterns = [var_mask(n, i) for i in range(n)]
        vals = self.simulate_patterns(patterns, mask)
        return [TruthTable(n, vals[net]) for net in self._pos]

    def to_logic_network(self, cls: Type[LogicNetwork]) -> LogicNetwork:
        """Resynthesize into a logic network (for CEC against the source)."""
        from ..synthesis.factoring import synthesize_tt

        ntk = cls()
        mapping: Dict[int, int] = {0: ntk.const0, 1: ntk.const1}
        for name, net in zip(self._pi_names, self._pis):
            mapping[net] = ntk.create_pi(name)
        for net, d in enumerate(self._drivers):
            if d is None:
                continue
            cell, fis = d
            mapping[net] = synthesize_tt(
                ntk, cell.function, [mapping[f] for f in fis], method="sop"
            )
        for net, name in zip(self._pos, self._po_names):
            ntk.create_po(mapping[net], name)
        return ntk

    def __repr__(self) -> str:
        return (
            f"<CellNetlist cells={self.num_cells()} area={self.area():.2f} "
            f"delay={self.delay():.2f}>"
        )
