"""Mapped K-LUT networks (the result of FPGA technology mapping)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Type

from ..truth.truth_table import TruthTable, var_mask
from .base import LogicNetwork

__all__ = ["LutNetwork"]


class LutNetwork:
    """A network of K-input lookup tables.

    Node numbering mirrors :class:`LogicNetwork`: node 0 is constant 0, then
    PIs, then LUTs in topological order.  LUT fanins are plain node indices
    (complementation is absorbed into the LUT truth tables); POs are
    ``(node, phase)`` pairs.
    """

    def __init__(self, k: int):
        self.k = k
        self._is_lut: List[bool] = [False]
        self._fanins: List[Tuple[int, ...]] = [()]
        self._tts: List[Optional[TruthTable]] = [None]
        self._pis: List[int] = []
        self._pi_names: List[str] = []
        self._pos: List[Tuple[int, bool]] = []
        self._po_names: List[str] = []

    # -- construction --------------------------------------------------------

    def create_pi(self, name: Optional[str] = None) -> int:
        node = len(self._is_lut)
        self._is_lut.append(False)
        self._fanins.append(())
        self._tts.append(None)
        self._pis.append(node)
        self._pi_names.append(name if name is not None else f"pi{len(self._pis) - 1}")
        return node

    def create_lut(self, fanins: Sequence[int], tt: TruthTable) -> int:
        if len(fanins) != tt.num_vars:
            raise ValueError("fanin count must match truth-table arity")
        if len(fanins) > self.k:
            raise ValueError(f"LUT exceeds K={self.k} inputs")
        if any(f >= len(self._is_lut) for f in fanins):
            raise ValueError("fanin refers to unknown node")
        node = len(self._is_lut)
        self._is_lut.append(True)
        self._fanins.append(tuple(fanins))
        self._tts.append(tt)
        return node

    def create_po(self, node: int, phase: bool = False, name: Optional[str] = None) -> None:
        self._pos.append((node, phase))
        self._po_names.append(name if name is not None else f"po{len(self._pos) - 1}")

    # -- queries ---------------------------------------------------------------

    @property
    def pis(self) -> List[int]:
        return list(self._pis)

    @property
    def pos(self) -> List[Tuple[int, bool]]:
        return list(self._pos)

    def num_pis(self) -> int:
        return len(self._pis)

    def num_pos(self) -> int:
        return len(self._pos)

    def num_luts(self) -> int:
        return sum(1 for x in self._is_lut if x)

    def fanins(self, node: int) -> Tuple[int, ...]:
        return self._fanins[node]

    def lut_function(self, node: int) -> TruthTable:
        tt = self._tts[node]
        if tt is None:
            raise ValueError(f"node {node} is not a LUT")
        return tt

    def is_lut(self, node: int) -> bool:
        return self._is_lut[node]

    def levels(self) -> List[int]:
        lev = [0] * len(self._is_lut)
        for n in range(len(self._is_lut)):
            if self._is_lut[n] and self._fanins[n]:
                lev[n] = 1 + max(lev[f] for f in self._fanins[n])
        return lev

    def depth(self) -> int:
        lev = self.levels()
        return max((lev[n] for n, _ in self._pos), default=0)

    # -- simulation / conversion ------------------------------------------------

    def simulate_patterns(self, pi_patterns: Sequence[int], mask: int) -> List[int]:
        vals = [0] * len(self._is_lut)
        for i, n in enumerate(self._pis):
            vals[n] = pi_patterns[i] & mask
        for n in range(len(self._is_lut)):
            if not self._is_lut[n]:
                continue
            tt = self._tts[n]
            fis = self._fanins[n]
            out = 0
            for m in range(1 << len(fis)):
                if tt.get_bit(m):
                    term = mask
                    for i, f in enumerate(fis):
                        term &= vals[f] if (m >> i) & 1 else (vals[f] ^ mask)
                    out |= term
            vals[n] = out
        return vals

    def simulate(self, assignment: Sequence[bool]) -> List[bool]:
        vals = self.simulate_patterns([1 if b else 0 for b in assignment], 1)
        return [bool(vals[n] ^ int(ph)) for n, ph in self._pos]

    def simulate_truth_tables(self) -> List[TruthTable]:
        n = len(self._pis)
        if n > 20:
            raise ValueError("too many PIs for exhaustive simulation")
        mask = (1 << (1 << n)) - 1 if n else 1
        patterns = [var_mask(n, i) for i in range(n)]
        vals = self.simulate_patterns(patterns, mask)
        return [TruthTable(n, vals[node] ^ (mask if ph else 0)) for node, ph in self._pos]

    def to_logic_network(self, cls: Type[LogicNetwork], method: str = "dsd") -> LogicNetwork:
        """Resynthesize every LUT into a logic network of class ``cls``."""
        from ..synthesis.factoring import synthesize_tt

        ntk = cls()
        mapping: Dict[int, int] = {0: ntk.const0}
        for name, n in zip(self._pi_names, self._pis):
            mapping[n] = ntk.create_pi(name)
        for n in range(len(self._is_lut)):
            if not self._is_lut[n]:
                continue
            leaf_lits = [mapping[f] for f in self._fanins[n]]
            mapping[n] = synthesize_tt(ntk, self._tts[n], leaf_lits, method=method)
        for (node, ph), name in zip(self._pos, self._po_names):
            ntk.create_po(mapping[node] ^ int(ph), name)
        return ntk

    def __repr__(self) -> str:
        return f"<LutNetwork k={self.k} pis={self.num_pis()} pos={self.num_pos()} luts={self.num_luts()} depth={self.depth()}>"
