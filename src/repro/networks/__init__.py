"""Logic-network representations (AIG, XAG, MIG, XMG, mixed)."""

from .base import GateType, LogicNetwork, lit, lit_node, lit_not, lit_phase, rep_view
from .flat import FlatNetwork
from .aig import Aig
from .xag import Xag
from .mig import Mig
from .xmg import Xmg
from .mixed import MixedNetwork
from .convert import convert
from .lut_network import LutNetwork
from .netlist import CellNetlist

__all__ = [
    "GateType",
    "LogicNetwork",
    "lit",
    "lit_node",
    "lit_not",
    "lit_phase",
    "rep_view",
    "FlatNetwork",
    "Aig",
    "Xag",
    "Mig",
    "Xmg",
    "MixedNetwork",
    "convert",
    "LutNetwork",
    "CellNetlist",
]
