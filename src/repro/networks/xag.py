"""XOR-AND Graphs: AIG extended with native two-input XOR gates."""

from __future__ import annotations

from .base import GateType, LogicNetwork

__all__ = ["Xag"]


class Xag(LogicNetwork):
    """XAG — captures XOR-rich (arithmetic) structure compactly."""

    ALLOWED = frozenset({GateType.AND, GateType.XOR})
    rep_name = "XAG"
