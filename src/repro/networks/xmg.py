"""XOR-Majority Graphs: three-input majority plus three-input XOR gates."""

from __future__ import annotations

from .base import GateType, LogicNetwork

__all__ = ["Xmg"]


class Xmg(LogicNetwork):
    """XMG (Haaswijk et al., ASP-DAC'17) — MAJ3 + XOR3 with inverters."""

    ALLOWED = frozenset({GateType.MAJ, GateType.XOR3})
    rep_name = "XMG"
