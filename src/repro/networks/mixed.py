"""Mixed networks: the superset representation that hosts MCH choice nets.

A mixed network may contain every native gate type at once (AND, XOR, MAJ,
XOR3), so candidates from different representations can coexist as choice
nodes of the same representative — the heterogeneous half of the Mixed
Structural Choices operator.
"""

from __future__ import annotations

from .base import LogicNetwork

__all__ = ["MixedNetwork"]


class MixedNetwork(LogicNetwork):
    """Network allowing all native gate types simultaneously."""

    rep_name = "mixed"
