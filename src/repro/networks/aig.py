"""And-Inverter Graphs: two-input ANDs with complemented edges."""

from __future__ import annotations

from .base import GateType, LogicNetwork

__all__ = ["Aig"]


class Aig(LogicNetwork):
    """AIG — the baseline representation of the synthesis flow."""

    ALLOWED = frozenset({GateType.AND})
    rep_name = "AIG"
