"""Majority-Inverter Graphs: three-input majority gates only.

AND/OR are represented as majority gates with a constant input
(``AND(a, b) = MAJ(a, b, 0)``, ``OR(a, b) = MAJ(a, b, 1)``), which is the
one-to-one embedding of an AIG into an MIG used by Algorithm 1 of the paper.
"""

from __future__ import annotations

from .base import GateType, LogicNetwork

__all__ = ["Mig"]


class Mig(LogicNetwork):
    """MIG (Amaru et al., TCAD'16)."""

    ALLOWED = frozenset({GateType.MAJ})
    rep_name = "MIG"
