"""Conversions between logic representations.

:func:`convert` re-expresses a network in another representation by mapping
every gate onto the target's native gate set through the generic constructors
(one-to-one where the target can host the gate natively, by local
decomposition otherwise).  When the source is an AIG and the target an MIG /
XMG / XAG / mixed network this is exactly the *one-to-one mapping* of
Algorithm 1, line 1: each AND becomes ``MAJ(a, b, 0)`` etc. and the original
structure is fully retained.
"""

from __future__ import annotations

from typing import Type, TypeVar

from .base import LogicNetwork

N = TypeVar("N", bound=LogicNetwork)

__all__ = ["convert"]


def convert(src: LogicNetwork, dst_cls: Type[N]) -> N:
    """Convert ``src`` into a new network of class ``dst_cls``.

    Structure is preserved gate-for-gate whenever the destination supports the
    source gate type natively; otherwise the gate is decomposed locally (e.g.
    MAJ into AND/OR when targeting an AIG).  Functional equivalence always
    holds and is easy to check with :mod:`repro.sat.cec`.
    """
    dst = dst_cls()
    src.copy_into(dst)
    return dst
