"""Flat struct-of-arrays network core.

A :class:`FlatNetwork` is an immutable snapshot of a
:class:`~repro.networks.base.LogicNetwork` stored as contiguous parallel
buffers (stdlib :mod:`array` — C-contiguous, buffer-protocol compatible, so
numpy views come for free where numpy is available):

* ``kind``  — one byte per node (:class:`~repro.networks.base.GateType`);
* ``fanin`` — three literals per node, zero-padded (arity is implied by the
  gate kind), so consumers iterate fanin slots without touching node objects;
* ``level`` — the memoized logic level of every node;
* ``pis`` / ``pos`` — CI node indices and PO literals;
* ``ros`` / ``ris`` / ``rinit`` — register outputs (node indices, a subset of
  ``pis``), the paired next-state literals and the 0/1 initial values, so
  sequential networks survive pack/shm transport and hashing unchanged.

The flat core is what the hot consumers iterate: cut enumeration reads the
kind/fanin arrays directly, Tseitin encoding emits clauses straight from
them, the simulation engine batches gates from the same data, and the batch
layer ships the buffers to worker processes through
``multiprocessing.shared_memory`` — a tiny picklable header plus one
contiguous payload instead of an object-graph pickle.

Snapshots are exact: :meth:`to_network` restores a structurally identical
``LogicNetwork`` (same node numbering, levels, names, strash table), so
``FlatNetwork.from_network(n).to_network()`` round-trips to fingerprint
equality.  :meth:`structural_hash` is a cheap content hash over the raw
buffers, used as the snapshot key for cached equivalence sessions.

Mutation stays on ``LogicNetwork`` (its append-friendly builder lists);
``LogicNetwork.flat`` memoizes the snapshot per structural version, so
consumers of an unchanged network share one flat core.
"""

from __future__ import annotations

import hashlib
from array import array
from typing import Optional, Sequence, Tuple

from .base import GateType, LogicNetwork

__all__ = ["FlatNetwork"]

#: fanin count per gate kind (CONST, PI, AND, XOR, MAJ, XOR3)
_ARITY = (0, 0, 2, 2, 3, 3)

_GATE_MIN = int(GateType.AND)  # kinds >= this are gates


def _rep_class(name: str) -> type:
    """Resolve a representation name recorded by :meth:`from_network`."""
    from . import Aig, MixedNetwork, Mig, Xag, Xmg

    return {
        "Aig": Aig, "Xag": Xag, "Mig": Mig, "Xmg": Xmg,
        "MixedNetwork": MixedNetwork, "LogicNetwork": LogicNetwork,
    }.get(name, MixedNetwork)


def _attach_shm(name: str):
    """Attach an existing shared-memory block without tracker registration.

    Python 3.13 grew a ``track`` parameter (and tracks attaches by default,
    which would make the resource tracker of a worker fight the owning
    process over unlinking); earlier versions never track attaches.
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13
        return shared_memory.SharedMemory(name=name)


class FlatNetwork:
    """One logic network as flat parallel buffers (see module docstring)."""

    __slots__ = ("rep", "kind", "level", "fanin", "pis", "pos",
                 "ros", "ris", "rinit", "pi_names", "po_names", "_hash")

    def __init__(self, rep: str, kind: array, level: array, fanin: array,
                 pis: array, pos: array, pi_names: Tuple[str, ...],
                 po_names: Tuple[str, ...], ros: Optional[array] = None,
                 ris: Optional[array] = None, rinit: Optional[array] = None):
        self.rep = rep
        self.kind = kind            # array('B'), one GateType byte per node
        self.level = level          # array('q'), per-node logic level
        self.fanin = fanin          # array('q'), 3 literals per node, 0-padded
        self.pis = pis              # array('q'), CI node indices
        self.pos = pos              # array('q'), PO literals
        self.ros = ros if ros is not None else array("q")   # RO node indices
        self.ris = ris if ris is not None else array("q")   # RI literals
        self.rinit = rinit if rinit is not None else array("B")  # init values
        self.pi_names = pi_names
        self.po_names = po_names
        self._hash: Optional[str] = None

    # ------------------------------------------------------------------ #
    # construction                                                        #
    # ------------------------------------------------------------------ #

    @classmethod
    def from_network(cls, ntk: LogicNetwork) -> "FlatNetwork":
        """Snapshot a logic network into flat buffers (exact, name-preserving)."""
        flat_fanin = []
        for fis in ntk._fanins:
            k = len(fis)
            if k == 2:
                flat_fanin += (fis[0], fis[1], 0)
            elif k == 3:
                flat_fanin += fis
            else:
                flat_fanin += (0, 0, 0)
        return cls(
            rep=type(ntk).__name__,
            kind=array("B", bytes(map(int, ntk._types))),
            level=array("q", ntk._levels),
            fanin=array("q", flat_fanin),
            pis=array("q", ntk._pis),
            pos=array("q", ntk._pos),
            pi_names=tuple(ntk._pi_names),
            po_names=tuple(ntk._po_names),
            ros=array("q", ntk._ro_nodes),
            ris=array("q", ntk._ri_lits),
            rinit=array("B", ntk._ro_init),
        )

    def to_network(self, cls: Optional[type] = None) -> LogicNetwork:
        """Rebuild the exact :class:`LogicNetwork` this snapshot came from.

        The arrays came from a structurally-hashed network, so the rebuild
        bypasses the normalization rules and restores nodes verbatim —
        types, fanins, levels, names and the strash table all match the
        source, which makes the round trip fingerprint-identical.
        """
        if cls is None:
            cls = _rep_class(self.rep)
        ntk = cls()
        kinds = self.kind
        fan = self.fanin
        types = [GateType(k) for k in kinds]
        fanins = []
        strash = {}
        for node, k in enumerate(kinds):
            arity = _ARITY[k]
            base = 3 * node
            if arity == 2:
                fis = (fan[base], fan[base + 1])
            elif arity == 3:
                fis = (fan[base], fan[base + 1], fan[base + 2])
            else:
                fis = ()
            fanins.append(fis)
            if k >= _GATE_MIN:
                strash[(types[node], fis)] = node
        ntk._types = types
        ntk._fanins = fanins
        ntk._levels = list(self.level)
        ntk._pis = list(self.pis)
        ntk._pi_names = list(self.pi_names)
        ntk._pos = list(self.pos)
        ntk._po_names = list(self.po_names)
        ntk._ro_nodes = list(self.ros)
        ntk._ri_lits = list(self.ris)
        ntk._ro_init = list(self.rinit)
        ntk._strash = strash
        ntk._touch()
        return ntk

    # ------------------------------------------------------------------ #
    # shape                                                               #
    # ------------------------------------------------------------------ #

    def num_nodes(self) -> int:
        return len(self.kind)

    def num_pis(self) -> int:
        return len(self.pis)

    def num_pos(self) -> int:
        return len(self.pos)

    def num_registers(self) -> int:
        return len(self.ros)

    def num_gates(self) -> int:
        gate_min = _GATE_MIN
        return sum(1 for k in self.kind if k >= gate_min)

    @property
    def nbytes(self) -> int:
        """Total payload size of :meth:`pack` in bytes."""
        n = len(self.kind)
        r = len(self.ros)
        return (n + 8 * n + 24 * n + 8 * len(self.pis) + 8 * len(self.pos)
                + 16 * r + r)

    def fanin_slots(self, node: int) -> Tuple[int, ...]:
        """The node's fanin literals (arity implied by its kind)."""
        base = 3 * node
        return tuple(self.fanin[base:base + _ARITY[self.kind[node]]])

    # ------------------------------------------------------------------ #
    # hashing                                                             #
    # ------------------------------------------------------------------ #

    def structural_hash(self) -> str:
        """Content hash of the structure (16 hex chars), cached.

        Covers representation, gate kinds, fanin literals, CI order, PO
        literals and the register arrays (RO/RI pairing and init values) — everything that determines the DAG — but not names or
        the derived levels.  Two networks with equal hashes have identical
        node numbering, so solver/simulation state computed against one is
        valid for the other.  (Byte order is the platform's: hashes are
        stable within one machine, which is all the snapshot caches and
        shared-memory transfer need.)
        """
        h = self._hash
        if h is None:
            m = hashlib.sha256()
            m.update(self.rep.encode())
            m.update(b"|%d|%d|%d|%d|" % (len(self.kind), len(self.pis),
                                          len(self.pos), len(self.ros)))
            m.update(self.kind.tobytes())
            m.update(self.fanin.tobytes())
            m.update(self.pis.tobytes())
            m.update(self.pos.tobytes())
            m.update(self.ros.tobytes())
            m.update(self.ris.tobytes())
            m.update(self.rinit.tobytes())
            h = self._hash = m.hexdigest()[:16]
        return h

    # ------------------------------------------------------------------ #
    # serialization: one contiguous payload + a tiny header               #
    # ------------------------------------------------------------------ #

    def pack(self) -> bytes:
        """The buffers as one contiguous payload (decode with :meth:`unpack`)."""
        return b"".join((self.kind.tobytes(), self.level.tobytes(),
                         self.fanin.tobytes(), self.pis.tobytes(),
                         self.pos.tobytes(), self.ros.tobytes(),
                         self.ris.tobytes(), self.rinit.tobytes()))

    def header(self) -> dict:
        """The tiny picklable header describing a :meth:`pack` payload."""
        return {
            "rep": self.rep,
            "n": len(self.kind),
            "n_pis": len(self.pis),
            "n_pos": len(self.pos),
            "n_regs": len(self.ros),
            "nbytes": self.nbytes,
            "pi_names": self.pi_names,
            "po_names": self.po_names,
        }

    @classmethod
    def unpack(cls, header: dict, payload) -> "FlatNetwork":
        """Rebuild a snapshot from :meth:`header` + :meth:`pack` output.

        ``payload`` is any buffer (bytes, memoryview, shared-memory view);
        the arrays copy out of it, so the buffer can be released afterwards.
        """
        n, p, q = header["n"], header["n_pis"], header["n_pos"]
        r = header.get("n_regs", 0)
        mv = memoryview(payload)
        if len(mv) < header["nbytes"]:
            raise ValueError("flat-network payload shorter than its header claims")
        off = 0

        def take(typecode: str, count: int, width: int) -> array:
            nonlocal off
            arr = array(typecode)
            arr.frombytes(mv[off:off + count * width])
            off += count * width
            return arr

        kind = take("B", n, 1)
        level = take("q", n, 8)
        fanin = take("q", 3 * n, 8)
        pis = take("q", p, 8)
        pos = take("q", q, 8)
        ros = take("q", r, 8)
        ris = take("q", r, 8)
        rinit = take("B", r, 1)
        return cls(header["rep"], kind, level, fanin, pis, pos,
                   tuple(header["pi_names"]), tuple(header["po_names"]),
                   ros, ris, rinit)

    # ------------------------------------------------------------------ #
    # shared-memory transfer                                              #
    # ------------------------------------------------------------------ #

    def to_shared_memory(self):
        """Publish the packed buffers into a new shared-memory block.

        Returns ``(shm, header)``: the owning :class:`SharedMemory` handle
        (the caller is responsible for ``close()`` + ``unlink()`` once every
        consumer is done) and a picklable header whose ``shm_name`` lets any
        process on this machine rebuild the network with
        :meth:`from_shared_memory` — no pickling of the network itself.
        """
        from multiprocessing import shared_memory

        payload = self.pack()
        # an auto-generated name can still collide with a block leaked by a
        # killed process; regenerate rather than fail the whole batch
        for _ in range(8):
            try:
                shm = shared_memory.SharedMemory(create=True,
                                                 size=max(len(payload), 1))
                break
            except FileExistsError as exc:
                import warnings

                warnings.warn(f"shared-memory name collision with a leaked "
                              f"block ({exc}); retrying with a fresh name")
        else:
            raise RuntimeError(
                "could not allocate a shared-memory block: every generated "
                "name collided with an existing (leaked?) block")
        shm.buf[:len(payload)] = payload
        header = self.header()
        header["shm_name"] = shm.name
        return shm, header

    @classmethod
    def from_shared_memory(cls, header: dict) -> "FlatNetwork":
        """Rebuild a snapshot from a shared-memory header (attach → copy → close).

        The arrays are copied out of the block, so the attachment is closed
        before returning; the block's owner keeps control of its lifetime.
        """
        shm = _attach_shm(header["shm_name"])
        try:
            return cls.unpack(header, shm.buf)
        finally:
            shm.close()

    # ------------------------------------------------------------------ #

    def __eq__(self, other) -> bool:
        if not isinstance(other, FlatNetwork):
            return NotImplemented
        return (self.rep == other.rep and self.kind == other.kind
                and self.fanin == other.fanin and self.pis == other.pis
                and self.pos == other.pos and self.level == other.level
                and self.ros == other.ros and self.ris == other.ris
                and self.rinit == other.rinit
                and self.pi_names == other.pi_names
                and self.po_names == other.po_names)

    def __repr__(self) -> str:
        regs = f" regs={len(self.ros)}" if len(self.ros) else ""
        return (f"<FlatNetwork {self.rep} nodes={len(self.kind)} "
                f"pis={len(self.pis)} pos={len(self.pos)}{regs} "
                f"hash={self.structural_hash()}>")
