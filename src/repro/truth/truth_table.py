"""Bit-parallel truth tables backed by arbitrary-precision integers.

A :class:`TruthTable` over ``n`` variables stores ``2**n`` function values in
the bits of a Python ``int``.  Bit ``i`` holds ``f(x)`` for the input minterm
whose binary encoding is ``i`` (variable 0 is the least-significant input).

This is the workhorse of the whole library: cut functions, NPN
canonization, Boolean matching, ISOP computation and network simulation all
run on these objects.  Python integers give us unbounded width with C-speed
bitwise operations, which is the standard trick for truth-table packages
(ABC's ``utilTruth``, mockturtle's ``kitty``).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["TruthTable", "var_mask", "const_tt", "var_tt"]

# Cache of elementary variable masks: _VAR_MASKS[n][v] is the truth table of
# variable v over n variables, as a raw int.
_VAR_MASKS: dict = {}


def _full_mask(num_vars: int) -> int:
    return (1 << (1 << num_vars)) - 1


def var_mask(num_vars: int, var: int) -> int:
    """Raw bit mask of projection function ``x_var`` over ``num_vars`` vars."""
    if not 0 <= var < num_vars:
        raise ValueError(f"variable {var} out of range for {num_vars} vars")
    try:
        return _VAR_MASKS[num_vars][var]
    except KeyError:
        masks = []
        for v in range(num_vars):
            # repeat the (0^{2^v} 1^{2^v}) pattern across all 2^num_vars rows
            period = 1 << (v + 1)
            reps = (1 << num_vars) // period
            unit = ((1 << (1 << v)) - 1) << (1 << v)
            val = 0
            for i in range(reps):
                val |= unit << (i * period)
            masks.append(val)
        _VAR_MASKS[num_vars] = masks
        return masks[var]


class TruthTable:
    """Immutable truth table over a fixed number of variables."""

    __slots__ = ("num_vars", "bits")

    def __init__(self, num_vars: int, bits: int = 0):
        if num_vars < 0:
            raise ValueError("num_vars must be non-negative")
        self.num_vars = num_vars
        self.bits = bits & _full_mask(num_vars)

    # -- constructors -----------------------------------------------------

    @classmethod
    def const(cls, num_vars: int, value: bool) -> "TruthTable":
        return cls(num_vars, _full_mask(num_vars) if value else 0)

    @classmethod
    def var(cls, num_vars: int, var: int) -> "TruthTable":
        return cls(num_vars, var_mask(num_vars, var))

    @classmethod
    def from_bits(cls, num_vars: int, bits: int) -> "TruthTable":
        return cls(num_vars, bits)

    @classmethod
    def from_binary_string(cls, s: str) -> "TruthTable":
        """Parse a binary string, most-significant minterm first.

        ``TruthTable.from_binary_string("1000")`` is AND of two variables.
        """
        n = len(s)
        if n & (n - 1) or n == 0:
            raise ValueError("length must be a power of two")
        num_vars = n.bit_length() - 1
        return cls(num_vars, int(s, 2))

    @classmethod
    def from_hex(cls, num_vars: int, s: str) -> "TruthTable":
        return cls(num_vars, int(s, 16))

    @classmethod
    def from_function(cls, num_vars: int, fn) -> "TruthTable":
        """Build from a Python predicate ``fn(*inputs) -> bool``."""
        bits = 0
        for m in range(1 << num_vars):
            args = [bool((m >> v) & 1) for v in range(num_vars)]
            if fn(*args):
                bits |= 1 << m
        return cls(num_vars, bits)

    # -- basic queries -----------------------------------------------------

    @property
    def mask(self) -> int:
        return _full_mask(self.num_vars)

    @property
    def num_bits(self) -> int:
        return 1 << self.num_vars

    def get_bit(self, minterm: int) -> bool:
        return bool((self.bits >> minterm) & 1)

    def count_ones(self) -> int:
        return bin(self.bits).count("1")

    def is_const0(self) -> bool:
        return self.bits == 0

    def is_const1(self) -> bool:
        return self.bits == self.mask

    def evaluate(self, assignment: Sequence[bool]) -> bool:
        """Evaluate under an input assignment (index 0 = variable 0)."""
        m = 0
        for v, val in enumerate(assignment):
            if val:
                m |= 1 << v
        return self.get_bit(m)

    # -- logical operators ---------------------------------------------------

    def _check(self, other: "TruthTable") -> None:
        if self.num_vars != other.num_vars:
            raise ValueError("truth tables have different variable counts")

    def __and__(self, other: "TruthTable") -> "TruthTable":
        self._check(other)
        return TruthTable(self.num_vars, self.bits & other.bits)

    def __or__(self, other: "TruthTable") -> "TruthTable":
        self._check(other)
        return TruthTable(self.num_vars, self.bits | other.bits)

    def __xor__(self, other: "TruthTable") -> "TruthTable":
        self._check(other)
        return TruthTable(self.num_vars, self.bits ^ other.bits)

    def __invert__(self) -> "TruthTable":
        return TruthTable(self.num_vars, self.bits ^ self.mask)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, TruthTable)
            and self.num_vars == other.num_vars
            and self.bits == other.bits
        )

    def __hash__(self) -> int:
        return hash((self.num_vars, self.bits))

    def __repr__(self) -> str:
        width = max(1, (1 << self.num_vars) // 4)
        return f"TruthTable({self.num_vars}, 0x{self.bits:0{width}x})"

    def to_hex(self) -> str:
        width = max(1, (1 << self.num_vars) // 4)
        return f"{self.bits:0{width}x}"

    def to_binary_string(self) -> str:
        return f"{self.bits:0{1 << self.num_vars}b}"

    # -- cofactors and support ---------------------------------------------

    def cofactor(self, var: int, value: bool) -> "TruthTable":
        """Cofactor w.r.t. ``var`` (result keeps the same variable count)."""
        vm = var_mask(self.num_vars, var)
        shift = 1 << var
        if value:
            hi = self.bits & vm
            return TruthTable(self.num_vars, hi | (hi >> shift))
        lo = self.bits & ~vm
        return TruthTable(self.num_vars, lo | (lo << shift))

    def has_var(self, var: int) -> bool:
        """True if the function depends on ``var``."""
        return self.cofactor(var, False).bits != self.cofactor(var, True).bits

    def support(self) -> List[int]:
        return [v for v in range(self.num_vars) if self.has_var(v)]

    def support_size(self) -> int:
        return len(self.support())

    # -- variable permutation / polarity -------------------------------------

    def flip(self, var: int) -> "TruthTable":
        """Complement input ``var`` (swap its cofactors)."""
        vm = var_mask(self.num_vars, var)
        shift = 1 << var
        hi = self.bits & vm
        lo = self.bits & ~vm
        return TruthTable(self.num_vars, (hi >> shift) | (lo << shift))

    def swap_adjacent(self, var: int) -> "TruthTable":
        """Swap variables ``var`` and ``var + 1``."""
        if var + 1 >= self.num_vars:
            raise ValueError("var + 1 out of range")
        n = self.num_vars
        lo_m = var_mask(n, var)
        hi_m = var_mask(n, var + 1)
        shift = 1 << var
        keep = self.bits & ((lo_m & hi_m) | (~lo_m & ~hi_m))
        up = self.bits & (lo_m & ~hi_m)  # var=1, var+1=0 -> move up
        dn = self.bits & (~lo_m & hi_m)  # var=0, var+1=1 -> move down
        return TruthTable(n, keep | (up << shift) | (dn >> shift))

    def swap(self, a: int, b: int) -> "TruthTable":
        if a == b:
            return self
        if a > b:
            a, b = b, a
        tt = self
        for v in range(a, b):
            tt = tt.swap_adjacent(v)
        for v in range(b - 2, a - 1, -1):
            tt = tt.swap_adjacent(v)
        return tt

    def permute(self, perm: Sequence[int]) -> "TruthTable":
        """Relabel inputs: new variable ``i`` is old variable ``perm[i]``.

        Equivalently ``result(x_0..x_{n-1}) = self(x_{perm^{-1}(0)}, ...)``
        evaluated so that ``result.evaluate(a) == self.evaluate([a[perm.index(v)]
        for v in range(n)])``; formally the value of ``result`` on minterm
        ``m`` equals the value of ``self`` on the minterm whose bit ``perm[i]``
        is bit ``i`` of ``m``.
        """
        if sorted(perm) != list(range(self.num_vars)):
            raise ValueError("perm must be a permutation of all variables")
        bits = 0
        src = self.bits
        n = self.num_vars
        for m in range(1 << n):
            if (src >> m) & 1:
                dest = 0
                for i in range(n):
                    if (m >> perm[i]) & 1:
                        dest |= 1 << i
                bits |= 1 << dest
        return TruthTable(n, bits)

    # -- resizing -------------------------------------------------------------

    def extend(self, num_vars: int) -> "TruthTable":
        """Pad with don't-depend variables up to ``num_vars``."""
        if num_vars < self.num_vars:
            raise ValueError("cannot extend to fewer variables")
        bits = self.bits
        width = 1 << self.num_vars
        for _ in range(num_vars - self.num_vars):
            bits |= bits << width
            width <<= 1
        return TruthTable(num_vars, bits)

    def shrink(self, num_vars: int) -> "TruthTable":
        """Drop upper variables the function does not depend on."""
        if num_vars > self.num_vars:
            raise ValueError("cannot shrink to more variables")
        for v in range(num_vars, self.num_vars):
            if self.has_var(v):
                raise ValueError(f"function depends on variable {v}")
        return TruthTable(num_vars, self.bits & _full_mask(num_vars))

    def min_base(self) -> "tuple[TruthTable, List[int]]":
        """Project onto the true support.

        Returns ``(tt, support)`` where ``tt`` has ``len(support)`` variables
        and ``support`` lists the original variable indices in order.
        """
        sup = self.support()
        if sup == list(range(len(sup))):
            tt = self
        else:
            others = [v for v in range(self.num_vars) if v not in sup]
            tt = self.permute(sup + others)
        return TruthTable(len(sup), tt.bits & _full_mask(len(sup))), sup


def const_tt(num_vars: int, value: bool) -> TruthTable:
    return TruthTable.const(num_vars, value)


def var_tt(num_vars: int, var: int) -> TruthTable:
    return TruthTable.var(num_vars, var)
