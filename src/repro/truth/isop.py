"""Irredundant sum-of-products computation (Minato-Morreale ISOP).

The ISOP algorithm recursively computes, from an interval ``[lower, upper]``
of Boolean functions, a cube cover ``C`` with ``lower <= C <= upper`` that is
irredundant by construction.  It is the basis of the *area-oriented* SOP
resynthesis strategy in the MCH multi-strategy library (Algorithm 2 of the
paper) and of refactoring.

Cubes are ``(pos, neg)`` bit-mask pairs: variable ``v`` appears positively if
bit ``v`` of ``pos`` is set, negatively if bit ``v`` of ``neg`` is set.  The
empty cube ``(0, 0)`` is the tautology.
"""

from __future__ import annotations

from typing import List, Tuple

from .truth_table import TruthTable

__all__ = ["Cube", "isop", "cube_truth_table", "cover_truth_table", "cube_literals"]

Cube = Tuple[int, int]  # (positive literal mask, negative literal mask)


def cube_truth_table(cube: Cube, num_vars: int) -> TruthTable:
    """Truth table of a single cube over ``num_vars`` variables."""
    pos, neg = cube
    tt = TruthTable.const(num_vars, True)
    for v in range(num_vars):
        if (pos >> v) & 1:
            tt = tt & TruthTable.var(num_vars, v)
        if (neg >> v) & 1:
            tt = tt & ~TruthTable.var(num_vars, v)
    return tt


def cover_truth_table(cubes: List[Cube], num_vars: int) -> TruthTable:
    """Truth table of the OR of all cubes."""
    tt = TruthTable.const(num_vars, False)
    for cube in cubes:
        tt = tt | cube_truth_table(cube, num_vars)
    return tt


def cube_literals(cube: Cube) -> List[Tuple[int, bool]]:
    """List of ``(var, complemented)`` literals of a cube."""
    pos, neg = cube
    lits = []
    v = 0
    while (pos >> v) or (neg >> v):
        if (pos >> v) & 1:
            lits.append((v, False))
        if (neg >> v) & 1:
            lits.append((v, True))
        v += 1
    return lits


def _isop_rec(lower: TruthTable, upper: TruthTable, var: int) -> Tuple[List[Cube], TruthTable]:
    """Recursive core: returns (cubes, exact truth table of the cover)."""
    n = lower.num_vars
    if lower.is_const0():
        return [], TruthTable.const(n, False)
    if upper.is_const1():
        return [(0, 0)], TruthTable.const(n, True)

    # Find the topmost variable either bound depends on.
    v = var
    while v >= 0 and not (lower.has_var(v) or upper.has_var(v)):
        v -= 1
    if v < 0:  # no support left; lower != 0 and upper != 1 cannot happen here
        raise AssertionError("inconsistent ISOP interval")

    l0, l1 = lower.cofactor(v, False), lower.cofactor(v, True)
    u0, u1 = upper.cofactor(v, False), upper.cofactor(v, True)

    cubes0, cov0 = _isop_rec(l0 & ~u1, u0, v - 1)
    cubes1, cov1 = _isop_rec(l1 & ~u0, u1, v - 1)
    l_new = (l0 & ~cov0) | (l1 & ~cov1)
    cubes_star, cov_star = _isop_rec(l_new, u0 & u1, v - 1)

    bit = 1 << v
    cubes = [(p, q | bit) for (p, q) in cubes0]
    cubes += [(p | bit, q) for (p, q) in cubes1]
    cubes += cubes_star
    vtt = TruthTable.var(n, v)
    cover = (cov0 & ~vtt) | (cov1 & vtt) | cov_star
    return cubes, cover


def isop(tt: TruthTable, dont_cares: TruthTable = None) -> List[Cube]:
    """Irredundant SOP cover of ``tt`` (optionally exploiting don't-cares).

    The returned cover ``C`` satisfies ``tt <= C <= tt | dont_cares`` and is
    irredundant (no cube or literal can be dropped).
    """
    lower = tt
    upper = tt if dont_cares is None else (tt | dont_cares)
    cubes, cover = _isop_rec(lower, upper, tt.num_vars - 1)
    # Sanity of the interval invariant (cheap; covers are small).
    assert (lower.bits & ~cover.bits) == 0 and (cover.bits & ~upper.bits) == 0
    return cubes


def num_literals(cubes: List[Cube]) -> int:
    """Total literal count of a cover (classic area proxy)."""
    return sum(bin(p).count("1") + bin(q).count("1") for p, q in cubes)
