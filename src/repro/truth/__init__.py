"""Truth-table engine: bit-parallel tables, NPN, ISOP, DSD."""

from .truth_table import TruthTable, const_tt, var_tt
from .npn import apply_transform, canonicalize, inverse_transform, semi_canonicalize
from .isop import Cube, cover_truth_table, cube_literals, cube_truth_table, isop, num_literals
from .dsd import DsdNode, decompose, dsd_depth, dsd_num_gates

__all__ = [
    "TruthTable",
    "const_tt",
    "var_tt",
    "apply_transform",
    "canonicalize",
    "inverse_transform",
    "semi_canonicalize",
    "Cube",
    "isop",
    "cube_truth_table",
    "cover_truth_table",
    "cube_literals",
    "num_literals",
    "DsdNode",
    "decompose",
    "dsd_num_gates",
    "dsd_depth",
]
