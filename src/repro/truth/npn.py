"""NPN canonization of truth tables.

Two functions are NPN-equivalent when one can be obtained from the other by
Negating inputs, Permuting inputs and/or Negating the output.  Canonizing cut
functions into NPN classes is the standard trick that lets a rewriting
database or a Boolean matcher store one structure per class instead of one
per function (Huang et al., FPT'13, used by the paper as the level-oriented
"4-input NPN library" strategy).

For up to 4 variables we do exhaustive canonization over all
``4! * 2^4 * 2 = 768`` transforms, accelerated by precomputed minterm maps
and an LRU cache.  For 5-6 variables :func:`semi_canonicalize` provides a
deterministic (but not canonical) signature-based normal form, which is all
the heuristic hash consumers need.

Transform semantics
-------------------
A transform ``t = (perm, phases, out_phase)`` acts on ``f`` as::

    apply(t, f)(x) = f(y) ^ out_phase,   where  y[perm[i]] = x[i] ^ phase[i]

:func:`canonicalize` returns ``(canon, perm, phases, out_phase)`` with
``canon == apply(t, f)``.  To rebuild ``f`` from a structure computing
``canon``: feed canonical input ``i`` with the literal ``x[perm[i]] ^
phases[i]`` and complement the output iff ``out_phase``.
"""

from __future__ import annotations

import itertools
from functools import lru_cache
from typing import List, Tuple

from .truth_table import TruthTable

__all__ = ["canonicalize", "apply_transform", "semi_canonicalize", "NPNTransform"]

NPNTransform = Tuple[Tuple[int, ...], Tuple[bool, ...], bool]

# _MAPS[n] is a list of (perm, phases, sigma) where sigma maps destination
# minterm -> source minterm for the input part of the transform.
_MAPS: dict = {}


def _sigma(n: int, perm: Tuple[int, ...], phases: Tuple[bool, ...]) -> Tuple[int, ...]:
    out = []
    for x in range(1 << n):
        y = 0
        for i in range(n):
            bit = ((x >> i) & 1) ^ int(phases[i])
            if bit:
                y |= 1 << perm[i]
        out.append(y)
    return tuple(out)


def _maps_for(n: int):
    try:
        return _MAPS[n]
    except KeyError:
        maps = []
        for perm in itertools.permutations(range(n)):
            for ph in range(1 << n):
                phases = tuple(bool((ph >> i) & 1) for i in range(n))
                maps.append((perm, phases, _sigma(n, perm, phases)))
        _MAPS[n] = maps
        return maps


def apply_transform(tt: TruthTable, transform: NPNTransform) -> TruthTable:
    """Apply an NPN transform: ``result(x) = tt(y) ^ out``, see module doc."""
    perm, phases, out_phase = transform
    n = tt.num_vars
    if len(perm) != n:
        raise ValueError("transform arity mismatch")
    sigma = _sigma(n, tuple(perm), tuple(phases))
    bits = 0
    src = tt.bits
    for x in range(1 << n):
        if (src >> sigma[x]) & 1:
            bits |= 1 << x
    if out_phase:
        bits ^= tt.mask
    return TruthTable(n, bits)


@lru_cache(maxsize=1 << 16)
def _canon_cached(n: int, bits: int):
    best_bits = -1
    best = None
    mask = (1 << (1 << n)) - 1
    for perm, phases, sigma in _maps_for(n):
        val = 0
        for x in range(1 << n):
            if (bits >> sigma[x]) & 1:
                val |= 1 << x
        if val > best_bits:
            best_bits, best = val, (perm, phases, False)
        inv = val ^ mask
        if inv > best_bits:
            best_bits, best = inv, (perm, phases, True)
    return best_bits, best


def canonicalize(tt: TruthTable) -> Tuple[TruthTable, NPNTransform]:
    """Exact NPN canonical form for up to 4 variables.

    Returns ``(canon, transform)`` with ``apply_transform(tt, transform) ==
    canon``; the canonical representative is the NPN-variant with the largest
    truth-table integer.
    """
    if tt.num_vars > 4:
        raise ValueError("exact NPN canonization supported for <= 4 variables")
    bits, transform = _canon_cached(tt.num_vars, tt.bits)
    return TruthTable(tt.num_vars, bits), transform


def inverse_transform(transform: NPNTransform) -> NPNTransform:
    """Inverse transform: ``apply(inv, apply(t, f)) == f``."""
    perm, phases, out_phase = transform
    n = len(perm)
    inv_perm = [0] * n
    inv_phases = [False] * n
    for i in range(n):
        inv_perm[perm[i]] = i
        inv_phases[perm[i]] = phases[i]
    return tuple(inv_perm), tuple(inv_phases), out_phase


def semi_canonicalize(tt: TruthTable) -> Tuple[TruthTable, NPNTransform]:
    """Deterministic signature-based normal form for any variable count.

    Not a true canonical form (NPN-equivalent functions may normalize to
    different representatives) but stable and cheap; adequate for hashing.
    Returns the same ``(result, transform)`` contract as :func:`canonicalize`.
    """
    n = tt.num_vars
    work = tt
    phases = [False] * n
    # Normalize each input polarity: prefer the phase with the heavier
    # positive cofactor.
    for v in range(n):
        c1 = work.cofactor(v, True).count_ones()
        c0 = work.cofactor(v, False).count_ones()
        if c1 < c0:
            work = work.flip(v)
            phases[v] = True
    # Normalize output polarity.
    out_phase = False
    if work.count_ones() * 2 < work.num_bits:
        work = ~work
        out_phase = True
    # Sort variables by (cofactor weight, influence) signature.
    def sig(v: int):
        c1 = work.cofactor(v, True)
        c0 = work.cofactor(v, False)
        return (c1.count_ones(), (c1 ^ c0).count_ones(), v)

    order = sorted(range(n), key=sig)
    # order[i] = old var placed at new position i  ->  perm for permute()
    work = work.permute(order)
    # Express as a single transform (perm, phases, out) in apply() semantics:
    # apply first flips input i by phase[i], then routes new input i to old
    # input perm[i].  Our steps: flip old var v by phases[v], then new i :=
    # old order[i].  So perm[i] = position where new var i lands... permute()
    # with `order` makes new variable i behave as old variable order[i];
    # apply_transform with perm p makes y[p[i]] = x[i], i.e. new input i
    # drives old input p[i].  These coincide when p[i] = order[i].
    t_perm = tuple(order)
    t_phases = tuple(phases[order[i]] for i in range(n))
    return work, (t_perm, t_phases, out_phase)
