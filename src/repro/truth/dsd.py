"""Disjoint-support decomposition (DSD) of truth tables.

Decomposes a function top-down into AND / OR / XOR / MAJ / MUX nodes with
complemented-edge support, falling back to Shannon expansion (a MUX on the
selected variable) when no simple top decomposition exists.  The result is a
small expression tree that representation-specific builders turn into AIG,
XAG, MIG or XMG subnetworks — this is the "DSD" entry of the MCH strategy
library and the backbone of cut resynthesis.

The decomposition is *semantic* (works on the truth table), so XOR and MAJ
structure hidden inside an AND-heavy AIG is recovered here, which is exactly
what gives the heterogeneous candidates their edge on arithmetic circuits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .truth_table import TruthTable

__all__ = ["DsdNode", "decompose", "dsd_num_gates", "dsd_depth"]


@dataclass
class DsdNode:
    """A node of the DSD tree.

    ``kind`` is one of ``const``, ``var``, ``and``, ``or``, ``xor``, ``maj``,
    ``mux``.  ``children`` holds ``(node, complemented)`` edges.  For ``var``,
    ``var_index`` identifies the input; for ``const``, ``value`` is the
    constant.  For ``mux`` the children are ``(sel, hi, lo)`` meaning
    ``sel ? hi : lo``.
    """

    kind: str
    children: List[Tuple["DsdNode", bool]] = field(default_factory=list)
    var_index: int = -1
    value: bool = False

    def __repr__(self) -> str:  # compact s-expression, handy in test failures
        if self.kind == "const":
            return "1" if self.value else "0"
        if self.kind == "var":
            return f"x{self.var_index}"
        inner = ", ".join(("!" if c else "") + repr(n) for n, c in self.children)
        return f"{self.kind}({inner})"


def _mk_var(v: int) -> DsdNode:
    return DsdNode("var", var_index=v)


def _maj3_check(tt: TruthTable, sup: List[int]) -> Optional[DsdNode]:
    """Detect MAJ of three literals over exactly three support variables."""
    if len(sup) != 3:
        return None
    a, b, c = sup
    base = (
        (TruthTable.var(tt.num_vars, a) & TruthTable.var(tt.num_vars, b))
        | (TruthTable.var(tt.num_vars, a) & TruthTable.var(tt.num_vars, c))
        | (TruthTable.var(tt.num_vars, b) & TruthTable.var(tt.num_vars, c))
    )
    for pa in (False, True):
        for pb in (False, True):
            for pc in (False, True):
                t = base
                if pa:
                    t = t.flip(a)
                if pb:
                    t = t.flip(b)
                if pc:
                    t = t.flip(c)
                if t == tt:
                    return DsdNode(
                        "maj",
                        children=[(_mk_var(a), pa), (_mk_var(b), pb), (_mk_var(c), pc)],
                    )
    return None


def decompose(tt: TruthTable) -> Tuple[DsdNode, bool]:
    """Decompose ``tt`` into a DSD tree.

    Returns ``(root, complemented)``; the function equals the tree output
    XOR ``complemented``.
    """
    n = tt.num_vars
    if tt.is_const0():
        return DsdNode("const", value=False), False
    if tt.is_const1():
        return DsdNode("const", value=False), True

    sup = tt.support()
    if len(sup) == 1:
        v = sup[0]
        if tt == TruthTable.var(n, v):
            return _mk_var(v), False
        return _mk_var(v), True

    # Top-level MAJ of literals (gives MIG/XMG-native nodes).
    maj = _maj3_check(tt, sup)
    if maj is not None:
        return maj, False
    inv = _maj3_check(~tt, sup)
    if inv is not None:
        return inv, True

    # Try simple top decompositions on each support variable.
    for v in sup:
        f0 = tt.cofactor(v, False)
        f1 = tt.cofactor(v, True)
        if f0.is_const0():  # f = v AND f1
            sub, c = decompose(f1)
            return DsdNode("and", children=[(_mk_var(v), False), (sub, c)]), False
        if f1.is_const0():  # f = !v AND f0
            sub, c = decompose(f0)
            return DsdNode("and", children=[(_mk_var(v), True), (sub, c)]), False
        if f0.is_const1():  # f = !v OR f1
            sub, c = decompose(f1)
            return DsdNode("or", children=[(_mk_var(v), True), (sub, c)]), False
        if f1.is_const1():  # f = v OR f0
            sub, c = decompose(f0)
            return DsdNode("or", children=[(_mk_var(v), False), (sub, c)]), False
        if f0 == ~f1:  # f = v XOR f0
            sub, c = decompose(f0)
            return DsdNode("xor", children=[(_mk_var(v), False), (sub, c)]), False

    # Prime function: Shannon expansion on the most binate variable.
    def binateness(v: int) -> int:
        f0 = tt.cofactor(v, False)
        f1 = tt.cofactor(v, True)
        return -(f0 ^ f1).count_ones()

    v = min(sup, key=binateness)
    f0 = tt.cofactor(v, False)
    f1 = tt.cofactor(v, True)
    hi, chi = decompose(f1)
    lo, clo = decompose(f0)
    node = DsdNode("mux", children=[(_mk_var(v), False), (hi, chi), (lo, clo)])
    return node, False


def dsd_num_gates(node: DsdNode) -> int:
    """Rough gate-count cost of a DSD tree (MUX counts as 3)."""
    if node.kind in ("const", "var"):
        return 0
    cost = {"and": 1, "or": 1, "xor": 1, "maj": 1, "mux": 3}[node.kind]
    return cost + sum(dsd_num_gates(ch) for ch, _ in node.children)


def dsd_depth(node: DsdNode) -> int:
    """Depth of a DSD tree in gate levels."""
    if node.kind in ("const", "var"):
        return 0
    extra = 2 if node.kind == "mux" else 1
    return extra + max(dsd_depth(ch) for ch, _ in node.children)
