"""Tests for supergate generation and SAT-based exact synthesis."""

import pytest

from repro.circuits import build
from repro.mapping import MatchTable, asap7_library, asic_map
from repro.mapping.supergates import Supergate, expand_with_supergates
from repro.networks import Aig
from repro.sat import cec
from repro.synthesis import build_exact, exact_gate_count, exact_synthesize
from repro.truth.truth_table import TruthTable


class TestSupergates:
    @pytest.fixture(scope="class")
    def big_lib(self):
        return expand_with_supergates(asap7_library())

    def test_expansion_adds_cells(self, big_lib):
        assert len(big_lib) > len(asap7_library())
        assert any(isinstance(c, Supergate) for c in big_lib)

    def test_supergate_functions_correct(self, big_lib):
        for sg in big_lib:
            if not isinstance(sg, Supergate):
                continue
            # recompute the composition semantically
            m_in = sg.inner.num_pins
            for minterm in range(1 << sg.num_pins):
                vals = [bool((minterm >> i) & 1) for i in range(sg.num_pins)]
                inner_out = sg.inner.function.evaluate(vals[:m_in])
                outer_in = []
                rest = vals[m_in:]
                ri = 0
                for pin in range(sg.outer.num_pins):
                    if pin == sg.position:
                        outer_in.append(inner_out)
                    else:
                        outer_in.append(rest[ri])
                        ri += 1
                assert sg.function.get_bit(minterm) == sg.outer.function.evaluate(outer_in), sg.name

    def test_supergate_area_and_delay(self, big_lib):
        for sg in big_lib:
            if isinstance(sg, Supergate):
                assert sg.area == pytest.approx(sg.outer.area + sg.inner.area)
                assert sg.max_delay() >= sg.outer.max_delay()

    def test_match_table_accepts_supergates(self, big_lib):
        table = MatchTable(big_lib)
        assert table.num_entries() > MatchTable(asap7_library()).num_entries()

    def test_mapping_with_supergates_equivalent(self, big_lib):
        ntk = build("int2float", "tiny")
        nl = asic_map(ntk, library=big_lib, objective="area")
        assert cec(ntk, nl.to_logic_network(Aig))
        # netlist must only contain real cells, never virtual supergates
        assert all("__" not in name for name in nl.cell_histogram())

    def test_netlist_expansion_of_supergate(self, big_lib):
        from repro.networks import CellNetlist

        sg = next(c for c in big_lib if isinstance(c, Supergate))
        nl = CellNetlist()
        pins = [nl.create_pi() for _ in range(sg.num_pins)]
        out = nl.add_cell(sg, pins)
        nl.create_po(out)
        assert nl.num_cells() == 2  # inner + outer
        # function preserved
        for m in range(1 << sg.num_pins):
            vals = [bool((m >> i) & 1) for i in range(sg.num_pins)]
            assert nl.simulate(vals)[0] == sg.function.get_bit(m)


class TestExactSynthesis:
    def test_known_optima(self):
        xor2 = TruthTable.from_function(2, lambda a, b: a != b)
        assert exact_gate_count(xor2, ops=("and",)) == 3
        assert exact_gate_count(xor2, ops=("and", "xor")) == 1
        maj = TruthTable.from_hex(3, "e8")
        assert exact_gate_count(maj, ops=("and",)) == 4

    def test_and2_is_one_gate(self):
        and2 = TruthTable.from_function(2, lambda a, b: a and b)
        assert exact_gate_count(and2) == 1

    def test_literal_recipe(self):
        tt = ~TruthTable.var(3, 1)
        recipe = exact_synthesize(tt)
        assert recipe[0] == ()  # no gates needed
        ntk = Aig()
        leaves = [ntk.create_pi() for _ in range(3)]
        ntk.create_po(build_exact(ntk, recipe, leaves))
        assert ntk.simulate_truth_tables()[0] == tt

    def test_constant_rejected(self):
        with pytest.raises(ValueError):
            exact_synthesize(TruthTable.const(2, True))

    def test_too_many_vars_rejected(self):
        with pytest.raises(ValueError):
            exact_synthesize(TruthTable.var(5, 0))

    @pytest.mark.parametrize("bits", [0x96, 0x8F, 0x1B, 0xE9])
    def test_random_3var_recipes_verified(self, bits):
        tt = TruthTable(3, bits)
        recipe = exact_synthesize(tt, ops=("and",), max_gates=8)
        assert recipe is not None
        ntk = Aig()
        leaves = [ntk.create_pi() for _ in range(3)]
        ntk.create_po(build_exact(ntk, recipe, leaves))
        assert ntk.simulate_truth_tables()[0] == tt

    def test_xag_never_worse_than_aig(self):
        for bits in (0x96, 0x69, 0x3C):
            tt = TruthTable(3, bits)
            aig_n = exact_gate_count(tt, ops=("and",), max_gates=8)
            xag_n = exact_gate_count(tt, ops=("and", "xor"), max_gates=8)
            assert xag_n <= aig_n

    def test_npn_cache_hits(self):
        # NPN-equivalent functions share the cached canonical recipe
        tt = TruthTable.from_hex(3, "e8")
        variant = tt.flip(0).flip(2)
        r1 = exact_synthesize(tt)
        r2 = exact_synthesize(variant)
        assert len(r1[0]) == len(r2[0])
