"""Tests for priority-cut enumeration and cut functions."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cuts import (
    Cut,
    CutDatabase,
    enumerate_cuts,
    expand_cache_stats,
    expand_tt,
    leaf_signature,
    set_expand_cache_limit,
)
from repro.networks import Aig, MixedNetwork, Xmg
from repro.networks.base import lit_not
from repro.truth.truth_table import TruthTable


def check_cut_functions(ntk, cuts):
    """Every cut function must match simulation of the node from the leaves."""
    n_pis = ntk.num_pis()
    # Assign each node's global function by simulation
    from repro.truth.truth_table import var_mask
    mask = (1 << (1 << n_pis)) - 1
    patterns = [var_mask(n_pis, i) for i in range(n_pis)]
    vals = ntk.simulate_patterns(patterns, mask)

    for node in ntk.gates():
        for cut in cuts[node]:
            assert len(cut.leaves) <= 6
            # compose: cut tt applied to leaf global functions == node function
            got = 0
            for m in range(1 << len(cut.leaves)):
                if cut.tt.get_bit(m):
                    term = mask
                    for i, leaf in enumerate(cut.leaves):
                        lv = vals[leaf]
                        term &= lv if (m >> i) & 1 else (lv ^ mask)
                    got |= term
            assert got == vals[node], f"cut {cut} of node {node} wrong"


def build_sample(cls):
    ntk = cls()
    a = ntk.create_pi()
    b = ntk.create_pi()
    c = ntk.create_pi()
    d = ntk.create_pi()
    g1 = ntk.create_and(a, b)
    g2 = ntk.create_or(c, d)
    g3 = ntk.create_xor(g1, g2)
    ntk.create_po(g3)
    return ntk


class TestExpand:
    def test_expand_identity(self):
        tt = TruthTable.from_hex(2, "8")
        assert expand_tt(tt, [0, 1], 2) == tt.bits

    def test_expand_shift(self):
        tt = TruthTable.var(1, 0)
        bits = expand_tt(tt, [2], 3)
        assert bits == TruthTable.var(3, 2).bits


class TestEnumeration:
    def test_pi_trivial_cut(self):
        ntk = build_sample(Aig)
        cuts = enumerate_cuts(ntk, k=4)
        pi = ntk.pis[0]
        assert len(cuts[pi]) == 1
        assert cuts[pi][0].leaves == (pi,)

    def test_every_gate_has_trivial_cut(self):
        ntk = build_sample(Aig)
        cuts = enumerate_cuts(ntk, k=4)
        for g in ntk.gates():
            assert any(c.is_trivial() for c in cuts[g])

    def test_cut_functions_aig(self):
        ntk = build_sample(Aig)
        cuts = enumerate_cuts(ntk, k=4)
        check_cut_functions(ntk, cuts)

    def test_cut_functions_xmg(self):
        ntk = build_sample(Xmg)
        cuts = enumerate_cuts(ntk, k=4)
        check_cut_functions(ntk, cuts)

    def test_k_bound_respected(self):
        ntk = build_sample(Aig)
        for k in (2, 3, 4):
            cuts = enumerate_cuts(ntk, k=k)
            for g in ntk.gates():
                for c in cuts[g]:
                    assert len(c.leaves) <= k

    def test_cut_limit_respected(self):
        ntk = build_sample(MixedNetwork)
        cuts = enumerate_cuts(ntk, k=4, cut_limit=3)
        for g in ntk.gates():
            assert len(cuts[g]) <= 3

    def test_nodes_restriction(self):
        ntk = build_sample(Aig)
        last_gate = max(ntk.gates())
        cuts = enumerate_cuts(ntk, k=4, nodes=[last_gate])
        assert cuts[last_gate]  # computed
        # function check on computed subset only
        check = [g for g in ntk.gates() if cuts[g]]
        assert last_gate in check

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_random_networks_cut_correctness(self, seed):
        import random
        rng = random.Random(seed)
        ntk = MixedNetwork()
        lits = [ntk.create_pi() for _ in range(5)]
        for _ in range(15):
            op = rng.choice(["and", "or", "xor", "maj", "xor3"])
            picks = [rng.choice(lits) ^ rng.randint(0, 1) for _ in range(3)]
            if op == "and":
                lits.append(ntk.create_and(picks[0], picks[1]))
            elif op == "or":
                lits.append(ntk.create_or(picks[0], picks[1]))
            elif op == "xor":
                lits.append(ntk.create_xor(picks[0], picks[1]))
            elif op == "maj":
                lits.append(ntk.create_maj(*picks))
            else:
                lits.append(ntk.create_xor3(*picks))
        ntk.create_po(lits[-1])
        cuts = enumerate_cuts(ntk, k=4, cut_limit=6)
        check_cut_functions(ntk, cuts)


class TestTrivialCutInvariant:
    def test_trivial_cut_always_last(self):
        """The trivial cut {node} of every gate is the LAST list element."""
        for cls in (Aig, Xmg, MixedNetwork):
            ntk = build_sample(cls)
            for limit in (2, 3, 8):
                cuts = enumerate_cuts(ntk, k=4, cut_limit=limit)
                for g in ntk.gates():
                    last = cuts[g][-1]
                    assert last.is_trivial(), f"{cls.__name__} node {g}"
                    assert all(not c.is_trivial() for c in cuts[g][:-1])

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_trivial_cut_last_on_random_networks(self, seed):
        import random
        rng = random.Random(seed)
        ntk = MixedNetwork()
        lits = [ntk.create_pi() for _ in range(4)]
        for _ in range(12):
            picks = [rng.choice(lits) ^ rng.randint(0, 1) for _ in range(3)]
            op = rng.choice(["and", "xor", "maj"])
            if op == "and":
                lits.append(ntk.create_and(picks[0], picks[1]))
            elif op == "xor":
                lits.append(ntk.create_xor(picks[0], picks[1]))
            else:
                lits.append(ntk.create_maj(*picks))
        ntk.create_po(lits[-1])
        cuts = enumerate_cuts(ntk, k=4, cut_limit=6)
        for g in ntk.gates():
            assert cuts[g] and cuts[g][-1].is_trivial()


class TestCutDatabase:
    def test_signatures_match_leaves(self):
        ntk = build_sample(MixedNetwork)
        db = CutDatabase(ntk, k=4, cut_limit=8)
        for node in ntk.nodes():
            start, end = db.spans[node]
            for i in range(start, end):
                assert db.sig[i] == leaf_signature(db.leaves[i])

    def test_leaf_tuples_interned(self):
        ntk = build_sample(Aig)
        db = CutDatabase(ntk, k=4, cut_limit=8)
        by_value = {}
        for leaves in db.leaves:
            prior = by_value.setdefault(leaves, leaves)
            assert prior is leaves  # equal tuples share one object

    def test_view_consistency_with_enumerate_cuts(self):
        """API contract: the wrapper view exposes exactly the db records."""
        ntk = build_sample(Xmg)
        db = CutDatabase(ntk, k=4, cut_limit=8)
        lists = enumerate_cuts(ntk, k=4, cut_limit=8)
        for node in ntk.nodes():
            got = db.cuts(node)
            assert [(c.leaves, c.tt.bits) for c in got] == \
                [(c.leaves, c.tt.bits) for c in lists[node]]

    def test_cuts_against_reference_enumeration(self):
        """Independent oracle: with a generous budget the database holds
        exactly the non-dominated k-feasible cuts of a brute-force
        fixpoint enumeration (plus the trivial cut)."""
        k = 4
        for cls in (Aig, Xmg, MixedNetwork):
            ntk = build_sample(cls)
            # reference: all k-feasible leaf sets via plain set fixpoint
            ref = {}
            for node in ntk.nodes():
                if ntk.is_const(node):
                    ref[node] = {frozenset()}
                elif ntk.is_pi(node):
                    ref[node] = {frozenset((node,))}
                else:
                    sets = set()
                    fanin_sets = [ref[f >> 1] for f in ntk.fanins(node)]
                    import itertools
                    for combo in itertools.product(*fanin_sets):
                        u = frozenset().union(*combo)
                        if len(u) <= k:
                            sets.add(u)
                    # drop dominated (strict-superset) leaf sets
                    sets = {s for s in sets
                            if not any(o < s for o in sets)}
                    sets.add(frozenset((node,)))  # trivial
                    ref[node] = sets
            db = CutDatabase(ntk, k=k, cut_limit=64)
            for g in ntk.gates():
                got = {frozenset(c.leaves) for c in db.cuts(g)}
                assert got == ref[g], f"{cls.__name__} node {g}"

    def test_no_dominated_cut_survives(self):
        ntk = build_sample(MixedNetwork)
        db = CutDatabase(ntk, k=4, cut_limit=8)
        for g in ntk.gates():
            cuts = [set(c.leaves) for c in db.cuts(g)[:-1]]  # minus trivial
            for i, a in enumerate(cuts):
                for j, b in enumerate(cuts):
                    assert i == j or not a < b, f"dominated cut kept at node {g}"

    def test_materialized_lists_are_memoized(self):
        ntk = build_sample(Aig)
        db = CutDatabase(ntk, k=4, cut_limit=8)
        g = max(ntk.gates())
        assert db.cuts(g) is db.cuts(g)


class TestExpandCacheBound:
    def test_cache_respects_limit(self):
        stats = expand_cache_stats()
        old_limit = stats["limit"]
        try:
            set_expand_cache_limit(4)
            ntk = build_sample(MixedNetwork)
            enumerate_cuts(ntk, k=4)
            stats = expand_cache_stats()
            assert stats["size"] <= 4
            assert stats["limit"] == 4
        finally:
            set_expand_cache_limit(old_limit)

    def test_stats_hook_counts(self):
        before = expand_cache_stats()
        ntk = build_sample(Aig)
        enumerate_cuts(ntk, k=4)
        after = expand_cache_stats()
        assert after["hits"] + after["misses"] > before["hits"] + before["misses"]
        assert set(after) == {"hits", "misses", "evictions", "size", "limit"}


class TestCutObject:
    def test_dominates(self):
        c1 = Cut((1, 2), None, 5)
        c2 = Cut((1, 2, 3), None, 5)
        assert c1.dominates(c2)
        assert not c2.dominates(c1)

    def test_eq_hash(self):
        a = Cut((1, 2), None, 5)
        b = Cut((1, 2), None, 5)
        assert a == b and hash(a) == hash(b)
        c = Cut((1, 2), None, 5, phase=True)
        assert a != c
