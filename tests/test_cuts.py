"""Tests for priority-cut enumeration and cut functions."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cuts import Cut, enumerate_cuts, expand_tt
from repro.networks import Aig, MixedNetwork, Xmg
from repro.networks.base import lit_not
from repro.truth.truth_table import TruthTable


def check_cut_functions(ntk, cuts):
    """Every cut function must match simulation of the node from the leaves."""
    n_pis = ntk.num_pis()
    # Assign each node's global function by simulation
    from repro.truth.truth_table import var_mask
    mask = (1 << (1 << n_pis)) - 1
    patterns = [var_mask(n_pis, i) for i in range(n_pis)]
    vals = ntk.simulate_patterns(patterns, mask)

    for node in ntk.gates():
        for cut in cuts[node]:
            assert len(cut.leaves) <= 6
            # compose: cut tt applied to leaf global functions == node function
            got = 0
            for m in range(1 << len(cut.leaves)):
                if cut.tt.get_bit(m):
                    term = mask
                    for i, leaf in enumerate(cut.leaves):
                        lv = vals[leaf]
                        term &= lv if (m >> i) & 1 else (lv ^ mask)
                    got |= term
            assert got == vals[node], f"cut {cut} of node {node} wrong"


def build_sample(cls):
    ntk = cls()
    a = ntk.create_pi()
    b = ntk.create_pi()
    c = ntk.create_pi()
    d = ntk.create_pi()
    g1 = ntk.create_and(a, b)
    g2 = ntk.create_or(c, d)
    g3 = ntk.create_xor(g1, g2)
    ntk.create_po(g3)
    return ntk


class TestExpand:
    def test_expand_identity(self):
        tt = TruthTable.from_hex(2, "8")
        assert expand_tt(tt, [0, 1], 2) == tt.bits

    def test_expand_shift(self):
        tt = TruthTable.var(1, 0)
        bits = expand_tt(tt, [2], 3)
        assert bits == TruthTable.var(3, 2).bits


class TestEnumeration:
    def test_pi_trivial_cut(self):
        ntk = build_sample(Aig)
        cuts = enumerate_cuts(ntk, k=4)
        pi = ntk.pis[0]
        assert len(cuts[pi]) == 1
        assert cuts[pi][0].leaves == (pi,)

    def test_every_gate_has_trivial_cut(self):
        ntk = build_sample(Aig)
        cuts = enumerate_cuts(ntk, k=4)
        for g in ntk.gates():
            assert any(c.is_trivial() for c in cuts[g])

    def test_cut_functions_aig(self):
        ntk = build_sample(Aig)
        cuts = enumerate_cuts(ntk, k=4)
        check_cut_functions(ntk, cuts)

    def test_cut_functions_xmg(self):
        ntk = build_sample(Xmg)
        cuts = enumerate_cuts(ntk, k=4)
        check_cut_functions(ntk, cuts)

    def test_k_bound_respected(self):
        ntk = build_sample(Aig)
        for k in (2, 3, 4):
            cuts = enumerate_cuts(ntk, k=k)
            for g in ntk.gates():
                for c in cuts[g]:
                    assert len(c.leaves) <= k

    def test_cut_limit_respected(self):
        ntk = build_sample(MixedNetwork)
        cuts = enumerate_cuts(ntk, k=4, cut_limit=3)
        for g in ntk.gates():
            assert len(cuts[g]) <= 3

    def test_nodes_restriction(self):
        ntk = build_sample(Aig)
        last_gate = max(ntk.gates())
        cuts = enumerate_cuts(ntk, k=4, nodes=[last_gate])
        assert cuts[last_gate]  # computed
        # function check on computed subset only
        check = [g for g in ntk.gates() if cuts[g]]
        assert last_gate in check

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_random_networks_cut_correctness(self, seed):
        import random
        rng = random.Random(seed)
        ntk = MixedNetwork()
        lits = [ntk.create_pi() for _ in range(5)]
        for _ in range(15):
            op = rng.choice(["and", "or", "xor", "maj", "xor3"])
            picks = [rng.choice(lits) ^ rng.randint(0, 1) for _ in range(3)]
            if op == "and":
                lits.append(ntk.create_and(picks[0], picks[1]))
            elif op == "or":
                lits.append(ntk.create_or(picks[0], picks[1]))
            elif op == "xor":
                lits.append(ntk.create_xor(picks[0], picks[1]))
            elif op == "maj":
                lits.append(ntk.create_maj(*picks))
            else:
                lits.append(ntk.create_xor3(*picks))
        ntk.create_po(lits[-1])
        cuts = enumerate_cuts(ntk, k=4, cut_limit=6)
        check_cut_functions(ntk, cuts)


class TestCutObject:
    def test_dominates(self):
        c1 = Cut((1, 2), None, 5)
        c2 = Cut((1, 2, 3), None, 5)
        assert c1.dominates(c2)
        assert not c2.dominates(c1)

    def test_eq_hash(self):
        a = Cut((1, 2), None, 5)
        b = Cut((1, 2), None, 5)
        assert a == b and hash(a) == hash(b)
        c = Cut((1, 2), None, 5, phase=True)
        assert a != c
