"""Tests for the shared mapping engine: sessions, cost models, equivalence.

The headline property: covers produced on the refactored engine — LUT and
ASIC, plain and choice-aware — must be combinationally equivalent
(``sat.cec``) to the source network on the EPFL-style bundled circuits.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import build
from repro.core import ChoiceNetwork, MchParams, build_mch
from repro.cuts.database import CutDatabase
from repro.mapping import (
    MappingSession,
    NpnCostModel,
    UnitCostModel,
    asic_map,
    graph_map,
    library_cost_model,
    lut_map,
    run_cover,
)
from repro.mapping.asap7 import asap7_library
from repro.networks import Aig, Xmg
from repro.sat import cec

CIRCUITS = ["adder", "ctrl", "int2float", "max", "router", "cavlc"]


class TestMappingSession:
    def test_session_cached_on_subject(self):
        ntk = build("ctrl", "tiny")
        s1 = MappingSession.of(ntk)
        s2 = MappingSession.of(ntk)
        assert s1 is s2

    def test_session_invalidated_on_mutation(self):
        ntk = build("ctrl", "tiny")
        s1 = MappingSession.of(ntk)
        a, b = (n << 1 for n in ntk.pis[:2])
        ntk.create_po(ntk.create_xor(a, b))
        assert not s1.is_current()
        s2 = MappingSession.of(ntk)
        assert s2 is not s1

    def test_cut_database_shared_across_mappers(self):
        ntk = build("int2float", "tiny")
        session = MappingSession.of(ntk)
        db1 = session.cut_database(6, 8)
        lut_map(session, k=6, cut_limit=8)
        assert session.cut_database(6, 8) is db1

    def test_choice_session_uses_processing_order(self):
        ntk = build("adder", "tiny")
        mch = build_mch(ntk, MchParams(representations=(Xmg,)))
        session = MappingSession.of(mch)
        assert session.order() == mch.processing_order()
        assert session.choices is mch.choices_of

    def test_session_results_match_fresh_runs(self):
        ntk = build("max", "tiny")
        session = MappingSession.of(ntk)
        via_session = lut_map(session, k=5, objective="area")
        fresh = lut_map(build("max", "tiny"), k=5, objective="area")
        assert via_session.num_luts() == fresh.num_luts()
        assert via_session.depth() == fresh.depth()

    def test_stats_reports_databases(self):
        ntk = build("ctrl", "tiny")
        session = MappingSession.of(ntk)
        lut_map(session, k=4, cut_limit=6)
        stats = session.stats()
        assert "k=4,limit=6" in stats["databases"]
        assert stats["databases"]["k=4,limit=6"]["cuts"] > 0


class TestCostModels:
    def test_unit_cost(self):
        model = UnitCostModel()
        ntk = build("ctrl", "tiny")
        db = CutDatabase(ntk, k=4, cut_limit=6)
        cut = db.cuts(max(ntk.gates()))[0]
        assert model.cut_cost(cut) == 1.0
        assert model.cut_delay(cut) == 1

    def test_npn_cost_memoizes(self):
        model = NpnCostModel(Xmg, "area")
        ntk = build("ctrl", "tiny")
        db = CutDatabase(ntk, k=4, cut_limit=6)
        cut = db.cuts(max(ntk.gates()))[0]
        first = model.cut_cost(cut)
        assert model.cut_cost(cut) == first
        assert (cut.tt.num_vars, cut.tt.bits) in model._memo

    def test_library_cost_model_shared(self):
        lib = asap7_library()
        assert library_cost_model(lib, 4) is library_cost_model(lib, 4)

    def test_library_min_base_memoized(self):
        lib = asap7_library()
        model = library_cost_model(lib, 4)
        ntk = build("ctrl", "tiny")
        db = CutDatabase(ntk, k=4, cut_limit=6)
        cut = db.cuts(max(ntk.gates()))[0]
        small, sup = model.min_base(cut.tt)
        small2, sup2 = model.min_base(cut.tt)
        assert small.bits == small2.bits and sup == sup2
        ref_small, ref_sup = cut.tt.min_base()
        assert small.bits == ref_small.bits and list(sup) == list(ref_sup)

    def test_run_cover_rejects_bad_objective(self):
        ntk = build("ctrl", "tiny")
        with pytest.raises(ValueError):
            run_cover(MappingSession.of(ntk), UnitCostModel(), objective="fast")


class TestEngineEquivalence:
    """Property: engine covers are equivalent to the source network."""

    @given(name=st.sampled_from(CIRCUITS),
           objective=st.sampled_from(["area", "delay"]))
    @settings(max_examples=8, deadline=None)
    def test_lut_map_cec(self, name, objective):
        ntk = build(name, "tiny")
        lut = lut_map(ntk, k=5, objective=objective)
        assert cec(ntk, lut.to_logic_network(Aig))

    @given(name=st.sampled_from(CIRCUITS))
    @settings(max_examples=4, deadline=None)
    def test_asic_map_cec(self, name):
        ntk = build(name, "tiny")
        nl = asic_map(ntk, objective="delay")
        assert cec(ntk, nl.to_logic_network(Aig))

    @given(name=st.sampled_from(["adder", "ctrl", "int2float"]))
    @settings(max_examples=3, deadline=None)
    def test_choice_aware_lut_map_cec(self, name):
        ntk = build(name, "tiny")
        mch = build_mch(ntk, MchParams(representations=(Xmg,)))
        lut = lut_map(mch, k=5, objective="area")
        assert cec(ntk, lut.to_logic_network(Aig))

    def test_choice_aware_asic_map_cec(self):
        ntk = build("ctrl", "tiny")
        mch = build_mch(ntk, MchParams(representations=(Xmg, Aig)))
        nl = asic_map(mch, objective="area")
        assert cec(ntk, nl.to_logic_network(Aig))

    def test_graph_map_cec(self):
        ntk = build("int2float", "tiny")
        remapped = graph_map(ntk, Xmg, objective="area")
        assert cec(ntk, remapped)

    def test_shared_session_all_three_mappers_cec(self):
        """One session drives LUT, ASIC and graph mapping; all verify."""
        ntk = build("ctrl", "tiny")
        session = MappingSession.of(ntk)
        lut = lut_map(session, k=4)
        nl = asic_map(session, objective="area")
        g = graph_map(session, Xmg)
        assert cec(ntk, lut.to_logic_network(Aig))
        assert cec(ntk, nl.to_logic_network(Aig))
        assert cec(ntk, g)
