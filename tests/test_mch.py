"""Tests for the MCH core: choice networks, critical paths, Algorithms 1-3,
and the DCH baseline."""

import pytest

from repro.circuits import build
from repro.core import ChoiceNetwork, MchParams, build_dch, build_mch, critical_nodes
from repro.core.critical import node_heights
from repro.cuts import enumerate_cuts
from repro.networks import Aig, Mig, MixedNetwork, Xag, Xmg
from repro.opt import compress2rs, optimize_rounds
from repro.sat import cec


def chain_aig():
    ntk = Aig()
    a = ntk.create_pi()
    b = ntk.create_pi()
    c = ntk.create_pi()
    g1 = ntk.create_and(a, b)
    g2 = ntk.create_and(g1, c)
    g3 = ntk.create_and(g2, a)
    ntk.create_po(g3)
    return ntk, (g1, g2, g3)


class TestChoiceNetwork:
    def test_add_choice_basic(self):
        ntk = MixedNetwork()
        a, b, c = (ntk.create_pi() for _ in range(3))
        orig = ntk.create_and(a, ntk.create_and(b, c))
        cand = ntk.create_and(ntk.create_and(a, b), c)
        ch = ChoiceNetwork(ntk)
        assert ch.add_choice(orig >> 1, cand)
        assert ch.num_choices() == 1
        assert ch.is_repr(orig >> 1)
        assert ch.verify()

    def test_reject_self(self):
        ntk = MixedNetwork()
        a, b = ntk.create_pi(), ntk.create_pi()
        g = ntk.create_and(a, b)
        ch = ChoiceNetwork(ntk)
        assert not ch.add_choice(g >> 1, g)

    def test_reject_pi_candidate(self):
        ntk = MixedNetwork()
        a, b = ntk.create_pi(), ntk.create_pi()
        g = ntk.create_and(a, b)
        ch = ChoiceNetwork(ntk)
        assert not ch.add_choice(g >> 1, a)

    def test_reject_cycle(self):
        ntk = MixedNetwork()
        a, b, c = (ntk.create_pi() for _ in range(3))
        g1 = ntk.create_and(a, b)
        g2 = ntk.create_and(g1, c)  # g2 depends on g1
        ch = ChoiceNetwork(ntk)
        assert not ch.add_choice(g1 >> 1, g2)  # would create a cycle

    def test_reject_double_membership(self):
        ntk = MixedNetwork()
        a, b, c = (ntk.create_pi() for _ in range(3))
        orig = ntk.create_and(a, ntk.create_and(b, c))
        cand = ntk.create_and(ntk.create_and(a, b), c)
        ch = ChoiceNetwork(ntk)
        assert ch.add_choice(orig >> 1, cand)
        assert not ch.add_choice(orig >> 1, cand)

    def test_processing_order_choice_before_repr(self):
        ntk = MixedNetwork()
        a, b, c = (ntk.create_pi() for _ in range(3))
        orig = ntk.create_and(a, ntk.create_and(b, c))
        cand = ntk.create_and(ntk.create_and(a, b), c)
        ch = ChoiceNetwork(ntk)
        ch.add_choice(orig >> 1, cand)
        order = ch.processing_order()
        assert order.index(cand >> 1) < order.index(orig >> 1)
        # order is a permutation of all nodes
        assert sorted(order) == list(range(ntk.num_nodes()))


class TestCriticalNodes:
    def test_all_on_single_path(self):
        ntk, (g1, g2, g3) = chain_aig()
        crit = critical_nodes(ntk, 1.0)
        assert crit == {g1 >> 1, g2 >> 1, g3 >> 1}

    def test_ratio_above_one_empty(self):
        ntk, _ = chain_aig()
        assert critical_nodes(ntk, 1.5) == set()

    def test_off_path_excluded(self):
        ntk = Aig()
        a, b, c, d = (ntk.create_pi() for _ in range(4))
        deep = ntk.create_and(ntk.create_and(ntk.create_and(a, b), c), d)
        shallow = ntk.create_and(a, d)
        ntk.create_po(deep)
        ntk.create_po(shallow)
        crit = critical_nodes(ntk, 1.0)
        assert (shallow >> 1) not in crit
        assert (deep >> 1) in crit

    def test_lower_ratio_superset(self):
        ntk = build("max", "tiny")
        high = critical_nodes(ntk, 1.0)
        low = critical_nodes(ntk, 0.5)
        assert high <= low

    def test_heights(self):
        ntk, (g1, g2, g3) = chain_aig()
        h = node_heights(ntk)
        assert h[g3 >> 1] == 0
        assert h[g2 >> 1] == 1
        assert h[g1 >> 1] == 2


class TestBuildMch:
    def test_original_structure_retained(self):
        ntk = build("adder", "tiny")
        ch = build_mch(ntk)
        # the mixed network must contain at least the original gate count
        assert ch.ntk.num_gates() >= ntk.num_gates()
        # and the original POs still compute the same functions
        assert cec(ntk, ch.ntk)

    def test_choices_verified_by_simulation(self):
        for name in ("adder", "sin", "arbiter"):
            ntk = build(name, "tiny")
            ch = build_mch(ntk, MchParams(representations=(Xmg, Xag)))
            assert ch.verify(), name

    def test_ratio_controls_strategy_mix(self):
        ntk = build("adder", "tiny")
        all_level = build_mch(ntk, MchParams(ratio=0.0))   # everything critical
        all_area = build_mch(ntk, MchParams(ratio=1.5))    # nothing critical
        assert all_level.num_choices() > 0
        assert all_area.num_choices() > 0

    def test_representations_param(self):
        from repro.networks.base import GateType

        ntk = build("adder", "tiny")
        ch = build_mch(ntk, MchParams(representations=(Mig,)))
        # candidates must include MAJ gates (MIG vocabulary)
        kinds = {ch.ntk.node_type(n) for n in ch.ntk.gates()}
        assert GateType.MAJ in kinds

    def test_cut_limits_bound_work(self):
        ntk = build("adder", "tiny")
        small = build_mch(ntk, MchParams(max_cuts_per_node=1))
        big = build_mch(ntk, MchParams(max_cuts_per_node=4))
        assert small.ntk.num_nodes() <= big.ntk.num_nodes()


class TestCutMergingAlgorithm3:
    def test_merged_cuts_present(self):
        ntk = build("adder", "tiny")
        ch = build_mch(ntk, MchParams(representations=(Xmg,)))
        cuts = enumerate_cuts(ch.ntk, k=4, cut_limit=8,
                              order=ch.processing_order(), choices=ch.choices_of)
        merged = 0
        for rep in ch.choices_of:
            merged += sum(1 for c in cuts[rep] if c.root != rep)
        assert merged > 0

    def test_merged_cut_functions_are_repr_functions(self):
        ntk = build("adder", "tiny")
        ch = build_mch(ntk, MchParams(representations=(Xmg,)))
        cuts = enumerate_cuts(ch.ntk, k=4, cut_limit=8,
                              order=ch.processing_order(), choices=ch.choices_of)
        mixed = ch.ntk
        import random
        rng = random.Random(3)
        width = 64
        mask = (1 << width) - 1
        patterns = [rng.getrandbits(width) for _ in range(mixed.num_pis())]
        vals = mixed.simulate_patterns(patterns, mask)
        for rep in list(ch.choices_of)[:20]:
            for cut in cuts[rep]:
                if len(cut.leaves) < 2:
                    continue
                got = 0
                for m in range(1 << len(cut.leaves)):
                    if cut.tt.get_bit(m):
                        term = mask
                        for i, leaf in enumerate(cut.leaves):
                            lv = vals[leaf]
                            term &= lv if (m >> i) & 1 else (lv ^ mask)
                        got |= term
                assert got == vals[rep]


class TestDch:
    def test_dch_choices_found(self):
        ntk = build("sin", "tiny")
        snaps = optimize_rounds(ntk, rounds=2)
        ch = build_dch(list(reversed(snaps)))
        assert ch.num_choices() > 0
        assert ch.verify()

    def test_dch_interface_check(self):
        a = build("adder", "tiny")
        b = build("max", "tiny")
        with pytest.raises(ValueError):
            build_dch([a, b])

    def test_dch_empty(self):
        with pytest.raises(ValueError):
            build_dch([])

    def test_dch_mapping_equivalence(self):
        from repro.mapping import asic_map

        ntk = build("int2float", "tiny")
        snaps = optimize_rounds(ntk, rounds=1)
        ch = build_dch(list(reversed(snaps)))
        nl = asic_map(ch, objective="delay")
        assert cec(ntk, nl.to_logic_network(Aig))


class TestChoiceVerifySat:
    def test_sat_verification_passes(self):
        ntk = build("int2float", "tiny")
        ch = build_mch(ntk, MchParams(representations=(Xmg,)))
        assert ch.verify_sat()

    def test_sat_verification_catches_bad_link(self):
        ntk = MixedNetwork()
        a, b, c = (ntk.create_pi() for _ in range(3))
        g1 = ntk.create_and(a, b)
        g2 = ntk.create_and(a, c)  # NOT equivalent to g1
        ch = ChoiceNetwork(ntk)
        # bypass add_choice's checks to inject a wrong link
        ch.choices_of[g1 >> 1] = [(g2 >> 1, False)]
        ch.repr_of[g2 >> 1] = (g1 >> 1, False)
        assert not ch.verify_sat()
        assert not ch.verify()

    def test_stats(self):
        ntk = build("adder", "tiny")
        ch = build_mch(ntk, MchParams(representations=(Xmg,)))
        s = ch.stats()
        assert s["choices"] == ch.num_choices()
        assert s["max_class_size"] >= 1
