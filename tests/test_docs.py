"""The documentation tree stays consistent with the code.

Runs the same checks as ``scripts/check_docs.py`` (CI's docs step) inside
the tier-1 suite, plus registry-level assertions that the flow-DSL
reference and the architecture page track the code they document.
"""

import importlib.util
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
DOCS = ROOT / "docs"


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_docs", ROOT / "scripts" / "check_docs.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_docs_tree_exists():
    for page in ("index.md", "architecture.md", "flow-dsl.md", "sequential.md",
                 "batch.md", "serve.md", "robustness.md"):
        assert (DOCS / page).exists(), f"docs/{page} missing"


def test_nav_lists_every_docs_page():
    nav = (ROOT / "mkdocs.yml").read_text()
    for page in sorted(DOCS.glob("*.md")):
        assert page.name in nav, f"docs/{page.name} missing from mkdocs nav"


def test_no_broken_links():
    checker = _load_checker()
    assert checker.check_links() == []
    assert checker.check_nav() == []


def test_flow_dsl_covers_every_registered_pass():
    checker = _load_checker()
    assert checker.check_pass_table() == []


def test_flow_dsl_documents_aliases_and_specs():
    from repro.flow import NAMED_FLOWS, available_passes

    text = (DOCS / "flow-dsl.md").read_text()
    for name in NAMED_FLOWS:
        assert f"`{name}`" in text, f"named spec {name} undocumented"
    for info in available_passes():
        for alias in info.aliases:
            assert alias in text, f"alias {alias} of {info.name} undocumented"


def test_architecture_names_every_subpackage():
    import repro

    text = (DOCS / "architecture.md").read_text()
    pkg_root = Path(repro.__file__).parent
    for child in sorted(pkg_root.iterdir()):
        if child.name.startswith("_") or not child.is_dir():
            continue
        assert f"`{child.name}/`" in text, (
            f"src/repro/{child.name}/ missing from the architecture module map")


def test_batch_docs_list_every_builtin_suite():
    from repro.batch import available_suites

    text = (DOCS / "batch.md").read_text()
    for name in available_suites():
        assert f"`{name}`" in text, f"built-in suite {name} undocumented"


def test_readme_links_the_docs_site():
    text = (ROOT / "README.md").read_text()
    assert "docs/architecture.md" in text
    assert "docs/flow-dsl.md" in text
    assert "docs/batch.md" in text
    assert "docs/serve.md" in text


def test_serve_docs_cover_every_route():
    """docs/serve.md documents the daemon's whole HTTP surface — the
    route table cannot rot against ``repro.serve.ROUTES``."""
    from repro.serve import ROUTES

    text = (DOCS / "serve.md").read_text()
    for route in ROUTES:
        assert f"`{route}`" in text, f"route {route} undocumented"


def test_serve_docs_define_the_cache_key():
    text = (DOCS / "serve.md").read_text()
    for needle in ("cache key", "fingerprint", "canonical"):
        assert needle in text.lower()


def test_robustness_matrix_covers_every_status_and_mechanism():
    """docs/robustness.md is the unified failure-mode reference — every
    terminal status and governance mechanism must appear in it."""
    text = (DOCS / "robustness.md").read_text()
    for needle in ("`ok`", "`error`", "`crashed`", "`timeout`", "`oom`",
                   "`quarantined`", "429", "Retry-After",
                   "`GET /healthz`", "`GET /readyz`", "`StoreWriteError`",
                   "`sink_disabled`"):
        assert needle in text, f"robustness.md does not mention {needle}"


def test_robustness_docs_cover_every_fault_mode():
    from repro.batch.faults import FAULT_MODES

    text = (DOCS / "robustness.md").read_text()
    for mode in FAULT_MODES:
        assert f"`{mode}`" in text, f"fault mode {mode} undocumented"


def test_robustness_docs_cover_every_event_kind():
    from repro.batch.events import EVENT_KINDS

    text = (DOCS / "robustness.md").read_text()
    for kind in EVENT_KINDS:
        assert f"`{kind}`" in text, f"event kind {kind} undocumented"


def test_robustness_docs_knob_table_matches_the_cli():
    """Every governance knob in the CLI knob table actually exists on the
    subcommand the table claims — registry-honest docs."""
    from repro.cli import make_parser

    sub = next(a for a in make_parser()._actions
               if hasattr(a, "choices") and a.choices)
    options = {name: {opt for action in parser._actions
                      for opt in action.option_strings}
               for name, parser in sub.choices.items()}
    text = (DOCS / "robustness.md").read_text()
    for knob, commands in [("--memory-limit", ("batch", "serve")),
                           ("--max-queued", ("serve",)),
                           ("--requarantine", ("batch",)),
                           ("--retries", ("batch",)),
                           ("--timeout", ("batch", "serve")),
                           ("--resume", ("batch",)),
                           ("--events", ("batch", "serve"))]:
        assert f"`{knob}`" in text, f"knob {knob} missing from the table"
        for command in commands:
            assert knob in options[command], (
                f"robustness.md documents {knob} on '{command}' but the "
                f"CLI does not define it there")
