"""Tests for the incremental equivalence session and solver differential fuzz."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import build
from repro.networks import Aig
from repro.networks.base import lit_not
from repro.sat import SAT, UNSAT, EquivalenceSession, Solver, cec, solver_stats
from repro.sim import PatternPool


def brute_force(clauses, assumptions=()):
    """Exhaustive CNF check over the variables actually mentioned."""
    mv = max([abs(l) for cl in clauses for l in cl]
             + [abs(a) for a in assumptions] + [1])
    for bits in range(1 << mv):
        assign = [(bits >> i) & 1 for i in range(mv)]
        if any(assign[abs(a) - 1] != (1 if a > 0 else 0) for a in assumptions):
            continue
        if all(any(assign[abs(l) - 1] == (1 if l > 0 else 0) for l in cl)
               for cl in clauses):
            return True
    return False


class TestSolverDifferentialFuzz:
    """The optimized solver vs. a brute-force enumerator on random CNFs."""

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_incremental_selector_queries(self, seed):
        """Sequences of selector-guarded assumption queries stay sound."""
        rng = random.Random(seed)
        nv = rng.randint(2, 7)
        s = Solver()
        clauses = []
        for _ in range(rng.randint(1, 18)):
            cl = [rng.choice([1, -1]) * rng.randint(1, nv)
                  for _ in range(rng.randint(1, 3))]
            clauses.append(cl)
            if not s.add_clause(cl):
                assert not brute_force(clauses)
                return
        for _ in range(6):
            while s.num_vars < nv:
                s.new_var()
            sel = s.new_var()
            level0_conflict = False
            for _ in range(rng.randint(1, 3)):
                cl = [-sel] + [rng.choice([1, -1]) * rng.randint(1, nv)
                               for _ in range(rng.randint(1, 2))]
                clauses.append(cl)
                if not s.add_clause(cl):
                    level0_conflict = True
            if level0_conflict:
                assert not brute_force(clauses)
                return
            assum = [sel] + [rng.choice([1, -1]) * rng.randint(1, nv)
                             for _ in range(rng.randint(0, 2))]
            got = s.solve(assumptions=assum)
            assert got == brute_force(clauses, assum)
            if got == SAT:
                for cl in clauses:
                    sat_without_sel = any(
                        s.model_value(abs(l)) == (l > 0) for l in cl)
                    assert sat_without_sel, f"model violates {cl}"
            clauses.append([-sel])
            if not s.add_clause([-sel]):
                assert not brute_force(clauses)
                return

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_conflict_limit_budgets(self, seed):
        """Budgeted solves return None or the brute-force verdict, and the
        solver stays sound for later unbudgeted queries."""
        rng = random.Random(seed)
        nv = rng.randint(3, 8)
        s = Solver()
        clauses = []
        for _ in range(rng.randint(4, 30)):
            cl = [rng.choice([1, -1]) * rng.randint(1, nv)
                  for _ in range(rng.randint(2, 3))]
            clauses.append(cl)
            if not s.add_clause(cl):
                assert not brute_force(clauses)
                return
        assum = [rng.choice([1, -1]) * rng.randint(1, nv)
                 for _ in range(rng.randint(0, 2))]
        want = brute_force(clauses, assum)
        got = s.solve(assumptions=assum, conflict_limit=rng.randint(0, 3))
        assert got is None or got == want
        # a later full solve on the same instance must still be exact
        assert s.solve(assumptions=assum) == want

    def test_stats_counters_accumulate(self):
        before = solver_stats()
        s = Solver()
        s.add_clause([1, 2])
        s.add_clause([-1, 2])
        s.add_clause([1, -2])
        s.add_clause([-1, -2])
        assert s.solve() == UNSAT
        after = solver_stats()
        assert after["solves"] > before["solves"]
        assert after["conflicts"] >= before["conflicts"]


def _random_network(seed, n_pis=5, n_gates=12):
    rng = random.Random(seed)
    ntk = Aig()
    lits = [ntk.create_pi() for _ in range(n_pis)]
    for _ in range(n_gates):
        a = rng.choice(lits)
        b = rng.choice(lits)
        if rng.random() < 0.5:
            a = lit_not(a)
        if rng.random() < 0.5:
            b = lit_not(b)
        lits.append(ntk.create_and(a, b))
    ntk.create_po(lits[-1])
    ntk.create_po(lits[-2])
    return ntk


class TestEquivalenceSession:
    def test_session_verdicts_match_exhaustive_truth(self):
        """Session verdicts vs. ground truth for many node pairs."""
        ntk = _random_network(3)
        session = EquivalenceSession(ntk)
        n = ntk.num_pis()
        mask = (1 << (1 << n)) - 1
        from repro.truth.truth_table import var_mask
        pats = [var_mask(n, i) for i in range(n)]
        truth = ntk.simulate_patterns(pats, mask)
        gates = [g for g in ntk.gates()]
        rng = random.Random(7)
        for _ in range(40):
            a, b = rng.choice(gates), rng.choice(gates)
            compl = rng.random() < 0.5
            want = truth[a] == (truth[b] ^ (mask if compl else 0))
            got = session.prove_node_equal(a, b, compl)
            assert got == want, (a, b, compl)

    def test_session_matches_fresh_solver_under_budget(self):
        """Session and fresh-session verdicts agree (None allowed only for
        the budgeted query)."""
        ntk = _random_network(11, n_pis=6, n_gates=20)
        warm = EquivalenceSession(ntk)
        gates = [g for g in ntk.gates()]
        rng = random.Random(5)
        queries = [(rng.choice(gates), rng.choice(gates), rng.random() < 0.5)
                   for _ in range(25)]
        for a, b, compl in queries:
            warm_v = warm.prove_node_equal(a, b, compl, conflict_limit=50)
            fresh_v = EquivalenceSession(ntk).prove_node_equal(a, b, compl)
            assert fresh_v is not None
            if warm_v is not None:
                assert warm_v == fresh_v, (a, b, compl)

    def test_counterexample_recycling(self):
        """A refuted query folds a distinguishing pattern into the pool."""
        ntk = Aig()
        a, b = ntk.create_pi(), ntk.create_pi()
        and_ = ntk.create_and(a, b)
        or_ = ntk.create_or(a, b)
        ntk.create_po(and_)
        ntk.create_po(or_)
        pool = PatternPool(2, n_patterns=4, seed=1)
        session = EquivalenceSession(ntk, pool=pool)
        n_before = pool.n_patterns
        verdict = session.prove_node_equal(and_ >> 1, or_ >> 1, False)
        assert verdict is False
        assert pool.n_patterns == n_before + 1
        cex = session.last_counterexample
        node_vals = ntk.simulate_patterns([1 if v else 0 for v in cex], 1)
        assert node_vals[and_ >> 1] != node_vals[or_ >> 1]
        # the recycled pattern now distinguishes the nodes in simulation
        sigs = session.engine(0).signatures()
        assert sigs[and_ >> 1] != sigs[or_ >> 1]

    def test_miter_session_agrees_with_cec(self):
        ntk = build("priority", "tiny")
        from repro.opt import balance
        opt = balance(ntk)
        session = EquivalenceSession(ntk)
        ib = session.add_network(opt)
        for la, lb in zip(session.output_literals(0), session.output_literals(ib)):
            assert session.prove_equal(la, lb) is True
        assert cec(ntk, opt)

    def test_make_and_queries(self):
        """resub-style auxiliary-AND queries against ground truth."""
        ntk = Aig()
        a, b, c = (ntk.create_pi() for _ in range(3))
        ab = ntk.create_and(a, b)
        abc = ntk.create_and(ab, c)
        ntk.create_po(abc)
        session = EquivalenceSession(ntk)
        t = session.node_literal(abc >> 1)
        # abc == AND(ab, c): true
        s = session.make_and(session.network_literal(ab),
                             session.network_literal(c))
        assert session.prove_equal(t, s) is True
        # abc == AND(a, b): false
        s2 = session.make_and(session.network_literal(a),
                              session.network_literal(b))
        assert session.prove_equal(t, s2) is False

    def test_interface_mismatch_rejected(self):
        n1 = Aig()
        n1.create_pi()
        n1.create_po(n1.create_pi())
        n2 = Aig()
        n2.create_po(n2.create_pi())
        session = EquivalenceSession(n1)
        with pytest.raises(ValueError):
            session.add_network(n2)
