"""Flow-script DSL: parsing, canonical rendering, serialization, errors."""

import pytest

from repro.flow import Flow, FlowScriptError
from repro.flow.script import Converge, PassStep, Repeat


class TestParse:
    def test_simple_sequence(self):
        flow = Flow.parse("b; rf; rs")
        assert [s.name for s in flow.steps] == ["b", "rf", "rs"]

    def test_aliases_resolve_to_canonical_names(self):
        flow = Flow.parse("balance; refactor; lut_map")
        assert [s.name for s in flow.steps] == ["b", "rf", "if"]

    def test_arguments_are_typed(self):
        flow = Flow.parse("gm -k 5 -o delay; mch -r 0.5")
        gm, mch = flow.steps
        assert gm.kwargs() == {"k": 5, "objective": "delay"}
        assert mch.kwargs() == {"ratio": 0.5}
        assert isinstance(mch.kwargs()["ratio"], float)

    def test_boolean_flags_take_no_value(self):
        (rf,) = Flow.parse("rf -z").steps
        assert rf.kwargs() == {"zero_gain": True}

    def test_repeat_group(self):
        (rep,) = Flow.parse("3*( b; rs )").steps
        assert isinstance(rep, Repeat)
        assert rep.count == 3
        assert [s.name for s in rep.body] == ["b", "rs"]

    def test_converge_group_with_and_without_bound(self):
        (c1,) = Flow.parse("converge( b )").steps
        (c2,) = Flow.parse("converge4( b )").steps
        assert isinstance(c1, Converge) and c1.max_rounds == 10
        assert isinstance(c2, Converge) and c2.max_rounds == 4

    def test_nested_groups(self):
        (outer,) = Flow.parse("2*( b; converge3( rs; b ) )").steps
        assert isinstance(outer, Repeat)
        inner = outer.body[1]
        assert isinstance(inner, Converge) and inner.max_rounds == 3

    def test_empty_script_and_stray_semicolons(self):
        assert Flow.parse("").steps == ()
        assert Flow.parse(" ;; ").steps == ()
        assert len(Flow.parse("b; ; rs;").steps) == 2

    def test_whitespace_insensitive(self):
        a = Flow.parse("b;rf;gm -k 4")
        b = Flow.parse("  b ;  rf ;\n gm   -k   4 ")
        assert a == b


class TestCanonicalRoundTrip:
    SCRIPTS = [
        "b; rf; rs; gm -k 5; b",
        "3*( b; rs )",
        "converge4( b; gm -o delay -k 5; b )",
        "2*( b; converge3( rs; b ) ); cec",
        "mch -p mig,xmg -r 0.5; if -k 4; ",
        "balance; resub -d 99; sweep -f",
    ]

    @pytest.mark.parametrize("script", SCRIPTS)
    def test_parse_to_script_is_a_fixpoint(self, script):
        once = Flow.parse(script).to_script()
        assert Flow.parse(once).to_script() == once

    def test_default_arguments_are_omitted(self):
        # k=4 is gm's default, so the canonical form drops it
        assert Flow.parse("gm -k 4").to_script() == "gm"
        assert Flow.parse("gm -k 5").to_script() == "gm -k 5"

    def test_canonical_argument_order_is_declared_order(self):
        assert Flow.parse("gm -k 5 -o delay").to_script() == "gm -o delay -k 5"

    def test_default_converge_bound_is_omitted(self):
        assert Flow.parse("converge10( b )").to_script() == "converge( b )"
        assert Flow.parse("converge4( b )").to_script() == "converge4( b )"

    @pytest.mark.parametrize("script", SCRIPTS)
    def test_dict_serialization_round_trips(self, script):
        flow = Flow.parse(script)
        assert Flow.from_dict(flow.to_dict()) == flow

    def test_dict_form_is_json_compatible(self):
        import json

        flow = Flow.parse("converge4( b; gm -k 5 ); 2*( rs )")
        assert Flow.from_dict(json.loads(json.dumps(flow.to_dict()))) == flow


class TestErrors:
    @pytest.mark.parametrize("script", [
        "fly",                      # unknown pass
        "b; warp 9; b",             # unknown pass mid-script
        "gm -q 4",                  # unknown flag
        "gm -k",                    # flag missing its value
        "gm -k four",               # wrong value type
        "3*( b",                    # unbalanced open
        "b )",                      # unbalanced close
        "3* b",                     # repeat without group
        "0*( b )",                  # zero repetition
        "converge0( b )",           # zero converge bound
        "b rf",                     # missing separator / stray word
    ])
    def test_malformed_scripts_raise(self, script):
        with pytest.raises(FlowScriptError):
            Flow.parse(script)

    def test_script_errors_are_value_errors(self):
        # legacy optimize_rounds callers catch ValueError
        with pytest.raises(ValueError):
            Flow.parse("mystery")

    def test_error_names_available_passes(self):
        with pytest.raises(FlowScriptError, match="available:.*gm"):
            Flow.parse("unknown_pass")

    def test_non_string_rejected(self):
        with pytest.raises(FlowScriptError):
            Flow.parse(42)

    def test_validate_args_rejects_unknown_keyword(self):
        from repro.flow import get_pass

        with pytest.raises(FlowScriptError):
            get_pass("gm").validate_args({"sharpness": 11})

    def test_validate_args_rejects_wrong_type(self):
        from repro.flow import get_pass

        with pytest.raises(FlowScriptError):
            get_pass("gm").validate_args({"k": "six"})


class TestFlowObject:
    def test_pass_names_walks_groups(self):
        flow = Flow.parse("b; 2*( rs; converge( gm ) ); cec")
        assert flow.pass_names() == ["b", "rs", "gm", "cec"]

    def test_of_coerces_scripts_and_passes_flows_through(self):
        flow = Flow.parse("b")
        assert Flow.of(flow) is flow
        assert Flow.of("b") == flow

    def test_programmatic_construction_renders(self):
        flow = Flow((Converge((PassStep("b"), PassStep("gm", (("k", 5),))), 4),))
        assert flow.to_script() == "converge4( b; gm -k 5 )"
