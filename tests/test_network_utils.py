"""Tests for network utility methods (local functions, cone analysis, views)."""

import pytest

from repro.networks import Aig, GateType, MixedNetwork, Xmg
from repro.networks.base import lit_not
from repro.truth.truth_table import TruthTable


class TestLocalFunction:
    def test_simple_cone(self):
        ntk = Aig()
        a, b, c = (ntk.create_pi() for _ in range(3))
        g1 = ntk.create_and(a, b)
        g2 = ntk.create_and(g1, lit_not(c))
        tt = ntk.local_function(g2 >> 1, [a >> 1, b >> 1, c >> 1])
        expect = TruthTable.from_function(3, lambda x, y, z: x and y and not z)
        assert tt == expect

    def test_leaf_order_matters(self):
        ntk = Aig()
        a, b = (ntk.create_pi() for _ in range(2))
        g = ntk.create_and(a, lit_not(b))
        t1 = ntk.local_function(g >> 1, [a >> 1, b >> 1])
        t2 = ntk.local_function(g >> 1, [b >> 1, a >> 1])
        assert t1 == t2.swap(0, 1)

    def test_escaping_cone_raises(self):
        ntk = Aig()
        a, b, c = (ntk.create_pi() for _ in range(3))
        g = ntk.create_and(ntk.create_and(a, b), c)
        with pytest.raises(ValueError):
            ntk.local_function(g >> 1, [a >> 1, b >> 1])  # c not a leaf

    def test_constant_through_cone(self):
        ntk = MixedNetwork()
        a, b = (ntk.create_pi() for _ in range(2))
        g = ntk.create_maj(a, b, ntk.const1)  # OR
        tt = ntk.local_function(g >> 1, [a >> 1, b >> 1])
        assert tt == TruthTable.var(2, 0) | TruthTable.var(2, 1)

    def test_deep_chain_no_recursion_error(self):
        ntk = Aig()
        a = ntk.create_pi()
        b = ntk.create_pi()
        cur = a
        for _ in range(3000):  # far beyond default recursion limit
            cur = ntk.create_and(cur, b) ^ 1
        ntk.create_po(cur)
        tt = ntk.local_function(cur >> 1, [a >> 1, b >> 1])
        assert tt.num_vars == 2


class TestMffcLeaves:
    def test_leaves_are_boundary(self):
        ntk = Aig()
        a, b, c, d = (ntk.create_pi() for _ in range(4))
        g1 = ntk.create_and(a, b)
        g2 = ntk.create_and(c, d)
        g3 = ntk.create_and(g1, g2)
        ntk.create_po(g3)
        cone = ntk.mffc(g3 >> 1)
        leaves = ntk.mffc_leaves(cone)
        assert set(leaves) == {a >> 1, b >> 1, c >> 1, d >> 1}

    def test_shared_node_becomes_leaf(self):
        ntk = Aig()
        a, b, c = (ntk.create_pi() for _ in range(3))
        shared = ntk.create_and(a, b)
        g = ntk.create_and(shared, c)
        ntk.create_po(shared)
        ntk.create_po(g)
        cone = ntk.mffc(g >> 1)
        assert (shared >> 1) in ntk.mffc_leaves(cone)


class TestAnalysisCaches:
    def _sample(self):
        ntk = Aig()
        a, b, c, d = (ntk.create_pi() for _ in range(4))
        g1 = ntk.create_and(a, b)
        g2 = ntk.create_and(c, d)
        g3 = ntk.create_and(g1, g2)
        ntk.create_po(g3)
        return ntk, g3 >> 1

    def test_mffc_does_not_corrupt_fanout_count_cache(self):
        ntk, root = self._sample()
        before = list(ntk.fanout_counts())
        cone1 = ntk.mffc(root)
        assert list(ntk.fanout_counts()) == before
        assert ntk.mffc(root) == cone1  # stable across repeated calls

    def test_caches_invalidated_on_mutation(self):
        ntk, root = self._sample()
        counts = ntk.fanout_counts()
        fo = ntk.fanouts()
        assert ntk.fanout_counts() is counts  # memoized
        assert ntk.fanouts() is fo
        a = ntk.pis[0] << 1
        ntk.create_po(a)
        assert ntk.fanout_counts() is not counts
        assert ntk.fanout_counts()[a >> 1] == counts[a >> 1] + 1

    def test_topological_order_memoized(self):
        ntk, _ = self._sample()
        order = ntk.topological_order()
        assert order == list(range(ntk.num_nodes()))
        assert ntk.topological_order() is order
        ntk.create_pi()
        assert len(ntk.topological_order()) == ntk.num_nodes()


class TestCreateGate:
    def test_dispatch(self):
        ntk = MixedNetwork()
        a, b, c = (ntk.create_pi() for _ in range(3))
        assert ntk.create_gate(GateType.AND, (a, b)) == ntk.create_and(a, b)
        assert ntk.create_gate(GateType.XOR, (a, b)) == ntk.create_xor(a, b)
        assert ntk.create_gate(GateType.MAJ, (a, b, c)) == ntk.create_maj(a, b, c)
        assert ntk.create_gate(GateType.XOR3, (a, b, c)) == ntk.create_xor3(a, b, c)

    def test_bad_type(self):
        ntk = MixedNetwork()
        with pytest.raises(ValueError):
            ntk.create_gate(GateType.PI, ())


class TestCopyWithPiMap:
    def test_shared_pis(self):
        src = Aig()
        a = src.create_pi("a")
        b = src.create_pi("b")
        src.create_po(src.create_and(a, b))

        dst = MixedNetwork()
        x = dst.create_pi("x")
        y = dst.create_pi("y")
        mapping = src.copy_into_with_map(dst, include_pos=False,
                                         pi_map={a >> 1: x, b >> 1: y})
        assert dst.num_pis() == 2  # no new PIs created
        out = mapping[(src.pos and src.pos[0] >> 1) or 0]
        dst.create_po(out)
        assert dst.simulate_truth_tables()[0] == TruthTable.var(2, 0) & TruthTable.var(2, 1)

    def test_pi_map_must_cover(self):
        src = Aig()
        a = src.create_pi()
        src.create_pi()
        src.create_po(a)
        dst = MixedNetwork()
        with pytest.raises(ValueError):
            src.copy_into_with_map(dst, pi_map={a >> 1: dst.create_pi()})
