"""Functional tests for the EPFL-analogue benchmark generators."""

import random

import pytest

from repro.circuits import ALL_BENCHMARKS, build, suite
from repro.circuits.arithmetic import (
    adder,
    barrel_shifter,
    divider,
    hypotenuse,
    log2_circuit,
    max_circuit,
    multiplier,
    square,
    square_root,
)
from repro.circuits.control import decoder, int2float, priority_circuit, voter
from repro.circuits.wordlevel import popcount
from repro.networks import Aig


def word(value, width):
    return [bool((value >> i) & 1) for i in range(width)]


def unword(bits):
    return sum(int(b) << i for i, b in enumerate(bits))


class TestArithmetic:
    def test_adder(self):
        ntk = adder(5)
        rng = random.Random(1)
        for _ in range(30):
            x, y = rng.randrange(32), rng.randrange(32)
            out = ntk.simulate(word(x, 5) + word(y, 5))
            assert unword(out) == x + y

    def test_barrel_shifter(self):
        ntk = barrel_shifter(8)
        rng = random.Random(2)
        for _ in range(30):
            d, s = rng.randrange(256), rng.randrange(8)
            out = ntk.simulate(word(d, 8) + word(s, 3))
            assert unword(out) == d >> s

    def test_divider(self):
        ntk = divider(5)
        rng = random.Random(3)
        for _ in range(30):
            n, d = rng.randrange(32), rng.randrange(1, 32)
            out = ntk.simulate(word(n, 5) + word(d, 5))
            assert unword(out[:5]) == n // d
            assert unword(out[5:]) == n % d

    def test_multiplier(self):
        ntk = multiplier(5)
        rng = random.Random(4)
        for _ in range(30):
            x, y = rng.randrange(32), rng.randrange(32)
            out = ntk.simulate(word(x, 5) + word(y, 5))
            assert unword(out) == x * y

    def test_square(self):
        ntk = square(5)
        for x in range(32):
            assert unword(ntk.simulate(word(x, 5))) == x * x

    def test_square_root(self):
        ntk = square_root(10)
        rng = random.Random(5)
        for _ in range(30):
            x = rng.randrange(1024)
            assert unword(ntk.simulate(word(x, 10))) == int(x ** 0.5)

    def test_hypotenuse(self):
        ntk = hypotenuse(4)
        rng = random.Random(6)
        for _ in range(20):
            a, b = rng.randrange(16), rng.randrange(16)
            got = unword(ntk.simulate(word(a, 4) + word(b, 4)))
            assert got == int((a * a + b * b) ** 0.5)

    def test_max(self):
        ntk = max_circuit(4, 4)
        rng = random.Random(7)
        for _ in range(30):
            ws = [rng.randrange(16) for _ in range(4)]
            bits = []
            for w in ws:
                bits += word(w, 4)
            assert unword(ntk.simulate(bits)) == max(ws)

    def test_log2_integer_part(self):
        ntk = log2_circuit(8, frac_bits=2)
        import math
        for x in range(1, 256):
            out = ntk.simulate(word(x, 8))
            int_bits = out[:3]
            valid = out[-1]
            assert valid
            assert unword(int_bits) == int(math.log2(x))

    def test_log2_zero_invalid(self):
        ntk = log2_circuit(8, frac_bits=2)
        out = ntk.simulate(word(0, 8))
        assert not out[-1]


class TestControl:
    def test_decoder(self):
        ntk = decoder(4)
        for code in range(16):
            out = ntk.simulate(word(code, 4))
            assert sum(out) == 1 and out[code]

    def test_priority(self):
        ntk = priority_circuit(8)
        rng = random.Random(8)
        for _ in range(30):
            req = rng.randrange(256)
            out = ntk.simulate(word(req, 8))
            idx, valid = unword(out[:3]), out[3]
            if req == 0:
                assert not valid
            else:
                assert valid and idx == req.bit_length() - 1

    def test_voter(self):
        ntk = voter(7)
        rng = random.Random(9)
        for _ in range(40):
            bits = [rng.random() < 0.5 for _ in range(7)]
            assert ntk.simulate(bits)[0] == (sum(bits) >= 4)

    def test_voter_rejects_even(self):
        with pytest.raises(ValueError):
            voter(8)

    def test_int2float_monotone_exponent(self):
        ntk = int2float(8, exp_bits=3, man_bits=3)
        for x in (1, 2, 5, 17, 100, 255):
            out = ntk.simulate(word(x, 8))
            exp = unword(out[:3])
            assert exp == x.bit_length() - 1

    def test_popcount(self):
        ntk = Aig()
        xs = [ntk.create_pi() for _ in range(9)]
        for bit in popcount(ntk, xs):
            ntk.create_po(bit)
        rng = random.Random(10)
        for _ in range(30):
            bits = [rng.random() < 0.5 for _ in range(9)]
            assert unword(ntk.simulate(bits)) == sum(bits)

    def test_random_control_deterministic(self):
        from repro.circuits.control import cavlc
        a = cavlc(seed=5)
        b = cavlc(seed=5)
        assert a.num_gates() == b.num_gates()
        from repro.sat import cec
        assert cec(a, b)


class TestRegistry:
    def test_all_benchmarks_build_tiny(self):
        for name in ALL_BENCHMARKS:
            ntk = build(name, "tiny")
            assert ntk.num_gates() > 0
            assert ntk.num_pos() > 0

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            build("mystery")

    def test_bad_scale(self):
        with pytest.raises(ValueError):
            build("adder", scale="huge")

    def test_suite_subset(self):
        s = suite("tiny", names=["adder", "voter"])
        assert set(s) == {"adder", "voter"}

    def test_scales_grow(self):
        for name in ("adder", "multiplier", "voter"):
            tiny = build(name, "tiny").num_gates()
            small = build(name, "small").num_gates()
            assert tiny < small
