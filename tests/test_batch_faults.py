"""Fault tolerance: timeouts, crashes, retries, resume, claims, events.

The chaos suite for the batch layer — every failure mode the runner
promises to survive is injected (via :mod:`repro.batch.faults`) and the
promised outcome asserted, including the ROADMAP exit criterion: kill a
2-worker run mid-suite, resume it, and get bit-identical results.
"""

import json
import multiprocessing
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.batch import (
    BatchRunner,
    EventLog,
    Fault,
    FaultPlan,
    JsonlEventSink,
    ResultStore,
    TransientFault,
    get_suite,
    read_events,
    run_key,
)
from repro.batch.faults import apply_fault

_FORK = multiprocessing.get_start_method() == "fork"
fork_only = pytest.mark.skipif(not _FORK, reason="process-pool test needs fork")

FLOW = "b"
SUITE = "epfl-mini"


def _run(tmp_path=None, **kw):
    store = ResultStore(tmp_path / "store.jsonl") if tmp_path else None
    run_kw = {k: kw.pop(k) for k in ("resume", "cooperate") if k in kw}
    runner = BatchRunner(**kw)
    return runner.run(get_suite(SUITE), FLOW, scale="tiny", store=store,
                      **run_kw)


# ---------------------------------------------------------------------- #
# fault plumbing                                                          #
# ---------------------------------------------------------------------- #

class TestFaultPlan:
    def test_modes_validated(self):
        with pytest.raises(ValueError, match="fault mode"):
            Fault("explode")

    def test_plan_normalizes_strings(self):
        plan = FaultPlan({"a": "raise", "b": Fault("hang", seconds=1.0)})
        assert plan.faults["a"].mode == "raise"
        assert plan.to_payload()["b"][2] == 1.0

    def test_apply_respects_times(self):
        payload = FaultPlan({"c": Fault("raise", times=2)}).to_payload()
        with pytest.raises(TransientFault):
            apply_fault(payload, "c", 1)
        with pytest.raises(TransientFault):
            apply_fault(payload, "c", 2)
        apply_fault(payload, "c", 3)          # past `times`: no fault
        apply_fault(payload, "other", 1)      # unplanned circuit: no fault


# ---------------------------------------------------------------------- #
# crash isolation                                                         #
# ---------------------------------------------------------------------- #

@fork_only
class TestCrashIsolation:
    def test_one_crash_one_casualty(self, tmp_path):
        """A worker dying mid-circuit costs exactly that circuit — wall time
        and pid recorded — and never cascades to pending circuits."""
        log = EventLog()
        batch = _run(tmp_path, jobs=2, faults=FaultPlan({"dec": "exit"}),
                     events=log)
        by = batch.by_name()
        assert by["dec"].status == "crashed"
        assert by["dec"].worker > 0
        assert by["dec"].seconds > 0.0
        assert "died mid-circuit" in by["dec"].error
        others = [o for o in batch.outcomes if o.name != "dec"]
        assert all(o.status == "ok" for o in others)
        assert [e.circuit for e in log.only("crashed")] == ["dec"]
        # the crash is recorded in the store alongside the ok results
        rec = ResultStore(tmp_path / "store.jsonl").runs()[-1].results["dec"]
        assert rec["status"] == "crashed" and rec["seconds"] > 0

    def test_crash_retry_succeeds(self):
        """An exit on attempt 1 only: the replacement worker's retry wins."""
        log = EventLog()
        batch = _run(None, jobs=2, retries=1, backoff=0.05, events=log,
                     faults=FaultPlan({"router": Fault("exit", times=1)}))
        out = batch.by_name()["router"]
        assert out.status == "ok" and out.attempts == 2
        assert [e.circuit for e in log.only("retried")] == ["router"]
        assert not batch.failures

    def test_every_worker_crashing_still_finishes(self):
        """All circuits crash once → the pool replaces every casualty and
        the retried suite completes."""
        plan = FaultPlan({n: Fault("exit", times=1)
                          for n in get_suite(SUITE).names()})
        batch = _run(None, jobs=2, retries=1, backoff=0.01, faults=plan)
        assert not batch.failures
        assert all(o.attempts == 2 for o in batch.outcomes)


# ---------------------------------------------------------------------- #
# timeouts                                                                #
# ---------------------------------------------------------------------- #

@fork_only
class TestTimeouts:
    def test_hung_worker_is_killed(self):
        """A circuit past the hard timeout is killed (status ``timeout``,
        elapsed ≈ the limit) while its siblings complete normally."""
        log = EventLog()
        t0 = time.monotonic()
        batch = _run(None, jobs=2, timeout=1.5, events=log,
                     faults=FaultPlan({"int2float": Fault("hang", seconds=120)}))
        wall = time.monotonic() - t0
        out = batch.by_name()["int2float"]
        assert out.status == "timeout"
        assert 1.4 <= out.seconds < 10
        assert wall < 30                      # the hang did not serialize us
        assert sum(o.status == "ok" for o in batch.outcomes) == 4
        assert [e.circuit for e in log.only("timeout")] == ["int2float"]

    def test_timeouts_are_final(self):
        """Timeouts are not retried — re-running a hang would hang again."""
        log = EventLog()
        batch = _run(None, jobs=2, timeout=1.0, retries=2, events=log,
                     faults=FaultPlan({"ctrl": Fault("hang", seconds=120)}))
        assert batch.by_name()["ctrl"].status == "timeout"
        assert log.only("retried") == []

    def test_timeout_validation(self):
        with pytest.raises(ValueError, match="timeout"):
            BatchRunner(timeout=0)
        with pytest.raises(ValueError, match="retries"):
            BatchRunner(retries=-1)
        with pytest.raises(ValueError, match="order"):
            BatchRunner(order="random")


# ---------------------------------------------------------------------- #
# retries (sequential + pool)                                             #
# ---------------------------------------------------------------------- #

class TestRetries:
    def test_sequential_transient_retry(self):
        log = EventLog()
        batch = _run(None, jobs=1, retries=2, backoff=0.01, events=log,
                     faults=FaultPlan({"cavlc": Fault("raise", times=1)}))
        out = batch.by_name()["cavlc"]
        assert out.status == "ok" and out.attempts == 2
        assert [e.circuit for e in log.only("retried")] == ["cavlc"]

    def test_retries_exhausted(self):
        """A fault on every attempt burns all retries and stays an error,
        with the attempt count recorded."""
        log = EventLog()
        batch = _run(None, jobs=1, retries=2, backoff=0.01, events=log,
                     faults=FaultPlan({"dec": "raise"}))
        out = batch.by_name()["dec"]
        assert out.status == "error" and out.attempts == 3
        assert "TransientFault" in out.error
        assert len(log.only("retried")) == 2

    @fork_only
    def test_pool_backoff_delays_reattempt(self):
        log = EventLog()
        t0 = time.monotonic()
        batch = _run(None, jobs=2, retries=1, backoff=0.5, events=log,
                     faults=FaultPlan({"ctrl": Fault("raise", times=1)}))
        assert batch.by_name()["ctrl"].status == "ok"
        started = [e for e in log.events
                   if e.kind == "started" and e.circuit == "ctrl"]
        assert len(started) == 2
        assert started[1].at - started[0].at >= 0.4


# ---------------------------------------------------------------------- #
# events                                                                  #
# ---------------------------------------------------------------------- #

class TestEvents:
    def test_lifecycle_pairs(self):
        log = EventLog()
        _run(None, jobs=1, events=log)
        names = get_suite(SUITE).names()
        assert [e.circuit for e in log.only("started")] == names
        assert [e.circuit for e in log.only("finished")] == names
        assert all(e.worker == os.getpid() for e in log.only("started"))

    def test_broken_sink_warns_not_kills(self):
        def sink(event):
            raise RuntimeError("sink down")

        with pytest.warns(UserWarning, match="event sink failed"):
            batch = _run(None, jobs=1, events=sink)
        assert not batch.failures

    def test_jsonl_sink_roundtrip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlEventSink(path)
        _run(None, jobs=1, events=sink)
        sink.close()
        events = read_events(path)
        assert len(events) == 2 * len(get_suite(SUITE))
        assert {e["kind"] for e in events} == {"started", "finished"}
        # a torn final line (writer killed mid-append) is tolerated
        with path.open("a") as fh:
            fh.write('{"kind": "started", "circ')
        assert len(read_events(path)) == len(events)


# ---------------------------------------------------------------------- #
# run keys + resume                                                       #
# ---------------------------------------------------------------------- #

class TestRunKeys:
    def test_stable_and_order_insensitive(self):
        inputs = [("a", "f1"), ("b", "f2")]
        assert run_key("b; rf", "s", "tiny", inputs) == \
               run_key("b; rf", "s", "tiny", list(reversed(inputs)))

    def test_sensitive_to_every_component(self):
        base = run_key("b", "s", "tiny", [("a", "f1")])
        assert base != run_key("rf", "s", "tiny", [("a", "f1")])
        assert base != run_key("b", "s2", "tiny", [("a", "f1")])
        assert base != run_key("b", "s", "small", [("a", "f1")])
        assert base != run_key("b", "s", "tiny", [("a", "f2")])

    def test_runs_share_key_across_jobs_and_order(self, tmp_path):
        r1 = _run(tmp_path, jobs=1)
        r2 = _run(tmp_path, jobs=2 if _FORK else 1, order="largest")
        assert r1.run_key and r1.run_key == r2.run_key


class TestResume:
    def test_resume_skips_ok_circuits(self, tmp_path):
        first = _run(tmp_path, jobs=1)
        log = EventLog()
        second = _run(tmp_path, jobs=1, events=log, resume=True)
        assert [o.name for o in second.resumed] == \
               [o.name for o in first.outcomes]
        assert len(log.only("skipped")) == len(first.outcomes)
        assert log.only("started") == []
        assert {o.name: o.fingerprint for o in second.outcomes} == \
               {o.name: o.fingerprint for o in first.outcomes}
        # resumed records point at the originating run
        assert all(o.resumed_from == first.run_id for o in second.outcomes)

    def test_resume_reruns_failures(self, tmp_path):
        """Only ``ok`` records are resumable — errors re-execute."""
        _run(tmp_path, jobs=1, faults=FaultPlan({"dec": "raise"}))
        log = EventLog()
        batch = _run(tmp_path, jobs=1, resume=True, events=log)
        assert not batch.failures
        assert [e.circuit for e in log.only("started")] == ["dec"]
        assert len(log.only("skipped")) == 4

    def test_resume_needs_store(self):
        with pytest.raises(ValueError, match="store"):
            BatchRunner(jobs=1).run(get_suite(SUITE), FLOW, scale="tiny",
                                    resume=True)

    def test_resumed_run_is_self_contained(self, tmp_path):
        """Resumed runs copy records forward, so compare() of the resumed
        run against the original reports zero regressions/divergences."""
        store = ResultStore(tmp_path / "store.jsonl")
        first = _run(tmp_path, jobs=1)
        second = _run(tmp_path, jobs=1, resume=True)
        cmp = store.compare(second.run_id, first.run_id)
        assert cmp.ok and not cmp.divergences


# ---------------------------------------------------------------------- #
# cooperative claims                                                      #
# ---------------------------------------------------------------------- #

class TestClaims:
    def test_first_claim_wins(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        won_a, winner_a = store.claim("k1", "ctrl", owner="a")
        won_b, winner_b = store.claim("k1", "ctrl", owner="b")
        assert won_a and not won_b
        assert winner_b["owner"] == "a"
        # a different circuit (or key) is unclaimed
        assert store.claim("k1", "dec", owner="b")[0]
        assert store.claim("k2", "ctrl", owner="b")[0]

    def test_stale_claims_expire(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        store.claim("k1", "ctrl", owner="dead")
        time.sleep(0.05)
        won, winner = store.claim("k1", "ctrl", owner="alive", ttl=0.01)
        assert won and winner["owner"] == "alive"

    def test_cooperating_runners_split_the_suite(self, tmp_path):
        """Two sequential runners over one store: every circuit executes
        exactly once; the second runner yields the claimed ones."""
        first = _run(tmp_path, jobs=1, cooperate=True)
        log = EventLog()
        second = _run(tmp_path, jobs=1, cooperate=True, events=log)
        assert all(o.status == "ok" for o in first.outcomes)
        assert all(o.status == "claimed" for o in second.outcomes)
        assert len(log.only("claimed")) == len(get_suite(SUITE))
        assert not second.failures            # yielding is not failing
        # claimed circuits are not recorded as results
        store = ResultStore(tmp_path / "store.jsonl")
        assert store.find_run(second.run_id).results == {}


# ---------------------------------------------------------------------- #
# store robustness                                                        #
# ---------------------------------------------------------------------- #

class TestStoreRobustness:
    def test_incremental_run_visible_before_close(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        rid = store.open_run(flow="b", suite="s", scale="tiny", circuits=2,
                             run_key="k")
        store.append_result(rid, {"circuit": "a", "status": "ok",
                                  "fingerprint": "f", "seconds": 1.0})
        run = store.runs()[-1]
        assert not run.closed and list(run.results) == ["a"]
        store.close_run(rid, wall_seconds=2.5, failures=0)
        run = store.runs()[-1]
        assert run.closed and run.wall_seconds == 2.5

    def test_truncated_final_line_tolerated(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        rid = store.open_run(flow="b", run_key="k")
        store.append_result(rid, {"circuit": "a", "status": "ok"})
        with store.path.open("a") as fh:
            fh.write('{"kind": "result", "circ')   # torn mid-append
        with pytest.warns(UserWarning, match="truncated final record"):
            runs = store.runs()
        assert list(runs[-1].results) == ["a"]

    def test_mid_file_corruption_raises(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        store.open_run(flow="b")
        with store.path.open("a") as fh:
            fh.write("not json\n")
        store.open_run(flow="b")
        with pytest.raises(ValueError, match="corrupt record"):
            store.runs()

    def test_killed_run_leaves_resumable_prefix(self, tmp_path):
        """Simulate a mid-suite death: records appended before the 'kill'
        are durable and resumable; the run reads back as not closed."""
        store = ResultStore(tmp_path / "store.jsonl")
        first = _run(tmp_path, jobs=1)
        # drop the end line and the last two results, as a kill would
        lines = store.path.read_text().splitlines()
        store.path.write_text("\n".join(lines[:-3]) + "\n")
        assert not store.runs()[-1].closed
        log = EventLog()
        second = _run(tmp_path, jobs=1, resume=True, events=log)
        assert len(log.only("skipped")) == len(first.outcomes) - 2
        assert len(log.only("started")) == 2
        assert {o.name: o.fingerprint for o in second.outcomes} == \
               {o.name: o.fingerprint for o in first.outcomes}


# ---------------------------------------------------------------------- #
# ordering                                                                #
# ---------------------------------------------------------------------- #

class TestOrdering:
    def test_largest_first_dispatch(self):
        """order="largest" dispatches by descending size but returns suite
        order — and changes no result."""
        log = EventLog()
        suite = get_suite(SUITE)
        ref = _run(None, jobs=1)
        batch = _run(None, jobs=1, order="largest", events=log)
        assert [o.name for o in batch.outcomes] == suite.names()
        sizes = {e.name: e.build("tiny").num_gates() for e in suite}
        dispatched = [e.circuit for e in log.only("started")]
        assert dispatched == sorted(suite.names(),
                                    key=lambda n: -sizes[n])
        assert {o.name: o.fingerprint for o in batch.outcomes} == \
               {o.name: o.fingerprint for o in ref.outcomes}


# ---------------------------------------------------------------------- #
# the ROADMAP exit criterion: kill a 2-worker run mid-suite and resume    #
# ---------------------------------------------------------------------- #

_KILLED_RUN = """
import sys
from repro.batch import BatchRunner, Fault, FaultPlan, JsonlEventSink, \\
    ResultStore, get_suite

store, events = sys.argv[1], sys.argv[2]
sink = JsonlEventSink(events)
# slow every circuit down a touch so the kill lands mid-suite
runner = BatchRunner(jobs=2, events=sink,
                     faults=FaultPlan({n: Fault("hang", seconds=0.6, times=0)
                                       for n in get_suite("epfl-mini").names()}))
runner.run(get_suite("epfl-mini"), "b", scale="tiny",
           store=ResultStore(store))
"""


@fork_only
class TestKillAndResume:
    def test_sigkill_mid_suite_then_resume_bit_identical(self, tmp_path):
        """Kill a 2-worker batch mid-suite (SIGKILL, no cleanup chance),
        resume over the same store, and verify the union of results is
        bit-identical to an uninterrupted reference run."""
        store_path = tmp_path / "store.jsonl"
        events_path = tmp_path / "events.jsonl"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parents[1] / "src") \
            + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-c", _KILLED_RUN, str(store_path),
             str(events_path)], env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        try:
            # wait until at least two circuits finished, then strike
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if events_path.exists() and sum(
                        e["kind"] == "finished"
                        for e in read_events(events_path)) >= 2:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("killed-run child produced no progress")
            proc.send_signal(signal.SIGKILL)
            proc.wait(30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(30)
            # reap the orphaned workers the SIGKILL left behind
            for e in read_events(events_path) if events_path.exists() else []:
                if e.get("worker"):
                    try:
                        os.kill(e["worker"], signal.SIGKILL)
                    except (ProcessLookupError, PermissionError):
                        pass

        store = ResultStore(store_path)
        interrupted = store.runs()[-1]
        assert not interrupted.closed
        done = len([r for r in interrupted.results.values()
                    if r.get("status") == "ok"])
        assert 0 < done < len(get_suite("epfl-mini"))

        # resume over the same store: only the missing circuits run
        log = EventLog()
        resumed = BatchRunner(jobs=2, events=log).run(
            get_suite("epfl-mini"), "b", scale="tiny", store=store,
            resume=True)
        assert not resumed.failures
        assert len(log.only("skipped")) == done

        # an uninterrupted reference run in a SEPARATE store (sharing the
        # store would share the run key and skip everything)
        ref_store = ResultStore(tmp_path / "ref.jsonl")
        ref = BatchRunner(jobs=2).run(get_suite("epfl-mini"), "b",
                                      scale="tiny", store=ref_store)
        assert {o.name: o.fingerprint for o in resumed.outcomes} == \
               {o.name: o.fingerprint for o in ref.outcomes}
        cmp = store.compare(store.find_run(resumed.run_id),
                            ref_store.find_run(ref.run_id))
        assert cmp.ok and not cmp.divergences
