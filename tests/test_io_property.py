"""Property-based round-trip tests for the I/O formats."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.io import read_aag, read_aig_binary, read_blif, write_aag, write_aig_binary, write_blif
from repro.networks import Aig, LutNetwork
from repro.sat import cec
from repro.truth.truth_table import TruthTable


def random_aig(seed: int, n_pis: int = 5, n_gates: int = 30) -> Aig:
    rng = random.Random(seed)
    ntk = Aig()
    lits = [ntk.create_pi() for _ in range(n_pis)]
    for _ in range(n_gates):
        a = rng.choice(lits) ^ rng.randint(0, 1)
        b = rng.choice(lits) ^ rng.randint(0, 1)
        lits.append(ntk.create_and(a, b))
    for _ in range(3):
        ntk.create_po(rng.choice(lits) ^ rng.randint(0, 1))
    return ntk


def random_seq_aig(seed: int, n_pis: int = 3, n_regs: int = 4,
                   n_gates: int = 20) -> Aig:
    """Random register-bearing AIG; interleaves PI and RO creation so the
    relabeling the writers perform is exercised on non-monotone orders."""
    rng = random.Random(seed)
    ntk = Aig()
    kinds = ["pi"] * n_pis + ["ro"] * n_regs
    rng.shuffle(kinds)
    lits = [ntk.create_pi() if k == "pi" else ntk.create_ro(init=rng.randint(0, 1))
            for k in kinds]
    for _ in range(n_gates):
        a = rng.choice(lits) ^ rng.randint(0, 1)
        b = rng.choice(lits) ^ rng.randint(0, 1)
        lits.append(ntk.create_and(a, b))
    for _ in range(2):
        ntk.create_po(rng.choice(lits) ^ rng.randint(0, 1))
    for _ in range(ntk.num_registers()):
        ntk.create_ri(rng.choice(lits) ^ rng.randint(0, 1))
    return ntk


def random_lut_network(seed: int, k: int = 4) -> LutNetwork:
    rng = random.Random(seed)
    lut = LutNetwork(k)
    nodes = [lut.create_pi() for _ in range(4)]
    for _ in range(10):
        arity = rng.randint(1, k)
        fis = [rng.choice(nodes) for _ in range(arity)]
        bits = rng.getrandbits(1 << arity)
        nodes.append(lut.create_lut(fis, TruthTable(arity, bits)))
    for _ in range(2):
        lut.create_po(rng.choice(nodes), rng.random() < 0.5)
    return lut


class TestAigerProperty:
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_ascii_roundtrip(self, seed):
        ntk = random_aig(seed)
        back = read_aag(write_aag(ntk))
        assert cec(ntk, back)

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_binary_roundtrip(self, seed):
        ntk = random_aig(seed)
        back = read_aig_binary(write_aig_binary(ntk))
        assert cec(ntk, back)

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_binary_and_ascii_agree(self, seed):
        ntk = random_aig(seed)
        a = read_aag(write_aag(ntk))
        b = read_aig_binary(write_aig_binary(ntk))
        assert cec(a, b)


class TestSequentialAiger:
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_ascii_write_read_write_bit_identical(self, seed):
        ntk = random_seq_aig(seed)
        text = write_aag(ntk)
        assert write_aag(read_aag(text)) == text

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_binary_write_read_write_bit_identical(self, seed):
        ntk = random_seq_aig(seed)
        blob = write_aig_binary(ntk)
        assert write_aig_binary(read_aig_binary(blob)) == blob

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_preserves_latch_order_and_inits(self, seed):
        ntk = random_seq_aig(seed)
        back = read_aag(write_aag(ntk))
        assert back.num_registers() == ntk.num_registers()
        assert [init for _, _, init in back.registers] \
            == [init for _, _, init in ntk.registers]
        # sequential behaviour is preserved, not just the comb skeleton
        from repro.seq import simulate_sequential

        rng = random.Random(seed)
        mask = (1 << 32) - 1
        stim = [[rng.getrandbits(32) for _ in range(ntk.num_real_pis())]
                for _ in range(6)]
        assert simulate_sequential(ntk, stim, mask) \
            == simulate_sequential(back, stim, mask)

    def test_generated_suites_roundtrip_bit_identical(self):
        from repro.circuits import SEQUENTIAL, build

        for name in SEQUENTIAL:
            ntk = build(name, "tiny")
            text = write_aag(ntk)
            assert write_aag(read_aag(text)) == text, name
            blob = write_aig_binary(ntk)
            assert write_aig_binary(read_aig_binary(blob)) == blob, name

    def test_symbol_table_round_trips_names_and_inits(self):
        ntk = Aig()
        a = ntk.create_pi("a")
        r = ntk.create_ro("state", init=1)
        ntk.create_po(ntk.create_and(a, r), "out")
        ntk.create_ri(ntk.create_and(a, r) ^ 1)
        back = read_aag(write_aag(ntk))
        assert back.pi_names == ["a", "state"]
        assert back.po_names == ["out"]
        assert back.registers[0][2] == 1


class TestAigerMalformed:
    def test_header_counts_must_add_up(self):
        with pytest.raises(ValueError, match=r"M=1 < I\+L\+A=2"):
            read_aag("aag 1 1 1 0 0\n2\n4 2\n")

    def test_header_rejects_negative_counts(self):
        with pytest.raises(ValueError, match="negative"):
            read_aag("aag 1 -1 0 0 0\n")

    def test_header_rejects_non_integer_counts(self):
        with pytest.raises(ValueError, match="malformed AIGER header"):
            read_aag("aag x 0 0 0 0\n")

    def test_header_rejects_too_few_fields(self):
        with pytest.raises(ValueError, match="malformed AIGER header"):
            read_aag("aag 1 1 0\n")

    def test_unsupported_reset_value_names_the_latch(self):
        # a latch resetting to its own literal (the AIGER 1.9 "uninitialized"
        # form) is counted and named, not silently dropped
        text = "aag 2 1 1 1 0\n2\n4 2 4\n4\n"
        with pytest.raises(ValueError, match="latch 0 of 1"):
            read_aag(text)

    def test_latch_count_mismatch_reported(self):
        with pytest.raises(ValueError, match="latch"):
            read_aag("aag 3 1 2 0 0\n2\n4 2\n")


class TestBlifProperty:
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_lut_roundtrip_preserves_function(self, seed):
        lut = random_lut_network(seed)
        back = read_blif(write_blif(lut), k=lut.k)
        assert back.num_pis() == lut.num_pis()
        # compare PO functions exhaustively (4 PIs)
        assert lut.simulate_truth_tables() == back.simulate_truth_tables()
