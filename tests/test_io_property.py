"""Property-based round-trip tests for the I/O formats."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.io import read_aag, read_aig_binary, read_blif, write_aag, write_aig_binary, write_blif
from repro.networks import Aig, LutNetwork
from repro.sat import cec
from repro.truth.truth_table import TruthTable


def random_aig(seed: int, n_pis: int = 5, n_gates: int = 30) -> Aig:
    rng = random.Random(seed)
    ntk = Aig()
    lits = [ntk.create_pi() for _ in range(n_pis)]
    for _ in range(n_gates):
        a = rng.choice(lits) ^ rng.randint(0, 1)
        b = rng.choice(lits) ^ rng.randint(0, 1)
        lits.append(ntk.create_and(a, b))
    for _ in range(3):
        ntk.create_po(rng.choice(lits) ^ rng.randint(0, 1))
    return ntk


def random_lut_network(seed: int, k: int = 4) -> LutNetwork:
    rng = random.Random(seed)
    lut = LutNetwork(k)
    nodes = [lut.create_pi() for _ in range(4)]
    for _ in range(10):
        arity = rng.randint(1, k)
        fis = [rng.choice(nodes) for _ in range(arity)]
        bits = rng.getrandbits(1 << arity)
        nodes.append(lut.create_lut(fis, TruthTable(arity, bits)))
    for _ in range(2):
        lut.create_po(rng.choice(nodes), rng.random() < 0.5)
    return lut


class TestAigerProperty:
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_ascii_roundtrip(self, seed):
        ntk = random_aig(seed)
        back = read_aag(write_aag(ntk))
        assert cec(ntk, back)

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_binary_roundtrip(self, seed):
        ntk = random_aig(seed)
        back = read_aig_binary(write_aig_binary(ntk))
        assert cec(ntk, back)

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_binary_and_ascii_agree(self, seed):
        ntk = random_aig(seed)
        a = read_aag(write_aag(ntk))
        b = read_aig_binary(write_aig_binary(ntk))
        assert cec(a, b)


class TestBlifProperty:
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_lut_roundtrip_preserves_function(self, seed):
        lut = random_lut_network(seed)
        back = read_blif(write_blif(lut), k=lut.k)
        assert back.num_pis() == lut.num_pis()
        # compare PO functions exhaustively (4 PIs)
        assert lut.simulate_truth_tables() == back.simulate_truth_tables()
