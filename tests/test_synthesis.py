"""Tests for structure builders, NPN cost cache and the strategy library."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.networks import Aig, Mig, MixedNetwork, Xag, Xmg, rep_view
from repro.networks.base import GateType
from repro.synthesis import (
    SYNTHESIS_METHODS,
    NpnCostCache,
    AREA_STRATEGY,
    LEVEL_STRATEGY,
    synthesize_candidates,
    synthesize_tt,
)
from repro.truth.truth_table import TruthTable


def check_realizes(cls, tt, method):
    ntk = cls()
    leaves = [ntk.create_pi() for _ in range(tt.num_vars)]
    out = synthesize_tt(ntk, tt, leaves, method=method)
    ntk.create_po(out)
    assert ntk.simulate_truth_tables()[0] == tt, (cls.__name__, method, tt)


class TestSynthesizeTt:
    @pytest.mark.parametrize("method", SYNTHESIS_METHODS)
    @pytest.mark.parametrize("cls", [Aig, Xag, Mig, Xmg])
    def test_known_functions(self, cls, method):
        for tt in [
            TruthTable.from_function(3, lambda a, b, c: (a + b + c) >= 2),
            TruthTable.from_function(3, lambda a, b, c: (a + b + c) % 2 == 1),
            TruthTable.from_function(4, lambda a, b, c, d: (a and b) or (c and d)),
            TruthTable.from_hex(4, "cafe"),
            TruthTable.const(2, True),
            TruthTable.const(2, False),
            TruthTable.var(3, 1),
        ]:
            check_realizes(cls, tt, method)

    @given(st.integers(min_value=0, max_value=(1 << 16) - 1), st.sampled_from(SYNTHESIS_METHODS))
    @settings(max_examples=120, deadline=None)
    def test_random_4var_functions_aig(self, bits, method):
        check_realizes(Aig, TruthTable(4, bits), method)

    @given(st.integers(min_value=0, max_value=(1 << 16) - 1), st.sampled_from(SYNTHESIS_METHODS))
    @settings(max_examples=60, deadline=None)
    def test_random_4var_functions_xmg(self, bits, method):
        check_realizes(Xmg, TruthTable(4, bits), method)

    def test_leaf_count_mismatch(self):
        ntk = Aig()
        a = ntk.create_pi()
        with pytest.raises(ValueError):
            synthesize_tt(ntk, TruthTable.var(2, 0), [a], method="sop")

    def test_unknown_method(self):
        ntk = Aig()
        a = ntk.create_pi()
        b = ntk.create_pi()
        with pytest.raises(ValueError):
            synthesize_tt(ntk, TruthTable.var(2, 0), [a, b], method="bogus")


class TestRepView:
    def test_mig_view_builds_maj(self):
        mixed = MixedNetwork()
        a = mixed.create_pi()
        b = mixed.create_pi()
        view = rep_view(mixed, Mig)
        g = view.create_and(a, b)
        assert mixed.node_type(g >> 1) == GateType.MAJ

    def test_aig_view_decomposes_maj(self):
        mixed = MixedNetwork()
        a, b, c = (mixed.create_pi() for _ in range(3))
        view = rep_view(mixed, Aig)
        g = view.create_maj(a, b, c)
        # no MAJ nodes created
        assert all(mixed.node_type(n) != GateType.MAJ for n in mixed.gates())
        mixed.create_po(g)
        expect = TruthTable.from_function(3, lambda x, y, z: (x + y + z) >= 2)
        assert mixed.simulate_truth_tables()[0] == expect

    def test_view_shares_storage(self):
        mixed = MixedNetwork()
        a = mixed.create_pi()
        b = mixed.create_pi()
        view = rep_view(mixed, Xmg)
        before = mixed.num_nodes()
        view.create_xor(a, b)
        assert mixed.num_nodes() == before + 1

    def test_rejects_non_network(self):
        mixed = MixedNetwork()
        with pytest.raises(TypeError):
            rep_view(mixed, int)


class TestNpnCostCache:
    def test_cost_positive(self):
        cache = NpnCostCache(Aig)
        tt = TruthTable.from_hex(4, "cafe")
        gates, depth = cache.cost(tt, "sop")
        assert gates > 0 and depth > 0

    def test_cache_hit_consistent(self):
        cache = NpnCostCache(Aig)
        tt = TruthTable.from_hex(4, "cafe")
        assert cache.cost(tt, "dsd") == cache.cost(tt, "dsd")

    def test_npn_invariance(self):
        from repro.truth.npn import apply_transform
        cache = NpnCostCache(Xmg)
        tt = TruthTable.from_hex(4, "1ee1")
        variant = apply_transform(tt, ((2, 0, 3, 1), (True, False, True, False), True))
        assert cache.cost(tt, "dsd") == cache.cost(variant, "dsd")

    def test_xor_cheaper_in_xmg_than_aig(self):
        parity = TruthTable.from_function(3, lambda a, b, c: (a + b + c) % 2 == 1)
        aig_gates, _ = NpnCostCache(Aig).cost(parity, "dsd")
        xmg_gates, _ = NpnCostCache(Xmg).cost(parity, "dsd")
        assert xmg_gates < aig_gates  # the heterogeneity the paper exploits

    def test_best_method_objectives(self):
        cache = NpnCostCache(Aig)
        tt = TruthTable.from_hex(4, "8000")  # AND4
        m_area, g_a, d_a = cache.best_method(tt, "area")
        m_level, g_l, d_l = cache.best_method(tt, "level")
        assert d_l <= d_a or g_a <= g_l

    def test_bad_objective(self):
        with pytest.raises(ValueError):
            NpnCostCache(Aig).best_method(TruthTable.var(2, 0), "speed")


class TestStrategyLibrary:
    def test_candidates_are_equivalent(self):
        mixed = MixedNetwork()
        leaves = [mixed.create_pi() for _ in range(4)]
        tt = TruthTable.from_hex(4, "cafe")
        for strategy in (LEVEL_STRATEGY, AREA_STRATEGY):
            cands = synthesize_candidates(mixed, tt, leaves, strategy, (Aig, Xmg))
            assert cands
            for c in cands:
                n_po = mixed.create_po(c)
                assert mixed.simulate_truth_tables()[n_po] == tt

    def test_candidates_deduped(self):
        mixed = MixedNetwork()
        leaves = [mixed.create_pi() for _ in range(2)]
        tt = TruthTable.from_function(2, lambda a, b: a and b)
        cands = synthesize_candidates(mixed, tt, leaves, AREA_STRATEGY, (Aig, Aig))
        assert len(cands) == len(set(cands))

    def test_bad_objective_rejected(self):
        from repro.synthesis import SynthesisStrategy
        with pytest.raises(ValueError):
            SynthesisStrategy("x", ("sop",), "both")
