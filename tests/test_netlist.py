"""Tests for the gate-level cell netlist container and DOT output."""

import pytest

from repro.circuits import build
from repro.io import write_choice_dot, write_dot
from repro.mapping import asap7_library, asic_map
from repro.networks import Aig, CellNetlist
from repro.truth.truth_table import TruthTable


@pytest.fixture(scope="module")
def lib():
    return asap7_library()


class TestCellNetlist:
    def test_basic_construction(self, lib):
        nl = CellNetlist("test")
        a = nl.create_pi("a")
        b = nl.create_pi("b")
        g = nl.add_cell(lib.cell("NAND2x1"), (a, b))
        nl.create_po(g, "y")
        assert nl.num_cells() == 1
        assert nl.simulate([True, True]) == [False]
        assert nl.simulate([True, False]) == [True]

    def test_pin_count_checked(self, lib):
        nl = CellNetlist()
        a = nl.create_pi()
        with pytest.raises(ValueError):
            nl.add_cell(lib.cell("NAND2x1"), (a,))

    def test_unknown_net_checked(self, lib):
        nl = CellNetlist()
        nl.create_pi()
        with pytest.raises(ValueError):
            nl.add_cell(lib.cell("INVx1"), (99,))

    def test_const_nets(self, lib):
        nl = CellNetlist()
        nl.create_pi()
        nl.create_po(nl.const0)
        nl.create_po(nl.const1)
        assert nl.simulate([True]) == [False, True]
        assert nl.area() == 0.0

    def test_area_is_sum(self, lib):
        nl = CellNetlist()
        a = nl.create_pi()
        b = nl.create_pi()
        n1 = nl.add_cell(lib.cell("NAND2x1"), (a, b))
        n2 = nl.add_cell(lib.cell("INVx1"), (n1,))
        nl.create_po(n2)
        assert nl.area() == pytest.approx(
            lib.cell("NAND2x1").area + lib.cell("INVx1").area
        )

    def test_delay_chains_pin_delays(self, lib):
        nl = CellNetlist()
        a = nl.create_pi()
        b = nl.create_pi()
        n1 = nl.add_cell(lib.cell("NAND2x1"), (a, b))
        n2 = nl.add_cell(lib.cell("INVx1"), (n1,))
        nl.create_po(n2)
        expect = lib.cell("NAND2x1").max_delay() + lib.cell("INVx1").max_delay()
        assert nl.delay() == pytest.approx(expect)

    def test_levels(self, lib):
        nl = CellNetlist()
        a = nl.create_pi()
        n1 = nl.add_cell(lib.cell("INVx1"), (a,))
        n2 = nl.add_cell(lib.cell("INVx1"), (n1,))
        nl.create_po(n2)
        assert nl.levels()[n2] == 2

    def test_truth_tables(self, lib):
        nl = CellNetlist()
        a = nl.create_pi()
        b = nl.create_pi()
        c = nl.create_pi()
        m = nl.add_cell(lib.cell("MAJx2"), (a, b, c))
        nl.create_po(m)
        tt = nl.simulate_truth_tables()[0]
        assert tt == TruthTable.from_function(3, lambda x, y, z: (x + y + z) >= 2)

    def test_to_logic_network_and_back(self, lib):
        from repro.sat import cec

        ntk = build("router", "tiny")
        nl = asic_map(ntk, objective="area")
        back = nl.to_logic_network(Aig)
        assert cec(ntk, back)


class TestDot:
    def test_write_dot_wellformed(self):
        ntk = build("ctrl", "tiny")
        text = write_dot(ntk)
        assert text.startswith("digraph")
        assert text.rstrip().endswith("}")
        assert text.count("triangle") >= ntk.num_pis()

    def test_choice_dot_has_equiv_edges(self):
        from repro.core import MchParams, build_mch
        from repro.networks import Xmg

        ntk = build("int2float", "tiny")
        ch = build_mch(ntk, MchParams(representations=(Xmg,)))
        text = write_choice_dot(ch)
        assert "color=red" in text
