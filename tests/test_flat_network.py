"""The flat struct-of-arrays core: exact round trips, hashes, consumers.

Property coverage for the flat network snapshot layer:

* ``FlatNetwork.from_network(n).to_network()`` restores a **graph-identical**
  network — same types, fanins, levels, PI/PO lists and names — across every
  builtin benchmark suite and randomized networks of every representation
  (including constant-driven and dangling POs);
* ``pack``/``unpack`` and the shared-memory transport reproduce the snapshot
  bit for bit;
* ``structural_hash`` keys content: equal for structurally identical
  networks in different objects, different after any structural change;
* the flat-compiled consumers agree with the object walk: Tseitin encoding
  accepts either a network or its snapshot with identical CNF, the
  vectorized simulation backends are bit-identical to the integer path, and
  :class:`FlowContext` shares one equivalence session between hash-equal
  network objects.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch import state_fingerprint
from repro.circuits import ALL_BENCHMARKS, build
from repro.flow import FlowContext
from repro.networks import Aig, Mig, MixedNetwork, Xag, Xmg
from repro.networks.flat import FlatNetwork
from repro.sat import cec
from repro.sat.cnf import CnfBuilder
from repro.sim import simulate_words

try:
    import numpy as np
except ImportError:  # pragma: no cover - numpy is an optional accelerator
    np = None


REPS = (Aig, Xag, Mig, Xmg, MixedNetwork)


def random_network(cls, seed: int, n_pis: int = 5, n_gates: int = 25):
    """A random network of ``cls`` with constant fanins and dangling POs."""
    rng = random.Random(seed)
    ntk = cls()
    lits = [ntk.create_pi() for _ in range(n_pis)]
    makers = {
        Aig: ("and",),
        Xag: ("and", "xor"),
        Mig: ("maj",),
        Xmg: ("maj", "xor3"),
        MixedNetwork: ("and", "xor", "maj", "xor3"),
    }[cls]
    for i in range(n_gates):
        pick = lambda: rng.choice(lits) ^ rng.randint(0, 1)
        # sprinkle constant fanins: normalization folds them, which is
        # exactly the kind of irregular graph the snapshot must round-trip
        a = 1 if i % 9 == 3 else pick()
        kind = rng.choice(makers)
        if kind == "and":
            lits.append(ntk.create_and(a, pick()))
        elif kind == "xor":
            lits.append(ntk.create_xor(a, pick()))
        elif kind == "maj":
            lits.append(ntk.create_maj(a, pick(), pick()))
        else:
            lits.append(ntk.create_xor3(a, pick(), pick()))
    for _ in range(3):
        ntk.create_po(rng.choice(lits) ^ rng.randint(0, 1))
    ntk.create_po(rng.randint(0, 1))     # constant-driven PO
    # note: most created gates never reach a PO — dangling logic that an
    # exact snapshot must keep (cleanup() would drop it)
    return ntk


def assert_graph_identical(a, b):
    assert type(a) is type(b)
    assert a._types == b._types
    assert a._fanins == b._fanins
    assert a._levels == b._levels
    assert a._pis == b._pis and a._pos == b._pos
    assert a._pi_names == b._pi_names and a._po_names == b._po_names
    assert a._strash == b._strash
    assert state_fingerprint(a) == state_fingerprint(b)


class TestRoundTrip:
    @pytest.mark.parametrize("name", ALL_BENCHMARKS)
    def test_builtin_suites(self, name):
        ntk = build(name, "tiny")
        back = FlatNetwork.from_network(ntk).to_network()
        assert_graph_identical(ntk, back)

    @pytest.mark.parametrize("cls", REPS)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_random_networks(self, cls, seed):
        ntk = random_network(cls, seed)
        back = FlatNetwork.from_network(ntk).to_network()
        assert_graph_identical(ntk, back)

    def test_flat_property_caches_per_version(self):
        ntk = random_network(Aig, 11)
        snap = ntk.flat
        assert ntk.flat is snap                   # unchanged -> same snapshot
        ntk.create_po(ntk.create_and(2, 4))
        assert ntk.flat is not snap               # mutation invalidates

    def test_pack_unpack_round_trip(self):
        ntk = random_network(Xmg, 5)
        snap = ntk.flat
        back = FlatNetwork.unpack(snap.header(), snap.pack())
        assert back == snap
        assert_graph_identical(ntk, back.to_network())

    def test_shared_memory_round_trip(self):
        ntk = random_network(MixedNetwork, 23)
        snap = ntk.flat
        shm, header = snap.to_shared_memory()
        try:
            back = FlatNetwork.from_shared_memory(header)
            assert back == snap
            assert_graph_identical(ntk, back.to_network())
        finally:
            shm.close()
            shm.unlink()


class TestStructuralHash:
    def test_equal_structures_equal_hashes(self):
        a = random_network(Aig, 7)
        b = random_network(Aig, 7)
        assert a is not b
        assert a.structural_hash() == b.structural_hash()
        assert a.structural_hash() == a.flat.structural_hash()

    def test_round_trip_preserves_hash(self):
        ntk = random_network(Xag, 3)
        assert ntk.flat.to_network().structural_hash() == ntk.structural_hash()

    def test_any_structural_change_changes_hash(self):
        ntk = random_network(Aig, 9)
        before = ntk.structural_hash()
        ntk.create_po(ntk.create_and(2, 5))
        assert ntk.structural_hash() != before

    def test_rep_distinguishes_hashes(self):
        # same PI-only structure, different representation class
        a, m = Aig(), Mig()
        for n in (a, m):
            n.create_po(n.create_pi("x"))
        assert a.structural_hash() != m.structural_hash()


class TestFlatConsumers:
    def test_encode_accepts_network_or_snapshot(self):
        ntk = build("ctrl", "tiny")
        ba, bb = CnfBuilder(), CnfBuilder()
        va, pa = ba.encode(ntk)
        vb, pb = bb.encode(ntk.flat)
        assert ba.num_vars == bb.num_vars
        assert ba.clauses == bb.clauses
        assert dict(va) == dict(vb) and list(pa) == list(pb)

    @pytest.mark.skipif(np is None, reason="numpy not available")
    def test_block_simulation_bit_identical(self):
        from repro.sim import simulate_blocks

        ntk = random_network(Xmg, 41, n_pis=6, n_gates=40)
        rng = random.Random(1)
        bits = 256
        mask = (1 << bits) - 1
        pats = [rng.getrandbits(bits) for _ in range(ntk.num_pis())]
        ref = simulate_words(ntk, pats, mask)
        assert simulate_words(ntk, pats, mask, block=True) == ref

        words = bits // 64
        blocks = np.array(
            [[(p >> (64 * w)) & 0xFFFFFFFFFFFFFFFF for w in range(words)]
             for p in pats], dtype="<u8")
        vals = simulate_blocks(ntk, blocks)
        packed = [int.from_bytes(vals[n].tobytes(), "little")
                  for n in range(ntk.num_nodes())]
        assert packed == ref

    def test_context_shares_session_between_hash_equal_objects(self):
        ctx = FlowContext()
        ntk = build("int2float", "tiny")
        twin = ntk.flat.to_network()    # same structure, different object
        s1 = ctx.equivalence_session(ntk)
        s2 = ctx.equivalence_session(twin)
        assert s1 is s2

    def test_cec_accepts_hash_equal_session_reference(self):
        ntk = build("router", "tiny")
        twin = ntk.flat.to_network()
        ctx = FlowContext()
        session = ctx.equivalence_session(ntk)
        # sim_limit=0 forces the SAT path through the injected session even
        # though the circuit is small; the hash-equal twin must be accepted
        res = cec(twin, ntk, sim_limit=0, session=session)
        assert res.equivalent

    def test_cec_rejects_foreign_session_reference(self):
        ntk = build("router", "tiny")
        other = build("ctrl", "tiny")
        ctx = FlowContext()
        session = ctx.equivalence_session(other)
        with pytest.raises(ValueError):
            cec(ntk, ntk.flat.to_network(), sim_limit=0, session=session)
