"""The serve subsystem: cache keys, the pool, the daemon, the client.

Everything network-facing binds ``port=0`` (an ephemeral localhost port)
so the suite never races another process for a port.  The cache-key tests
pin the semantics the daemon's whole value proposition rests on:

* the *same circuit* hits no matter how it was submitted (registry name,
  ``.aag`` round-trip, builder) — keys come from the structural
  fingerprint of the built network, not from the submission form;
* whitespace/alias variants of the *same flow* hit — keys come from the
  canonical ``Flow.parse(s).to_script()`` form;
* any pass-argument change misses.
"""

import json
import multiprocessing
import threading
import time
import warnings

import pytest

from repro.batch import EventLog, event_sink, state_fingerprint
from repro.batch.store import ResultStore
from repro.circuits import load
from repro.flow import resolve_flow
from repro.io import read_aag, write_aag
from repro.serve import (
    ResultCache,
    ServeClient,
    ServeDaemon,
    ServeError,
    ServePool,
    cache_key,
)

_FORK = multiprocessing.get_start_method() == "fork"
fork_only = pytest.mark.skipif(not _FORK, reason="worker-pool test needs fork")

FLOW = "b; rf; b"


def canon(script: str) -> str:
    return resolve_flow(script).to_script()


# ---------------------------------------------------------------------- #
# cache-key semantics                                                     #
# ---------------------------------------------------------------------- #

class TestCacheKey:
    def test_source_independent_fingerprint(self):
        """The same circuit as a registry build and as an ``.aag``
        round-trip shares a structural fingerprint — and hence a key."""
        built = load("adder", "tiny")
        from_file = read_aag(write_aag(built))
        assert state_fingerprint(built) == state_fingerprint(from_file)
        assert (cache_key(state_fingerprint(built), canon(FLOW))
                == cache_key(state_fingerprint(from_file), canon(FLOW)))

    def test_whitespace_variants_share_a_key(self):
        fp = state_fingerprint(load("ctrl", "tiny"))
        variants = ["b; rf; b", "b;rf;b", "  b ;  rf ; b  ", "b ;rf;  b;"]
        keys = {cache_key(fp, canon(v)) for v in variants}
        assert len(keys) == 1

    def test_any_pass_arg_change_misses(self):
        fp = state_fingerprint(load("ctrl", "tiny"))
        keys = {cache_key(fp, canon(s))
                for s in ("b; gm -k 4; b", "b; gm -k 5; b", "b; gm -k 4",
                          "b; rf; b", "b; rf -z; b")}
        assert len(keys) == 5

    def test_different_circuits_miss(self):
        flow = canon(FLOW)
        k1 = cache_key(state_fingerprint(load("ctrl", "tiny")), flow)
        k2 = cache_key(state_fingerprint(load("dec", "tiny")), flow)
        assert k1 != k2

    def test_key_is_stable_hex(self):
        key = cache_key("f" * 16, "b; rf; b")
        assert key == cache_key("f" * 16, "b; rf; b")
        assert len(key) == 16
        int(key, 16)


class TestResultCache:
    def test_memory_roundtrip_and_stats(self):
        cache = ResultCache()
        assert cache.get("k") is None
        cache.put("k", {"status": "ok"})
        assert cache.get("k") == {"status": "ok"}
        cache.note_hit()
        assert cache.stats() == {"hits": 2, "misses": 1, "entries": 1}

    def test_persistence_warm_restart(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        cache = ResultCache(path)
        cache.put("k1", {"status": "ok", "depth": 7},
                  fingerprint="abc", flow="b; rf; b")
        reborn = ResultCache(path)
        assert len(reborn) == 1
        assert reborn.get("k1") == {"status": "ok", "depth": 7}
        # the JSONL line is self-describing
        line = json.loads(path.read_text().splitlines()[-1])
        assert line["kind"] == "cache"
        assert line["input"] == "abc" and line["flow"] == "b; rf; b"

    def test_cache_lines_coexist_with_run_records(self, tmp_path):
        """Cache entries share the store file with batch run records
        without confusing either reader."""
        path = tmp_path / "mixed.jsonl"
        store = ResultStore(path)
        cache = ResultCache(store)
        cache.put("k", {"status": "ok"})
        assert store.runs() == []
        assert len(store.cache_records()) == 1
        assert ResultCache(ResultStore(path)).get("k") == {"status": "ok"}


# ---------------------------------------------------------------------- #
# the pool                                                                #
# ---------------------------------------------------------------------- #

def _payload(name="ctrl", flow=FLOW, index=1, **extra):
    spec = load(name, "tiny")
    payload = {"index": index, "name": name, "spec": spec, "scale": "tiny",
               "flow": canon(flow), "attempt": 1, "verify": False,
               "checkpoint": False, "return_network": False,
               "pack_return": False}
    payload.update(extra)
    return payload


class _Collector:
    """Thread-safe outcome/event collector for pool callbacks."""

    def __init__(self, expected: int):
        self.outcomes = []
        self.events = []
        self._done = threading.Event()
        self._expected = expected
        self._lock = threading.Lock()

    def on_done(self, outcome):
        with self._lock:
            self.outcomes.append(outcome)
            if len(self.outcomes) >= self._expected:
                self._done.set()

    def on_event(self, event):
        with self._lock:
            self.events.append(event)

    def wait(self, timeout=60.0) -> bool:
        return self._done.wait(timeout)


@fork_only
class TestServePool:
    def test_executes_and_scales_to_zero(self):
        pool = ServePool(2, idle_timeout=0.3)
        try:
            got = _Collector(2)
            for i, name in enumerate(("ctrl", "dec")):
                pool.submit(_payload(name, index=i),
                            on_done=got.on_done, on_event=got.on_event)
            assert got.wait()
            assert sorted(o.status for o in got.outcomes) == ["ok", "ok"]
            kinds = [e.kind for e in got.events]
            assert kinds.count("started") == 2
            assert kinds.count("finished") == 2
            # idle reaping: the pool sheds every worker, then respawns
            deadline = time.monotonic() + 30
            while pool.stats()["workers"] and time.monotonic() < deadline:
                time.sleep(0.05)
            stats = pool.stats()
            assert stats["workers"] == 0
            assert stats["reaped"] >= 1
            again = _Collector(1)
            pool.submit(_payload("ctrl", index=9), on_done=again.on_done)
            assert again.wait()
            assert again.outcomes[0].status == "ok"
            assert pool.stats()["spawned"] > stats["spawned"]
        finally:
            pool.shutdown(drain=False)

    def test_job_timeout_kills_worker(self):
        pool = ServePool(1, timeout=1.0)
        try:
            got = _Collector(1)
            pool.submit(_payload("ctrl", faults={"ctrl": ("hang", 0, 60, 13)}),
                        on_done=got.on_done, on_event=got.on_event)
            assert got.wait()
            out = got.outcomes[0]
            assert out.status == "timeout"
            assert "timeout" in [e.kind for e in got.events]
            assert pool.stats()["timeouts"] == 1
            # the pool recovered: the next job on a fresh worker is fine
            again = _Collector(1)
            pool.submit(_payload("dec", index=2), on_done=again.on_done)
            assert again.wait()
            assert again.outcomes[0].status == "ok"
        finally:
            pool.shutdown(drain=False)

    def test_crashed_worker_is_isolated(self):
        pool = ServePool(1)
        try:
            got = _Collector(2)
            pool.submit(_payload("ctrl", faults={"ctrl": ("exit", 0, 0, 3)}),
                        on_done=got.on_done)
            pool.submit(_payload("dec", index=2), on_done=got.on_done)
            assert got.wait()
            by_name = {o.name: o for o in got.outcomes}
            assert by_name["ctrl"].status == "crashed"
            assert by_name["dec"].status == "ok"
        finally:
            pool.shutdown(drain=False)

    def test_submit_after_shutdown_raises(self):
        pool = ServePool(1)
        pool.shutdown(drain=False)
        with pytest.raises(RuntimeError, match="shut down"):
            pool.submit(_payload())

    def test_callback_exceptions_warn_not_kill(self):
        pool = ServePool(1)
        try:
            got = _Collector(1)

            def bad_hook(event):
                raise RuntimeError("boom")

            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                pool.submit(_payload(), on_event=bad_hook,
                            on_done=got.on_done)
                assert got.wait()
            assert got.outcomes[0].status == "ok"
            assert any("event hook failed" in str(w.message) for w in caught)
        finally:
            pool.shutdown(drain=False)

    def test_validation(self):
        with pytest.raises(ValueError, match="jobs"):
            ServePool(0)
        with pytest.raises(ValueError, match="timeout"):
            ServePool(1, timeout=0)


# ---------------------------------------------------------------------- #
# the daemon, end to end                                                  #
# ---------------------------------------------------------------------- #

@pytest.fixture
def daemon(tmp_path):
    d = ServeDaemon(port=0, jobs=2, store=tmp_path / "serve.jsonl")
    d.start()
    yield d
    d.stop()


@pytest.fixture
def client(daemon):
    with ServeClient(port=daemon.port) as c:
        yield c


@fork_only
class TestDaemon:
    def test_cache_hit_is_bit_identical_and_dispatch_free(self, daemon, client):
        """The acceptance invariant: a repeat submission returns the
        byte-identical record and dispatches zero workers."""
        first = client.submit("ctrl", flow="b; rf; b", scale="tiny")
        assert first["status"] in ("queued", "running")
        assert not first["cached"]
        rec1 = client.result(first["id"])
        assert rec1["status"] == "ok"
        dispatched = daemon.pool.stats()["dispatched"]

        # whitespace-different script, same canonical flow -> cache hit
        second = client.submit("ctrl", flow="  b ;rf;   b", scale="tiny")
        assert second["status"] == "done"
        assert second["cached"] and not second["coalesced"]
        assert second["cache_key"] == first["cache_key"]
        rec2 = second["record"]
        assert (json.dumps(rec1, sort_keys=True)
                == json.dumps(rec2, sort_keys=True))
        assert daemon.pool.stats()["dispatched"] == dispatched

    def test_arg_change_misses(self, daemon, client):
        a = client.submit("ctrl", flow="b; gm -k 4; b", scale="tiny")
        client.result(a["id"])
        b = client.submit("ctrl", flow="b; gm -k 5; b", scale="tiny")
        assert not b["cached"]
        assert b["cache_key"] != a["cache_key"]
        client.result(b["id"])
        assert daemon.pool.stats()["dispatched"] == 2

    def test_inline_aag_hits_registry_submission(self, daemon, client):
        """File-form and registry-form of the same circuit share a key."""
        text = write_aag(load("ctrl", "tiny"))
        a = client.submit("ctrl", flow=FLOW, scale="tiny")
        rec1 = client.result(a["id"])
        b = client.submit(aag=text, flow=FLOW, scale="tiny")
        assert b["cached"] and b["status"] == "done"
        assert b["fingerprint"] == a["fingerprint"]
        assert (json.dumps(b["record"], sort_keys=True)
                == json.dumps(rec1, sort_keys=True))

    def test_events_stream(self, daemon, client):
        job = client.submit("ctrl", flow=FLOW, scale="tiny")
        client.result(job["id"])
        kinds = [e["kind"] for e in client.events(job["id"])]
        assert kinds[0] == "started" and kinds[-1] == "finished"
        hit = client.submit("ctrl", flow=FLOW, scale="tiny")
        assert [e["kind"] for e in client.events(hit["id"])] == ["skipped"]

    def test_stats_shape(self, daemon, client):
        job = client.submit("ctrl", flow=FLOW, scale="tiny")
        client.result(job["id"])
        client.submit("ctrl", flow=FLOW, scale="tiny")
        stats = client.stats()
        assert stats["cache"]["hits"] == 1
        assert stats["cache"]["misses"] == 1
        assert stats["cache"]["entries"] == 1
        assert stats["jobs"]["total"] == 2
        assert stats["pool"]["dispatched"] == 1
        assert not stats["draining"]

    def test_warm_restart_from_store(self, tmp_path):
        """A restarted daemon serves yesterday's work from the store
        without a single worker dispatch."""
        store = tmp_path / "warm.jsonl"
        with ServeDaemon(port=0, jobs=1, store=store) as d1:
            c1 = ServeClient(port=d1.port)
            job = c1.submit("ctrl", flow=FLOW, scale="tiny")
            rec1 = c1.result(job["id"])
            c1.close()
        with ServeDaemon(port=0, jobs=1, store=store) as d2:
            c2 = ServeClient(port=d2.port)
            hit = c2.submit("ctrl", flow=FLOW, scale="tiny")
            assert hit["status"] == "done" and hit["cached"]
            assert (json.dumps(hit["record"], sort_keys=True)
                    == json.dumps(rec1, sort_keys=True))
            assert d2.pool.stats()["dispatched"] == 0
            c2.close()

    def test_concurrent_duplicates_coalesce(self, daemon, client):
        """Two concurrent submissions of the same work cost one dispatch;
        the follower's record is the primary's, bit for bit."""
        slow = {"ctrl": ("hang", 0, 1.0, 13)}
        first = client.submit("ctrl", flow=FLOW, scale="tiny", faults=slow)
        with ServeClient(port=daemon.port) as other:
            second = other.submit("ctrl", flow=FLOW, scale="tiny")
            assert second["coalesced"] and second["cached"]
            rec2 = other.result(second["id"])
        rec1 = client.result(first["id"])
        assert (json.dumps(rec1, sort_keys=True)
                == json.dumps(rec2, sort_keys=True))
        assert daemon.pool.stats()["dispatched"] == 1

    def test_job_timeout_via_api(self, daemon, client):
        job = client.submit("ctrl", flow=FLOW, scale="tiny", timeout=1.0,
                            faults={"ctrl": ("hang", 0, 60, 13)})
        done = client.wait(job["id"])
        assert done["status"] == "timeout"
        with pytest.raises(ServeError, match="timeout"):
            client.result(job["id"])
        # timeouts are not cached: the next submission recomputes
        retry = client.submit("ctrl", flow=FLOW, scale="tiny")
        assert not retry["cached"]
        assert client.result(retry["id"])["status"] == "ok"

    def test_graceful_shutdown_drains_and_store_readable(self, tmp_path):
        store = tmp_path / "drain.jsonl"
        with ServeDaemon(port=0, jobs=1, store=store) as d:
            c = ServeClient(port=d.port)
            job = c.submit("ctrl", flow=FLOW, scale="tiny",
                           faults={"ctrl": ("hang", 0, 0.5, 13)})
            c.shutdown(drain=True)
            assert d.wait(60)
        # the in-flight job finished and its record reached the store
        cache = ResultCache(store)
        assert len(cache) == 1
        with ServeClient(port=0):
            pass

    def test_submissions_rejected_while_draining(self, daemon, client):
        client.submit("ctrl", flow=FLOW, scale="tiny",
                      faults={"ctrl": ("hang", 0, 0.8, 13)})
        client.shutdown(drain=True)
        with ServeClient(port=daemon.port) as other:
            with pytest.raises(ServeError) as err:
                other.submit("dec", flow=FLOW, scale="tiny")
            assert err.value.status == 503

    def test_http_errors(self, daemon, client):
        for kwargs, match in [
            (dict(flow=""), "flow"),                        # no flow
            (dict(flow="b; zzz; b"), "flow"),               # bad flow
            (dict(circuit="no-such", flow=FLOW), "circuit"),  # bad circuit
        ]:
            with pytest.raises(ServeError) as err:
                client.submit(kwargs.pop("circuit", ""), **kwargs)
            assert err.value.status == 400
            assert match in str(err.value)
        with pytest.raises(ServeError) as err:
            client.status("j999999")
        assert err.value.status == 404
        with pytest.raises(ServeError) as err:
            client._request("PUT", "/stats")
        assert err.value.status == 405

    def test_info_routes(self, daemon, client):
        info = client.info()
        assert info["service"] == "repro-serve"
        assert "POST /jobs" in info["routes"]
        assert "POST /shutdown" in info["routes"]


# ---------------------------------------------------------------------- #
# the shared event-sink helper                                            #
# ---------------------------------------------------------------------- #

class TestEventSink:
    def test_none_for_no_path(self):
        assert event_sink(None) is None
        assert event_sink("") is None

    def test_constructs_jsonl_sink(self, tmp_path):
        from repro.batch import JsonlEventSink, RunEvent, read_events

        sink = event_sink(tmp_path / "ev.jsonl")
        assert isinstance(sink, JsonlEventSink)
        sink(RunEvent(kind="started", circuit="ctrl", index=0))
        sink.close()
        assert [e["kind"] for e in read_events(tmp_path / "ev.jsonl")] \
            == ["started"]

    def test_broken_path_warns_once_then_stays_silent(self, tmp_path):
        """A sink whose path cannot be written disables itself after ONE
        warning — progress telemetry must never spam or kill a run."""
        from repro.batch import RunEvent

        target = tmp_path / "not-a-dir"
        target.write_text("file, not directory")
        sink = event_sink(target / "ev.jsonl")     # parent is a file
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for i in range(5):
                sink(RunEvent(kind="started", circuit="ctrl", index=i))
        mine = [w for w in caught if "event sink" in str(w.message)]
        assert len(mine) == 1
        assert "disabled" in str(mine[0].message)
