"""Pass registry completeness, capability enforcement, FlowContext sharing."""

import pytest

from repro.circuits import build, load
from repro.flow import (
    FlowContext,
    FlowError,
    FlowRunner,
    FlowScriptError,
    available_passes,
    get_pass,
    pass_names,
)
from repro.networks import Aig, Mig, Xmg


class TestRegistryCompleteness:
    # every transform the library exports must be drivable from a script
    EXPORTED_TRANSFORMS = {
        "balance": "b",
        "sweep": "sw",
        "refactor": "rf",
        "resub": "rs",
        "mig_depth_rewrite": "mr",
        "graph_map": "gm",
        "lut_map": "if",
        "asic_map": "am",
        "build_dch": "dch",
        "build_mch": "mch",
        "cec": "cec",
        "convert": "cv",
    }

    def test_every_exported_transform_has_a_pass(self):
        registered = {p.name for p in available_passes()}
        for transform, pass_name in self.EXPORTED_TRANSFORMS.items():
            assert pass_name in registered, f"{transform} has no registered pass"

    def test_long_aliases_match_transform_names(self):
        # the python-level names resolve as script aliases too
        for alias in ["balance", "sweep", "refactor", "resub", "mig_rewrite",
                      "graph_map", "lut_map", "asic_map", "verify", "convert"]:
            get_pass(alias)

    def test_aliases_resolve_to_the_same_info(self):
        assert get_pass("balance") is get_pass("b")
        assert get_pass("lm") is get_pass("if")

    def test_unknown_pass_raises(self):
        with pytest.raises(FlowScriptError):
            get_pass("nonexistent")

    def test_pass_names_includes_aliases(self):
        names = pass_names()
        assert "b" in names and "balance" in names

    def test_every_pass_declares_valid_capabilities(self):
        from repro.flow.registry import STATE_KINDS

        for info in available_passes():
            assert info.inputs, f"{info.name} accepts no state kind"
            for kind in info.inputs:
                assert kind in STATE_KINDS
            assert info.help, f"{info.name} has no help text"

    def test_boolean_args_default_to_false(self):
        # required for the canonical script form to be unambiguous
        for info in available_passes():
            for arg in info.args:
                if arg.type is bool:
                    assert arg.default is False, f"{info.name} -{arg.flag}"

    def test_arg_defaults_match_wrapped_functions(self):
        # spot-check that registry defaults track the underlying transforms
        from repro.mapping.lut_mapper import lut_map
        from repro.opt.refactoring import refactor

        assert get_pass("if").arg("k").default == 6
        assert get_pass("if").arg("objective").default \
            == lut_map.__defaults__[2]        # objective
        assert get_pass("rf").arg("l").default == refactor.__defaults__[0]

    def test_mapper_passes_declare_choice_support_and_library_needs(self):
        for name in ("gm", "if", "am"):
            assert "choice" in get_pass(name).inputs
        assert get_pass("am").needs_library
        assert not get_pass("if").needs_library

    def test_verifying_passes_flagged(self):
        assert get_pass("cec").verifying
        assert get_pass("rs").verifying      # SAT-validated rewrites
        assert not get_pass("b").verifying

    def test_seq_passes_registered_with_aliases(self):
        assert get_pass("scorr") is get_pass("seq-sweep")
        assert get_pass("retime") is get_pass("seq-retime")
        assert get_pass("bmc") is get_pass("seq-bmc")
        assert get_pass("kind") is get_pass("seq-ind")

    def test_seq_passes_declare_sequential_capability(self):
        for name in ("seq-sweep", "seq-retime", "seq-bmc", "seq-ind"):
            assert get_pass(name).sequential, f"{name} must accept registers"
        # structure-preserving utility passes work on either kind of network
        for name in ("cv", "cec", "ps", "ckpt"):
            assert get_pass(name).sequential, f"{name} must accept registers"

    def test_comb_optimization_passes_are_not_sequential(self):
        for name in ("b", "sw", "rf", "rs", "if", "gm", "am", "dch", "mch"):
            assert not get_pass(name).sequential, \
                f"{name} must refuse registered networks"


class TestCapabilityEnforcement:
    def test_logic_pass_rejects_choice_state(self):
        ntk = build("ctrl", "tiny")
        with pytest.raises(FlowError, match="cannot run on a choice"):
            FlowRunner().run(ntk, "mch; b")

    def test_mr_rejects_and_only_networks(self):
        ntk = build("ctrl", "tiny")
        with pytest.raises(FlowError, match="needs one of"):
            FlowRunner().run(ntk, "mr")

    def test_mr_accepts_majority_networks(self):
        ntk = FlowRunner().run(build("int2float", "tiny"), "cv -r mig").network
        assert isinstance(ntk, Mig)
        out = FlowRunner().run(ntk, "mr").network
        assert out.depth() <= ntk.depth()

    def test_mapped_state_rejects_further_optimization(self):
        ntk = build("ctrl", "tiny")
        with pytest.raises(FlowError, match="cannot run on a lut"):
            FlowRunner().run(ntk, "if; b")

    def test_comb_only_pass_rejects_registered_network(self):
        ntk = build("counter", "tiny")
        with pytest.raises(FlowError,
                           match="combinational-only.*4 registers.*seq-"):
            FlowRunner().run(ntk, "b")

    def test_seq_passes_accept_registered_networks(self):
        ntk = build("counter", "tiny")
        out = FlowRunner(verify=True).run(ntk, "seq-sweep; seq-retime").network
        assert out.num_registers() > 0

    def test_seq_verification_passes_run_in_flows(self):
        result = FlowRunner().run(build("lfsr", "tiny"),
                                  "seq-bmc -d 4; seq-ind -k 4")
        assert result.network.num_registers() == 5

    def test_comb_circuits_keep_running_through_comb_flows(self):
        # zero-register networks must be unaffected by the guard
        result = FlowRunner().run(build("ctrl", "tiny"), "b; rf")
        assert result.network.num_gates() > 0


class TestFlowContext:
    def test_pattern_pool_shared_per_pi_width(self):
        ctx = FlowContext()
        a = build("ctrl", "tiny")
        b = build("ctrl", "tiny")
        assert ctx.pool_for(a) is ctx.pool_for(b)

    def test_equivalence_session_cached_per_snapshot(self):
        ctx = FlowContext()
        ntk = build("ctrl", "tiny")
        s1 = ctx.equivalence_session(ntk)
        assert ctx.equivalence_session(ntk) is s1
        ntk.create_pi("extra")   # structural change -> new version
        assert ctx.equivalence_session(ntk) is not s1

    def test_npn_cache_shared_per_representation(self):
        ctx = FlowContext()
        assert ctx.npn_cache(Xmg) is ctx.npn_cache(Xmg)
        assert ctx.npn_cache(Xmg) is not ctx.npn_cache(Aig)

    def test_library_is_lazy_and_stable(self):
        ctx = FlowContext()
        assert ctx.library is ctx.library

    def test_metrics_recorded_per_pass(self):
        ctx = FlowContext()
        result = FlowRunner(ctx).run(build("ctrl", "tiny"), "b; rf; b")
        assert [m.name for m in result.metrics] == ["b", "rf", "b"]
        assert all(m.seconds >= 0 for m in ctx.metrics)
        table = ctx.metrics_table()
        assert "rf" in table and "seconds" in table

    def test_resub_under_context_uses_shared_session(self):
        ctx = FlowContext()
        ntk = build("int2float", "tiny")
        FlowRunner(ctx).run(ntk, "rs")
        stats = ctx.stats()
        assert stats["equivalence_sessions"], \
            "resub under a FlowContext must draw its session from the context"
        assert stats["equivalence_sessions"][0]["queries"] > 0

    def test_stats_aggregates_engines(self):
        ctx = FlowContext()
        FlowRunner(ctx).run(build("ctrl", "tiny"), "b; gm; if -k 4")
        stats = ctx.stats()
        assert stats["passes"] == 3
        assert stats["mapping_sessions"], "mapping passes must register sessions"
        assert "solver" in stats and "sim" in stats

    def test_checkpoints(self):
        ctx = FlowContext()
        FlowRunner(ctx).run(build("ctrl", "tiny"), "b; ckpt -n mid; rf")
        assert "mid" in ctx.checkpoints

    def test_cec_pass_against_original(self):
        ntk = build("ctrl", "tiny")
        result = FlowRunner().run(ntk, "b; cec; rf; cec")
        assert result.network.num_gates() > 0

    def test_batch_run_many_shares_one_context(self):
        ctx = FlowContext()
        results = FlowRunner(ctx).run_many(["ctrl", "router"], "b; gm; b",
                                           scale="tiny")
        assert set(results) == {"ctrl", "router"}
        for name, res in results.items():
            assert bool(ctx.cec(res.input, res.network)), name
        # both circuits' graph mappings went through one shared NPN cache
        assert len(ctx._npn_caches) == 1

    def test_run_many_accepts_networks_and_paths(self, tmp_path):
        from repro.io import write_aag

        path = tmp_path / "c.aag"
        path.write_text(write_aag(build("ctrl", "tiny")))
        results = FlowRunner().run_many([build("router", "tiny"), str(path)], "b")
        assert len(results) == 2

    def test_load_rejects_unknown(self):
        with pytest.raises(ValueError):
            load("not-a-circuit")


class TestStaticValidation:
    def test_kind_mismatch_rejected_before_any_pass_runs(self):
        ctx = FlowContext()
        with pytest.raises(FlowError, match="cannot run on a lut"):
            FlowRunner(ctx).run(build("ctrl", "tiny"), "if -k 6; rf")
        assert ctx.metrics == [], "validation must reject before executing"

    def test_validate_uses_actual_start_kind(self):
        from repro.flow import Flow

        flow = Flow.parse("am -o area")
        assert flow.validate("choice") == "netlist"
        with pytest.raises(FlowScriptError):
            flow.validate("netlist")

    def test_converge_body_must_preserve_kind(self):
        from repro.flow import Flow

        with pytest.raises(FlowScriptError, match="preserve the state kind"):
            Flow.parse("converge( mch; if -k 4 )").validate("logic")
        # kind-preserving bodies chain fine (logic -> choice -> logic)
        assert Flow.parse("converge( mch; gm )").validate("logic") == "logic"

    def test_repeated_kind_changing_group_rejected(self):
        from repro.flow import Flow

        with pytest.raises(FlowScriptError):
            Flow.parse("2*( if -k 4 )").validate("logic")


class TestNestedContext:
    def test_dch_threads_the_outer_context(self):
        ctx = FlowContext()
        result = FlowRunner(ctx).run(build("ctrl", "tiny"), "dch -n 1 -i 1")
        inner = [m.name for m in result.metrics]
        assert "dch" in inner
        assert "gm" in inner, "snapshot passes must run under the outer context"

    def test_nested_run_preserves_verification_reference(self):
        # the dch pass runs sub-flows; a later cec must still compare
        # against the *outer* flow's input
        ntk = build("ctrl", "tiny")
        result = FlowRunner().run(ntk, "dch -n 1 -i 1; cec")
        assert result.network.num_choices() >= 0

    def test_context_cec_reuses_reference_session(self):
        ctx = FlowContext()
        ntk = build("mem_ctrl", "tiny")       # > 12 PIs: SAT territory
        FlowRunner(ctx).run(ntk, "b; cec; rf; cec")
        sessions = [k for k in ctx._eq_sessions if k == ntk.structural_hash()]
        assert len(sessions) == 1, "both cec passes must share one encoding"

    def test_run_many_keeps_repeated_circuits(self):
        results = FlowRunner().run_many(["ctrl", "ctrl"], "b", scale="tiny")
        assert set(results) == {"ctrl", "ctrl#2"}

    def test_repeated_cec_does_not_reencode_same_pair(self):
        ctx = FlowContext()
        ntk = build("mem_ctrl", "tiny")
        out = FlowRunner(ctx).run(ntk, "b").network
        assert bool(ctx.cec(ntk, out)) and bool(ctx.cec(ntk, out))
        (session,) = [s for k, s in ctx._eq_sessions.items()
                      if k == ntk.structural_hash()]
        assert len(session.networks) == 2, "identical check must reuse the encoding"
