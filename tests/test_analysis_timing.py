"""Tests for statistics and load-aware timing analysis."""

import pytest

from repro.analysis import format_stats, lut_stats, netlist_stats, network_stats
from repro.circuits import build
from repro.mapping import asic_map, lut_map
from repro.mapping.timing import LinearLoadModel, critical_path, sta
from repro.networks import Xmg, convert


class TestNetworkStats:
    def test_counts_match(self):
        ntk = build("adder", "tiny")
        s = network_stats(ntk)
        assert s["gates"] == ntk.num_gates()
        assert s["depth"] == ntk.depth()
        assert sum(s["gate_histogram"].values()) == ntk.num_gates()

    def test_gate_types_in_xmg(self):
        ntk = convert(build("adder", "tiny"), Xmg)
        s = network_stats(ntk)
        assert set(s["gate_histogram"]) <= {"MAJ", "XOR3"}

    def test_format(self):
        text = format_stats(network_stats(build("ctrl", "tiny")), title="ctrl")
        assert text.startswith("ctrl")
        assert "gate_histogram" in text


class TestLutStats:
    def test_histogram_sums(self):
        lut = lut_map(build("max", "tiny"), k=5)
        s = lut_stats(lut)
        assert sum(s["lut_size_histogram"].values()) == s["luts"] == lut.num_luts()
        assert 1 <= s["avg_lut_inputs"] <= 5


class TestNetlistStats:
    def test_consistency(self):
        nl = asic_map(build("router", "tiny"), objective="area")
        s = netlist_stats(nl)
        assert s["cells"] == nl.num_cells()
        assert s["area"] == pytest.approx(nl.area())
        assert s["switching_power"] > 0


class TestSta:
    @pytest.fixture(scope="class")
    def netlist(self):
        return asic_map(build("int2float", "tiny"), objective="delay")

    def test_arrivals_monotone(self, netlist):
        arr = sta(netlist)
        for net, d in enumerate(netlist._drivers):
            if d is None:
                continue
            for f in d[1]:
                assert arr[net] > arr[f] - 1e-9

    def test_load_increases_delay_vs_nominal(self, netlist):
        # with the calibration reference at fanout-2, a real netlist's
        # load-aware delay is in the same order as the fixed-delay model
        arr = sta(netlist)
        worst = max(arr[p] for p in netlist.pos)
        fixed = netlist.delay()
        assert 0.3 * fixed < worst < 10 * fixed

    def test_model_parameters_matter(self, netlist):
        light = sta(netlist, LinearLoadModel(cap_per_area=1.0))
        heavy = sta(netlist, LinearLoadModel(cap_per_area=20.0))
        assert max(heavy[p] for p in netlist.pos) > max(light[p] for p in netlist.pos)

    def test_critical_path_connected(self, netlist):
        path = critical_path(netlist)
        assert path, "netlist must have a critical path"
        for up, down in zip(path[1:], path[:-1]):
            d = netlist._drivers[down]
            assert d is not None and up in d[1]

    def test_empty_netlist(self):
        from repro.networks import CellNetlist

        nl = CellNetlist()
        nl.create_pi()
        assert critical_path(nl) == []
